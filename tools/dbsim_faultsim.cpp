/**
 * @file
 * dbsim-faultsim: deterministic fault-injection driver for the sweep
 * fault-tolerance layer (DESIGN.md §5e).
 *
 * Runs self-checking scenarios against core::SweepRunner with a
 * core::FaultPlan scheduling exactly which (item, attempt) pairs
 * misbehave, and exits non-zero on any deviation:
 *
 *   1. collect:   one panicking item in a 12-item sweep yields 11 ok
 *                 results plus one structured Invariant failure, and
 *                 the v2 report records it;
 *   2. retry:     a fault on attempt 1 only, under retry(2), converges
 *                 to 12 successes whose simulated statistics are
 *                 identical to an undisturbed run -- at 1 and 8 jobs;
 *   3. kinds:     a thrown exception classifies as "exception"; a
 *                 rejected configuration classifies as "config" and is
 *                 never retried;
 *   4. timeout:   an injected delay past the item deadline becomes a
 *                 structured "timeout" failure carrying the machine
 *                 state dump;
 *   5. resume:    a journal truncated mid-write (torn final line)
 *                 replays its completed prefix and re-runs the rest,
 *                 reproducing the clean run's entries field-exactly.
 *
 * All faults are scheduled, never random: every run of this driver
 * exercises the same code paths with the same outcomes.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "core/config.hpp"
#include "core/fault_plan.hpp"
#include "core/sweep.hpp"

namespace {

using namespace dbsim;
using namespace dbsim::core;

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (ok) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cout << "  FAIL: " << what << "\n";
        ++g_failures;
    }
}

SimConfig
quick(WorkloadKind kind, std::uint32_t nodes)
{
    SimConfig cfg = makeScaledConfig(kind, nodes);
    cfg.total_instructions = 40000;
    cfg.warmup_instructions = 8000;
    return cfg;
}

/** Twelve small, uniquely-labelled configurations over both workloads. */
std::vector<SweepItem>
twelveItems()
{
    std::vector<SweepItem> items;
    for (const auto kind : {WorkloadKind::Oltp, WorkloadKind::Dss}) {
        for (const std::uint32_t nodes : {1u, 2u}) {
            SimConfig base = quick(kind, nodes);

            SimConfig window = base;
            window.system.core.window_size = 32;

            SimConfig width = base;
            width.system.core.issue_width = 2;

            char label[64];
            std::snprintf(label, sizeof(label), "%s-%un-base",
                          workloadName(kind), nodes);
            items.push_back({label, base});
            std::snprintf(label, sizeof(label), "%s-%un-window32",
                          workloadName(kind), nodes);
            items.push_back({label, window});
            std::snprintf(label, sizeof(label), "%s-%un-width2",
                          workloadName(kind), nodes);
            items.push_back({label, width});
        }
    }
    return items;
}

/** Zero the two host-timing fields of a rendered entry so runs can be
 *  compared field-exactly (everything else is deterministic). */
std::string
normalizeEntry(std::string line)
{
    for (const char *key :
         {"\"wall_seconds\":", "\"sim_instructions_per_host_second\":"}) {
        const std::size_t at = line.find(key);
        if (at == std::string::npos)
            continue;
        std::size_t from = at + std::string(key).size();
        std::size_t to = from;
        while (to < line.size() && line[to] != ',' && line[to] != '}')
            ++to;
        line.replace(from, to - from, "0");
    }
    return line;
}

std::vector<std::string>
normalizedEntries(const std::string &section, const SweepOutcome &outcome)
{
    std::vector<std::string> lines;
    for (const SweepItemOutcome &o : outcome.items)
        lines.push_back(normalizeEntry(renderSweepEntryJson(section, o)));
    return lines;
}

// ---------------------------------------------------------------------

void
scenarioCollect()
{
    std::cout << "[1] collect: panic in item 5 of 12\n";
    const auto items = twelveItems();
    FaultPlan plan;
    plan.failAttempts(5, 1, FaultSpec::Kind::Panic, "scheduled panic");

    SweepRunner runner(4);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    check(out.items.size() == 12, "12 outcomes recorded");
    check(out.failures() == 1, "exactly one failure");
    std::size_t ok = 0;
    for (const auto &o : out.items)
        ok += o.ok() ? 1 : 0;
    check(ok == 11, "eleven items succeeded");
    const SweepItemOutcome &failed = out.items[5];
    check(!failed.ok() && failed.failure.index == 5,
          "failure recorded at index 5");
    check(failed.failure.kind == FailureKind::Invariant,
          "panic classified as invariant");
    check(failed.failure.what.find("scheduled panic") != std::string::npos,
          "failure message carries the panic text");
    check(failed.failure.attempts == 1, "collect does not retry");

    SweepReport report;
    report.bench = "faultsim";
    report.add("collect", out);
    check(report.failures() == 1, "report counts the failure");
    const std::string entry =
        renderSweepEntryJson("collect", out.items[5]);
    check(entry.find("\"status\":\"failed\"") != std::string::npos &&
              entry.find("\"kind\":\"invariant\"") != std::string::npos,
          "failed entry renders status + kind");
}

void
scenarioRetryDeterminism()
{
    std::cout << "[2] retry: attempt-1 fault converges bitwise\n";
    const auto items = twelveItems();

    SweepRunner clean(1);
    clean.setFailurePolicy(FailurePolicy::collect());
    const auto baseline =
        normalizedEntries("retry", clean.runChecked(items));

    FaultPlan plan;
    plan.failAttempts(3, 1, FaultSpec::Kind::Panic, "first-try panic");
    plan.failAttempts(9, 1, FaultSpec::Kind::Throw, "first-try throw");

    for (const unsigned jobs : {1u, 8u}) {
        SweepRunner runner(jobs);
        runner.setFailurePolicy(FailurePolicy::retry(2));
        runner.setFaultPlan(&plan);
        const SweepOutcome out = runner.runChecked(items);

        check(out.allOk(),
              "all 12 items succeed (jobs=" + std::to_string(jobs) + ")");
        check(out.items[3].attempts == 2 && out.items[9].attempts == 2,
              "faulted items consumed 2 attempts (jobs=" +
                  std::to_string(jobs) + ")");
        const auto got = normalizedEntries("retry", out);
        bool identical = got.size() == baseline.size();
        for (std::size_t i = 0; identical && i < got.size(); ++i) {
            // attempts differ for the faulted items by design; mask it.
            std::string a = baseline[i], b = got[i];
            const std::string key = "\"attempts\":";
            const auto strip = [&](std::string &s) {
                const std::size_t at = s.find(key);
                if (at == std::string::npos)
                    return;
                std::size_t to = at + key.size();
                while (to < s.size() && s[to] != ',')
                    ++to;
                s.erase(at, to - at + 1);
            };
            strip(a);
            strip(b);
            identical = a == b;
            if (!identical)
                std::cout << "    mismatch[" << i << "]:\n    " << a
                          << "\n    " << b << "\n";
        }
        check(identical,
              "retried results identical to undisturbed run (jobs=" +
                  std::to_string(jobs) + ")");
    }
}

void
scenarioKinds()
{
    std::cout << "[3] kinds: exception + config classification\n";
    std::vector<SweepItem> items;
    for (int i = 0; i < 4; ++i) {
        char label[16];
        std::snprintf(label, sizeof(label), "k%d", i);
        items.push_back({label, quick(WorkloadKind::Oltp, 1)});
    }
    items[2].cfg.total_instructions = 0; // rejected by validation

    FaultPlan plan;
    plan.failAttempts(0, 3, FaultSpec::Kind::Throw, "always throws");

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::retry(3));
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    check(out.failures() == 2, "two failures recorded");
    check(!out.items[0].ok() &&
              out.items[0].failure.kind == FailureKind::Exception,
          "persistent throw classified as exception");
    check(out.items[0].attempts == 3, "throw consumed all 3 attempts");
    check(!out.items[2].ok() &&
              out.items[2].failure.kind == FailureKind::Config,
          "rejected configuration classified as config");
    check(out.items[2].attempts == 1,
          "config rejection is deterministic: never retried");
    check(out.items[1].ok() && out.items[3].ok(),
          "healthy items unaffected");
}

void
scenarioTimeout()
{
    std::cout << "[4] timeout: delayed item trips the host deadline\n";
    std::vector<SweepItem> items = {
        {"fast", quick(WorkloadKind::Oltp, 1)},
        {"slow", quick(WorkloadKind::Oltp, 1)},
    };
    FaultPlan plan;
    FaultSpec delay;
    delay.index = 1;
    delay.attempt = 1;
    delay.kind = FaultSpec::Kind::Delay;
    delay.delay_seconds = 0.5;
    plan.add(delay);

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setItemTimeout(0.2);
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    check(out.items[0].ok(), "undelayed item finishes normally");
    check(!out.items[1].ok() &&
              out.items[1].failure.kind == FailureKind::Timeout,
          "delayed item classified as timeout");
    check(out.items[1].failure.what.find("deadline") != std::string::npos,
          "timeout message names the deadline");
    check(!out.items[1].failure.crash_dump_excerpt.empty(),
          "timeout failure carries the machine-state dump");
}

void
scenarioResume()
{
    std::cout << "[5] resume: torn journal replays + re-runs field-exact\n";
    const std::string clean_path = "FAULTSIM_clean.journal.jsonl";
    const std::string torn_path = "FAULTSIM_torn.journal.jsonl";
    const auto items = twelveItems();

    // Clean reference run, journaled.
    SweepRunner runner(4);
    runner.setFailurePolicy(FailurePolicy::collect());
    SweepJournal journal;
    check(journal.open(clean_path, /*append=*/false), "journal opens");
    runner.setCompletionCallback([&](const SweepItemOutcome &o) {
        journal.append("resume", o);
    });
    const SweepOutcome clean = runner.runChecked(items);
    journal.close();
    runner.setCompletionCallback({});
    check(clean.allOk(), "clean run succeeds");
    const auto clean_entries = normalizedEntries("resume", clean);

    // Simulate a mid-write kill: keep 7 complete lines plus a torn one.
    {
        std::ifstream in(clean_path);
        std::ofstream out_file(torn_path, std::ios::trunc);
        std::string line;
        for (int i = 0; i < 7 && std::getline(in, line); ++i)
            out_file << line << "\n";
        out_file << "{\"section\":\"resume\",\"label\":\"oltp-2n-w";
    }

    const auto entries = SweepJournal::load(torn_path);
    check(entries.size() == 7, "torn final line skipped on load");

    const ResumePlan resume_plan = planResume("resume", items, entries);
    check(resume_plan.replayedCount() == 7, "seven items replayed");
    check(resume_plan.to_run.size() == 5, "five items re-run");

    const SweepOutcome rerun =
        runner.runChecked([&] {
            std::vector<SweepItem> subset;
            for (const std::size_t i : resume_plan.to_run)
                subset.push_back(items[i]);
            return subset;
        }(), resume_plan.to_run);
    check(rerun.allOk(), "re-run subset succeeds");

    // Assemble the resumed view in input order and compare field-exact.
    bool identical = true;
    std::size_t next = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        std::string got;
        if (!resume_plan.replayed[i].empty())
            got = normalizeEntry(resume_plan.replayed[i]);
        else
            got = normalizeEntry(
                renderSweepEntryJson("resume", rerun.items[next++]));
        if (got != clean_entries[i]) {
            identical = false;
            std::cout << "    mismatch[" << i << "]:\n    "
                      << clean_entries[i] << "\n    " << got << "\n";
        }
    }
    check(identical, "resumed entries identical to the clean run");

    std::remove(clean_path.c_str());
    std::remove(torn_path.c_str());
}

} // namespace

int
main()
{
    scenarioCollect();
    scenarioRetryDeterminism();
    scenarioKinds();
    scenarioTimeout();
    scenarioResume();

    if (g_failures != 0) {
        std::cout << "dbsim-faultsim: " << g_failures << " FAILURE(S)\n";
        return 1;
    }
    std::cout << "dbsim-faultsim: all scenarios passed\n";
    return 0;
}
