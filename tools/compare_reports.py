#!/usr/bin/env python3
"""Field-exact comparison of two dbsim-bench JSON reports.

Used by the CI fault-tolerance job to assert that an interrupted sweep
resumed with --resume produces the same report as an uninterrupted run.
Host-timing fields (wall_seconds, sim_instructions_per_host_second) are
scrubbed before comparing -- they legitimately differ between runs; all
simulated results (cycles, instructions, IPC, breakdowns, miss rates,
coherence counters) must match exactly.

Usage: compare_reports.py REFERENCE.json CANDIDATE.json [--ignore KEY]...
Exit status 0 when equivalent, 1 with a per-path diff otherwise.
"""

import argparse
import json
import sys

DEFAULT_IGNORED = ("wall_seconds", "sim_instructions_per_host_second")


def scrub(node, ignored):
    """Drop ignored keys recursively."""
    if isinstance(node, dict):
        return {
            k: scrub(v, ignored)
            for k, v in node.items()
            if k not in ignored
        }
    if isinstance(node, list):
        return [scrub(v, ignored) for v in node]
    return node


def diff(a, b, path, out, limit=50):
    """Collect up to `limit` per-path differences between a and b."""
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != "
                   f"{type(b).__name__}")
    elif isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in candidate")
            elif k not in b:
                out.append(f"{path}.{k}: only in reference")
            else:
                diff(a[k], b[k], f"{path}.{k}", out, limit)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]", out, limit)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("reference")
    ap.add_argument("candidate")
    ap.add_argument("--ignore", action="append", default=[],
                    help="additional JSON keys to scrub before comparing")
    args = ap.parse_args()

    ignored = set(DEFAULT_IGNORED) | set(args.ignore)
    docs = []
    for path in (args.reference, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(scrub(json.load(f), ignored))
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_reports: {path}: {e}", file=sys.stderr)
            return 2

    findings = []
    diff(docs[0], docs[1], "$", findings)
    for f in findings:
        print(f)
    if findings:
        print(f"compare_reports: {len(findings)} difference(s) between "
              f"{args.reference} and {args.candidate}")
        return 1
    print(f"compare_reports: {args.reference} == {args.candidate} "
          f"(ignoring {', '.join(sorted(ignored))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
