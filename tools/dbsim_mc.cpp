/**
 * @file
 * dbsim-mc: offline protocol verification driver.
 *
 * Default run (no arguments) executes the full verification suite and
 * exits non-zero on any failure:
 *   1. exhaustively model-checks every standard configuration of the
 *      real coherence fabric (expecting zero violations),
 *   2. runs the consistency litmus matrix through SC/PC/RC (expecting
 *      every model to allow/forbid exactly the right outcomes), and
 *   3. runs the mutation self-test (expecting every catalogued seeded
 *      protocol bug to be detected).
 *
 * Options:
 *   --config NAME   model-check only the named standard configuration
 *   --bug NAME      seed the named protocol bug (see --list) into the
 *                   model-checking runs and print the minimized
 *                   counterexample; exits 0 iff the bug is detected
 *   --panic         report violations through the crash-dump registry
 *                   and DBSIM_PANIC instead of a normal summary
 *   --no-litmus     skip the litmus matrix
 *   --no-mutation   skip the mutation self-test
 *   --list          list configurations and catalogued bugs
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/log.hpp"
#include "cpu/consistency.hpp"
#include "verify/suite.hpp"

namespace {

using namespace dbsim;
using namespace dbsim::verify;

int
listAll()
{
    std::cout << "configurations:\n";
    for (const McConfig &c : standardConfigs()) {
        std::size_t ops = 0;
        for (const auto &p : c.programs)
            ops += p.size();
        std::cout << "  " << c.name << "  (" << c.nodes << " nodes, "
                  << c.blocks << " blocks, " << ops << " ops)\n";
    }
    std::cout << "protocol bugs:\n";
    for (const ProtocolBug b :
         {ProtocolBug::DroppedInvalidation, ProtocolBug::StaleOwner,
          ProtocolBug::MissingDowngrade, ProtocolBug::LostSharerBit,
          ProtocolBug::SkippedSpecSquash, ProtocolBug::ReorderedRelease})
        std::cout << "  " << protocolBugName(b) << "\n";
    return 0;
}

ProtocolBug
parseBug(const std::string &name)
{
    for (const ProtocolBug b :
         {ProtocolBug::DroppedInvalidation, ProtocolBug::StaleOwner,
          ProtocolBug::MissingDowngrade, ProtocolBug::LostSharerBit,
          ProtocolBug::SkippedSpecSquash, ProtocolBug::ReorderedRelease})
        if (name == protocolBugName(b))
            return b;
    std::cerr << "dbsim-mc: unknown bug '" << name << "' (try --list)\n";
    std::exit(2);
}

/** Model-check the standard configurations; returns the failure count.
 *  With a seeded bug the expectation flips: a run that finds no
 *  violation is the failure. */
int
runModelChecks(const std::string &only, ProtocolBug bug, bool panic)
{
    int failures = 0;
    bool matched = false;
    for (McConfig cfg : standardConfigs()) {
        if (!only.empty() && cfg.name != only)
            continue;
        matched = true;
        cfg.bug = bug;
        const McResult r = ModelChecker(cfg, panic).check();
        std::cout << "model-check " << cfg.name << ": "
                  << (r.ok ? "ok" : "VIOLATION") << ", "
                  << (r.exhausted ? "exhausted" : "NOT exhausted") << ", "
                  << r.states << " states, " << r.transitions
                  << " transitions, " << r.interleavings
                  << " interleavings";
        if (bug != ProtocolBug::None)
            std::cout << ", bug fired " << r.mutation_fires << "x";
        std::cout << "\n";
        if (!r.ok) {
            std::cout << "  violation: " << r.violation << "\n"
                      << "  minimized counterexample ("
                      << r.trace.size() << " ops):\n";
            for (const McStep &s : r.trace)
                std::cout << "    " << mcStepString(s) << "\n";
        }
        const bool expect_violation = bug != ProtocolBug::None;
        if (r.ok == expect_violation || (!expect_violation && !r.exhausted))
            ++failures;
    }
    if (!only.empty() && !matched) {
        std::cerr << "dbsim-mc: unknown config '" << only
                  << "' (try --list)\n";
        std::exit(2);
    }
    if (bug != ProtocolBug::None && failures > 0 && matched) {
        // A seeded fabric bug need not be observable in *every*
        // configuration -- detection in at least one is a pass.
        bool any_caught = false;
        for (McConfig cfg : standardConfigs()) {
            if (!only.empty() && cfg.name != only)
                continue;
            cfg.bug = bug;
            if (!ModelChecker(cfg).check().ok)
                any_caught = true;
        }
        if (any_caught)
            failures = 0;
    }
    return failures;
}

int
runLitmusChecks()
{
    const std::vector<LitmusRun> runs = runLitmusMatrix();
    std::string why;
    const bool ok = litmusMatrixOk(runs, &why);
    std::uint64_t rollbacks = 0;
    for (const LitmusRun &r : runs)
        rollbacks += r.rollbacks;
    std::cout << "litmus: " << runs.size() << " runs, " << rollbacks
              << " speculative rollbacks, "
              << (ok ? "matrix ok" : "MATRIX FAILED") << "\n";
    if (!ok)
        std::cout << "  " << why << "\n";
    return ok ? 0 : 1;
}

int
runMutationChecks()
{
    int failures = 0;
    for (const MutationVerdict &v : runMutationCatalog()) {
        const bool ok = v.caught && v.fires > 0;
        std::cout << "mutation " << protocolBugName(v.bug) << ": "
                  << (ok ? "caught" : "MISSED");
        if (v.caught)
            std::cout << " by " << v.detector << " (" << v.detail << ")";
        std::cout << ", fired " << v.fires << "x\n";
        if (!ok)
            ++failures;
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string only;
    ProtocolBug bug = ProtocolBug::None;
    bool panic = false;
    bool litmus = true;
    bool mutation = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "dbsim-mc: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list")
            return listAll();
        if (arg == "--config")
            only = value();
        else if (arg == "--bug")
            bug = parseBug(value());
        else if (arg == "--panic")
            panic = true;
        else if (arg == "--no-litmus")
            litmus = false;
        else if (arg == "--no-mutation")
            mutation = false;
        else {
            std::cerr << "dbsim-mc: unknown option '" << arg
                      << "' (see the header comment for usage)\n";
            return 2;
        }
    }

    // A seeded bug changes the run's purpose to "show the
    // counterexample"; the litmus/mutation suites run unmutated
    // protocols only.
    if (bug != ProtocolBug::None)
        litmus = mutation = false;

    int failures = runModelChecks(only, bug, panic);
    if (litmus)
        failures += runLitmusChecks();
    if (mutation)
        failures += runMutationChecks();

    if (failures == 0) {
        std::cout << "dbsim-mc: all checks passed\n";
        return 0;
    }
    std::cout << "dbsim-mc: " << failures << " check(s) FAILED\n";
    return 1;
}
