#!/usr/bin/env python3
"""DEPRECATED: thin wrapper around `dbsim-analyze`.

The python convention linter has been absorbed into the self-hosted
static analysis tool (tools/analyze/): its four rules now run as the
`conventions` family (convention-assert, convention-stdout,
convention-include-guard, convention-catch-swallow) with the same
semantics, including the `lint: allowed-swallow` escape hatch.

This script only locates the built binary and execs it with the
convention rules selected, so existing CI invocations keep working.
Prefer calling `dbsim-analyze` directly; see tools/analyze/ and
DESIGN.md §5f.

Binary lookup order:
  1. $DBSIM_ANALYZE (explicit path)
  2. <repo>/build*/tools/analyze/dbsim-analyze
  3. dbsim-analyze on $PATH
"""

import os
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CONVENTION_RULES = ",".join(
    (
        "convention-assert",
        "convention-stdout",
        "convention-include-guard",
        "convention-catch-swallow",
    )
)


def find_binary() -> str | None:
    env = os.environ.get("DBSIM_ANALYZE")
    if env and Path(env).is_file():
        return env
    for build in sorted(REPO_ROOT.glob("build*")):
        cand = build / "tools" / "analyze" / "dbsim-analyze"
        if cand.is_file():
            return str(cand)
    return shutil.which("dbsim-analyze")


def main() -> int:
    binary = find_binary()
    if binary is None:
        print(
            "lint_conventions: dbsim-analyze binary not found; build it "
            "(cmake --build build --target dbsim-analyze) or set "
            "$DBSIM_ANALYZE",
            file=sys.stderr,
        )
        return 2
    print(
        "lint_conventions: deprecated wrapper; running "
        f"{binary} --rules {CONVENTION_RULES}",
        file=sys.stderr,
    )
    argv = [
        binary,
        "--root",
        str(REPO_ROOT),
        "--rules",
        CONVENTION_RULES,
    ] + sys.argv[1:]
    os.execv(binary, argv)
    return 2  # unreachable


if __name__ == "__main__":
    sys.exit(main())
