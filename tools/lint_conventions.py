#!/usr/bin/env python3
"""Repository convention linter for the simulator sources.

Enforced over every C++ file under src/:

  1. no raw assert(): invariants go through DBSIM_ASSERT / DBSIM_PANIC
     (common/log.hpp) so they survive NDEBUG builds, print context, and
     run the crash-dump registry (static_assert is fine);
  2. no direct stdout output (std::cout, printf, puts, fprintf(stdout)):
     library code reports through common/log or returns data -- only
     tools/, bench/ and examples/ own stdout (std::snprintf into a
     buffer is formatting, not output, and stays allowed);
  3. header include guards exist and are named DBSIM_<PATH>_<FILE>_HPP,
     derived from the path under src/ (e.g. src/verify/litmus.hpp
     guards DBSIM_VERIFY_LITMUS_HPP);
  4. no swallowing catch (...): a bare catch-all must rethrow, capture
     the exception (std::current_exception), or turn it into a
     structured SweepFailure -- silently eating errors hides faults the
     sweep isolation layer is designed to surface.  A deliberate
     swallow is annotated with a `lint: allowed-swallow` comment inside
     the block.

Exit status 0 when clean, 1 with one "file:line: message" per finding
otherwise.  Run from anywhere: paths resolve relative to the repo root
(the parent of this script's directory).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
STDOUT_USE = re.compile(
    r"std::cout|(?<![\w_])printf\s*\(|(?<![\w_])puts\s*\("
    r"|(?<![\w_])fprintf\s*\(\s*stdout"
)
GUARD_IFNDEF = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
GUARD_DEFINE = re.compile(r"^\s*#\s*define\s+(\S+)")
CATCH_ALL = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
CATCH_HANDLED = re.compile(r"(?<![\w_])throw(?![\w_])|SweepFailure"
                           r"|std::current_exception")
ALLOWED_SWALLOW = "lint: allowed-swallow"


def catch_all_findings(rel, text: str, code: str) -> list[str]:
    """Rule 4: every `catch (...)` block must rethrow, capture, or
    build a SweepFailure -- or carry a `lint: allowed-swallow` comment
    (checked against the raw text, since comments are stripped from
    `code`)."""
    findings = []
    for m in CATCH_ALL.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        open_brace = code.find("{", m.end())
        if open_brace < 0:
            continue
        depth, j = 0, open_brace
        while j < len(code):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        block = code[open_brace : j + 1]
        if CATCH_HANDLED.search(block):
            continue
        # Comment annotations are stripped from `code`; re-check the
        # raw text over the block's line range (line structure is
        # preserved by the stripper, character offsets are not).
        end_line = code.count("\n", 0, j) + 1
        raw_lines = text.splitlines()[lineno - 1 : end_line]
        if any(ALLOWED_SWALLOW in ln for ln in raw_lines):
            continue
        findings.append(
            f"{rel}:{lineno}: catch (...) swallows the exception; "
            "rethrow, capture it, or record a SweepFailure "
            "(annotate deliberate swallows with "
            f"'{ALLOWED_SWALLOW}')"
        )
    return findings


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    return "DBSIM_" + "_".join(p.upper() for p in rel.parts) + "_HPP"


def lint_file(path: Path) -> list[str]:
    findings = []
    rel = path.relative_to(REPO_ROOT)
    text = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)

    findings.extend(catch_all_findings(rel, text, code))

    for lineno, line in enumerate(code.splitlines(), start=1):
        if RAW_ASSERT.search(line):
            findings.append(
                f"{rel}:{lineno}: raw assert(); use DBSIM_ASSERT "
                "(common/log.hpp)"
            )
        if STDOUT_USE.search(line):
            findings.append(
                f"{rel}:{lineno}: direct stdout output in library code; "
                "use common/log or return data"
            )

    if path.suffix == ".hpp":
        ifndef = define = None
        ifndef_line = 0
        for lineno, line in enumerate(code.splitlines(), start=1):
            if ifndef is None:
                m = GUARD_IFNDEF.match(line)
                if m:
                    ifndef, ifndef_line = m.group(1), lineno
            elif define is None:
                m = GUARD_DEFINE.match(line)
                if m:
                    define = m.group(1)
                    break
        want = expected_guard(path)
        if ifndef is None or define is None:
            findings.append(f"{rel}:1: missing include guard {want}")
        elif ifndef != want or define != want:
            findings.append(
                f"{rel}:{ifndef_line}: include guard {ifndef}/{define} "
                f"should be {want}"
            )

    return findings


def main() -> int:
    if not SRC.is_dir():
        print(f"lint_conventions: {SRC} not found", file=sys.stderr)
        return 2
    files = sorted(
        p for p in SRC.rglob("*") if p.suffix in (".cpp", ".hpp")
    )
    if not files:
        print("lint_conventions: no sources found under src/",
              file=sys.stderr)
        return 2
    findings = [f for path in files for f in lint_file(path)]
    for f in findings:
        print(f)
    print(
        f"lint_conventions: {len(files)} files, {len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
