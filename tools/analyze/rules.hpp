/**
 * @file
 * Internal rule-pass interface.  Each family pass scans the corpus and
 * appends raw findings; the engine then applies inline suppressions,
 * the baseline, and rule filtering.
 */

#ifndef DBSIM_TOOLS_ANALYZE_RULES_HPP
#define DBSIM_TOOLS_ANALYZE_RULES_HPP

#include <string>
#include <vector>

#include "analyze.hpp"
#include "corpus.hpp"

namespace dbsim::analyze {

/// A finding as produced by a rule pass.  `scan_end` widens the line
/// range searched for an inline allow() (e.g. a whole catch block); 0
/// means just the finding line.
struct RawFinding
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    int scan_end = 0;
};

// Rule ids (shared between passes, engine, and tests).
inline constexpr char kRuleUnorderedIter[] = "determinism-unordered-iteration";
inline constexpr char kRuleWallclock[] = "determinism-wallclock";
inline constexpr char kRuleRand[] = "determinism-rand";
inline constexpr char kRulePointerFormat[] = "determinism-pointer-format";
inline constexpr char kRuleCounterCoverage[] = "accounting-counter-coverage";
inline constexpr char kRuleSwitchExhaustive[] = "accounting-switch-exhaustive";
inline constexpr char kRuleLayerCycle[] = "layering-cycle";
inline constexpr char kRuleLayerOrder[] = "layering-order";
inline constexpr char kRuleAssert[] = "convention-assert";
inline constexpr char kRuleStdout[] = "convention-stdout";
inline constexpr char kRuleIncludeGuard[] = "convention-include-guard";
inline constexpr char kRuleCatchSwallow[] = "convention-catch-swallow";
inline constexpr char kRuleCheckpointPurity[] = "checkpoint-purity";

void runDeterminismRules(const Corpus &c, std::vector<RawFinding> &out);
void runAccountingRules(const Corpus &c, std::vector<RawFinding> &out);
void runLayeringRules(const Corpus &c, std::vector<RawFinding> &out);
void runConventionRules(const Corpus &c, std::vector<RawFinding> &out);
void runCheckpointRules(const Corpus &c, std::vector<RawFinding> &out);

} // namespace dbsim::analyze

#endif // DBSIM_TOOLS_ANALYZE_RULES_HPP
