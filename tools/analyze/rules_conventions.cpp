/**
 * @file
 * R4: repo conventions, absorbed from the python-era
 * tools/lint_conventions.py (which now just execs this tool):
 *
 *  - no raw assert() in src/ (use DBSIM_ASSERT, on in release builds)
 *  - no stdout writes in src/ (reports own stdout; logs go to stderr)
 *  - include guards must spell DBSIM_<DIRS>_<FILE>_HPP
 *  - catch (...) must rethrow, wrap, or carry an allow() annotation
 */

#include <cctype>

#include "rules.hpp"

namespace dbsim::analyze {

namespace {

void
checkAsserts(const SourceFile &f, std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind == Tok::Ident && t[i].text == "assert" &&
            t[i + 1].text == "(") {
            out.push_back({kRuleAssert, f.rel, t[i].line,
                           "raw assert() compiles out under NDEBUG; use "
                           "DBSIM_ASSERT (common/assert.hpp), which stays "
                           "on in release builds",
                           0});
        }
    }
}

void
checkStdout(const SourceFile &f, std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident)
            continue;
        const std::string prev = i > 0 ? t[i - 1].text : std::string();
        const std::string next =
            i + 1 < t.size() ? t[i + 1].text : std::string();
        const bool member = prev == "." || prev == "->";
        if (t[i].text == "cout" && prev == "::" && i >= 2 &&
            t[i - 2].text == "std") {
            out.push_back({kRuleStdout, f.rel, t[i].line,
                           "std::cout in src/: stdout belongs to "
                           "machine-readable reports; log via DBSIM_* "
                           "(stderr) instead",
                           0});
        } else if ((t[i].text == "printf" || t[i].text == "puts") &&
                   next == "(" && !member) {
            out.push_back({kRuleStdout, f.rel, t[i].line,
                           "'" + t[i].text +
                               "' writes to stdout, which belongs to "
                               "machine-readable reports; log via DBSIM_* "
                               "(stderr) instead",
                           0});
        } else if (t[i].text == "fprintf" && next == "(" &&
                   i + 2 < t.size() && t[i + 2].text == "stdout") {
            out.push_back({kRuleStdout, f.rel, t[i].line,
                           "fprintf(stdout, ...) in src/: stdout belongs "
                           "to machine-readable reports; log via DBSIM_* "
                           "(stderr) instead",
                           0});
        }
    }
}

void
checkIncludeGuard(const SourceFile &f, std::vector<RawFinding> &out)
{
    if (!f.isHeader())
        return;
    std::string expected = "DBSIM_";
    for (const char ch : f.rel) {
        if (ch == '/' || ch == '.')
            expected.push_back('_');
        else
            expected.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(ch))));
    }
    // "DBSIM_SIM_SYSTEM_HPP" from "sim/system.hpp": the extension dot
    // became '_' above, so the suffix is already right.
    const PpDirective *ifndef = nullptr;
    const PpDirective *define = nullptr;
    for (const PpDirective &d : f.directives) {
        if (!ifndef) {
            if (d.keyword == "ifndef")
                ifndef = &d;
            else if (d.keyword == "if" || d.keyword == "ifdef")
                return; // unconventional header; pragma-once etc. below
            continue;
        }
        if (d.keyword == "define") {
            define = &d;
            break;
        }
    }
    if (!ifndef) {
        out.push_back({kRuleIncludeGuard, f.rel, 1,
                       "header has no include guard; expected #ifndef " +
                           expected,
                       0});
        return;
    }
    auto firstWord = [](const std::string &s) {
        std::size_t e = 0;
        while (e < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[e])) ||
                s[e] == '_'))
            ++e;
        return s.substr(0, e);
    };
    const std::string got = firstWord(ifndef->rest);
    if (got != expected) {
        out.push_back({kRuleIncludeGuard, f.rel, ifndef->line,
                       "include guard '" + got + "' should be '" +
                           expected + "'",
                       0});
        return;
    }
    if (!define || firstWord(define->rest) != expected) {
        out.push_back({kRuleIncludeGuard, f.rel,
                       define ? define->line : ifndef->line,
                       "include guard #define does not match #ifndef " +
                           expected,
                       0});
    }
}

void
checkCatchSwallow(const SourceFile &f, std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || t[i].text != "catch" ||
            t[i + 1].text != "(" || t[i + 2].text != "..." ||
            t[i + 3].text != ")")
            continue;
        std::size_t j = i + 4;
        while (j < t.size() && t[j].text != "{")
            ++j;
        if (j >= t.size())
            continue;
        int depth = 0;
        bool handled = false;
        int end_line = t[j].line;
        for (; j < t.size(); ++j) {
            const Token &tk = t[j];
            end_line = tk.line;
            if (tk.kind == Tok::Punct) {
                if (tk.text == "{")
                    ++depth;
                else if (tk.text == "}" && --depth == 0)
                    break;
                continue;
            }
            // A rethrow, a structured wrap, or capturing the exception
            // counts as handling it.
            if (tk.kind == Tok::Ident &&
                (tk.text == "throw" || tk.text == "current_exception" ||
                 tk.text == "rethrow_exception" ||
                 tk.text == "SweepFailure" || tk.text == "DBSIM_PANIC" ||
                 tk.text == "DBSIM_FATAL"))
                handled = true;
        }
        if (handled)
            continue;
        // Legacy python-linter escape hatch anywhere in the block.
        bool legacy = false;
        for (int l = t[i].line; l <= end_line && !legacy; ++l)
            legacy = f.legacy_swallow.count(l) != 0;
        if (legacy)
            continue;
        out.push_back({kRuleCatchSwallow, f.rel, t[i].line,
                       "catch (...) swallows the exception; rethrow, wrap "
                       "it in a structured failure, or annotate with "
                       "allow(convention-catch-swallow)",
                       end_line});
    }
}

} // namespace

void
runConventionRules(const Corpus &c, std::vector<RawFinding> &out)
{
    for (const SourceFile &f : c.files) {
        checkAsserts(f, out);
        checkStdout(f, out);
        checkIncludeGuard(f, out);
        checkCatchSwallow(f, out);
    }
}

} // namespace dbsim::analyze
