/**
 * @file
 * Corpus model for dbsim-analyze: the scanned file set, the include
 * graph resolved within it, and the cross-file declaration indexes the
 * rule passes consult (unordered-container variables, *Stats counter
 * structs, enum definitions).
 */

#ifndef DBSIM_TOOLS_ANALYZE_CORPUS_HPP
#define DBSIM_TOOLS_ANALYZE_CORPUS_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace dbsim::analyze {

struct Corpus
{
    /// Files under the corpus root, sorted by rel path.  Findings are
    /// only ever reported against these.
    std::vector<SourceFile> files;
    /// Files under auxiliary usage roots (tests/, bench/, ...): indexed
    /// for the accounting rule's consumption side, never reported on.
    std::vector<SourceFile> usage_files;

    std::map<std::string, int> file_index; ///< rel -> index into files

    /// Include edge between two corpus files.
    struct Edge
    {
        int from;
        int to;
        int line; ///< line of the #include in `from`
    };
    std::vector<Edge> edges;

    /// Names of variables/members declared with an unordered container
    /// type anywhere in the corpus (iteration-order hazard roots).
    std::set<std::string> unordered_vars;

    struct CounterField
    {
        std::string name;
        int line;
    };
    struct StatsStruct
    {
        std::string name;
        std::string file_rel;
        int line;
        std::vector<CounterField> fields;
    };
    std::vector<StatsStruct> stats_structs;

    struct EnumDef
    {
        std::string name;
        std::string file_rel;
        int line = 0;
        std::vector<std::string> enumerators;
        /// Two distinct enums share this bare name; switches over it
        /// are skipped rather than misjudged.
        bool ambiguous = false;
    };
    std::map<std::string, EnumDef> enums; ///< keyed by bare enum name
};

/**
 * Scan `corpus_root` (and `usage_roots`) for C++ sources, lex them, and
 * build all indexes.  Returns false with `error` set on I/O failure.
 */
bool buildCorpus(const std::string &corpus_root,
                 const std::vector<std::string> &usage_roots, Corpus &out,
                 std::string &error);

} // namespace dbsim::analyze

#endif // DBSIM_TOOLS_ANALYZE_CORPUS_HPP
