#include "lexer.hpp"

#include <cctype>

namespace dbsim::analyze {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators we must keep whole so rule passes can
/// match "::", "->", "++", "+=" etc. without reassembling fragments.
/// Longest-match first.
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||",
};

/**
 * Scan a comment body for suppression markers.  Returns the rule names
 * found in `dbsim-analyze: allow(a, b)` clauses (possibly several per
 * comment); sets `legacy` when the python-era "lint: allowed-swallow"
 * marker appears.
 */
std::set<std::string>
parseAllows(std::string_view body, bool &legacy)
{
    std::set<std::string> rules;
    if (body.find("lint: allowed-swallow") != std::string_view::npos)
        legacy = true;
    static constexpr std::string_view kKey = "dbsim-analyze: allow(";
    std::size_t pos = 0;
    while ((pos = body.find(kKey, pos)) != std::string_view::npos) {
        pos += kKey.size();
        const std::size_t close = body.find(')', pos);
        if (close == std::string_view::npos)
            break;
        std::string_view list = body.substr(pos, close - pos);
        std::size_t i = 0;
        while (i < list.size()) {
            while (i < list.size() &&
                   (list[i] == ' ' || list[i] == ',' || list[i] == '\t'))
                ++i;
            std::size_t j = i;
            while (j < list.size() && list[j] != ',' && list[j] != ' ' &&
                   list[j] != '\t')
                ++j;
            if (j > i)
                rules.insert(std::string(list.substr(i, j - i)));
            i = j;
        }
        pos = close;
    }
    return rules;
}

} // namespace

bool
SourceFile::isHeader() const
{
    return rel.size() >= 4 && (rel.rfind(".hpp") == rel.size() - 4 ||
                               rel.rfind(".h") == rel.size() - 2);
}

std::string
SourceFile::dir() const
{
    const std::size_t slash = rel.find('/');
    return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

SourceFile
lexSource(std::string rel, std::string_view text)
{
    SourceFile out;
    out.rel = std::move(rel);

    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    bool line_has_code = false;       // a code token emitted on this line
    std::set<std::string> pending;    // allows waiting for the next code line

    auto newline = [&] {
        ++line;
        line_has_code = false;
    };
    auto emit = [&](Tok kind, std::string t, int at) {
        if (!pending.empty()) {
            out.allows[at].insert(pending.begin(), pending.end());
            pending.clear();
        }
        line_has_code = true;
        out.tokens.push_back(Token{kind, std::move(t), at});
    };
    auto recordAllows = [&](std::string_view body, int start_line,
                            int end_line) {
        bool legacy = false;
        std::set<std::string> rules = parseAllows(body, legacy);
        if (legacy)
            for (int l = start_line; l <= end_line; ++l)
                out.legacy_swallow.insert(l);
        if (rules.empty())
            return;
        if (line_has_code)
            out.allows[start_line].insert(rules.begin(), rules.end());
        else
            pending.insert(rules.begin(), rules.end());
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const std::size_t start = i;
            while (i < n && text[i] != '\n')
                ++i;
            recordAllows(text.substr(start, i - start), line, line);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int start_line = line;
            const std::size_t start = i;
            i += 2;
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line; // keep line_has_code: same physical line resumes
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            recordAllows(text.substr(start, i - start), start_line, line);
            continue;
        }

        // Preprocessor directive (only when nothing but whitespace and
        // comments precede it on the line).
        if (c == '#' && !line_has_code) {
            const int at = line;
            ++i;
            // Logical line with backslash continuations.
            std::string body;
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
                    i += 2;
                    newline();
                    continue;
                }
                if (text[i] == '\n')
                    break;
                body.push_back(text[i]);
                ++i;
            }
            std::size_t p = 0;
            while (p < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[p])))
                ++p;
            std::size_t q = p;
            while (q < body.size() && identChar(body[q]))
                ++q;
            PpDirective d;
            d.keyword = body.substr(p, q - p);
            while (q < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[q])))
                ++q;
            std::size_t e = body.size();
            while (e > q &&
                   std::isspace(static_cast<unsigned char>(body[e - 1])))
                --e;
            d.rest = body.substr(q, e - q);
            d.line = at;
            if (d.keyword == "include" && d.rest.size() >= 2) {
                IncludeDirective inc;
                inc.line = at;
                const char open = d.rest[0];
                const char close = open == '<' ? '>' : '"';
                const std::size_t endq = d.rest.find(close, 1);
                if ((open == '<' || open == '"') &&
                    endq != std::string::npos) {
                    inc.target = d.rest.substr(1, endq - 1);
                    inc.angled = open == '<';
                    out.includes.push_back(std::move(inc));
                }
            }
            out.directives.push_back(std::move(d));
            continue;
        }

        // String literal (with optional encoding/raw prefix already
        // consumed as an identifier -- handle the common R"(...)" form
        // when it directly follows).
        if (c == '"') {
            const int at = line;
            bool raw = false;
            if (!out.tokens.empty() && out.tokens.back().kind == Tok::Ident &&
                out.tokens.back().line == at) {
                const std::string &prev = out.tokens.back().text;
                if (prev == "R" || prev == "u8R" || prev == "uR" ||
                    prev == "LR") {
                    raw = true;
                    out.tokens.pop_back();
                }
            }
            std::string val;
            ++i;
            if (raw) {
                std::string delim;
                while (i < n && text[i] != '(')
                    delim.push_back(text[i++]);
                if (i < n)
                    ++i; // '('
                const std::string terminator = ")" + delim + "\"";
                while (i < n &&
                       text.compare(i, terminator.size(), terminator) != 0) {
                    if (text[i] == '\n')
                        ++line;
                    val.push_back(text[i++]);
                }
                i += (i < n) ? terminator.size() : 0;
            } else {
                while (i < n && text[i] != '"') {
                    if (text[i] == '\\' && i + 1 < n) {
                        val.push_back(text[i]);
                        val.push_back(text[i + 1]);
                        i += 2;
                        continue;
                    }
                    if (text[i] == '\n')
                        ++line; // unterminated; be forgiving
                    val.push_back(text[i++]);
                }
                if (i < n)
                    ++i; // closing quote
            }
            emit(Tok::String, std::move(val), at);
            continue;
        }

        // Character literal.  Distinguish from digit separators: we only
        // get here when ' starts a token.
        if (c == '\'') {
            const int at = line;
            std::string val;
            ++i;
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\' && i + 1 < n) {
                    val.push_back(text[i]);
                    val.push_back(text[i + 1]);
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                val.push_back(text[i++]);
            }
            if (i < n && text[i] == '\'')
                ++i;
            emit(Tok::Char, std::move(val), at);
            continue;
        }

        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(text[j]))
                ++j;
            emit(Tok::Ident, std::string(text.substr(i, j - i)), line);
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            // pp-number: digits, idents, dots, exponent signs, digit
            // separators.
            std::size_t j = i;
            while (j < n) {
                const char d = text[j];
                if (identChar(d) || d == '.') {
                    ++j;
                    continue;
                }
                if (d == '\'' && j + 1 < n && identChar(text[j + 1])) {
                    j += 2;
                    continue;
                }
                if ((d == '+' || d == '-') && j > i &&
                    (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                     text[j - 1] == 'p' || text[j - 1] == 'P')) {
                    ++j;
                    continue;
                }
                break;
            }
            emit(Tok::Number, std::string(text.substr(i, j - i)), line);
            i = j;
            continue;
        }

        // Punctuator: longest match from the table, else single char.
        {
            std::string match(1, c);
            for (const char *p : kPuncts) {
                const std::size_t len = std::char_traits<char>::length(p);
                if (text.compare(i, len, p) == 0) {
                    match.assign(p);
                    break;
                }
            }
            emit(Tok::Punct, match, line);
            i += match.size();
        }
    }

    out.last_line = line;
    return out;
}

} // namespace dbsim::analyze
