/**
 * @file
 * R1: determinism rules.  The simulator's output contract (DESIGN.md
 * §5c) requires bitwise-identical reports, dumps, and traces across
 * runs; these passes flag the classic ways that breaks: iterating an
 * unordered container into an output path, reading the host clock, C
 * rand(), and formatting pointer values.
 */

#include <set>

#include "rules.hpp"

namespace dbsim::analyze {

namespace {

const std::set<std::string> &
wallclockTokens()
{
    static const std::set<std::string> kTokens = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "localtime",
        "gmtime",        "strftime",      "sleep_for",
        "sleep_until",
    };
    return kTokens;
}

const std::set<std::string> &
randTokens()
{
    static const std::set<std::string> kTokens = {
        "rand", "srand", "rand_r", "drand48", "random_device",
    };
    return kTokens;
}

void
checkUnorderedIteration(const Corpus &c, const SourceFile &f,
                        std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for whose range expression names an unordered variable.
        if (t[i].kind == Tok::Ident && t[i].text == "for" &&
            i + 1 < t.size() && t[i + 1].text == "(") {
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].kind != Tok::Punct)
                    continue;
                if (t[j].text == "(")
                    ++depth;
                else if (t[j].text == ")" && --depth == 0) {
                    close = j;
                    break;
                } else if (t[j].text == ":" && depth == 1 && colon == 0)
                    colon = j;
                else if (t[j].text == ";" && depth == 1) {
                    colon = 0; // classic for loop, not a range-for
                    break;
                }
            }
            if (colon && close) {
                // snap::sortedKeys() is the sanctioned sorted-snapshot
                // helper (common/snapshot.hpp): a range expression that
                // routes the container through it is exactly the fix
                // this rule's message demands, so it must not re-flag.
                bool sanctioned = false;
                for (std::size_t j = colon + 1; j < close; ++j)
                    if (t[j].kind == Tok::Ident &&
                        t[j].text == "sortedKeys")
                        sanctioned = true;
                for (std::size_t j = colon + 1; !sanctioned && j < close;
                     ++j) {
                    if (t[j].kind == Tok::Ident &&
                        c.unordered_vars.count(t[j].text)) {
                        out.push_back(
                            {kRuleUnorderedIter, f.rel, t[i].line,
                             "range-for over unordered container '" +
                                 t[j].text +
                                 "': iteration order is not deterministic "
                                 "and must not reach any output path "
                                 "(sort a snapshot instead)",
                             0});
                        break;
                    }
                }
            }
        }
        // Explicit iterator walk: <unordered>.begin() / .cbegin().
        if (t[i].kind == Tok::Ident && c.unordered_vars.count(t[i].text) &&
            i + 2 < t.size() && t[i + 1].kind == Tok::Punct &&
            (t[i + 1].text == "." || t[i + 1].text == "->") &&
            t[i + 2].kind == Tok::Ident &&
            (t[i + 2].text == "begin" || t[i + 2].text == "cbegin")) {
            out.push_back({kRuleUnorderedIter, f.rel, t[i].line,
                           "iterator over unordered container '" +
                               t[i].text +
                               "': iteration order is not deterministic "
                               "and must not reach any output path "
                               "(sort a snapshot instead)",
                           0});
        }
    }
}

void
checkTokenList(const SourceFile &f, const std::set<std::string> &bad,
               const char *rule, const std::string &what,
               std::vector<RawFinding> &out)
{
    int last_line = 0; // one finding per line is enough
    for (const Token &tk : f.tokens) {
        if (tk.kind != Tok::Ident || !bad.count(tk.text) ||
            tk.line == last_line)
            continue;
        last_line = tk.line;
        out.push_back({rule, f.rel, tk.line,
                       "'" + tk.text + "' " + what, 0});
    }
}

void
checkPointerFormat(const SourceFile &f, std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == Tok::String &&
            t[i].text.find("%p") != std::string::npos) {
            out.push_back({kRulePointerFormat, f.rel, t[i].line,
                           "\"%p\" formats a pointer value: addresses vary "
                           "run to run (ASLR) and must not reach "
                           "deterministic output",
                           0});
        }
        // Streaming a raw pointer of a named object: `<< &x` (string
        // and char data pointers excluded by the & requirement).
        if (t[i].kind == Tok::Punct && t[i].text == "<<" &&
            i + 2 < t.size() && t[i + 1].text == "&" &&
            t[i + 2].kind == Tok::Ident) {
            out.push_back({kRulePointerFormat, f.rel, t[i].line,
                           "streaming '&" + t[i + 2].text +
                               "' prints a host address, which varies run "
                               "to run (ASLR) and must not reach "
                               "deterministic output",
                           0});
        }
    }
}

} // namespace

void
runDeterminismRules(const Corpus &c, std::vector<RawFinding> &out)
{
    for (const SourceFile &f : c.files) {
        checkUnorderedIteration(c, f, out);
        checkTokenList(f, wallclockTokens(), kRuleWallclock,
                       "reads the host clock: wall time must stay inside "
                       "annotated host-timing code and never feed "
                       "simulated state or reported statistics",
                       out);
        checkTokenList(f, randTokens(), kRuleRand,
                       "is non-deterministic randomness: use the seeded "
                       "dbsim RNG (common/rng.hpp) so runs replay "
                       "bit-identically",
                       out);
        checkPointerFormat(f, out);
    }
}

} // namespace dbsim::analyze
