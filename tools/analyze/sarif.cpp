/**
 * @file
 * SARIF 2.1.0 output for dbsim-analyze, built on the repo's own
 * deterministic streaming JsonWriter so the document is byte-identical
 * for identical findings (the tool holds itself to the determinism
 * contract it enforces).
 */

#include <ostream>

#include "analyze.hpp"
#include "core/json_writer.hpp"

namespace dbsim::analyze {

void
writeSarif(std::ostream &os, const Result &r)
{
    core::JsonWriter w(os);
    w.beginObject()
        .kv("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .kv("version", "2.1.0")
        .key("runs")
        .beginArray()
        .beginObject()
        .key("tool")
        .beginObject()
        .key("driver")
        .beginObject()
        .kv("name", "dbsim-analyze")
        .kv("informationUri",
            "https://github.com/dbsim/dbsim/blob/main/DESIGN.md")
        .kv("version", "1.0.0")
        .key("rules")
        .beginArray();
    for (const RuleInfo &rule : ruleCatalog()) {
        w.beginObject()
            .kv("id", rule.id)
            .key("shortDescription")
            .beginObject()
            .kv("text", rule.description)
            .endObject()
            .key("properties")
            .beginObject()
            .kv("family", rule.family)
            .endObject()
            .endObject();
    }
    w.endArray() // rules
        .endObject() // driver
        .endObject() // tool
        .key("results")
        .beginArray();
    for (const Finding &f : r.findings) {
        w.beginObject()
            .kv("ruleId", f.rule)
            .kv("level", "error")
            .key("message")
            .beginObject()
            .kv("text", f.message)
            .endObject()
            .key("locations")
            .beginArray()
            .beginObject()
            .key("physicalLocation")
            .beginObject()
            .key("artifactLocation")
            .beginObject()
            .kv("uri", f.file)
            .endObject()
            .key("region")
            .beginObject()
            .kv("startLine", static_cast<std::int64_t>(f.line))
            .endObject()
            .endObject() // physicalLocation
            .endObject() // location
            .endArray() // locations
            .endObject(); // result
    }
    w.endArray() // results
        .endObject() // run
        .endArray() // runs
        .endObject();
    os << "\n";
}

} // namespace dbsim::analyze
