/**
 * @file
 * R3: layering rules over the include graph.
 *
 * The source tree is layered; a directory may include same-layer or
 * lower-layer headers only, and the file-level include graph must be a
 * DAG.  The layer order below is the empirically true dependency order
 * of the tree (common at the bottom, the verification layer on top) --
 * it deliberately ranks sim above cpu/memory/coherence (the system
 * model composes the component models) and core above sim (the sweep
 * driver composes whole simulations).
 */

#include <algorithm>
#include <map>

#include "rules.hpp"

namespace dbsim::analyze {

namespace {

const std::map<std::string, int> &
layerRank()
{
    static const std::map<std::string, int> kRank = {
        {"common", 0},       {"trace", 1}, {"interconnect", 2},
        {"memory", 3},       {"coherence", 4}, {"cpu", 5},
        {"sim", 6},          {"workload", 7},  {"core", 8},
        {"verify", 9},
    };
    return kRank;
}

void
checkLayerOrder(const Corpus &c, std::vector<RawFinding> &out)
{
    const auto &rank = layerRank();
    for (const Corpus::Edge &e : c.edges) {
        const SourceFile &from = c.files[e.from];
        const SourceFile &to = c.files[e.to];
        const auto rf = rank.find(from.dir());
        const auto rt = rank.find(to.dir());
        if (rf == rank.end() || rt == rank.end() ||
            rf->second >= rt->second)
            continue;
        out.push_back(
            {kRuleLayerOrder, from.rel, e.line,
             "include of '" + to.rel + "' reaches up the layer order ('" +
                 from.dir() + "' is layer " + std::to_string(rf->second) +
                 ", '" + to.dir() + "' is layer " +
                 std::to_string(rt->second) +
                 "): move the shared declaration down or invert the "
                 "dependency",
             0});
    }
}

void
checkCycles(const Corpus &c, std::vector<RawFinding> &out)
{
    // Sorted adjacency so the DFS (and hence the reported cycles) is
    // deterministic.
    std::vector<std::vector<std::pair<int, int>>> adj(c.files.size());
    for (const Corpus::Edge &e : c.edges)
        adj[e.from].push_back({e.to, e.line});
    for (auto &a : adj)
        std::sort(a.begin(), a.end());

    enum class Color : unsigned char { White, Grey, Black };
    std::vector<Color> color(c.files.size(), Color::White);
    std::vector<int> stack;

    // Iterative DFS; on a grey hit, report the cycle path.
    struct Frame
    {
        int node;
        std::size_t next = 0;
    };
    for (std::size_t root = 0; root < c.files.size(); ++root) {
        if (color[root] != Color::White)
            continue;
        std::vector<Frame> frames{{static_cast<int>(root)}};
        color[root] = Color::Grey;
        stack.push_back(static_cast<int>(root));
        while (!frames.empty()) {
            Frame &fr = frames.back();
            if (fr.next >= adj[fr.node].size()) {
                color[fr.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const auto [to, line] = adj[fr.node][fr.next++];
            if (color[to] == Color::Grey) {
                std::string path;
                const auto start =
                    std::find(stack.begin(), stack.end(), to);
                for (auto it = start; it != stack.end(); ++it)
                    path += c.files[*it].rel + " -> ";
                path += c.files[to].rel;
                out.push_back({kRuleLayerCycle, c.files[fr.node].rel, line,
                               "include cycle: " + path, 0});
                continue;
            }
            if (color[to] == Color::White) {
                color[to] = Color::Grey;
                stack.push_back(to);
                frames.push_back({to});
            }
        }
    }
}

} // namespace

void
runLayeringRules(const Corpus &c, std::vector<RawFinding> &out)
{
    checkLayerOrder(c, out);
    checkCycles(c, out);
}

} // namespace dbsim::analyze
