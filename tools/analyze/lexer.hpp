/**
 * @file
 * Lightweight C++ lexer for dbsim-analyze.
 *
 * This is not a compiler front end: it produces a flat token stream per
 * translation unit, plus the preprocessor directives and the inline
 * suppression comments, which is exactly what the rule passes need.
 * Comments and string/char literals are handled precisely (so rules
 * never match inside them), but no preprocessing or name lookup is
 * performed.
 */

#ifndef DBSIM_TOOLS_ANALYZE_LEXER_HPP
#define DBSIM_TOOLS_ANALYZE_LEXER_HPP

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dbsim::analyze {

enum class Tok : unsigned char {
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal (pp-number)
    String,  ///< string literal, text is the *contents* (no quotes)
    Char,    ///< character literal, text is the contents
    Punct,   ///< operator / punctuator, multi-char ops kept together
};

struct Token
{
    Tok kind;
    std::string text;
    int line; ///< 1-based
};

/// One #include directive, with the raw target path.
struct IncludeDirective
{
    std::string target;
    int line;
    bool angled; ///< <...> rather than "..."
};

/// Any preprocessor directive (keyword + untokenized remainder).
struct PpDirective
{
    std::string keyword; ///< e.g. "ifndef", "define", "include"
    std::string rest;    ///< remainder of the logical line, trimmed
    int line;
};

/**
 * A lexed source file.  `allows` maps a source line to the set of rule
 * ids suppressed on that line via `// dbsim-analyze: allow(rule, ...)`.
 * A suppression comment applies to the line it shares with code, or --
 * when it stands alone -- to the next line that has code.
 */
struct SourceFile
{
    std::string rel;  ///< path relative to the corpus root, '/'-separated
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
    std::vector<PpDirective> directives;
    std::map<int, std::set<std::string>> allows;
    std::set<int> legacy_swallow; ///< lines with "lint: allowed-swallow"
    int last_line = 0;

    bool isHeader() const;
    /// First path component of rel ("sim" for "sim/system.hpp"), or ""
    /// for files that live directly in the corpus root.
    std::string dir() const;
};

SourceFile lexSource(std::string rel, std::string_view text);

} // namespace dbsim::analyze

#endif // DBSIM_TOOLS_ANALYZE_LEXER_HPP
