/**
 * @file
 * Public interface of the dbsim-analyze engine.
 *
 * dbsim-analyze is the repo's self-hosted static analysis tool: a
 * lightweight lexer + include-graph walker (no libclang) feeding a
 * registry of rule passes that enforce the project's determinism,
 * stats-accounting, layering, and convention contracts (DESIGN.md §5f).
 *
 * Findings can be suppressed inline with
 *     // dbsim-analyze: allow(<rule>[, <rule>...]) -- reason
 * on the offending line or on a comment line directly above it, or
 * grandfathered via a committed baseline file.
 */

#ifndef DBSIM_TOOLS_ANALYZE_ANALYZE_HPP
#define DBSIM_TOOLS_ANALYZE_ANALYZE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace dbsim::analyze {

struct Finding
{
    std::string rule;
    std::string file; ///< corpus-root-relative path
    int line = 0;
    std::string message;
};

struct RuleInfo
{
    const char *id;
    const char *family; ///< "determinism", "accounting", "layering",
                        ///< "conventions"
    const char *description;
};

/// The full rule catalog, in stable display order.
const std::vector<RuleInfo> &ruleCatalog();

/// True if `id` names a rule in the catalog.
bool knownRule(const std::string &id);

struct Options
{
    /// Directory scanned for findings (typically <repo>/src).
    std::string corpus_root;
    /// Extra roots indexed only for usage (counter consumption lives in
    /// tests/, bench/, tools/, examples/); missing ones are skipped.
    std::vector<std::string> usage_roots;
    /// Rule ids to run; empty = all.
    std::vector<std::string> rules;
    /// Baseline file of grandfathered findings ("" = none).
    std::string baseline_path;
    /// Rewrite the baseline with the surviving findings instead of
    /// reporting them.
    bool write_baseline = false;
};

struct Result
{
    /// Surviving findings: not suppressed inline, not in the baseline.
    /// Sorted by (file, line, rule, message).
    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    std::size_t files_scanned = 0;
};

/// Run the analysis; returns false with `error` set on I/O or usage
/// errors (unknown rule, unreadable corpus, ...).
bool runAnalysis(const Options &opt, Result &out, std::string &error);

/// Plain-text report: one "file:line: [rule] message" per finding plus
/// a one-line summary.
void writeText(std::ostream &os, const Result &r);

/// SARIF 2.1.0 document covering the full rule catalog and the
/// surviving findings.
void writeSarif(std::ostream &os, const Result &r);

} // namespace dbsim::analyze

#endif // DBSIM_TOOLS_ANALYZE_ANALYZE_HPP
