/**
 * @file
 * dbsim-analyze CLI.
 *
 * Default invocation (from the repo root, or with --root):
 *
 *     dbsim-analyze --root /path/to/repo
 *
 * scans <root>/src with all rules, indexes <root>/{tests,bench,tools,
 * examples} for counter usage, applies <root>/tools/analyze/baseline.txt,
 * prints findings as text, and exits 1 if any survive.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace {

int
usage(std::ostream &os, int code)
{
    os << "usage: dbsim-analyze [options]\n"
          "  --root DIR         repo root (default: .); scans DIR/src\n"
          "  --src DIR          scan DIR instead of <root>/src (also\n"
          "                     disables default usage roots/baseline)\n"
          "  --usage-root DIR   extra root indexed for counter usage\n"
          "                     (repeatable)\n"
          "  --rules a,b,c      run only these rules\n"
          "  --list-rules       print the rule catalog and exit\n"
          "  --baseline FILE    baseline file ('none' to disable)\n"
          "  --write-baseline   rewrite the baseline with current "
          "findings\n"
          "  --sarif FILE       also write a SARIF 2.1.0 report ('-' = "
          "stdout)\n"
          "  --quiet            suppress the summary line on success\n"
          "exit status: 0 clean, 1 findings, 2 usage/IO error\n";
    return code;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream ss(s);
    while (std::getline(ss, cur, ','))
        if (!cur.empty())
            out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dbsim::analyze;

    std::string root = ".";
    std::string src;
    std::string baseline;
    std::string sarif_path;
    bool baseline_set = false;
    bool quiet = false;
    Options opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "dbsim-analyze: " << arg
                          << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root")
            root = next();
        else if (arg == "--src")
            src = next();
        else if (arg == "--usage-root")
            opt.usage_roots.push_back(next());
        else if (arg == "--rules")
            for (std::string &r : splitCommas(next()))
                opt.rules.push_back(std::move(r));
        else if (arg == "--baseline") {
            baseline = next();
            baseline_set = true;
        } else if (arg == "--write-baseline")
            opt.write_baseline = true;
        else if (arg == "--sarif")
            sarif_path = next();
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--list-rules") {
            for (const RuleInfo &r : ruleCatalog())
                std::cout << r.id << "  [" << r.family << "]\n    "
                          << r.description << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        else {
            std::cerr << "dbsim-analyze: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        }
    }

    if (!src.empty()) {
        opt.corpus_root = src;
        // --src mode is for fixtures/tests: no implicit usage roots or
        // baseline, everything explicit.
    } else {
        opt.corpus_root = root + "/src";
        for (const char *aux : {"tests", "bench", "tools", "examples"})
            opt.usage_roots.push_back(root + "/" + aux);
        if (!baseline_set)
            baseline = root + "/tools/analyze/baseline.txt";
    }
    if (baseline != "none")
        opt.baseline_path = baseline;
    if (opt.write_baseline && opt.baseline_path.empty()) {
        std::cerr << "dbsim-analyze: --write-baseline needs a baseline "
                     "path\n";
        return 2;
    }

    Result result;
    std::string error;
    if (!runAnalysis(opt, result, error)) {
        std::cerr << "dbsim-analyze: " << error << "\n";
        return 2;
    }

    if (!sarif_path.empty()) {
        if (sarif_path == "-") {
            writeSarif(std::cout, result);
        } else {
            std::ofstream out(sarif_path);
            if (!out) {
                std::cerr << "dbsim-analyze: cannot write " << sarif_path
                          << "\n";
                return 2;
            }
            writeSarif(out, result);
        }
    }

    if (!result.findings.empty() || !quiet)
        writeText(result.findings.empty() ? std::cout : std::cerr, result);
    return result.findings.empty() ? 0 : 1;
}
