/**
 * @file
 * R2: stats-accounting rules.  The paper reproduction lives and dies by
 * its counters, so every integral field of a *Stats struct must be both
 * updated somewhere (else the report silently shows zeros) and consumed
 * somewhere (else the model collects data nobody checks), and switches
 * over enum classes (the stall taxonomy above all) must stay exhaustive
 * as enumerators are added.
 */

#include <algorithm>
#include <map>
#include <set>

#include "rules.hpp"

namespace dbsim::analyze {

namespace {

struct Usage
{
    bool written = false;
    bool read = false;
};

bool
isWriteContext(const std::vector<Token> &t, std::size_t i)
{
    const std::string prev = i > 0 ? t[i - 1].text : std::string();

    // Prefix ++/-- applies through the whole access chain
    // (`++stats_.cycles` puts the operator before the object), so walk
    // back over `obj.` / `obj->` pairs first.
    std::size_t j = i;
    while (j >= 2 && t[j - 1].kind == Tok::Punct &&
           (t[j - 1].text == "." || t[j - 1].text == "->") &&
           t[j - 2].kind == Tok::Ident)
        j -= 2;
    if (j >= 1 && (t[j - 1].text == "++" || t[j - 1].text == "--"))
        return true;

    // Forward: skip subscripts (`cycles[cat] += n`) to the operator.
    std::size_t k = i + 1;
    while (k < t.size() && t[k].text == "[") {
        int depth = 0;
        for (; k < t.size(); ++k) {
            if (t[k].kind != Tok::Punct)
                continue;
            if (t[k].text == "[")
                ++depth;
            else if (t[k].text == "]" && --depth == 0) {
                ++k;
                break;
            }
        }
    }
    const std::string next = k < t.size() ? t[k].text : std::string();
    if (next == "++" || next == "--")
        return true;
    if (next == "+=" || next == "-=" || next == "*=" || next == "/=" ||
        next == "|=" || next == "&=" || next == "^=")
        return true;
    // Plain assignment counts as a write only through member access, so
    // the field's own declaration (`std::uint64_t hits = 0;`) doesn't.
    if (next == "=" && (prev == "." || prev == "->"))
        return true;
    return false;
}

void
classifyUsage(const SourceFile &f, const std::set<std::string> &names,
              const std::map<std::string, std::pair<std::string, int>> &decl,
              std::map<std::string, Usage> &usage)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || !names.count(t[i].text))
            continue;
        // Skip the declaration site itself.
        const auto d = decl.find(t[i].text);
        if (d != decl.end() && d->second.first == f.rel &&
            d->second.second == t[i].line)
            continue;
        Usage &u = usage[t[i].text];
        if (isWriteContext(t, i))
            u.written = true;
        else
            u.read = true;
    }
}

void
checkCounterCoverage(const Corpus &c, std::vector<RawFinding> &out)
{
    // Field names across all *Stats structs; a name that collides
    // across structs is classified jointly, which errs toward silence
    // (both structs' usages vouch for it) -- acceptable for a linter.
    std::set<std::string> names;
    std::map<std::string, std::pair<std::string, int>> decl;
    for (const Corpus::StatsStruct &s : c.stats_structs)
        for (const Corpus::CounterField &fld : s.fields) {
            names.insert(fld.name);
            decl.emplace(fld.name, std::make_pair(s.file_rel, fld.line));
        }
    if (names.empty())
        return;

    std::map<std::string, Usage> usage;
    for (const SourceFile &f : c.files)
        classifyUsage(f, names, decl, usage);
    for (const SourceFile &f : c.usage_files)
        classifyUsage(f, names, decl, usage);

    for (const Corpus::StatsStruct &s : c.stats_structs) {
        for (const Corpus::CounterField &fld : s.fields) {
            const Usage u = usage.count(fld.name) ? usage.at(fld.name)
                                                  : Usage{};
            if (!u.written)
                out.push_back({kRuleCounterCoverage, s.file_rel, fld.line,
                               "counter '" + s.name + "::" + fld.name +
                                   "' is never incremented or assigned: "
                                   "the report will always show zero "
                                   "(wire it up or remove it)",
                               0});
            else if (!u.read)
                out.push_back({kRuleCounterCoverage, s.file_rel, fld.line,
                               "counter '" + s.name + "::" + fld.name +
                                   "' is updated but never serialized or "
                                   "read: dead accounting (report it or "
                                   "remove it)",
                               0});
        }
    }
}

bool
isSentinelEnumerator(const std::string &name)
{
    // kCount / Count / kNumFoo style array-sizing sentinels are not
    // real cases.
    if (name == "kCount" || name == "Count" || name == "COUNT")
        return true;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, "Count") == 0)
        return true;
    return name.rfind("kNum", 0) == 0;
}

void
checkSwitches(const Corpus &c, const SourceFile &f,
              std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || t[i].text != "switch" ||
            i + 1 >= t.size() || t[i + 1].text != "(")
            continue;
        // Skip the condition, find the body.
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != Tok::Punct)
                continue;
            if (t[j].text == "(")
                ++depth;
            else if (t[j].text == ")" && --depth == 0)
                break;
        }
        for (++j; j < t.size() && t[j].text != "{"; ++j)
            ;
        if (j >= t.size())
            continue;

        // Walk the body at depth 1, collecting qualified case labels
        // and default.
        std::string enum_name;
        bool mixed = false, has_default = false;
        std::set<std::string> used;
        depth = 0;
        for (; j < t.size(); ++j) {
            const Token &tk = t[j];
            if (tk.kind == Tok::Punct) {
                if (tk.text == "{" && ++depth)
                    continue;
                if (tk.text == "}" && --depth == 0)
                    break;
                continue;
            }
            if (depth != 1 || tk.kind != Tok::Ident)
                continue;
            if (tk.text == "default") {
                has_default = true;
                continue;
            }
            if (tk.text != "case")
                continue;
            // Parse `Qual::...::Enumerator` up to ':'.
            std::vector<std::string> chain;
            std::size_t k = j + 1;
            while (k + 1 < t.size() && t[k].kind == Tok::Ident &&
                   t[k + 1].text == "::") {
                chain.push_back(t[k].text);
                k += 2;
            }
            if (k < t.size() && t[k].kind == Tok::Ident &&
                k + 1 < t.size() && t[k + 1].text == ":" &&
                !chain.empty()) {
                used.insert(t[k].text);
                const std::string &en = chain.back();
                if (enum_name.empty())
                    enum_name = en;
                else if (enum_name != en)
                    mixed = true;
            } else if (!chain.empty() || k >= t.size() ||
                       t[k].kind != Tok::Ident) {
                mixed = true; // expression label we can't model
            } else {
                mixed = true; // unqualified label (classic enum)
            }
            j = k;
        }

        if (mixed || has_default || enum_name.empty())
            continue;
        const auto it = c.enums.find(enum_name);
        if (it == c.enums.end() || it->second.ambiguous)
            continue;
        std::vector<std::string> missing;
        for (const std::string &e : it->second.enumerators)
            if (!used.count(e) && !isSentinelEnumerator(e))
                missing.push_back(e);
        if (missing.empty())
            continue;
        std::string list;
        for (std::size_t m = 0; m < missing.size(); ++m)
            list += (m ? ", " : "") + missing[m];
        out.push_back({kRuleSwitchExhaustive, f.rel, t[i].line,
                       "switch over '" + enum_name +
                           "' has no default and misses enumerator(s): " +
                           list +
                           " (handle them or add an accounted default)",
                       0});
    }
}

} // namespace

void
runAccountingRules(const Corpus &c, std::vector<RawFinding> &out)
{
    checkCounterCoverage(c, out);
    for (const SourceFile &f : c.files)
        checkSwitches(c, f, out);
}

} // namespace dbsim::analyze
