#include "corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dbsim::analyze {

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool
readFile(const fs::path &p, std::string &out, std::string &error)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        error = "cannot open " + p.string();
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/// Collect and lex every C++ source under `root`, with rel paths
/// relative to it, in sorted order (determinism of the tool itself).
bool
scanRoot(const std::string &root, std::vector<SourceFile> &out,
         std::string &error)
{
    std::error_code ec;
    std::vector<fs::path> paths;
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && isSourceFile(it->path()))
            paths.push_back(it->path());
    }
    if (ec) {
        error = "cannot scan " + root + ": " + ec.message();
        return false;
    }
    std::sort(paths.begin(), paths.end());
    const fs::path base(root);
    for (const fs::path &p : paths) {
        std::string text;
        if (!readFile(p, text, error))
            return false;
        out.push_back(
            lexSource(p.lexically_relative(base).generic_string(), text));
    }
    return true;
}

/// Advance `i` past a balanced <...> run; `i` points at the opening '<'
/// on entry and one past the matching '>' on exit.  ">>" closes two.
void
skipAngles(const std::vector<Token> &t, std::size_t &i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != Tok::Punct)
            continue;
        if (t[i].text == "<")
            ++depth;
        else if (t[i].text == ">")
            --depth;
        else if (t[i].text == ">>")
            depth -= 2;
        if (depth <= 0) {
            ++i;
            return;
        }
    }
}

/// Advance `i` past a balanced {...} run; `i` points at '{' on entry.
void
skipBraces(const std::vector<Token> &t, std::size_t &i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != Tok::Punct)
            continue;
        if (t[i].text == "{")
            ++depth;
        else if (t[i].text == "}" && --depth == 0) {
            ++i;
            return;
        }
    }
}

void
indexUnorderedVars(const SourceFile &f, std::set<std::string> &vars)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident ||
            (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
             t[i].text != "unordered_multimap" &&
             t[i].text != "unordered_multiset"))
            continue;
        std::size_t j = i + 1;
        if (j >= t.size() || t[j].text != "<")
            continue;
        skipAngles(t, j);
        // Skip declarator decorations, then take the declared name --
        // but only when it really is a variable (next token ends the
        // declarator), not a function return type or using-alias RHS.
        while (j < t.size() && t[j].kind == Tok::Punct &&
               (t[j].text == "&" || t[j].text == "*" ||
                t[j].text == "const"))
            ++j;
        if (j < t.size() && t[j].text == "const")
            ++j;
        if (j >= t.size() || t[j].kind != Tok::Ident)
            continue;
        const std::string &name = t[j].text;
        if (j + 1 < t.size()) {
            const std::string &nx = t[j + 1].text;
            if (nx == ";" || nx == "=" || nx == "{" || nx == "," ||
                nx == ")")
                vars.insert(name);
        }
    }
}

bool
isIntCounterType(const std::string &s)
{
    return s == "uint64_t" || s == "uint32_t" || s == "uint16_t" ||
           s == "uint8_t" || s == "int64_t" || s == "int32_t" ||
           s == "size_t" || s == "int" || s == "long" || s == "unsigned";
}

bool
isNonCounterType(const std::string &s)
{
    return s == "double" || s == "float" || s == "bool" || s == "string" ||
           s == "vector" || s == "array" || s == "map" || s == "set" ||
           s == "atomic" || s == "optional" || s == "pair";
}

/**
 * Parse the body of `struct FooStats { ... }` starting with `i` at the
 * opening '{'.  Records integral counter fields, skipping member
 * function bodies and non-integral members.
 */
void
parseStatsBody(const SourceFile &f, std::size_t &i,
               Corpus::StatsStruct &out)
{
    const std::vector<Token> &t = f.tokens;
    ++i; // past '{'
    std::vector<std::size_t> stmt; // token indices of the statement
    bool saw_brace_init = false;
    std::size_t brace_init_name = 0;

    auto flush = [&] {
        if (stmt.empty() && !saw_brace_init)
            return;
        bool has_paren = false, has_int = false, has_excl = false;
        bool skip = false;
        for (std::size_t k : stmt) {
            const Token &tk = t[k];
            if (tk.kind == Tok::Punct && tk.text == "(")
                has_paren = true;
            if (tk.kind == Tok::Ident) {
                if (isIntCounterType(tk.text))
                    has_int = true;
                if (isNonCounterType(tk.text))
                    has_excl = true;
                if (tk.text == "using" || tk.text == "typedef" ||
                    tk.text == "friend" || tk.text == "struct" ||
                    tk.text == "enum" || tk.text == "static")
                    skip = true;
            }
        }
        if (!skip && !has_paren && has_int && !has_excl) {
            // Declarator names: idents immediately followed by '=', ','
            // or the end of the statement, plus a brace-initialized one.
            for (std::size_t x = 0; x < stmt.size(); ++x) {
                const Token &tk = t[stmt[x]];
                if (tk.kind != Tok::Ident || isIntCounterType(tk.text) ||
                    tk.text == "std" || tk.text == "const" ||
                    tk.text == "constexpr")
                    continue;
                const bool at_end = x + 1 == stmt.size();
                const std::string next =
                    at_end ? std::string(";") : t[stmt[x + 1]].text;
                if (next == "=" || next == "," || next == ";")
                    out.fields.push_back({tk.text, tk.line});
            }
            if (saw_brace_init && brace_init_name < t.size() &&
                t[brace_init_name].kind == Tok::Ident)
                out.fields.push_back(
                    {t[brace_init_name].text, t[brace_init_name].line});
        }
        stmt.clear();
        saw_brace_init = false;
    };

    while (i < t.size()) {
        const Token &tk = t[i];
        if (tk.kind == Tok::Punct && tk.text == "}") {
            flush();
            ++i;
            if (i < t.size() && t[i].text == ";")
                ++i;
            return;
        }
        if (tk.kind == Tok::Punct && tk.text == "{") {
            bool is_fn = false;
            for (std::size_t k : stmt)
                if (t[k].kind == Tok::Punct && t[k].text == "(") {
                    is_fn = true;
                    break;
                }
            if (is_fn) {
                skipBraces(t, i);
                if (i < t.size() && t[i].text == ";")
                    ++i;
                stmt.clear();
                saw_brace_init = false;
            } else {
                // Brace initializer: remember the declarator just
                // before it, then skip the braces.
                if (!stmt.empty())
                    brace_init_name = stmt.back();
                saw_brace_init = !stmt.empty();
                if (!stmt.empty())
                    stmt.pop_back();
                skipBraces(t, i);
            }
            continue;
        }
        if (tk.kind == Tok::Punct && tk.text == ";") {
            flush();
            ++i;
            continue;
        }
        if (tk.kind == Tok::Punct && tk.text == ":" && stmt.size() == 1 &&
            t[stmt[0]].kind == Tok::Ident &&
            (t[stmt[0]].text == "public" || t[stmt[0]].text == "private" ||
             t[stmt[0]].text == "protected")) {
            stmt.clear();
            ++i;
            continue;
        }
        stmt.push_back(i);
        ++i;
    }
}

void
indexStatsStructs(const SourceFile &f, std::vector<Corpus::StatsStruct> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident ||
            (t[i].text != "struct" && t[i].text != "class"))
            continue;
        const Token &name = t[i + 1];
        if (name.kind != Tok::Ident || name.text.size() < 6 ||
            name.text.compare(name.text.size() - 5, 5, "Stats") != 0)
            continue;
        // Find the body '{' (skipping a base-clause); bail on ';' (a
        // forward declaration) or '(' (a constructor-like false match).
        std::size_t j = i + 2;
        while (j < t.size() && t[j].text != "{" && t[j].text != ";" &&
               t[j].text != "(")
            ++j;
        if (j >= t.size() || t[j].text != "{")
            continue;
        Corpus::StatsStruct s;
        s.name = name.text;
        s.file_rel = f.rel;
        s.line = name.line;
        parseStatsBody(f, j, s);
        if (!s.fields.empty())
            out.push_back(std::move(s));
        i = j ? j - 1 : j;
    }
}

void
indexEnums(const SourceFile &f, std::map<std::string, Corpus::EnumDef> &out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || t[i].text != "enum")
            continue;
        std::size_t j = i + 1;
        if (j < t.size() && (t[j].text == "class" || t[j].text == "struct"))
            ++j;
        if (j >= t.size() || t[j].kind != Tok::Ident)
            continue;
        Corpus::EnumDef def;
        def.name = t[j].text;
        def.file_rel = f.rel;
        def.line = t[j].line;
        ++j;
        // Optional underlying type, then '{' (';' = opaque declaration).
        while (j < t.size() && t[j].text != "{" && t[j].text != ";")
            ++j;
        if (j >= t.size() || t[j].text != "{")
            continue;
        ++j;
        bool expect_name = true;
        int depth = 1;
        for (; j < t.size() && depth > 0; ++j) {
            const Token &tk = t[j];
            if (tk.kind == Tok::Punct) {
                if (tk.text == "{" || tk.text == "(")
                    ++depth;
                else if (tk.text == "}" || tk.text == ")")
                    --depth;
                else if (tk.text == "," && depth == 1)
                    expect_name = true;
                continue;
            }
            if (depth == 1 && expect_name && tk.kind == Tok::Ident) {
                def.enumerators.push_back(tk.text);
                expect_name = false;
            }
        }
        auto [it, inserted] = out.emplace(def.name, def);
        if (!inserted && it->second.enumerators != def.enumerators)
            it->second.ambiguous = true;
        i = j ? j - 1 : j;
    }
}

} // namespace

bool
buildCorpus(const std::string &corpus_root,
            const std::vector<std::string> &usage_roots, Corpus &out,
            std::string &error)
{
    if (!scanRoot(corpus_root, out.files, error))
        return false;
    for (const std::string &root : usage_roots) {
        std::error_code ec;
        if (!fs::is_directory(root, ec))
            continue; // optional roots: absent is fine
        if (!scanRoot(root, out.usage_files, error))
            return false;
    }

    for (std::size_t i = 0; i < out.files.size(); ++i)
        out.file_index.emplace(out.files[i].rel, static_cast<int>(i));

    // Include edges, resolved corpus-root-relative first (the repo
    // convention), then relative to the including file's directory.
    for (std::size_t i = 0; i < out.files.size(); ++i) {
        const SourceFile &f = out.files[i];
        for (const IncludeDirective &inc : f.includes) {
            if (inc.angled)
                continue; // system headers are outside the corpus
            auto it = out.file_index.find(inc.target);
            if (it == out.file_index.end() && !f.dir().empty())
                it = out.file_index.find(f.dir() + "/" + inc.target);
            if (it != out.file_index.end())
                out.edges.push_back(
                    {static_cast<int>(i), it->second, inc.line});
        }
    }

    for (const SourceFile &f : out.files) {
        indexUnorderedVars(f, out.unordered_vars);
        indexStatsStructs(f, out.stats_structs);
        indexEnums(f, out.enums);
    }
    return true;
}

} // namespace dbsim::analyze
