#include "analyze.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <tuple>

#include "corpus.hpp"
#include "rules.hpp"

namespace dbsim::analyze {

namespace {

struct Family
{
    const char *name;
    void (*pass)(const Corpus &, std::vector<RawFinding> &);
    std::vector<const char *> rules;
};

const std::vector<Family> &
families()
{
    static const std::vector<Family> kFamilies = {
        {"determinism", runDeterminismRules,
         {kRuleUnorderedIter, kRuleWallclock, kRuleRand,
          kRulePointerFormat}},
        {"accounting", runAccountingRules,
         {kRuleCounterCoverage, kRuleSwitchExhaustive}},
        {"layering", runLayeringRules, {kRuleLayerCycle, kRuleLayerOrder}},
        {"conventions", runConventionRules,
         {kRuleAssert, kRuleStdout, kRuleIncludeGuard, kRuleCatchSwallow}},
        {"checkpoint", runCheckpointRules, {kRuleCheckpointPurity}},
    };
    return kFamilies;
}

/// Baseline entry key: rule, file, and message, tab-separated (none of
/// the three can contain a tab).
std::string
baselineKey(const std::string &rule, const std::string &file,
            const std::string &message)
{
    return rule + "\t" + file + "\t" + message;
}

bool
loadBaseline(const std::string &path, std::multiset<std::string> &keys,
             std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot read baseline " + path;
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    return true;
}

bool
suppressed(const SourceFile &f, const RawFinding &raw)
{
    const int end = std::max(raw.line, raw.scan_end);
    for (int l = raw.line; l <= end; ++l) {
        const auto it = f.allows.find(l);
        if (it != f.allows.end() && it->second.count(raw.rule))
            return true;
    }
    return false;
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog = {
        {kRuleUnorderedIter, "determinism",
         "Unordered-container iteration must not feed output paths; "
         "sort a snapshot first (DESIGN.md §5c)."},
        {kRuleWallclock, "determinism",
         "Host-clock reads are confined to annotated host-timing code "
         "and never feed simulated state or statistics."},
        {kRuleRand, "determinism",
         "Only the seeded dbsim RNG may produce randomness; C rand() "
         "and std::random_device break replay."},
        {kRulePointerFormat, "determinism",
         "Pointer values (ASLR-dependent) must not be formatted into "
         "deterministic output."},
        {kRuleCounterCoverage, "accounting",
         "Every integral counter in a *Stats struct must be updated "
         "somewhere and serialized/read somewhere."},
        {kRuleSwitchExhaustive, "accounting",
         "Switches over enum classes (stall categories above all) must "
         "cover every enumerator or carry a default."},
        {kRuleLayerCycle, "layering",
         "The include graph must be a DAG; cyclic headers are reported "
         "with the full cycle path."},
        {kRuleLayerOrder, "layering",
         "A directory may include only same-layer or lower-layer "
         "headers (common < trace < interconnect < memory < coherence "
         "< cpu < sim < workload < core < verify)."},
        {kRuleAssert, "conventions",
         "Use DBSIM_ASSERT instead of raw assert(); it stays on in "
         "release builds."},
        {kRuleStdout, "conventions",
         "No stdout writes in src/; stdout belongs to machine-readable "
         "reports, logs go to stderr."},
        {kRuleIncludeGuard, "conventions",
         "Include guards spell DBSIM_<DIRS>_<FILE>_HPP."},
        {kRuleCatchSwallow, "conventions",
         "catch (...) must rethrow, wrap the exception in a structured "
         "failure, or carry an allow() annotation."},
        {kRuleCheckpointPurity, "checkpoint",
         "Serialization bodies (saveState/serializeState/stateHash/...) "
         "must stay byte-stable: no host pointer bits, no wall-clock "
         "values, no unsorted unordered_* iteration (DESIGN.md §5g)."},
    };
    return kCatalog;
}

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : ruleCatalog())
        if (id == r.id)
            return true;
    return false;
}

bool
runAnalysis(const Options &opt, Result &out, std::string &error)
{
    for (const std::string &r : opt.rules)
        if (!knownRule(r)) {
            error = "unknown rule '" + r + "' (see --list-rules)";
            return false;
        }
    auto enabled = [&](const std::string &id) {
        return opt.rules.empty() ||
               std::find(opt.rules.begin(), opt.rules.end(), id) !=
                   opt.rules.end();
    };

    Corpus corpus;
    if (!buildCorpus(opt.corpus_root, opt.usage_roots, corpus, error))
        return false;
    out.files_scanned = corpus.files.size();

    std::vector<RawFinding> raw;
    for (const Family &fam : families()) {
        const bool any = std::any_of(
            fam.rules.begin(), fam.rules.end(),
            [&](const char *id) { return enabled(id); });
        if (any)
            fam.pass(corpus, raw);
    }

    std::vector<Finding> surviving;
    for (const RawFinding &r : raw) {
        if (!enabled(r.rule))
            continue;
        const auto idx = corpus.file_index.find(r.file);
        if (idx != corpus.file_index.end() &&
            suppressed(corpus.files[idx->second], r)) {
            ++out.suppressed;
            continue;
        }
        surviving.push_back({r.rule, r.file, r.line, r.message});
    }
    std::sort(surviving.begin(), surviving.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });

    if (!opt.baseline_path.empty() && !opt.write_baseline) {
        std::multiset<std::string> keys;
        std::ifstream probe(opt.baseline_path);
        if (probe) { // a missing baseline simply baselines nothing
            probe.close();
            if (!loadBaseline(opt.baseline_path, keys, error))
                return false;
        }
        for (const Finding &f : surviving) {
            const auto it =
                keys.find(baselineKey(f.rule, f.file, f.message));
            if (it != keys.end()) {
                keys.erase(it);
                ++out.baselined;
                continue;
            }
            out.findings.push_back(f);
        }
    } else {
        out.findings = std::move(surviving);
    }

    if (opt.write_baseline) {
        std::ofstream bl(opt.baseline_path);
        if (!bl) {
            error = "cannot write baseline " + opt.baseline_path;
            return false;
        }
        bl << "# dbsim-analyze baseline: grandfathered findings, one per "
              "line as rule<TAB>file<TAB>message.\n"
              "# Regenerate with: dbsim-analyze --write-baseline\n";
        for (const Finding &f : out.findings)
            bl << baselineKey(f.rule, f.file, f.message) << "\n";
        out.baselined = out.findings.size();
        out.findings.clear();
    }
    return true;
}

void
writeText(std::ostream &os, const Result &r)
{
    for (const Finding &f : r.findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    os << "dbsim-analyze: " << r.files_scanned << " files, "
       << r.findings.size() << " finding(s) (" << r.suppressed
       << " suppressed, " << r.baselined << " baselined)\n";
}

} // namespace dbsim::analyze
