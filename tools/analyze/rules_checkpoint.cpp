/**
 * @file
 * R5: checkpoint-purity.  The checkpoint/restore layer (DESIGN.md §5g)
 * demands that serialized machine state be byte-stable across processes
 * and runs: the bytes feed both the on-disk snapshot format and the
 * epoch FNV state hashes, so anything host-dependent in a serialization
 * body silently breaks restore determinism and divergence bisection.
 *
 * The pass locates the *definitions* of the functions that construct
 * state bytes (saveState, serializeState, stateHash, configSignature --
 * saveCheckpoint is out of scope: it only writes already-serialized
 * bytes to disk, which legitimately needs the ofstream
 * reinterpret_cast idiom) and flags, inside their bodies only:
 *
 *   - reinterpret_cast: host pointer bits written into the stream
 *     (addresses vary run to run under ASLR);
 *   - host-clock reads (steady_clock, gettimeofday, ...): wall-clock
 *     values serialized into supposedly replayable state;
 *   - iteration over an unordered container that does not go through
 *     snap::sortedKeys(): hash-map order differs across processes, so
 *     the same machine state would serialize to different bytes.
 */

#include <set>

#include "rules.hpp"

namespace dbsim::analyze {

namespace {

const std::set<std::string> &
serializerNames()
{
    static const std::set<std::string> kNames = {
        "saveState", "serializeState", "stateHash", "configSignature",
    };
    return kNames;
}

const std::set<std::string> &
wallclockTokens()
{
    static const std::set<std::string> kTokens = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "localtime",
        "gmtime",        "strftime",
    };
    return kTokens;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == Tok::Punct && t.text == text;
}

/**
 * If tokens[i] starts a function *definition* of one of the
 * serializer names, return true and set [body_begin, body_end) to the
 * token range of its braced body.  Declarations (`... saveState(...)
 * ;`) and call sites (`x.saveState(w);`) are left alone.
 */
bool
matchSerializerDefinition(const std::vector<Token> &t, std::size_t i,
                          std::size_t &body_begin, std::size_t &body_end)
{
    if (t[i].kind != Tok::Ident || !serializerNames().count(t[i].text))
        return false;
    // A call site is preceded by `.` or `->`; a definition never is.
    if (i > 0 && (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")))
        return false;
    if (i + 1 >= t.size() || !isPunct(t[i + 1], "("))
        return false;

    // Skip the parameter list.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
        if (isPunct(t[j], "("))
            ++depth;
        else if (isPunct(t[j], ")") && --depth == 0)
            break;
    }
    if (j >= t.size())
        return false;

    // Skip trailing qualifiers (const, noexcept, override, ...).
    ++j;
    while (j < t.size() &&
           (t[j].kind == Tok::Ident || isPunct(t[j], "&&")))
        ++j;
    if (j >= t.size() || !isPunct(t[j], "{"))
        return false;

    body_begin = j + 1;
    depth = 1;
    for (std::size_t k = body_begin; k < t.size(); ++k) {
        if (isPunct(t[k], "{"))
            ++depth;
        else if (isPunct(t[k], "}") && --depth == 0) {
            body_end = k;
            return true;
        }
    }
    return false;
}

void
checkBody(const Corpus &c, const SourceFile &f, const std::string &fn,
          std::size_t begin, std::size_t end,
          std::vector<RawFinding> &out)
{
    const std::vector<Token> &t = f.tokens;
    int last_clock_line = 0;
    for (std::size_t i = begin; i < end; ++i) {
        if (t[i].kind != Tok::Ident)
            continue;

        if (t[i].text == "reinterpret_cast") {
            out.push_back(
                {kRuleCheckpointPurity, f.rel, t[i].line,
                 "reinterpret_cast inside " + fn +
                     "(): host pointer bits must never enter "
                     "serialized state (addresses vary run to run)",
                 0});
            continue;
        }

        if (wallclockTokens().count(t[i].text) &&
            t[i].line != last_clock_line) {
            last_clock_line = t[i].line;
            out.push_back(
                {kRuleCheckpointPurity, f.rel, t[i].line,
                 "'" + t[i].text + "' inside " + fn +
                     "(): wall-clock values must never enter "
                     "serialized state (they differ on every run)",
                 0});
            continue;
        }

        // Range-for over an unordered container: only sanctioned when
        // the range expression routes through snap::sortedKeys().
        if (t[i].text == "for" && i + 1 < end && isPunct(t[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < end; ++j) {
                if (t[j].kind != Tok::Punct)
                    continue;
                if (t[j].text == "(")
                    ++depth;
                else if (t[j].text == ")" && --depth == 0) {
                    close = j;
                    break;
                } else if (t[j].text == ":" && depth == 1 && colon == 0)
                    colon = j;
                else if (t[j].text == ";" && depth == 1) {
                    colon = 0;
                    break;
                }
            }
            if (!colon || !close)
                continue;
            bool sanctioned = false;
            for (std::size_t j = colon + 1; j < close; ++j)
                if (t[j].kind == Tok::Ident && t[j].text == "sortedKeys")
                    sanctioned = true;
            for (std::size_t j = colon + 1; !sanctioned && j < close;
                 ++j) {
                if (t[j].kind == Tok::Ident &&
                    c.unordered_vars.count(t[j].text)) {
                    out.push_back(
                        {kRuleCheckpointPurity, f.rel, t[i].line,
                         "unsorted iteration over unordered container "
                         "'" +
                             t[j].text + "' inside " + fn +
                             "(): hash-map order differs across "
                             "processes; serialize through "
                             "snap::sortedKeys()",
                         0});
                    break;
                }
            }
            continue;
        }

        // Explicit iterator walk over an unordered container.
        if (c.unordered_vars.count(t[i].text) && i + 2 < end &&
            (isPunct(t[i + 1], ".") || isPunct(t[i + 1], "->")) &&
            t[i + 2].kind == Tok::Ident &&
            (t[i + 2].text == "begin" || t[i + 2].text == "cbegin")) {
            out.push_back(
                {kRuleCheckpointPurity, f.rel, t[i].line,
                 "unsorted iteration over unordered container '" +
                     t[i].text + "' inside " + fn +
                     "(): hash-map order differs across processes; "
                     "serialize through snap::sortedKeys()",
                 0});
        }
    }
}

} // namespace

void
runCheckpointRules(const Corpus &c, std::vector<RawFinding> &out)
{
    for (const SourceFile &f : c.files) {
        const std::vector<Token> &t = f.tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::size_t begin = 0, end = 0;
            if (matchSerializerDefinition(t, i, begin, end)) {
                checkBody(c, f, t[i].text, begin, end, out);
                i = begin; // bodies never nest serializer definitions
            }
        }
    }
}

} // namespace dbsim::analyze
