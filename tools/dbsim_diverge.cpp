/**
 * @file
 * dbsim-diverge: run two configurations side-by-side and localize the
 * first cycle at which their machine states diverge (DESIGN.md §5g).
 *
 * Both sides run with epoch state-hashing enabled: every
 * --epoch-interval cycles the run loop records an FNV-1a hash of the
 * complete serialized machine state.  The tool compares the two hash
 * streams to find the first divergent epoch, then binary-searches
 * inside that epoch with stop_at_cycle re-runs (each probe runs both
 * sides from cycle 0 to the probe cycle and compares stateHash()),
 * and finally dumps both machine states at the first divergent cycle.
 *
 * Sides are configured with paired flags; a bug can be seeded into
 * either side through the verification layer's ProtocolMutator to
 * reproduce "one engine has a protocol bug -- where does it first
 * perturb the machine?":
 *
 *   --workload oltp|dss     both sides' workload          (default oltp)
 *   --b-workload oltp|dss   side B's workload override
 *   --nodes N               both sides' node count        (default 2)
 *   --b-nodes N             side B's node count override
 *   --a-bug NAME            protocol bug seeded into side A
 *   --b-bug NAME            protocol bug seeded into side B
 *                           (dropped-invalidation, stale-owner,
 *                           missing-downgrade, lost-sharer-bit,
 *                           skipped-spec-squash, reordered-release)
 *   --instructions N        per-side instruction budget  (default 60000)
 *   --epoch-interval N      state-hash cadence in cycles  (default 5000)
 *   --dump-prefix P         where the two divergent-state dumps go
 *                           (default dbsim-diverge; "none" disables)
 *   --self-check            run the built-in scenarios (see below)
 *
 * Exit codes: 0 when the two sides never diverge, 1 when a divergence
 * was found and localized, 2 on bad flags.  --self-check exits 0 only
 * if (a) two identical configs produce zero divergence and (b) a
 * seeded dropped-invalidation produces a nonzero first divergent
 * epoch that the bisector localizes to a cycle where the bug has
 * already fired.
 *
 * DBSIM_CHECK is cleared at startup: a seeded protocol bug is the
 * object of study here, and the coherence checker would (correctly)
 * abort the buggy run long before its hash stream could be compared.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "common/mutator.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "sim/diagnostics.hpp"

namespace {

using namespace dbsim;

/** One side of the comparison: a config plus an optional seeded bug. */
struct Side
{
    core::SimConfig cfg;
    verify::ProtocolBug bug = verify::ProtocolBug::None;
    std::string name; ///< "A" or "B"
};

/** Hash stream + final state of one full run. */
struct RunTrace
{
    std::vector<sim::EpochHash> epochs;
    std::uint64_t bug_triggers = 0;
};

verify::ProtocolBug
parseBugName(const std::string &name)
{
    using verify::ProtocolBug;
    for (const ProtocolBug b :
         {ProtocolBug::None, ProtocolBug::DroppedInvalidation,
          ProtocolBug::StaleOwner, ProtocolBug::MissingDowngrade,
          ProtocolBug::LostSharerBit, ProtocolBug::SkippedSpecSquash,
          ProtocolBug::ReorderedRelease}) {
        if (name == verify::protocolBugName(b))
            return b;
    }
    throw ConfigError("cli.bug",
                      "unknown protocol bug \"" + name + "\"");
}

core::WorkloadKind
parseWorkloadName(const std::string &name)
{
    if (name == "oltp")
        return core::WorkloadKind::Oltp;
    if (name == "dss")
        return core::WorkloadKind::Dss;
    throw ConfigError("cli.workload",
                      "--workload wants oltp or dss, got \"" + name +
                          "\"");
}

/**
 * Run @p side to completion (or to @p stop_at cycles when nonzero) and
 * return its epoch-hash stream; when @p final_hash / @p final_dump are
 * non-null they receive the machine's stateHash() / machineStateDump()
 * at the point the run ended.
 */
RunTrace
runSide(const Side &side, Cycles epoch_interval, Cycles stop_at,
        std::uint64_t *final_hash, std::string *final_dump)
{
    core::SimConfig cfg = side.cfg;
    cfg.system.state_hash_interval = stop_at ? 0 : epoch_interval;
    cfg.system.stop_at_cycle = stop_at;

    verify::ProtocolMutator mut;
    mut.bug = side.bug;
    if (side.bug != verify::ProtocolBug::None)
        cfg.system.core.mutator = &mut; // core-side decision points

    core::Simulation simulation(cfg);
    simulation.prepare();
    if (side.bug != verify::ProtocolBug::None)
        simulation.system().attachMutator(&mut); // fabric-side points
    simulation.run();

    RunTrace trace;
    trace.epochs = simulation.system().epochHashes();
    trace.bug_triggers = mut.triggers;
    if (final_hash)
        *final_hash = simulation.system().stateHash();
    if (final_dump)
        *final_dump = sim::machineStateDump(simulation.system());
    return trace;
}

/** True when the two sides' states differ at (the loop-top reaching)
 *  cycle @p c.  Each probe re-runs both sides from cycle zero. */
bool
divergedByCycle(const Side &a, const Side &b, Cycles c)
{
    std::uint64_t ha = 0, hb = 0;
    runSide(a, 0, c, &ha, nullptr);
    runSide(b, 0, c, &hb, nullptr);
    return ha != hb;
}

bool
writeDump(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return static_cast<bool>(out);
}

/** Full comparison: hash streams, bisection, dumps.  Returns the first
 *  divergent cycle, or 0 stored in @p found = false when identical. */
Cycles
diverge(const Side &a, const Side &b, Cycles epoch_interval,
        const std::string &dump_prefix, bool &found,
        std::uint64_t *b_triggers = nullptr)
{
    found = false;

    const RunTrace ta = runSide(a, epoch_interval, 0, nullptr, nullptr);
    const RunTrace tb = runSide(b, epoch_interval, 0, nullptr, nullptr);
    if (b_triggers)
        *b_triggers = tb.bug_triggers;

    std::cout << "epochs: A=" << ta.epochs.size()
              << " B=" << tb.epochs.size() << " (interval "
              << epoch_interval << " cycles)\n";

    const std::size_t n = std::min(ta.epochs.size(), tb.epochs.size());
    std::size_t k = 0;
    while (k < n && ta.epochs[k].epoch == tb.epochs[k].epoch &&
           ta.epochs[k].hash == tb.epochs[k].hash)
        ++k;
    if (k == n && ta.epochs.size() == tb.epochs.size()) {
        std::cout << "no divergence: all " << n
                  << " epoch hashes identical\n";
        return 0;
    }
    found = true;

    Cycles first_cycle = 0;
    if (k == n) {
        // One stream is a strict prefix of the other: the runs agree at
        // every shared boundary but one side ran longer.
        std::cout << "divergence: hash streams agree for " << n
                  << " epochs, then lengths differ ("
                  << ta.epochs.size() << " vs " << tb.epochs.size()
                  << ")\n";
        first_cycle = n ? ta.epochs[n - 1].epoch : 0;
    } else {
        std::ostringstream ha, hb;
        ha << std::hex << ta.epochs[k].hash;
        hb << std::hex << tb.epochs[k].hash;
        std::cout << "first divergent epoch: cycle "
                  << ta.epochs[k].epoch << " (epoch index " << k
                  << "; A=0x" << ha.str() << " B=0x" << hb.str()
                  << ")\n";
        first_cycle = ta.epochs[k].epoch;

        if (k > 0) {
            // Bisect inside (previous boundary, divergent boundary]:
            // the state is known identical at lo and divergent at hi.
            Cycles lo = ta.epochs[k - 1].epoch;
            Cycles hi = ta.epochs[k].epoch;
            while (hi - lo > 1) {
                const Cycles mid = lo + (hi - lo) / 2;
                if (divergedByCycle(a, b, mid))
                    hi = mid;
                else
                    lo = mid;
            }
            first_cycle = hi;
            std::cout << "bisect: states identical at cycle " << lo
                      << ", first divergent probe at cycle " << hi
                      << "\n";
        } else {
            std::cout << "divergence at the first epoch boundary: the "
                         "two sides differ from their initial state\n";
        }
    }

    if (dump_prefix != "none") {
        const Cycles at = first_cycle ? first_cycle : 1;
        std::uint64_t ha = 0, hb = 0;
        std::string da, db;
        runSide(a, 0, at, &ha, &da);
        runSide(b, 0, at, &hb, &db);
        const std::string pa = dump_prefix + "-a.txt";
        const std::string pb = dump_prefix + "-b.txt";
        if (writeDump(pa, da) && writeDump(pb, db)) {
            std::cout << "machine states at cycle " << at << ": " << pa
                      << ", " << pb << "\n";
        } else {
            std::cerr << "dbsim-diverge: could not write state dumps "
                      << pa << " / " << pb << "\n";
        }
    }
    return first_cycle;
}

core::SimConfig
smallConfig(core::WorkloadKind kind, std::uint32_t nodes,
            std::uint64_t instructions)
{
    core::SimConfig cfg = core::makeScaledConfig(kind, nodes);
    cfg.total_instructions = instructions;
    cfg.warmup_instructions = 0;
    return cfg;
}

/** The ctest scenarios; returns the process exit code. */
int
selfCheck()
{
    int failures = 0;
    const auto check = [&failures](bool ok, const std::string &what) {
        std::cout << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
        if (!ok)
            ++failures;
    };

    const Cycles interval = 2000;
    Side a, b;
    a.name = "A";
    b.name = "B";
    a.cfg = b.cfg =
        smallConfig(core::WorkloadKind::Oltp, 2, 30000);

    std::cout << "scenario: identical configurations\n";
    bool found = false;
    diverge(a, b, interval, "none", found);
    check(!found, "identical configs produce zero divergence");

    std::cout << "scenario: seeded dropped-invalidation in side B\n";
    b.bug = verify::ProtocolBug::DroppedInvalidation;
    std::uint64_t triggers = 0;
    const Cycles cycle =
        diverge(a, b, interval, "none", found, &triggers);
    check(found, "seeded bug produces a divergence");
    check(triggers > 0, "the seeded bug actually fired (triggers=" +
                            std::to_string(triggers) + ")");
    check(cycle > 0, "bisected first divergent cycle is nonzero (" +
                         std::to_string(cycle) + ")");

    std::cout << (failures ? "dbsim-diverge self-check: FAILED\n"
                           : "dbsim-diverge self-check: all ok\n");
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dbsim;

    // See the file comment: the coherence checker would abort a
    // deliberately-buggy side before its hash stream exists.
#ifdef _WIN32
    _putenv("DBSIM_CHECK=");
#else
    unsetenv("DBSIM_CHECK");
#endif

    try {
        std::string workload = "oltp", b_workload;
        std::uint32_t nodes = 2, b_nodes = 0;
        std::string a_bug, b_bug;
        std::uint64_t instructions = 60000;
        Cycles epoch_interval = 5000;
        std::string dump_prefix = "dbsim-diverge";
        bool self_check = false;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw ConfigError("cli", arg + " needs a value");
                return argv[++i];
            };
            if (arg == "--workload")
                workload = value();
            else if (arg == "--b-workload")
                b_workload = value();
            else if (arg == "--nodes")
                nodes = static_cast<std::uint32_t>(
                    std::stoul(value()));
            else if (arg == "--b-nodes")
                b_nodes = static_cast<std::uint32_t>(
                    std::stoul(value()));
            else if (arg == "--a-bug")
                a_bug = value();
            else if (arg == "--b-bug")
                b_bug = value();
            else if (arg == "--instructions")
                instructions = std::stoull(value());
            else if (arg == "--epoch-interval")
                epoch_interval = std::stoull(value());
            else if (arg == "--dump-prefix")
                dump_prefix = value();
            else if (arg == "--self-check")
                self_check = true;
            else
                throw ConfigError("cli", "unknown flag " + arg);
        }
        if (epoch_interval == 0)
            throw ConfigError("cli.epoch-interval",
                              "--epoch-interval must be nonzero");

        if (self_check)
            return selfCheck();

        Side a, b;
        a.name = "A";
        b.name = "B";
        a.cfg = smallConfig(parseWorkloadName(workload), nodes,
                            instructions);
        b.cfg = smallConfig(
            parseWorkloadName(b_workload.empty() ? workload
                                                 : b_workload),
            b_nodes ? b_nodes : nodes, instructions);
        if (!a_bug.empty())
            a.bug = parseBugName(a_bug);
        if (!b_bug.empty())
            b.bug = parseBugName(b_bug);

        std::cout << "dbsim-diverge\n  A: " << describe(a.cfg)
                  << (a.bug != verify::ProtocolBug::None
                          ? std::string(" [bug ") +
                                verify::protocolBugName(a.bug) + "]"
                          : "")
                  << "\n  B: " << describe(b.cfg)
                  << (b.bug != verify::ProtocolBug::None
                          ? std::string(" [bug ") +
                                verify::protocolBugName(b.bug) + "]"
                          : "")
                  << "\n";

        bool found = false;
        diverge(a, b, epoch_interval, dump_prefix, found);
        return found ? 1 : 0;
    } catch (const ConfigError &e) {
        std::cerr << "dbsim-diverge: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "dbsim-diverge: " << e.what() << "\n";
        return 2;
    }
}
