/**
 * @file
 * Unit tests for the hybrid PA/g branch predictor, BTB and RAS.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cpu/branch_predictor.hpp"

namespace dbsim::cpu {
namespace {

using trace::OpClass;
using trace::TraceRecord;

TraceRecord
branch(OpClass op, Addr pc, bool taken = false, Addr target = 0)
{
    TraceRecord r;
    r.op = op;
    r.pc = pc;
    r.taken = taken;
    r.extra = target;
    return r;
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += !bp.predict(branch(OpClass::BranchCond, 0x1000, true));
    EXPECT_LE(wrong, 3); // warmup only
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    // A strict T/N/T/N pattern is exactly what two-level history
    // predictors exist for.
    BranchPredictor bp;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        wrong +=
            !bp.predict(branch(OpClass::BranchCond, 0x2000, i % 2 == 0));
    }
    EXPECT_LT(wrong, 40); // converges after warmup
}

TEST(BranchPredictor, BiasedSitesLowMispredict)
{
    BranchPredictor bp;
    Rng rng(1);
    std::uint64_t wrong = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const Addr pc = 0x3000 + rng.below(256) * 8;
        const bool taken = rng.chance((pc >> 3) & 1 ? 0.95 : 0.05);
        wrong += !bp.predict(branch(OpClass::BranchCond, pc, taken));
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.12);
}

TEST(BranchPredictor, BtbLearnsFixedTargets)
{
    BranchPredictor bp;
    // First encounter misses, later ones hit.
    EXPECT_FALSE(bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0x900)));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(
            bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0x900)));
}

TEST(BranchPredictor, BtbDetectsChangedTarget)
{
    BranchPredictor bp;
    bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0x900));
    EXPECT_TRUE(bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0x900)));
    EXPECT_FALSE(
        bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0xA00)));
    EXPECT_TRUE(bp.predict(branch(OpClass::BranchJmp, 0x100, false, 0xA00)));
}

TEST(BranchPredictor, RasPredictsMatchedCallReturn)
{
    BranchPredictor bp;
    bp.predict(branch(OpClass::BranchCall, 0x100, false, 0x900));
    EXPECT_TRUE(
        bp.predict(branch(OpClass::BranchRet, 0x950, false, 0x104)));
}

TEST(BranchPredictor, RasHandlesNesting)
{
    BranchPredictor bp;
    bp.predict(branch(OpClass::BranchCall, 0x100, false, 0x900)); // ra 0x104
    bp.predict(branch(OpClass::BranchCall, 0x910, false, 0xB00)); // ra 0x914
    EXPECT_TRUE(
        bp.predict(branch(OpClass::BranchRet, 0xB50, false, 0x914)));
    EXPECT_TRUE(
        bp.predict(branch(OpClass::BranchRet, 0x950, false, 0x104)));
}

TEST(BranchPredictor, RasMispredictsOnUnderflow)
{
    BranchPredictor bp;
    EXPECT_FALSE(
        bp.predict(branch(OpClass::BranchRet, 0x950, false, 0x104)));
    EXPECT_EQ(bp.stats().ret_mispredicts, 1u);
}

TEST(BranchPredictor, RasWrapsAtCapacity)
{
    BranchPredParams p;
    p.ras_entries = 4;
    BranchPredictor bp(p);
    for (Addr i = 0; i < 6; ++i) {
        bp.predict(branch(OpClass::BranchCall, 0x100 + i * 0x10, false,
                          0x900));
    }
    // The deepest returns were overwritten; the four most recent match.
    for (int i = 5; i >= 2; --i) {
        EXPECT_TRUE(bp.predict(branch(
            OpClass::BranchRet, 0x950, false,
            0x100 + static_cast<Addr>(i) * 0x10 + 4)));
    }
}

TEST(BranchPredictor, PerfectModeNeverWrong)
{
    BranchPredParams p;
    p.perfect = true;
    BranchPredictor bp(p);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(bp.predict(branch(OpClass::BranchCond,
                                      rng.below(1 << 20) * 4,
                                      rng.chance(0.5))));
    }
    EXPECT_EQ(bp.stats().mispredicts(), 0u);
    EXPECT_EQ(bp.stats().cond_lookups, 1000u);
}

TEST(BranchPredictor, StatsRatesAndReset)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.predict(branch(OpClass::BranchCond, 0x100, true));
    EXPECT_EQ(bp.stats().cond_lookups, 10u);
    const double r = bp.stats().rate();
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    bp.resetStats();
    EXPECT_EQ(bp.stats().lookups(), 0u);
}

TEST(BranchPredictor, RejectsNonPow2Tables)
{
    BranchPredParams p;
    p.pa_entries = 1000;
    EXPECT_THROW(BranchPredictor{p}, std::runtime_error);
}

} // namespace
} // namespace dbsim::cpu
