// Clean twin: a project-style always-on check macro.
void fail(const char *msg);

void
checkHard(int x)
{
    if (x <= 0)
        fail("x must be positive");
}
