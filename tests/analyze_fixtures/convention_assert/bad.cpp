// Seeded violation: raw assert() compiles out under NDEBUG.
#include <cassert>

void
check(int x)
{
    assert(x > 0);
}
