#ifndef DBSIM_CLEAN_HPP
#define DBSIM_CLEAN_HPP

inline int
question()
{
    return 6 * 9;
}

#endif // DBSIM_CLEAN_HPP
