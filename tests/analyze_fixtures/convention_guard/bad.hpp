// Seeded violation: guard does not spell DBSIM_BAD_HPP.
#ifndef WRONG_GUARD
#define WRONG_GUARD

inline int
answer()
{
    return 42;
}

#endif // WRONG_GUARD
