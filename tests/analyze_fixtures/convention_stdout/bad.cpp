// Seeded violation: stdout belongs to machine-readable reports.
#include <iostream>

void
hello()
{
    std::cout << "hi\n";
}
