// Clean twin: diagnostics go to stderr.
#include <iostream>

void
warn()
{
    std::cerr << "careful\n";
}
