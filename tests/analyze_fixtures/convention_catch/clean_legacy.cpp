// Clean twin: the python-linter-era escape hatch still works.
void risky();

int
shieldLegacy()
{
    try {
        risky();
    } catch (...) { // lint: allowed-swallow -- boundary returns a code
        return -1;
    }
    return 0;
}
