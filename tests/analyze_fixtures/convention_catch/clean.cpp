// Clean twin: the exception is rethrown.
void risky();

int
passthrough()
{
    try {
        risky();
    } catch (...) {
        throw;
    }
    return 0;
}
