// Seeded violation: catch (...) that swallows the exception.
void risky();

int
shield()
{
    try {
        risky();
    } catch (...) {
        return -1;
    }
    return 0;
}
