// Clean twin: formats a stable value, not an address.
#include <cstdio>

void
describeValue(char *buf, unsigned long n, unsigned long long v)
{
    std::snprintf(buf, n, "%llx", v);
}
