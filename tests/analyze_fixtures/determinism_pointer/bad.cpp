// Seeded violation: formatting a pointer value into output.
#include <cstdio>

void
describe(char *buf, unsigned long n, const void *p)
{
    std::snprintf(buf, n, "%p", p);
}
