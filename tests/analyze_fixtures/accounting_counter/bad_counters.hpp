// Seeded violations: `misses` is updated but never read; `skips` is
// declared but never updated.  `hits` is the clean twin (fully wired).
#ifndef DBSIM_BAD_COUNTERS_HPP
#define DBSIM_BAD_COUNTERS_HPP

struct ProbeStats
{
    unsigned long long hits = 0;
    unsigned long long misses = 0;
    unsigned long long skips = 0;
};

#endif // DBSIM_BAD_COUNTERS_HPP
