#include "bad_counters.hpp"

void
touch(ProbeStats &s)
{
    ++s.hits;
    ++s.misses;
}

unsigned long long
readBack(const ProbeStats &s)
{
    return s.hits;
}
