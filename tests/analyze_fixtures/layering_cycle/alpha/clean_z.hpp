// Clean twin: a one-way include adds no cycle.
#ifndef DBSIM_ALPHA_CLEAN_Z_HPP
#define DBSIM_ALPHA_CLEAN_Z_HPP

#include "alpha/bad_x.hpp"

inline int
zValue()
{
    return xValue() + 1;
}

#endif // DBSIM_ALPHA_CLEAN_Z_HPP
