#ifndef DBSIM_ALPHA_BAD_Y_HPP
#define DBSIM_ALPHA_BAD_Y_HPP

#include "alpha/bad_x.hpp"

inline int
yValue()
{
    return 2;
}

#endif // DBSIM_ALPHA_BAD_Y_HPP
