// Seeded violation: bad_x.hpp and bad_y.hpp include each other.
#ifndef DBSIM_ALPHA_BAD_X_HPP
#define DBSIM_ALPHA_BAD_X_HPP

#include "alpha/bad_y.hpp"

inline int
xValue()
{
    return 1;
}

#endif // DBSIM_ALPHA_BAD_X_HPP
