// Clean twin: sim/ (layer 6) including common/ (layer 0) is downward.
#ifndef DBSIM_SIM_ENGINE_HPP
#define DBSIM_SIM_ENGINE_HPP

#include "common/value.hpp"

inline int
engineVersion()
{
    return static_cast<int>(Value{3});
}

#endif // DBSIM_SIM_ENGINE_HPP
