#ifndef DBSIM_COMMON_VALUE_HPP
#define DBSIM_COMMON_VALUE_HPP

using Value = unsigned long long;

#endif // DBSIM_COMMON_VALUE_HPP
