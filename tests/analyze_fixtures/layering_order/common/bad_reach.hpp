// Seeded violation: a common/ (layer 0) header reaching up into sim/
// (layer 6).
#ifndef DBSIM_COMMON_BAD_REACH_HPP
#define DBSIM_COMMON_BAD_REACH_HPP

#include "sim/engine.hpp"

inline int
peek()
{
    return engineVersion();
}

#endif // DBSIM_COMMON_BAD_REACH_HPP
