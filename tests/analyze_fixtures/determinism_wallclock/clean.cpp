// Clean twin: time comes from the simulated clock.
long
simNow(long now_cycles)
{
    return now_cycles;
}
