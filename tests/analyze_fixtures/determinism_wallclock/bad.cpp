// Seeded violation: host clock read outside annotated host-timing code.
#include <chrono>

long
hostNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
