// Both suppression positions: the line above, and trailing.
#include <chrono>

long
deadlineA()
{
    // dbsim-analyze: allow(determinism-wallclock) -- fixture
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

long
deadlineB()
{
    return std::chrono::steady_clock::now() // dbsim-analyze: allow(determinism-wallclock)
        .time_since_epoch()
        .count();
}
