// Seeded violations: a serialization body that writes host pointer
// bits, a wall-clock value, and an unordered container in hash order.
#include <chrono>
#include <cstdint>
#include <unordered_map>

struct Writer
{
    void u64(std::uint64_t);
};

class Table
{
  public:
    void
    saveState(Writer &w) const
    {
        w.u64(reinterpret_cast<std::uintptr_t>(this));
        w.u64(static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()));
        for (const auto &kv : table_)
            w.u64(kv.first + kv.second);
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
};
