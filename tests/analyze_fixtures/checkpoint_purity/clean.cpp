// Clean twin: the same serialization shape, but pointers and clocks
// stay out and the unordered container goes through sortedKeys().
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Writer
{
    void u64(std::uint64_t);
};

template <typename Map>
std::vector<std::uint64_t>
sortedKeys(const Map &m)
{
    std::vector<std::uint64_t> keys;
    for (auto it = m.begin(); it != m.end(); ++it)
        keys.push_back(it->first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

class Table
{
  public:
    void
    saveState(Writer &w) const
    {
        w.u64(sorted_table_.size());
        for (const std::uint64_t key : sortedKeys(sorted_table_))
            w.u64(key + sorted_table_.at(key));
    }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> sorted_table_;
};
