// Seeded violation: the switch misses Cat::Upgrade and has no default.
#include "cat.hpp"

int
costOf(Cat c)
{
    switch (c) {
      case Cat::Read:
        return 1;
      case Cat::Write:
        return 2;
    }
    return 0;
}
