// Clean twin: every enumerator handled (kCount is a sizing sentinel).
#include "cat.hpp"

int
latencyOf(Cat c)
{
    switch (c) {
      case Cat::Read:
        return 10;
      case Cat::Write:
        return 20;
      case Cat::Upgrade:
        return 30;
    }
    return 0;
}
