#ifndef DBSIM_CAT_HPP
#define DBSIM_CAT_HPP

enum class Cat { Read, Write, Upgrade, kCount };

#endif // DBSIM_CAT_HPP
