// Clean twin: a seeded, replayable mixer.
unsigned
mix(unsigned state)
{
    return state * 1664525u + 1013904223u;
}
