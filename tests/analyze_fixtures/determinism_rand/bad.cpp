// Seeded violation: C library rand() instead of the seeded dbsim RNG.
#include <cstdlib>

int
noise()
{
    return std::rand();
}
