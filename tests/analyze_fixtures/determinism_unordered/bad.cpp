// Seeded violation: range-for over an unordered container feeding an
// output stream.
#include <ostream>
#include <unordered_map>

void
dumpTable(std::ostream &os)
{
    std::unordered_map<int, int> table;
    table[1] = 2;
    for (const auto &kv : table)
        os << kv.first << " " << kv.second << "\n";
}
