// Clean twin: ordered container, same shape of loop.
#include <map>
#include <ostream>

void
dumpSorted(std::ostream &os)
{
    std::map<int, int> sorted_table;
    sorted_table[1] = 2;
    for (const auto &kv : sorted_table)
        os << kv.first << " " << kv.second << "\n";
}
