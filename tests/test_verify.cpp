/**
 * @file
 * Tests of the offline protocol verification layer: the exhaustive
 * model checker over the real coherence fabric, counterexample
 * minimization and crash-dump emission, and the protocol-mutation
 * self-test (every catalogued fabric bug must be detected).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/errors.hpp"
#include "common/log.hpp"
#include "verify/model_checker.hpp"
#include "verify/suite.hpp"

namespace dbsim::verify {
namespace {

McConfig
configNamed(const std::string &name)
{
    for (const McConfig &c : standardConfigs())
        if (c.name == name)
            return c;
    ADD_FAILURE() << "no standard config named " << name;
    return {};
}

// ---------------------------------------------------------------------
// Unmutated protocol: every configuration exhausts cleanly
// ---------------------------------------------------------------------

TEST(ModelChecker, UnmutatedConfigsExhaustWithZeroViolations)
{
    const auto cfgs = standardConfigs();
    ASSERT_GE(cfgs.size(), 4u);
    for (const McConfig &cfg : cfgs) {
        const McResult r = ModelChecker(cfg).check();
        EXPECT_TRUE(r.ok) << cfg.name << ": " << r.violation;
        EXPECT_TRUE(r.exhausted) << cfg.name;
        EXPECT_GT(r.states, 0u) << cfg.name;
        EXPECT_GT(r.interleavings, 0u) << cfg.name;
        EXPECT_EQ(r.mutation_fires, 0u) << cfg.name;
        EXPECT_TRUE(r.trace.empty()) << cfg.name;
    }
}

TEST(ModelChecker, CoversTheRequiredMachineSizes)
{
    // The acceptance bar: a 2-node/1-block and a 3-node/2-block machine
    // are both explored exhaustively.
    bool small = false, large = false;
    for (const McConfig &c : standardConfigs()) {
        small |= c.nodes == 2 && c.blocks == 1;
        large |= c.nodes == 3 && c.blocks == 2;
    }
    EXPECT_TRUE(small);
    EXPECT_TRUE(large);
}

TEST(ModelChecker, StateBudgetExhaustionIsReportedNotSilent)
{
    McConfig cfg = configNamed("3n2b");
    cfg.max_states = 5;
    const McResult r = ModelChecker(cfg).check();
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.exhausted);
    EXPECT_NE(r.violation.find("state budget"), std::string::npos)
        << r.violation;
}

// ---------------------------------------------------------------------
// Mutation self-test: seeded fabric bugs must be caught
// ---------------------------------------------------------------------

TEST(ModelChecker, CatchesEveryFabricMutant)
{
    const ProtocolBug bugs[] = {
        ProtocolBug::DroppedInvalidation,
        ProtocolBug::StaleOwner,
        ProtocolBug::MissingDowngrade,
        ProtocolBug::LostSharerBit,
    };
    for (const ProtocolBug bug : bugs) {
        bool caught = false;
        std::uint64_t fires = 0;
        for (McConfig cfg : standardConfigs()) {
            cfg.bug = bug;
            const McResult r = ModelChecker(cfg).check();
            fires += r.mutation_fires;
            if (r.ok)
                continue;
            caught = true;
            EXPECT_FALSE(r.violation.empty()) << protocolBugName(bug);
            EXPECT_FALSE(r.trace.empty()) << protocolBugName(bug);
            EXPECT_FALSE(r.final_dump.empty()) << protocolBugName(bug);
            EXPECT_GT(r.mutation_fires, 0u) << protocolBugName(bug);
            break;
        }
        EXPECT_TRUE(caught) << protocolBugName(bug) << " was not detected";
        EXPECT_GT(fires, 0u)
            << protocolBugName(bug) << " never fired (vacuous run)";
    }
}

TEST(ModelChecker, MinimizesTheDroppedInvalidationCounterexample)
{
    McConfig cfg = configNamed("2n1b");
    cfg.bug = ProtocolBug::DroppedInvalidation;
    const McResult r = ModelChecker(cfg).check();
    ASSERT_FALSE(r.ok);
    // Minimal failing schedule: a read establishing a sharer, the
    // second node's read, and the write whose invalidation is dropped.
    // Greedy delta-removal must get down to at most one extra op.
    EXPECT_GE(r.trace.size(), 3u);
    EXPECT_LE(r.trace.size(), 4u) << r.traceString();
    EXPECT_EQ(r.trace.back().op, McOp::Write) << r.traceString();
    EXPECT_NE(r.violation.find("SWMR"), std::string::npos) << r.violation;
}

TEST(ModelChecker, StaleOwnerIsCaughtByTheRealDynamicChecker)
{
    // The stale-owner mutant must be flagged by the embedded
    // coher::CoherenceChecker itself (its I2/I3 audits), proving the
    // offline layer really runs the online invariants.
    McConfig cfg = configNamed("2n1b");
    cfg.bug = ProtocolBug::StaleOwner;
    const McResult r = ModelChecker(cfg).check();
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("coherence invariant violated"),
              std::string::npos)
        << r.violation;
}

TEST(ModelChecker, MutationCatalogDetectsAllSixBugs)
{
    const auto verdicts = runMutationCatalog();
    ASSERT_EQ(verdicts.size(), 6u);
    for (const MutationVerdict &v : verdicts) {
        EXPECT_TRUE(v.caught) << protocolBugName(v.bug) << " missed";
        EXPECT_GT(v.fires, 0u) << protocolBugName(v.bug) << " never fired";
        EXPECT_FALSE(v.detector.empty()) << protocolBugName(v.bug);
        EXPECT_FALSE(v.detail.empty()) << protocolBugName(v.bug);
    }
}

// ---------------------------------------------------------------------
// Counterexample reporting through the crash-dump machinery
// ---------------------------------------------------------------------

TEST(ModelChecker, PanicModeEmitsCounterexampleThroughCrashDump)
{
    McConfig cfg = configNamed("2n1b");
    cfg.bug = ProtocolBug::MissingDowngrade;
    ModelChecker mc(cfg, /*panic_on_violation=*/true);

    PanicThrowGuard guard;
    try {
        mc.check();
        FAIL() << "expected the model checker to panic";
    } catch (const SimInvariantError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("model checker:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("model-checker counterexample"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("counterexample ("), std::string::npos) << msg;
        EXPECT_NE(msg.find("read b0"), std::string::npos) << msg;
    }

    // The one-shot counterexample dump must not leak into later panics.
    try {
        DBSIM_PANIC("unrelated failure");
        FAIL() << "expected SimInvariantError";
    } catch (const SimInvariantError &e) {
        EXPECT_EQ(std::string(e.what()).find("model-checker counterexample"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ModelChecker, TraceStringNamesConfigAndViolation)
{
    McConfig cfg = configNamed("2n1b");
    cfg.bug = ProtocolBug::MissingDowngrade;
    const McResult r = ModelChecker(cfg).check();
    ASSERT_FALSE(r.ok);
    const std::string s = r.traceString();
    EXPECT_NE(s.find("2n1b"), std::string::npos) << s;
    EXPECT_NE(s.find("violation:"), std::string::npos) << s;
    for (const McStep &step : r.trace)
        EXPECT_NE(s.find(mcStepString(step)), std::string::npos) << s;
}

} // namespace
} // namespace dbsim::verify
