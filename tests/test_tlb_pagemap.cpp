/**
 * @file
 * Unit tests for the TLBs and the bin-hopping, first-touch page map.
 */

#include <gtest/gtest.h>

#include <set>

#include "memory/page_map.hpp"
#include "memory/tlb.hpp"

namespace dbsim::mem {
namespace {

TEST(Tlb, HitAfterMiss)
{
    Tlb tlb(4, 8192);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2, 8192);
    tlb.access(0x0000);  // page 0
    tlb.access(0x2000);  // page 1
    tlb.access(0x0000);  // touch page 0 (page 1 is now LRU)
    tlb.access(0x4000);  // page 2 evicts page 1
    EXPECT_TRUE(tlb.access(0x0000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, PerfectNeverMisses)
{
    Tlb tlb(0, 8192);
    for (Addr a = 0; a < 100; ++a)
        EXPECT_TRUE(tlb.access(a * 8192));
    EXPECT_EQ(tlb.stats().misses, 0u);
    EXPECT_EQ(tlb.stats().accesses, 100u);
}

TEST(Tlb, MissRate)
{
    Tlb tlb(128, 8192);
    for (int i = 0; i < 64; ++i)
        tlb.access(static_cast<Addr>(i) * 8192);
    for (int r = 0; r < 3; ++r)
        for (int i = 0; i < 64; ++i)
            tlb.access(static_cast<Addr>(i) * 8192);
    EXPECT_DOUBLE_EQ(tlb.stats().missRate(), 64.0 / 256.0);
}

TEST(Tlb, ResetClearsContents)
{
    Tlb tlb(8, 8192);
    tlb.access(0x0);
    tlb.reset();
    EXPECT_FALSE(tlb.access(0x0));
    EXPECT_EQ(tlb.stats().accesses, 1u);
}

TEST(PageMap, TranslationStable)
{
    PageMap pm(8192, 16, 4);
    const Addr p1 = pm.translate(0x123456, 2);
    const Addr p2 = pm.translate(0x123456, 3); // already mapped
    EXPECT_EQ(p1, p2);
}

TEST(PageMap, OffsetPreserved)
{
    PageMap pm(8192, 16, 4);
    const Addr p = pm.translate(0xabcdef, 0);
    EXPECT_EQ(p & 8191u, 0xabcdefull & 8191u);
}

TEST(PageMap, DistinctPagesDistinctFrames)
{
    PageMap pm(8192, 16, 4);
    std::set<Addr> frames;
    for (Addr v = 0; v < 100; ++v)
        frames.insert(pm.translate(v * 8192, 0) / 8192);
    EXPECT_EQ(frames.size(), 100u);
}

TEST(PageMap, FirstTouchHome)
{
    PageMap pm(8192, 16, 4);
    const Addr a = pm.translate(0x10000, 3);
    EXPECT_EQ(pm.homeOf(a), 3u);
    // Second toucher does not move the page.
    const Addr b = pm.translate(0x10000, 1);
    EXPECT_EQ(pm.homeOf(b), 3u);
}

TEST(PageMap, BinHoppingSpreadsSets)
{
    // Consecutive first-touched pages land in consecutive bins: the
    // physical page number mod bins cycles.
    PageMap pm(8192, 16, 1);
    for (Addr v = 0; v < 32; ++v) {
        const Addr p = pm.translate(v * 8192, 0);
        EXPECT_EQ((p / 8192) % 16, v % 16);
    }
}

TEST(PageMap, PagesTouchedCount)
{
    PageMap pm(8192, 16, 2);
    pm.translate(0x0, 0);
    pm.translate(0x100, 0); // same page
    pm.translate(0x2000, 1);
    EXPECT_EQ(pm.pagesTouched(), 2u);
}

TEST(PageMap, HomeWrapsNodeCount)
{
    PageMap pm(8192, 16, 2);
    const Addr a = pm.translate(0x0, 7); // node id wraps mod 2
    EXPECT_EQ(pm.homeOf(a), 1u);
}

} // namespace
} // namespace dbsim::mem
