/**
 * @file
 * Unit tests for the trace layer: record classification, sources,
 * limits, and binary serialization round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "trace/record.hpp"
#include "trace/serialize.hpp"
#include "trace/source.hpp"

namespace dbsim::trace {
namespace {

TraceRecord
rec(OpClass op, Addr pc = 0x1000, Addr va = kNoAddr)
{
    TraceRecord r;
    r.op = op;
    r.pc = pc;
    r.vaddr = va;
    return r;
}

TEST(Record, Classification)
{
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::Store));
    EXPECT_TRUE(isMemory(OpClass::LockAcquire));
    EXPECT_TRUE(isMemory(OpClass::Flush));
    EXPECT_FALSE(isMemory(OpClass::IntAlu));
    EXPECT_FALSE(isMemory(OpClass::MemBarrier));
    EXPECT_FALSE(isMemory(OpClass::SyscallBlock));

    EXPECT_TRUE(isLoad(OpClass::Load));
    EXPECT_TRUE(isLoad(OpClass::LockAcquire));
    EXPECT_FALSE(isLoad(OpClass::Store));

    EXPECT_TRUE(isStore(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::LockRelease));
    EXPECT_FALSE(isStore(OpClass::Load));

    EXPECT_TRUE(isBranch(OpClass::BranchCond));
    EXPECT_TRUE(isBranch(OpClass::BranchRet));
    EXPECT_FALSE(isBranch(OpClass::Load));

    EXPECT_TRUE(isHint(OpClass::Prefetch));
    EXPECT_TRUE(isHint(OpClass::PrefetchExcl));
    EXPECT_TRUE(isHint(OpClass::Flush));
    EXPECT_FALSE(isHint(OpClass::Load));
}

TEST(Record, NamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        names.insert(opClassName(static_cast<OpClass>(i)));
    EXPECT_EQ(names.size(), kNumOpClasses);
}

TEST(Record, ToStringContainsClass)
{
    const auto s = toString(rec(OpClass::LockAcquire, 0x400, 0x999));
    EXPECT_NE(s.find("LockAcquire"), std::string::npos);
}

TEST(VectorSource, DeliversInOrder)
{
    std::vector<TraceRecord> v{rec(OpClass::IntAlu, 0x10),
                               rec(OpClass::Load, 0x14, 0x100),
                               rec(OpClass::Store, 0x18, 0x104)};
    VectorSource src(v);
    TraceRecord r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.op, OpClass::IntAlu);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.op, OpClass::Load);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.op, OpClass::Store);
    EXPECT_FALSE(src.next(r));
    EXPECT_FALSE(src.next(r)); // stays exhausted
}

TEST(LimitSource, CapsDelivery)
{
    std::vector<TraceRecord> v(10, rec(OpClass::IntAlu));
    LimitSource src(std::make_unique<VectorSource>(v), 4);
    TraceRecord r;
    int n = 0;
    while (src.next(r))
        ++n;
    EXPECT_EQ(n, 4);
    EXPECT_EQ(src.delivered(), 4u);
}

TEST(LimitSource, UnderlyingShorterThanLimit)
{
    std::vector<TraceRecord> v(3, rec(OpClass::IntAlu));
    LimitSource src(std::make_unique<VectorSource>(v), 100);
    TraceRecord r;
    int n = 0;
    while (src.next(r))
        ++n;
    EXPECT_EQ(n, 3);
}

class CountingSource : public GeneratingSource
{
  public:
    explicit CountingSource(int batches) : batches_(batches) {}

  protected:
    void
    refill() override
    {
        if (produced_ >= batches_) {
            finish();
            return;
        }
        for (int i = 0; i < 3; ++i) {
            TraceRecord r;
            r.op = OpClass::IntAlu;
            r.pc = static_cast<Addr>(produced_ * 3 + i);
            emit(r);
        }
        ++produced_;
    }

  private:
    int batches_;
    int produced_ = 0;
};

TEST(GeneratingSource, RefillsInBatches)
{
    CountingSource src(4);
    TraceRecord r;
    std::vector<Addr> pcs;
    while (src.next(r))
        pcs.push_back(r.pc);
    ASSERT_EQ(pcs.size(), 12u);
    for (std::size_t i = 0; i < pcs.size(); ++i)
        EXPECT_EQ(pcs[i], i);
}

TEST(Serialize, RoundTripEmpty)
{
    std::stringstream ss;
    save(ss, {});
    EXPECT_TRUE(load(ss).empty());
}

TEST(Serialize, RoundTripRandomRecords)
{
    Rng rng(77);
    std::vector<TraceRecord> v;
    for (int i = 0; i < 500; ++i) {
        TraceRecord r;
        r.op = static_cast<OpClass>(rng.below(kNumOpClasses));
        r.pc = rng.next();
        r.vaddr = rng.next();
        r.extra = rng.next();
        r.dep1 = static_cast<std::uint8_t>(rng.below(256));
        r.dep2 = static_cast<std::uint8_t>(rng.below(256));
        r.taken = rng.chance(0.5);
        v.push_back(r);
    }
    std::stringstream ss;
    save(ss, v);
    const auto back = load(ss);
    EXPECT_EQ(back, v);
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "not a trace file at all";
    EXPECT_THROW(load(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncated)
{
    std::vector<TraceRecord> v(5, TraceRecord{});
    std::stringstream ss;
    save(ss, v);
    std::string s = ss.str();
    s.resize(s.size() / 2);
    std::stringstream cut(s);
    EXPECT_THROW(load(cut), std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    std::vector<TraceRecord> v{rec(OpClass::Load, 0x4, 0x8)};
    const std::string path = "/tmp/dbsim_trace_test.bin";
    saveFile(path, v);
    EXPECT_EQ(loadFile(path), v);
}

} // namespace
} // namespace dbsim::trace
