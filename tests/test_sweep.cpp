/**
 * @file
 * Tests for the parallel sweep runner and the JSON reporting layer.
 *
 * The load-bearing property is the determinism contract (DESIGN.md):
 * simulated statistics of a sweep are a pure function of the
 * configuration list, so running the same list with 1 job and with 8
 * jobs must produce bitwise-identical results.  Also covered: input
 * ordering, deterministic (lowest-index) error propagation, job-count
 * resolution, and the JSON writer's escaping and structure checking.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/errors.hpp"
#include "core/json_writer.hpp"
#include "core/sweep.hpp"
#include "cpu/inorder_core.hpp"

namespace dbsim::core {
namespace {

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

TEST(JsonEscape, PassesPlainAsciiThrough)
{
    EXPECT_EQ(jsonEscape("fig2_oltp_ilp"), "fig2_oltp_ilp");
}

TEST(JsonEscape, EscapesQuotesAndBackslash)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesCommonControlCharacters)
{
    EXPECT_EQ(jsonEscape("line1\nline2\ttab\rcr"),
              "line1\\nline2\\ttab\\rcr");
}

TEST(JsonEscape, EscapesRareControlCharactersAsUnicode)
{
    EXPECT_EQ(jsonEscape(std::string("a\x01")), "a\\u0001");
    EXPECT_EQ(jsonEscape(std::string("b\x1f")), "b\\u001f");
}

TEST(JsonEscape, PassesUtf8BytesThrough)
{
    // Multi-byte sequences have the high bit set and must not be
    // mistaken for control characters.
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, WritesCompactDocument)
{
    std::ostringstream os;
    JsonWriter w(os, /*indent=*/0);
    w.beginObject()
        .kv("name", "x")
        .kv("n", std::uint64_t{42})
        .kv("ok", true)
        .key("xs")
        .beginArray()
        .value(1.5)
        .valueNull()
        .endArray()
        .endObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(os.str(), "{\"name\":\"x\",\"n\":42,\"ok\":true,"
                        "\"xs\":[1.5,null]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, IdenticalInputsAreByteIdentical)
{
    auto emit = [] {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject().kv("pi", 3.141592653589793).endObject();
        return os.str();
    };
    EXPECT_EQ(emit(), emit());
}

TEST(JsonWriter, RejectsStructuralMisuse)
{
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject();
        EXPECT_THROW(w.value("no key"), std::logic_error);
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginArray();
        EXPECT_THROW(w.key("not an object"), std::logic_error);
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject();
        EXPECT_THROW(w.endArray(), std::logic_error);
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject().endObject();
        EXPECT_THROW(w.value(std::uint64_t{1}), std::logic_error);
    }
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

SimConfig
quick(WorkloadKind kind, std::uint32_t nodes = 2)
{
    SimConfig cfg = makeScaledConfig(kind, nodes);
    cfg.total_instructions = 40000;
    cfg.warmup_instructions = 8000;
    return cfg;
}

/** Twelve small configurations spanning both workloads and the knobs
 *  the figure benches sweep. */
std::vector<SweepItem>
determinismItems()
{
    std::vector<SweepItem> items;
    for (const auto kind : {WorkloadKind::Oltp, WorkloadKind::Dss}) {
        SimConfig base = quick(kind);
        items.push_back({"base", base});

        SimConfig inorder = base;
        inorder.system.core = cpu::makeInOrderParams(inorder.system.core);
        items.push_back({"inorder", inorder});

        SimConfig window = base;
        window.system.core.window_size = 32;
        items.push_back({"window-32", window});

        SimConfig sc = base;
        sc.system.core.model = cpu::ConsistencyModel::SC;
        items.push_back({"sc", sc});

        SimConfig mshr2 = base;
        mshr2.system.node.l1d.mshrs = 2;
        mshr2.system.node.l2.mshrs = 2;
        items.push_back({"mshr-2", mshr2});

        SimConfig sbuf = base;
        sbuf.system.node.stream_buffer_entries = 4;
        items.push_back({"sbuf-4", sbuf});
    }
    return items;
}

void
expectOccupancyEq(const stats::OccupancyTracker &a,
                  const stats::OccupancyTracker &b)
{
    EXPECT_EQ(a.busyTime(), b.busyTime());
    for (std::uint32_t n = 1; n <= 8; ++n)
        EXPECT_EQ(a.fracAtLeast(n), b.fracAtLeast(n)) << "n=" << n;
}

TEST(SweepRunner, ParallelRunIsBitwiseDeterministic)
{
    const auto items = determinismItems();
    ASSERT_GE(items.size(), 12u);

    SweepRunner serial(1);
    SweepRunner parallel(8);
    const auto a = serial.run(items);
    const auto b = parallel.run(items);
    ASSERT_EQ(a.size(), items.size());
    ASSERT_EQ(b.size(), items.size());

    for (std::size_t i = 0; i < items.size(); ++i) {
        SCOPED_TRACE("item " + std::to_string(i) + " (" + a[i].label +
                     ")");
        // Results come back in input order under both job counts.
        EXPECT_EQ(a[i].label, items[i].label);
        EXPECT_EQ(b[i].label, items[i].label);

        EXPECT_EQ(a[i].run.cycles, b[i].run.cycles);
        EXPECT_EQ(a[i].run.instructions, b[i].run.instructions);
        EXPECT_EQ(a[i].run.ipc, b[i].run.ipc);
        for (std::size_t c = 0; c < kNumStallCats; ++c) {
            EXPECT_EQ(a[i].run.breakdown[static_cast<StallCat>(c)],
                      b[i].run.breakdown[static_cast<StallCat>(c)])
                << stallCatName(static_cast<StallCat>(c));
        }

        EXPECT_EQ(a[i].ch.l1i_miss_per_fetch, b[i].ch.l1i_miss_per_fetch);
        EXPECT_EQ(a[i].ch.l1i_mpki, b[i].ch.l1i_mpki);
        EXPECT_EQ(a[i].ch.l1d_miss_rate, b[i].ch.l1d_miss_rate);
        EXPECT_EQ(a[i].ch.l2_miss_rate, b[i].ch.l2_miss_rate);
        EXPECT_EQ(a[i].ch.branch_mispredict_rate,
                  b[i].ch.branch_mispredict_rate);
        EXPECT_EQ(a[i].ch.itlb_miss_rate, b[i].ch.itlb_miss_rate);
        EXPECT_EQ(a[i].ch.dtlb_miss_rate, b[i].ch.dtlb_miss_rate);
        EXPECT_EQ(a[i].ch.total_l2_misses, b[i].ch.total_l2_misses);
        EXPECT_EQ(a[i].ch.dirty_misses, b[i].ch.dirty_misses);

        EXPECT_EQ(a[i].node0.l1i_fetches, b[i].node0.l1i_fetches);
        EXPECT_EQ(a[i].node0.l1i_misses, b[i].node0.l1i_misses);
        EXPECT_EQ(a[i].node0.l1i_sbuf_hits, b[i].node0.l1i_sbuf_hits);
        EXPECT_EQ(a[i].node0.l1d_accesses, b[i].node0.l1d_accesses);
        EXPECT_EQ(a[i].node0.l1d_misses, b[i].node0.l1d_misses);
        EXPECT_EQ(a[i].node0.l2_accesses, b[i].node0.l2_accesses);
        EXPECT_EQ(a[i].node0.l2_misses, b[i].node0.l2_misses);

        EXPECT_EQ(a[i].fabric.invalidations_sent,
                  b[i].fabric.invalidations_sent);
        EXPECT_EQ(a[i].fabric.writebacks, b[i].fabric.writebacks);
        EXPECT_EQ(a[i].fabric.totalMisses(), b[i].fabric.totalMisses());
        EXPECT_EQ(a[i].fabric.dirtyMisses(), b[i].fabric.dirtyMisses());

        expectOccupancyEq(a[i].l1d_occ, b[i].l1d_occ);
        expectOccupancyEq(a[i].l1d_read_occ, b[i].l1d_read_occ);
        expectOccupancyEq(a[i].l2_occ, b[i].l2_occ);
        expectOccupancyEq(a[i].l2_read_occ, b[i].l2_read_occ);

        EXPECT_EQ(a[i].migratory.shared_writes,
                  b[i].migratory.shared_writes);
        EXPECT_EQ(a[i].migratory.migratory_writes,
                  b[i].migratory.migratory_writes);
        EXPECT_EQ(a[i].migratory.dirty_reads, b[i].migratory.dirty_reads);
        EXPECT_EQ(a[i].migratory.write_fraction,
                  b[i].migratory.write_fraction);
        EXPECT_EQ(a[i].migratory.line_concentration_70,
                  b[i].migratory.line_concentration_70);
    }
}

TEST(SweepRunner, LowestIndexErrorWinsUnderAnyJobCount)
{
    std::vector<SweepItem> items;
    for (int i = 0; i < 6; ++i)
        items.push_back({"ok", quick(WorkloadKind::Oltp, 1)});
    items[2].cfg.total_instructions = 0; // field "total_instructions"
    items[5].cfg.oltp.hash_buckets = 0;  // field "oltp.hash_buckets"

    for (const unsigned jobs : {1u, 8u}) {
        SweepRunner runner(jobs);
        try {
            runner.run(items);
            FAIL() << "expected ConfigError (jobs=" << jobs << ")";
        } catch (const ConfigError &e) {
            EXPECT_EQ(e.field(), "total_instructions")
                << "jobs=" << jobs;
        }
    }
}

TEST(SweepRunner, BaseSeedDerivesPerItemWorkloadSeeds)
{
    std::vector<SweepItem> items(2,
                                 {"seeded", quick(WorkloadKind::Oltp, 1)});
    SweepRunner runner(1);
    runner.setBaseSeed(12345);
    const auto seeded = runner.run(items);
    // Distinct derived seeds -> the two identical configs diverge.
    EXPECT_NE(seeded[0].run.cycles, seeded[1].run.cycles);

    // Re-running with the same base seed reproduces the results.
    const auto again = runner.run(items);
    EXPECT_EQ(seeded[0].run.cycles, again[0].run.cycles);
    EXPECT_EQ(seeded[1].run.cycles, again[1].run.cycles);

    // Without a base seed the configs' own (equal) seeds are used.
    SweepRunner plain(1);
    const auto unseeded = plain.run(items);
    EXPECT_EQ(unseeded[0].run.cycles, unseeded[1].run.cycles);
}

TEST(SweepRunner, ResolveJobsPrecedence)
{
    EXPECT_EQ(SweepRunner::resolveJobs(5), 5u);

    ASSERT_EQ(setenv("DBSIM_JOBS", "3", 1), 0);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 3u);
    EXPECT_EQ(SweepRunner::resolveJobs(2), 2u); // CLI wins over env

    ASSERT_EQ(setenv("DBSIM_JOBS", "banana", 1), 0);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u); // warn + fall back

    ASSERT_EQ(unsetenv("DBSIM_JOBS"), 0);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

/** Brace/bracket balance outside string literals -- a cheap structural
 *  validity check in lieu of a JSON parser. */
bool
balancedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (const char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(SweepReportJson, EmitsSchemaAndOneEntryPerResult)
{
    SweepRunner runner(2);
    const auto results =
        runner.run({{"r0", quick(WorkloadKind::Oltp, 1)},
                    {"r1", quick(WorkloadKind::Dss, 1)}});

    SweepReport report;
    report.bench = "test_bench";
    report.jobs = runner.jobs();
    report.add("s1", results);

    std::ostringstream os;
    writeSweepJson(os, report);
    const std::string doc = os.str();

    EXPECT_TRUE(balancedJson(doc)) << doc;
    EXPECT_NE(doc.find("\"schema\": \"dbsim-bench-v2\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"bench\": \"test_bench\""), std::string::npos);
    // v2 result entries are compact single-line objects (so a journal
    // line and its report entry are byte-identical).
    EXPECT_NE(doc.find("\"label\":\"r0\""), std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"r1\""), std::string::npos);
    EXPECT_NE(doc.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(doc.find("\"sim_instructions_per_host_second\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"mshr_occupancy\""), std::string::npos);
    EXPECT_EQ(doc.back(), '\n');
}

TEST(SweepRunner, ResolveJobsClampsAbsurdValues)
{
    // CLI path: anything above kMaxJobs is clamped with a warning.
    EXPECT_EQ(SweepRunner::resolveJobs(100000), SweepRunner::kMaxJobs);
    EXPECT_EQ(SweepRunner::resolveJobs(SweepRunner::kMaxJobs),
              SweepRunner::kMaxJobs);

    // Env path: same clamp.
    ASSERT_EQ(setenv("DBSIM_JOBS", "999999999", 1), 0);
    EXPECT_EQ(SweepRunner::resolveJobs(0), SweepRunner::kMaxJobs);
    ASSERT_EQ(unsetenv("DBSIM_JOBS"), 0);
}

} // namespace
} // namespace dbsim::core
