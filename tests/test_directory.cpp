/**
 * @file
 * Unit tests for the MESI directory coherence fabric, using fake cache
 * sites.  Verifies protocol state transitions, latency classes and
 * ordering, writebacks, and the flush primitive's two variants.
 */

#include <gtest/gtest.h>

#include <map>

#include "coherence/directory.hpp"

namespace dbsim::coher {
namespace {

/** A fake node cache: tracks per-block state and invalidation calls. */
class FakeSite : public CacheSite
{
  public:
    mem::CoherState
    siteState(Addr block) override
    {
        auto it = state.find(block);
        return it == state.end() ? mem::CoherState::Invalid : it->second;
    }

    void
    siteInvalidate(Addr block) override
    {
        state.erase(block);
        ++invalidations;
    }

    void
    siteDowngrade(Addr block) override
    {
        auto it = state.find(block);
        if (it != state.end())
            it->second = mem::CoherState::Shared;
        ++downgrades;
    }

    std::map<Addr, mem::CoherState> state;
    int invalidations = 0;
    int downgrades = 0;
};

class DirectoryTest : public ::testing::Test
{
  protected:
    DirectoryTest() : fabric(4)
    {
        for (std::uint32_t i = 0; i < 4; ++i)
            fabric.attachSite(i, &site[i]);
    }

    /** Mirror a grant into the fake site like a real L2 fill would. */
    FabricResult
    read(std::uint32_t n, Addr blk, std::uint32_t home, Cycles now)
    {
        const auto r = fabric.read(n, blk, home, now, 0x1000);
        site[n].state[blk] = r.grant;
        return r;
    }

    FabricResult
    write(std::uint32_t n, Addr blk, std::uint32_t home, Cycles now)
    {
        const auto r = fabric.write(n, blk, home, now, 0x2000);
        site[n].state[blk] = r.grant;
        return r;
    }

    CoherenceFabric fabric;
    FakeSite site[4];
};

TEST_F(DirectoryTest, ColdReadGrantsExclusive)
{
    const auto r = read(0, 0x1000, 0, 0);
    EXPECT_EQ(r.cls, AccessClass::LocalMem);
    EXPECT_EQ(r.grant, mem::CoherState::Exclusive);
    EXPECT_TRUE(fabric.cached(0x1000));
}

TEST_F(DirectoryTest, RemoteReadClassifiedRemote)
{
    const auto r = read(1, 0x1000, 0, 0);
    EXPECT_EQ(r.cls, AccessClass::RemoteMem);
}

TEST_F(DirectoryTest, SecondReaderDowngradesCleanExclusive)
{
    read(0, 0x1000, 0, 0);
    const auto r = read(1, 0x1000, 0, 100);
    EXPECT_EQ(r.grant, mem::CoherState::Shared);
    // Clean-exclusive downgrades are serviced by memory, not dirty.
    EXPECT_NE(r.cls, AccessClass::RemoteDirty);
    EXPECT_EQ(site[0].downgrades, 1);
    EXPECT_EQ(site[0].siteState(0x1000), mem::CoherState::Shared);
}

TEST_F(DirectoryTest, DirtyReadIsCacheToCache)
{
    write(0, 0x1000, 0, 0); // node 0 owns Modified
    const auto r = read(1, 0x1000, 0, 100);
    EXPECT_EQ(r.cls, AccessClass::RemoteDirty);
    EXPECT_EQ(site[0].siteState(0x1000), mem::CoherState::Shared);
    EXPECT_EQ(fabric.stats().reads_dirty, 1u);
}

TEST_F(DirectoryTest, WriteInvalidatesSharers)
{
    read(0, 0x2000, 0, 0);
    read(1, 0x2000, 0, 10);
    read(2, 0x2000, 0, 20);
    const auto r = write(3, 0x2000, 0, 100);
    EXPECT_EQ(r.grant, mem::CoherState::Modified);
    EXPECT_EQ(site[0].siteState(0x2000), mem::CoherState::Invalid);
    EXPECT_EQ(site[1].siteState(0x2000), mem::CoherState::Invalid);
    EXPECT_EQ(site[2].siteState(0x2000), mem::CoherState::Invalid);
    EXPECT_GE(fabric.stats().invalidations_sent, 3u);
}

TEST_F(DirectoryTest, UpgradeFromSharedCountsUpgrade)
{
    read(0, 0x2000, 0, 0);
    read(1, 0x2000, 0, 10);
    write(0, 0x2000, 0, 50);
    EXPECT_EQ(fabric.stats().upgrades, 1u);
    EXPECT_EQ(site[1].siteState(0x2000), mem::CoherState::Invalid);
}

TEST_F(DirectoryTest, WriteToDirtyRemoteIsDirtyTransfer)
{
    write(0, 0x3000, 1, 0);
    const auto r = write(2, 0x3000, 1, 100);
    EXPECT_EQ(r.cls, AccessClass::RemoteDirty);
    EXPECT_EQ(site[0].siteState(0x3000), mem::CoherState::Invalid);
    EXPECT_EQ(fabric.stats().writes_dirty, 1u);
}

TEST_F(DirectoryTest, LatencyOrderingLocalRemoteDirty)
{
    // Contentionless latencies must order: local < remote < dirty.
    const Cycles local = read(0, 0x100, 0, 0).ready - 0;
    const Cycles remote = read(1, 0x200, 0, 0).ready - 0;
    write(2, 0x300, 0, 0);
    const Cycles dirty = read(3, 0x300, 0, 10000).ready - 10000;
    EXPECT_LT(local, remote);
    EXPECT_LT(remote, dirty);
    // Rough magnitudes (paper figure 1, minus the L2 probe):
    EXPECT_NEAR(static_cast<double>(local), 80.0, 25.0);
    EXPECT_NEAR(static_cast<double>(remote), 150.0, 40.0);
    EXPECT_NEAR(static_cast<double>(dirty), 270.0, 60.0);
}

TEST_F(DirectoryTest, EvictDirtyWritesBack)
{
    write(0, 0x4000, 0, 0);
    fabric.evict(0, 0x4000, 0, /*dirty=*/true, 100);
    EXPECT_EQ(fabric.stats().writebacks, 1u);
    EXPECT_FALSE(fabric.cached(0x4000));
    // Next reader is serviced by memory.
    const auto r = read(1, 0x4000, 0, 200);
    EXPECT_EQ(r.cls, AccessClass::RemoteMem);
}

TEST_F(DirectoryTest, EvictSharedDropsSharer)
{
    read(0, 0x5000, 0, 0);
    read(1, 0x5000, 0, 10);
    fabric.evict(1, 0x5000, 0, false, 50);
    // Node 1 gone; a write by node 0 should not invalidate node 1.
    site[1].invalidations = 0;
    write(0, 0x5000, 0, 100);
    EXPECT_EQ(site[1].invalidations, 0);
}

TEST_F(DirectoryTest, FlushKeepsCleanCopyAndMemoryServicesNextRead)
{
    write(0, 0x6000, 1, 0);
    const Cycles done = fabric.flush(0, 0x6000, 1, 100);
    EXPECT_NE(done, kNever);
    EXPECT_EQ(fabric.stats().flushes, 1u);
    EXPECT_EQ(site[0].siteState(0x6000), mem::CoherState::Shared);
    const auto r = read(2, 0x6000, 1, 500);
    EXPECT_NE(r.cls, AccessClass::RemoteDirty);
}

TEST_F(DirectoryTest, FlushOnNonOwnedIsNoop)
{
    read(0, 0x7000, 0, 0);
    site[0].state[0x7000] = mem::CoherState::Shared;
    fabric.evict(0, 0x7000, 0, false, 10);
    EXPECT_EQ(fabric.flush(1, 0x7000, 0, 100), kNever);
    EXPECT_EQ(fabric.stats().flushes, 0u);
}

TEST_F(DirectoryTest, FlushOnCleanExclusiveIsNoop)
{
    read(0, 0x8000, 0, 0); // granted E, never written
    EXPECT_EQ(fabric.flush(0, 0x8000, 0, 100), kNever);
}

TEST(DirectoryVariants, InvalidatingFlushRemovesCopy)
{
    FabricParams params;
    params.flush_invalidates = true;
    CoherenceFabric fabric(2, params);
    FakeSite s0, s1;
    fabric.attachSite(0, &s0);
    fabric.attachSite(1, &s1);

    const auto w = fabric.write(0, 0x100, 0, 0, 0);
    s0.state[0x100] = w.grant;
    fabric.flush(0, 0x100, 0, 50);
    EXPECT_EQ(s0.siteState(0x100), mem::CoherState::Invalid);
    EXPECT_FALSE(fabric.cached(0x100));
}

TEST(DirectoryVariants, MigratoryReadDiscountApplies)
{
    FabricParams fast;
    fast.migratory_read_factor = 0.6;
    CoherenceFabric f_fast(2, fast);
    CoherenceFabric f_slow(2, FabricParams{});
    FakeSite fa[2], sa[2];
    for (int i = 0; i < 2; ++i) {
        f_fast.attachSite(i, &fa[i]);
        f_slow.attachSite(i, &sa[i]);
    }

    // Build migratory history on both fabrics (write 0 -> read 1 ->
    // write 1 marks the line migratory), then measure the next dirty
    // read of the migratory line.
    auto drive = [](CoherenceFabric &f, FakeSite *s) -> Cycles {
        s[0].state[0x40] = f.write(0, 0x40, 0, 0, 1).grant;
        s[1].state[0x40] = f.read(1, 0x40, 0, 1000, 2).grant;
        s[1].state[0x40] = f.write(1, 0x40, 0, 2000, 3).grant;
        const auto r = f.read(0, 0x40, 0, 10000, 4);
        s[0].state[0x40] = r.grant;
        return r.ready - 10000;
    };
    const Cycles t_fast = drive(f_fast, fa);
    const Cycles t_slow = drive(f_slow, sa);
    EXPECT_TRUE(f_fast.migratory().isMigratory(0x40));
    EXPECT_LT(t_fast, t_slow);
    EXPECT_NEAR(static_cast<double>(t_fast),
                0.6 * static_cast<double>(t_slow),
                0.05 * static_cast<double>(t_slow));
}

} // namespace
} // namespace dbsim::coher
