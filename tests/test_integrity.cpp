/**
 * @file
 * Tests of the simulation integrity layer: config validation
 * (ConfigError), the forward-progress watchdog, the coherence invariant
 * checker, the hardened panic path with crash dumps, and the hardened
 * environment-variable parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/errors.hpp"
#include "common/log.hpp"
#include "coherence/checker.hpp"
#include "coherence/directory.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "sim/diagnostics.hpp"
#include "sim/system.hpp"
#include "trace/source.hpp"
#include "workload/oltp_engine.hpp"

namespace dbsim {
namespace {

using trace::OpClass;
using trace::TraceRecord;

TraceRecord
rec(OpClass op, Addr pc, Addr va = kNoAddr, std::uint64_t extra = 0)
{
    TraceRecord r;
    r.op = op;
    r.pc = pc;
    r.vaddr = va;
    r.extra = extra;
    return r;
}

/** The field a ConfigError blames, or "" if the config validates. */
std::string
rejectedField(const sim::SystemParams &sp)
{
    try {
        sp.validate();
        return "";
    } catch (const ConfigError &e) {
        return e.field();
    }
}

std::string
rejectedField(const core::SimConfig &cfg)
{
    try {
        cfg.validate();
        return "";
    } catch (const ConfigError &e) {
        return e.field();
    }
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

TEST(ConfigValidation, DefaultsAndPresetsAreValid)
{
    EXPECT_NO_THROW(sim::SystemParams{}.validate());
    for (auto kind : {core::WorkloadKind::Oltp, core::WorkloadKind::Dss}) {
        EXPECT_NO_THROW(core::makeScaledConfig(kind).validate());
        EXPECT_NO_THROW(core::makePaperScaleConfig(kind).validate());
        EXPECT_NO_THROW(core::makeScaledConfig(kind, 8).validate());
    }
}

TEST(ConfigValidation, RejectsNonPowerOfTwoLineSize)
{
    sim::SystemParams sp;
    sp.node.l1i.line_bytes = 96;
    sp.node.l1d.line_bytes = 96;
    sp.node.l2.line_bytes = 96;
    EXPECT_EQ(rejectedField(sp), "system.node.l1i.line_bytes");
}

TEST(ConfigValidation, RejectsMismatchedLineSizes)
{
    sim::SystemParams sp;
    sp.node.l2.line_bytes = 128;
    EXPECT_EQ(rejectedField(sp), "system.node.*.line_bytes");
}

TEST(ConfigValidation, RejectsZeroMshrs)
{
    sim::SystemParams sp;
    sp.node.l1d.mshrs = 0;
    EXPECT_EQ(rejectedField(sp), "system.node.l1d.mshrs");
    sp.node.l1d.mshrs = 65;
    EXPECT_EQ(rejectedField(sp), "system.node.l1d.mshrs");
}

TEST(ConfigValidation, RejectsBadNodeCounts)
{
    sim::SystemParams sp;
    sp.num_nodes = 0;
    EXPECT_EQ(rejectedField(sp), "system.num_nodes");
    sp.num_nodes = 33;
    EXPECT_EQ(rejectedField(sp), "system.num_nodes");
    sp.num_nodes = 32;
    EXPECT_EQ(rejectedField(sp), "");
}

TEST(ConfigValidation, RejectsNonPowerOfTwoSetCount)
{
    sim::SystemParams sp;
    // 3-way 96 KB with 64 B lines: 512 sets (fine).  3-way 48 KB: 256
    // sets (fine).  3-way 64 KB is not divisible at all.
    sp.node.l1d = {64 * 1024, 3, 64, 1, 8, 2};
    EXPECT_EQ(rejectedField(sp), "system.node.l1d.size_bytes");
}

TEST(ConfigValidation, RejectsDegenerateCoreAndPage)
{
    sim::SystemParams sp;
    sp.core.window_size = 2;
    sp.core.issue_width = 4;
    EXPECT_EQ(rejectedField(sp), "system.core.window_size");

    sp = sim::SystemParams{};
    sp.node.page_bytes = 32; // smaller than the 64 B line
    EXPECT_EQ(rejectedField(sp), "system.node.page_bytes");

    sp = sim::SystemParams{};
    sp.core.write_buffer_size = 0;
    EXPECT_EQ(rejectedField(sp), "system.core.write_buffer_size");
}

TEST(ConfigValidation, RejectsWarmupAtOrAboveBudget)
{
    core::SimConfig cfg = core::makeScaledConfig(core::WorkloadKind::Oltp);
    cfg.warmup_instructions = cfg.total_instructions;
    EXPECT_EQ(rejectedField(cfg), "warmup_instructions");
    cfg.warmup_instructions = cfg.total_instructions + 1;
    EXPECT_EQ(rejectedField(cfg), "warmup_instructions");
    cfg.warmup_instructions = cfg.total_instructions - 1;
    EXPECT_EQ(rejectedField(cfg), "");
}

TEST(ConfigValidation, RejectsWorkloadProcessMismatch)
{
    core::SimConfig cfg = core::makeScaledConfig(core::WorkloadKind::Oltp, 4);
    cfg.oltp.num_procs = 30; // not a multiple of 4
    EXPECT_EQ(rejectedField(cfg), "oltp.num_procs");
    cfg.oltp.num_procs = 0;
    EXPECT_EQ(rejectedField(cfg), "oltp.num_procs");

    core::SimConfig dss = core::makeScaledConfig(core::WorkloadKind::Dss, 4);
    dss.dss.num_procs = 6;
    EXPECT_EQ(rejectedField(dss), "dss.num_procs");
    dss.dss.selectivity = 1.5;
    dss.dss.num_procs = 8;
    EXPECT_EQ(rejectedField(dss), "dss.selectivity");
}

TEST(ConfigValidation, MessageNamesFieldAndRemedy)
{
    sim::SystemParams sp;
    sp.node.l1d.mshrs = 0;
    try {
        sp.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("config error [system.node.l1d.mshrs]"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("at least one MSHR"), std::string::npos) << msg;
    }
}

TEST(ConfigValidation, SystemConstructorRejectsBeforeBuildingState)
{
    sim::SystemParams sp;
    sp.node.l2.line_bytes = 48;
    EXPECT_THROW(sim::System{sp}, ConfigError);
}

TEST(ConfigValidation, SimulationConstructorRejectsBeforeBuildingState)
{
    core::SimConfig cfg = core::makeScaledConfig(core::WorkloadKind::Oltp);
    cfg.warmup_instructions = cfg.total_instructions;
    EXPECT_THROW(core::Simulation{cfg}, ConfigError);
}

// ---------------------------------------------------------------------
// Forward-progress watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, FiresOnArtificialDeadlockAndNamesStuckCpu)
{
    sim::SystemParams sp;
    sp.num_nodes = 1;
    sp.watchdog_cycles = 100'000;
    // Keep the safety cap far beyond the injected block so the watchdog
    // (not the max_cycles fatal) is what trips.
    sp.max_cycles = 4ull << 30;

    sim::System sys(sp);
    std::vector<TraceRecord> v;
    for (int i = 0; i < 20; ++i)
        v.push_back(rec(OpClass::IntAlu, 0x1000 + i * 4));
    // Artificial deadlock: the only process blocks on a "syscall" whose
    // wake time is two billion cycles out; nothing can retire meanwhile.
    v.push_back(rec(OpClass::SyscallBlock, 0x2000, kNoAddr, 2'000'000'000));
    v.push_back(rec(OpClass::IntAlu, 0x2004));
    sys.addProcess(std::make_unique<trace::VectorSource>(v), 0);

    PanicThrowGuard guard;
    try {
        sys.run(10'000'000);
        FAIL() << "expected the watchdog to fire";
    } catch (const SimInvariantError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("forward-progress watchdog"), std::string::npos)
            << msg;
        // The crash dump names the stuck CPU and its scheduler state.
        EXPECT_NE(msg.find("cpu0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("machine state"), std::string::npos) << msg;
        EXPECT_NE(msg.find("blocked=1"), std::string::npos) << msg;
    }
}

TEST(Watchdog, DisabledWatchdogLetsLongBlocksComplete)
{
    sim::SystemParams sp;
    sp.num_nodes = 1;
    sp.watchdog_cycles = 0; // disabled
    sp.max_cycles = 4ull << 30;

    sim::System sys(sp);
    std::vector<TraceRecord> v;
    v.push_back(rec(OpClass::IntAlu, 0x1000));
    v.push_back(rec(OpClass::SyscallBlock, 0x1004, kNoAddr, 1'000'000'000));
    for (int i = 0; i < 10; ++i)
        v.push_back(rec(OpClass::IntAlu, 0x2000 + i * 4));
    sys.addProcess(std::make_unique<trace::VectorSource>(v), 0);

    const auto r = sys.run(10'000'000);
    EXPECT_EQ(r.instructions, 12u);
}

TEST(Watchdog, ToleratesLegitimateBlockingWithinWindow)
{
    sim::SystemParams sp;
    sp.num_nodes = 1;
    sp.watchdog_cycles = 50'000;
    sim::System sys(sp);
    std::vector<TraceRecord> v;
    // Repeated sub-window blocks must not trip the watchdog even though
    // each one is a long retire-free gap.
    for (int i = 0; i < 5; ++i) {
        v.push_back(rec(OpClass::IntAlu, 0x1000 + i * 16));
        v.push_back(
            rec(OpClass::SyscallBlock, 0x1004 + i * 16, kNoAddr, 40'000));
    }
    sys.addProcess(std::make_unique<trace::VectorSource>(v), 0);
    PanicThrowGuard guard;
    EXPECT_NO_THROW(sys.run(10'000'000));
}

// ---------------------------------------------------------------------
// Coherence invariant checker
// ---------------------------------------------------------------------

TEST(CoherenceChecker, CleanOltpRunHasNoViolations)
{
    sim::SystemParams sp;
    sp.num_nodes = 2;
    sp.check_coherence = true;
    sim::System sys(sp);

    workload::OltpParams op;
    op.num_procs = 8;
    workload::OltpWorkload wl(op);
    for (ProcId p = 0; p < op.num_procs; ++p)
        sys.addProcess(wl.makeProcess(p), p % 2);
    const auto r = sys.run(60'000, 10'000);

    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(sys.checker()->stats().transactions, 0u);
    EXPECT_GT(sys.checker()->stats().audits, 0u);
    EXPECT_EQ(sys.checker()->stats().violations, 0u);
}

/** A cache site whose reported state the test controls directly. */
struct FakeSite : coher::CacheSite
{
    mem::CoherState st = mem::CoherState::Invalid;
    mem::CoherState siteState(Addr) override { return st; }
    void siteInvalidate(Addr) override { st = mem::CoherState::Invalid; }
    void siteDowngrade(Addr) override { st = mem::CoherState::Shared; }
};

TEST(CoherenceChecker, DetectsForeignStrongCopy)
{
    coher::CoherenceFabric fabric(2);
    FakeSite site0, site1;
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    coher::CoherenceChecker checker(/*panic_on_violation=*/false);
    fabric.attachChecker(&checker);

    const Addr block = 0x4000;
    // Node 0 takes the line Exclusive (uncached -> E grant, owner=0).
    const auto res = fabric.read(0, block, 0, 0, 0x100);
    EXPECT_EQ(res.grant, mem::CoherState::Exclusive);
    site0.st = mem::CoherState::Exclusive;

    // Sanity: the settled state passes the audit.
    checker.auditPending(fabric, 1);
    EXPECT_EQ(checker.stats().violations, 0u);

    // Corrupt the machine: node 1 claims a Modified copy the directory
    // never granted (I3: foreign strong copy while an owner is recorded).
    site1.st = mem::CoherState::Modified;
    checker.auditBlock(fabric, block, "test", 2);
    ASSERT_EQ(checker.stats().violations, 1u);
    ASSERT_EQ(checker.violations().size(), 1u);
    const std::string &v = checker.violations().front();
    EXPECT_NE(v.find("node 1"), std::string::npos) << v;
    EXPECT_NE(v.find("recorded owner"), std::string::npos) << v;
}

TEST(CoherenceChecker, DetectsSilentStrongCopy)
{
    coher::CoherenceFabric fabric(2);
    FakeSite site0, site1;
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    coher::CoherenceChecker checker(false);
    fabric.attachChecker(&checker);

    const Addr block = 0x8000;
    fabric.read(0, block, 0, 0, 0x100);
    site0.st = mem::CoherState::Exclusive;
    fabric.evict(0, block, 0, /*dirty=*/false, 5);
    site0.st = mem::CoherState::Invalid;
    checker.auditPending(fabric, 6);
    EXPECT_EQ(checker.stats().violations, 0u);

    // Corrupt: node 1 materializes a Modified copy of a line the
    // directory believes is uncached (I2: silent strong copy).
    site1.st = mem::CoherState::Modified;
    checker.auditBlock(fabric, block, "test", 7);
    ASSERT_EQ(checker.stats().violations, 1u);
    EXPECT_NE(checker.violations().front().find("unknown to the directory"),
              std::string::npos)
        << checker.violations().front();
}

TEST(CoherenceChecker, CountsDistinctViolatingBlocks)
{
    coher::CoherenceFabric fabric(2);
    FakeSite site0, site1;
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    coher::CoherenceChecker checker(/*panic_on_violation=*/false);
    fabric.attachChecker(&checker);

    const Addr b1 = 0x4000, b2 = 0x8000;
    fabric.read(0, b1, 0, 0, 0x100);
    fabric.read(0, b2, 0, 10, 0x104);
    site0.st = mem::CoherState::Exclusive;
    checker.auditPending(fabric, 20);
    EXPECT_EQ(checker.stats().violations, 0u);
    EXPECT_EQ(checker.stats().violating_blocks, 0u);

    // FakeSite reports one state for every block, so node 1's bogus
    // Modified copy corrupts both lines at once.  Auditing b1 twice
    // must count two violations but only one violating block.
    site1.st = mem::CoherState::Modified;
    checker.auditBlock(fabric, b1, "test", 30);
    checker.auditBlock(fabric, b2, "test", 31);
    checker.auditBlock(fabric, b1, "test", 32);
    EXPECT_EQ(checker.stats().violations, 3u);
    EXPECT_EQ(checker.stats().violating_blocks, 2u);
    const std::vector<Addr> blocks = checker.violatingBlocks();
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0], b1); // sorted ascending: b1 < b2
    EXPECT_EQ(blocks[1], b2);
}

// ---------------------------------------------------------------------
// Dynamic checker vs. seeded protocol mutants
// ---------------------------------------------------------------------

/** Drive read(0) -> write(1) on one block with @p bug seeded and audit;
 *  returns the checker for inspection. */
struct MutantAudit
{
    coher::CoherenceChecker checker{/*panic_on_violation=*/false};
    std::uint64_t triggers = 0;
};

MutantAudit
auditWithMutant(verify::ProtocolBug bug)
{
    FakeSite site0, site1;
    coher::CoherenceFabric fabric(2);
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    MutantAudit out;
    fabric.attachChecker(&out.checker);
    verify::ProtocolMutator mut;
    mut.bug = bug;
    fabric.attachMutator(&mut);

    // read(0), read(1), evict(0), read(0) again (the directory-shared
    // refill path), then write(1): every fabric mutation point is on
    // this path.
    const Addr block = 0x4000;
    site0.st = fabric.read(0, block, 0, 0, 0x100).grant;
    site1.st = fabric.read(1, block, 0, 10, 0x200).grant;
    fabric.evict(0, block, 0, /*dirty=*/false, 20);
    site0.st = mem::CoherState::Invalid;
    site0.st = fabric.read(0, block, 0, 30, 0x100).grant;
    site1.st = fabric.write(1, block, 0, 40, 0x204).grant;
    out.checker.auditBlock(fabric, block, "test", 50);
    out.triggers = mut.triggers;
    return out;
}

TEST(CoherenceChecker, StaleOwnerMutantIsObservableAtAuditPoints)
{
    // The stale-owner mutant leaves the writer's Modified copy
    // unrecorded -- exactly the I2/I3 condition the dynamic checker
    // audits, so it must be flagged with a non-empty diagnostic.
    const MutantAudit a = auditWithMutant(verify::ProtocolBug::StaleOwner);
    EXPECT_GT(a.triggers, 0u);
    ASSERT_GE(a.checker.stats().violations, 1u);
    ASSERT_FALSE(a.checker.violations().empty());
    EXPECT_FALSE(a.checker.violations().front().empty());
    EXPECT_NE(a.checker.violations().front().find("directory"),
              std::string::npos)
        << a.checker.violations().front();
    EXPECT_GE(a.checker.stats().violating_blocks, 1u);
}

TEST(CoherenceChecker, WeakCopyMutantsAreBeyondAuditScopeByDesign)
{
    // Dropped invalidations and lost sharer bits leave stale *Shared*
    // copies, which the audit invariants deliberately tolerate (real
    // L2s replace clean lines silently, so sharer bits are
    // conservative).  These mutants are the model checker's job -- its
    // strict agreement and data-value invariants catch them (see
    // test_verify.cpp); here we pin down the division of labor.
    for (const verify::ProtocolBug bug :
         {verify::ProtocolBug::DroppedInvalidation,
          verify::ProtocolBug::LostSharerBit}) {
        const MutantAudit a = auditWithMutant(bug);
        EXPECT_EQ(a.checker.stats().violations, 0u)
            << verify::protocolBugName(bug);
    }
}

TEST(CoherenceChecker, PanickingModeThrowsUnderGuard)
{
    coher::CoherenceFabric fabric(2);
    FakeSite site0, site1;
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    coher::CoherenceChecker checker; // panicking mode (the default)
    fabric.attachChecker(&checker);

    const Addr block = 0xC000;
    fabric.read(0, block, 0, 0, 0x100);
    site0.st = mem::CoherState::Exclusive;
    site1.st = mem::CoherState::Modified;

    PanicThrowGuard guard;
    EXPECT_THROW(checker.auditPending(fabric, 1), SimInvariantError);
}

// ---------------------------------------------------------------------
// Hardened panic path
// ---------------------------------------------------------------------

TEST(PanicPath, CrashDumpsRunBeforeThrow)
{
    const int h = registerCrashDump(
        "integrity test", [] { return std::string("MARKER_FROM_DUMP"); });
    PanicThrowGuard guard;
    try {
        DBSIM_PANIC("synthetic failure ", 42);
        FAIL() << "expected SimInvariantError";
    } catch (const SimInvariantError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("synthetic failure 42"), std::string::npos) << msg;
        EXPECT_NE(msg.find("crash dump: integrity test"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("MARKER_FROM_DUMP"), std::string::npos) << msg;
    }
    unregisterCrashDump(h);
    try {
        DBSIM_PANIC("second failure");
    } catch (const SimInvariantError &e) {
        EXPECT_EQ(std::string(e.what()).find("MARKER_FROM_DUMP"),
                  std::string::npos);
    }
}

TEST(PanicPath, ThrowGuardRestoresAbortBehavior)
{
    EXPECT_EQ(panicBehavior(), PanicBehavior::Abort);
    {
        PanicThrowGuard guard;
        EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
        {
            PanicThrowGuard nested;
            EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
        }
        EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
    }
    EXPECT_EQ(panicBehavior(), PanicBehavior::Abort);
}

TEST(PanicPath, FaultyDumpCallbackDoesNotMaskThePanic)
{
    const int h = registerCrashDump("broken dump", []() -> std::string {
        throw std::runtime_error("dump exploded");
    });
    PanicThrowGuard guard;
    try {
        DBSIM_PANIC("original message");
        FAIL() << "expected SimInvariantError";
    } catch (const SimInvariantError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("original message"), std::string::npos) << msg;
    }
    unregisterCrashDump(h);
}

// ---------------------------------------------------------------------
// Hardened environment parsing
// ---------------------------------------------------------------------

TEST(CyclesFromEnv, ParsesValidValuesAndRejectsGarbage)
{
    const char *kVar = "DBSIM_TEST_CYCLES";
    ::unsetenv(kVar);
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::setenv(kVar, "", 1);
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::setenv(kVar, "250000", 1);
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 250'000u);

    ::setenv(kVar, "garbage", 1);
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::setenv(kVar, "123abc", 1); // trailing junk: reject, not read 123
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::setenv(kVar, "-5", 1); // strtoull would wrap this silently
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::setenv(kVar, "99999999999999999999999999", 1); // overflow
    EXPECT_EQ(sim::cyclesFromEnv(kVar), 0u);

    ::unsetenv(kVar);
}

// ---------------------------------------------------------------------
// Diagnostics rendering
// ---------------------------------------------------------------------

TEST(Diagnostics, MachineStateDumpCoversEveryCpuAndTheDirectory)
{
    sim::SystemParams sp;
    sp.num_nodes = 2;
    sim::System sys(sp);
    workload::OltpParams op;
    op.num_procs = 4;
    workload::OltpWorkload wl(op);
    for (ProcId p = 0; p < op.num_procs; ++p)
        sys.addProcess(wl.makeProcess(p), p % 2);
    sys.run(20'000);

    const std::string dump = sim::machineStateDump(sys);
    EXPECT_NE(dump.find("cpu0"), std::string::npos) << dump;
    EXPECT_NE(dump.find("cpu1"), std::string::npos) << dump;
    EXPECT_NE(dump.find("l1d mshr"), std::string::npos) << dump;
    EXPECT_NE(dump.find("directory:"), std::string::npos) << dump;
    EXPECT_NE(dump.find("sched:"), std::string::npos) << dump;
    EXPECT_NE(dump.find("locks:"), std::string::npos) << dump;
}

// The machine-state dump renders unordered containers (the lock table,
// the checker's violating-block set) through sorted snapshots, so two
// identically configured runs -- and even two machines whose unordered
// maps were populated in different orders -- must dump byte-identical
// text (DESIGN.md §5c).

TEST(Diagnostics, MachineStateDumpIsByteIdenticalAcrossRuns)
{
    auto run_and_dump = [] {
        sim::SystemParams sp;
        sp.num_nodes = 2;
        sim::System sys(sp);
        workload::OltpParams op;
        op.num_procs = 4;
        workload::OltpWorkload wl(op);
        for (ProcId p = 0; p < op.num_procs; ++p)
            sys.addProcess(wl.makeProcess(p), p % 2);
        sys.run(20'000);
        return sim::machineStateDump(sys);
    };
    EXPECT_EQ(run_and_dump(), run_and_dump());
}

TEST(Diagnostics, LockTableDumpIsSortedRegardlessOfInsertionOrder)
{
    sim::SystemParams sp;
    sp.num_nodes = 1;
    sim::System a(sp);
    sim::System b(sp);

    // Same final lock table, inserted in opposite orders: the unordered
    // map may hash/rehash differently, but the dumps must match.
    const Addr addrs[] = {0x400, 0x100, 0x900, 0x200, 0x700};
    for (std::size_t i = 0; i < std::size(addrs); ++i)
        ASSERT_TRUE(a.lockTryAcquire(addrs[i], static_cast<ProcId>(i)));
    for (std::size_t i = std::size(addrs); i-- > 0;)
        ASSERT_TRUE(b.lockTryAcquire(addrs[i], static_cast<ProcId>(i)));

    const auto held = a.heldLocks();
    ASSERT_EQ(held.size(), std::size(addrs));
    for (std::size_t i = 1; i < held.size(); ++i)
        EXPECT_LT(held[i - 1].first, held[i].first);

    EXPECT_EQ(sim::machineStateDump(a), sim::machineStateDump(b));
    EXPECT_NE(sim::machineStateDump(a).find("locks: 5 held (0x100:p1"),
              std::string::npos)
        << sim::machineStateDump(a);
}

TEST(CoherenceChecker, ViolatingBlocksAreReportedSorted)
{
    coher::CoherenceFabric fabric(2);
    FakeSite site0, site1;
    fabric.attachSite(0, &site0);
    fabric.attachSite(1, &site1);
    coher::CoherenceChecker checker(/*panic_on_violation=*/false);

    // Node 1 claims a Modified copy of lines the directory believes
    // uncached (I2), audited in non-ascending block order.
    site1.st = mem::CoherState::Modified;
    for (const Addr block : {Addr{0x3c00}, Addr{0x1400}, Addr{0x2800}})
        checker.auditBlock(fabric, block, "test", 10);

    EXPECT_EQ(checker.stats().violations, 3u);
    const std::vector<Addr> blocks = checker.violatingBlocks();
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0], Addr{0x1400});
    EXPECT_EQ(blocks[1], Addr{0x2800});
    EXPECT_EQ(blocks[2], Addr{0x3c00});
}

} // namespace
} // namespace dbsim
