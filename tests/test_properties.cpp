/**
 * @file
 * Parameterized property sweeps (TEST_P): invariants that must hold
 * across whole families of configurations rather than single points --
 * cache geometry invariants, MSHR-size behaviors, mesh scaling,
 * consistency-model cost ordering, and end-to-end determinism across
 * workloads and machine sizes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "interconnect/network.hpp"
#include "memory/cache.hpp"
#include "memory/mshr.hpp"
#include "workload/dss_engine.hpp"
#include "workload/oltp_engine.hpp"

namespace dbsim {
namespace {

// -------------------------------------------------- cache geometries

using CacheGeom = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;

class CacheGeometry : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometry, CapacityNeverExceededAndHitsAfterInsert)
{
    const auto [size, assoc, line] = GetParam();
    mem::CacheArray c(size, assoc, line);
    const std::uint64_t capacity_lines = size / line;
    Rng rng(size ^ assoc);
    for (int i = 0; i < 4000; ++i) {
        const Addr blk = rng.below(1 << 22) * line;
        c.insert(blk, mem::CoherState::Shared);
        // The just-inserted line must hit immediately.
        EXPECT_TRUE(c.access(blk).has_value());
        EXPECT_LE(c.validLines(), capacity_lines);
    }
}

TEST_P(CacheGeometry, WorkingSetWithinWaysAlwaysHits)
{
    const auto [size, assoc, line] = GetParam();
    mem::CacheArray c(size, assoc, line);
    const std::uint32_t sets = c.numSets();
    // One line per set, repeated round-robin: never evicts.
    for (int round = 0; round < 3; ++round) {
        for (std::uint32_t s = 0; s < sets; ++s) {
            const Addr blk = static_cast<Addr>(s) * line;
            if (round == 0)
                c.insert(blk, mem::CoherState::Exclusive);
            else
                EXPECT_TRUE(c.access(blk).has_value());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(CacheGeom{1024, 1, 32}, CacheGeom{4096, 2, 64},
                      CacheGeom{16 * 1024, 2, 64},
                      CacheGeom{32 * 1024, 4, 64},
                      CacheGeom{512 * 1024, 4, 64},
                      CacheGeom{64 * 1024, 8, 128}));

// ---------------------------------------------------- MSHR capacities

class MshrSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MshrSizes, AcceptsExactlyCapacityDistinctLines)
{
    const std::uint32_t n = GetParam();
    mem::MshrFile m(n);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_TRUE(m.allocate(static_cast<Addr>(i) * 64, true, 0, 1000));
    EXPECT_FALSE(m.allocate(static_cast<Addr>(n) * 64, true, 0, 1000));
    // Coalescing still works at capacity.
    EXPECT_EQ(m.coalesce(0, true, 1), 1000u);
    m.drain(1000);
    EXPECT_EQ(m.inUse(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MshrSizes,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ------------------------------------------------------- mesh scaling

class MeshSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MeshSizes, LatencyMonotoneInHops)
{
    const std::uint32_t nodes = GetParam();
    net::Mesh probe(nodes);
    // Contentionless latency: zero for self, and nondecreasing in the
    // hop count (each pair measured on a fresh, uncontended mesh).
    Cycles by_hops[64] = {};
    for (std::uint32_t s = 0; s < nodes; ++s) {
        for (std::uint32_t d = 0; d < nodes; ++d) {
            net::Mesh fresh(nodes);
            const Cycles lat = fresh.control(s, d, 0);
            const std::uint32_t h = probe.hops(s, d);
            if (h == 0) {
                EXPECT_EQ(lat, 0u);
            } else {
                ASSERT_LT(h, 64u);
                if (by_hops[h] == 0)
                    by_hops[h] = lat;
                EXPECT_EQ(lat, by_hops[h]) << "same hops, same latency";
            }
        }
    }
    Cycles prev = 0;
    for (std::uint32_t h = 1; h < 64; ++h) {
        if (by_hops[h] == 0)
            continue;
        EXPECT_GT(by_hops[h], prev);
        prev = by_hops[h];
    }
}

TEST_P(MeshSizes, HopsSymmetric)
{
    const std::uint32_t nodes = GetParam();
    net::Mesh m(nodes);
    for (std::uint32_t s = 0; s < nodes; ++s)
        for (std::uint32_t d = 0; d < nodes; ++d)
            EXPECT_EQ(m.hops(s, d), m.hops(d, s));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ------------------------------------- end-to-end determinism sweep

using DetParam = std::tuple<core::WorkloadKind, std::uint32_t>;

class Determinism : public ::testing::TestWithParam<DetParam>
{
};

TEST_P(Determinism, IdenticalConfigsIdenticalCycles)
{
    const auto [kind, nodes] = GetParam();
    auto run_once = [&] {
        core::SimConfig cfg = core::makeScaledConfig(kind, nodes);
        cfg.total_instructions = 120000;
        cfg.warmup_instructions = 20000;
        core::Simulation s(cfg);
        return s.run();
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.breakdown.total(), b.breakdown.total());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Determinism,
    ::testing::Combine(::testing::Values(core::WorkloadKind::Oltp,
                                         core::WorkloadKind::Dss),
                       ::testing::Values(1u, 2u, 4u)));

// -------------------------------- consistency-model cost ordering

class ConsistencySweep
    : public ::testing::TestWithParam<core::WorkloadKind>
{
};

TEST_P(ConsistencySweep, RelaxationNeverHurts)
{
    // Across both workloads: CPI(SC) >= CPI(PC) >= CPI(RC) within a
    // small tolerance (the models only remove constraints).
    const auto kind = GetParam();
    auto cpi_for = [&](cpu::ConsistencyModel m) {
        core::SimConfig cfg = core::makeScaledConfig(kind);
        cfg.system.core.model = m;
        cfg.total_instructions = 200000;
        cfg.warmup_instructions = 40000;
        core::Simulation s(cfg);
        const auto r = s.run();
        return r.breakdown.total() / static_cast<double>(r.instructions);
    };
    const double sc = cpi_for(cpu::ConsistencyModel::SC);
    const double pc = cpi_for(cpu::ConsistencyModel::PC);
    const double rc = cpi_for(cpu::ConsistencyModel::RC);
    EXPECT_GE(sc * 1.02, pc);
    EXPECT_GE(pc * 1.02, rc);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ConsistencySweep,
                         ::testing::Values(core::WorkloadKind::Oltp,
                                           core::WorkloadKind::Dss));

// ------------------------------------ issue-width sweep on OLTP

class WidthSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WidthSweep, RunsAndRetiresBudget)
{
    core::SimConfig cfg = core::makeScaledConfig(core::WorkloadKind::Oltp);
    cfg.system.core.issue_width = GetParam();
    cfg.total_instructions = 100000;
    cfg.warmup_instructions = 0;
    core::Simulation s(cfg);
    const auto r = s.run();
    EXPECT_GE(r.instructions, 100000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ------------------------------------ workload generator sweeps

class OltpSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OltpSeeds, LockPairingHoldsForAllSeeds)
{
    workload::OltpParams p;
    p.seed = GetParam();
    workload::OltpWorkload wl(p);
    auto src = wl.makeProcess(0);
    trace::TraceRecord r;
    std::map<Addr, int> held;
    for (int i = 0; i < 20000 && src->next(r); ++i) {
        if (r.op == trace::OpClass::LockAcquire) {
            ASSERT_EQ(held[r.vaddr], 0);
            held[r.vaddr] = 1;
        } else if (r.op == trace::OpClass::LockRelease) {
            ASSERT_EQ(held[r.vaddr], 1);
            held[r.vaddr] = 0;
        }
    }
    // (A lock may legitimately be held at the arbitrary cut point; the
    // pairing assertions above are the invariant.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, OltpSeeds,
                         ::testing::Values(1ull, 2ull, 42ull, 1337ull));

} // namespace
} // namespace dbsim
