/**
 * @file
 * Unit tests for common utilities: types helpers, deterministic RNG,
 * histograms and occupancy trackers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dbsim {
namespace {

TEST(Types, BlockAlign)
{
    EXPECT_EQ(blockAlign(0, 64), 0u);
    EXPECT_EQ(blockAlign(63, 64), 0u);
    EXPECT_EQ(blockAlign(64, 64), 64u);
    EXPECT_EQ(blockAlign(0x12345, 64), 0x12340u);
    EXPECT_EQ(blockAlign(0xffffffffffffffffull, 64),
              0xffffffffffffffc0ull);
}

TEST(Types, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Types, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(8192), 13u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, RunLengthBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const auto n = rng.runLength(0.5, 6);
        EXPECT_GE(n, 1u);
        EXPECT_LE(n, 6u);
    }
}

TEST(Rng, ZipfSkewsTowardHead)
{
    Rng rng(13);
    std::uint64_t head = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        if (rng.zipf(1000, 0.9) < 100)
            ++head;
    }
    // With skew, the first 10% of items receive far more than 10%.
    EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.3);
}

TEST(Rng, ZipfInRange)
{
    Rng rng(17);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(rng.zipf(50, 1.0), 50u);
    EXPECT_EQ(rng.zipf(1, 0.8), 0u);
}

TEST(Rng, ForkIndependent)
{
    Rng a(21);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Histogram, BasicAccumulation)
{
    stats::Histogram h(8);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(100); // overflow bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(8), 1u);
}

TEST(Histogram, FracAtLeast)
{
    stats::Histogram h(8);
    for (int i = 0; i < 6; ++i)
        h.sample(1);
    for (int i = 0; i < 4; ++i)
        h.sample(4);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(2), 0.4);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(5), 0.0);
}

TEST(Histogram, Mean)
{
    stats::Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(OccupancyTracker, FractionAtLeast)
{
    stats::OccupancyTracker occ(4);
    occ.advance(0, 0);   // starts idle
    occ.advance(10, 1);  // idle 0..10
    occ.advance(20, 2);  // 1 in use 10..20
    occ.advance(30, 0);  // 2 in use 20..30
    occ.advance(40, 0);  // idle 30..40

    EXPECT_EQ(occ.busyTime(), 20u);
    EXPECT_DOUBLE_EQ(occ.fracAtLeast(1), 1.0);
    EXPECT_DOUBLE_EQ(occ.fracAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(occ.fracAtLeast(3), 0.0);
}

TEST(OccupancyTracker, SaturatesAtMax)
{
    stats::OccupancyTracker occ(2);
    occ.advance(0, 5); // clamped into top bucket
    occ.advance(10, 0);
    EXPECT_EQ(occ.busyTime(), 10u);
    EXPECT_DOUBLE_EQ(occ.fracAtLeast(2), 1.0);
}

TEST(OccupancyTracker, ResetClears)
{
    stats::OccupancyTracker occ(4);
    occ.advance(0, 2);
    occ.advance(50, 0);
    occ.reset();
    EXPECT_EQ(occ.busyTime(), 0u);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(DBSIM_FATAL("bad config ", 42), std::runtime_error);
}

TEST(Stats, PctFormatting)
{
    EXPECT_EQ(stats::pct(0.1234), "12.3%");
    EXPECT_EQ(stats::pct(1.0), "100.0%");
}

} // namespace
} // namespace dbsim
