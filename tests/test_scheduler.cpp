/**
 * @file
 * Unit tests for the OS scheduler model.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/log.hpp"
#include "sim/scheduler.hpp"
#include "trace/source.hpp"

namespace dbsim::sim {
namespace {

using cpu::ProcessContext;
using cpu::ProcState;

struct SchedFixture : ::testing::Test
{
    SchedFixture() : sched(2)
    {
        for (ProcId i = 0; i < 4; ++i) {
            srcs.emplace_back(std::vector<trace::TraceRecord>{});
            procs.emplace_back(
                std::make_unique<ProcessContext>(i, &srcs.back()));
        }
    }

    Scheduler sched;
    std::deque<trace::VectorSource> srcs;
    std::vector<std::unique_ptr<ProcessContext>> procs;
};

TEST_F(SchedFixture, RoundRobinWithinCpu)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 0);
    EXPECT_EQ(sched.pickNext(0, 0), procs[0].get());
    EXPECT_EQ(sched.pickNext(0, 0), procs[1].get());
    EXPECT_EQ(sched.pickNext(0, 0), nullptr);
    sched.makeReady(procs[0].get());
    sched.makeReady(procs[1].get());
    EXPECT_EQ(sched.pickNext(0, 0), procs[0].get());
}

TEST_F(SchedFixture, AffinityRespected)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 1);
    EXPECT_EQ(sched.pickNext(1, 0), procs[1].get());
    EXPECT_EQ(sched.pickNext(1, 0), nullptr);
    EXPECT_EQ(sched.pickNext(0, 0), procs[0].get());
}

TEST_F(SchedFixture, BlockedUntilWakeTime)
{
    sched.addProcess(procs[0].get(), 0);
    auto *p = sched.pickNext(0, 0);
    sched.block(p, 100);
    EXPECT_EQ(p->state, ProcState::Blocked);
    EXPECT_EQ(sched.pickNext(0, 50), nullptr);
    EXPECT_EQ(sched.nextWake(0), 100u);
    EXPECT_EQ(sched.pickNext(0, 100), p);
    // pickNext wakes and dequeues; the core's switchTo marks Running.
    EXPECT_EQ(p->state, ProcState::Ready);
}

TEST_F(SchedFixture, WakeOrderPreservesQueue)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 0);
    auto *a = sched.pickNext(0, 0);
    sched.block(a, 10);
    auto *b = sched.pickNext(0, 0);
    sched.block(b, 5);
    // Both wake by 20; whoever was blocked is requeued.
    auto *first = sched.pickNext(0, 20);
    auto *second = sched.pickNext(0, 20);
    EXPECT_TRUE(first && second);
    EXPECT_NE(first, second);
}

TEST_F(SchedFixture, FinishRemovesFromScheduling)
{
    sched.addProcess(procs[0].get(), 0);
    auto *p = sched.pickNext(0, 0);
    sched.finish(p);
    EXPECT_EQ(p->state, ProcState::Done);
    EXPECT_FALSE(sched.anyIncomplete(0));
    EXPECT_EQ(sched.pickNext(0, 100), nullptr);
}

TEST_F(SchedFixture, AnyIncompleteAcrossCpus)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 1);
    EXPECT_TRUE(sched.anyIncomplete());
    sched.finish(procs[0].get());
    EXPECT_FALSE(sched.anyIncomplete(0));
    EXPECT_TRUE(sched.anyIncomplete());
    sched.finish(procs[1].get());
    EXPECT_FALSE(sched.anyIncomplete());
}

TEST_F(SchedFixture, NextWakeNeverWhenNoneBlocked)
{
    sched.addProcess(procs[0].get(), 0);
    EXPECT_EQ(sched.nextWake(0), kNever);
}

TEST_F(SchedFixture, HasReadyTracksQueue)
{
    EXPECT_FALSE(sched.hasReady(0));
    sched.addProcess(procs[0].get(), 0);
    EXPECT_TRUE(sched.hasReady(0));
    (void)sched.pickNext(0, 0);
    EXPECT_FALSE(sched.hasReady(0));
}

TEST_F(SchedFixture, UnregisteredProcessIsCaught)
{
    // procs[3] was never addProcess()ed: makeReady / block used to index
    // affinity_ out of bounds (or read a stale zero).  Now they panic.
    sched.addProcess(procs[0].get(), 0);
    PanicThrowGuard guard;
    EXPECT_THROW(sched.makeReady(procs[3].get()), SimInvariantError);
    EXPECT_THROW(sched.block(procs[3].get(), 100), SimInvariantError);
}

TEST_F(SchedFixture, NextWakeIsEarliestAmongBlocked)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 0);
    sched.addProcess(procs[2].get(), 0);
    auto *a = sched.pickNext(0, 0);
    auto *b = sched.pickNext(0, 0);
    auto *c = sched.pickNext(0, 0);
    sched.block(a, 300);
    sched.block(b, 100);
    sched.block(c, 200);
    EXPECT_EQ(sched.nextWake(0), 100u);
    EXPECT_EQ(sched.pickNext(0, 100), b);
    EXPECT_EQ(sched.nextWake(0), 200u);
    EXPECT_EQ(sched.pickNext(0, 250), c);
    EXPECT_EQ(sched.nextWake(0), 300u);
    EXPECT_EQ(sched.pickNext(0, 300), a);
    EXPECT_EQ(sched.nextWake(0), kNever);
}

TEST_F(SchedFixture, SimultaneousWakesPreserveBlockOrder)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 0);
    sched.addProcess(procs[2].get(), 0);
    auto *a = sched.pickNext(0, 0);
    auto *b = sched.pickNext(0, 0);
    auto *c = sched.pickNext(0, 0);
    // All wake at the same cycle; the ready queue must reflect the
    // order in which they blocked (heap ties broken by sequence).
    sched.block(b, 50);
    sched.block(c, 50);
    sched.block(a, 50);
    EXPECT_EQ(sched.pickNext(0, 50), b);
    EXPECT_EQ(sched.pickNext(0, 50), c);
    EXPECT_EQ(sched.pickNext(0, 50), a);
}

TEST_F(SchedFixture, BlockedCountTracksHeap)
{
    sched.addProcess(procs[0].get(), 0);
    sched.addProcess(procs[1].get(), 0);
    auto *a = sched.pickNext(0, 0);
    auto *b = sched.pickNext(0, 0);
    sched.block(a, 10);
    sched.block(b, 20);
    EXPECT_EQ(sched.blockedCount(0), 2u);
    (void)sched.pickNext(0, 15);
    EXPECT_EQ(sched.blockedCount(0), 1u);
    (void)sched.pickNext(0, 20);
    EXPECT_EQ(sched.blockedCount(0), 0u);
}

} // namespace
} // namespace dbsim::sim
