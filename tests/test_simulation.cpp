/**
 * @file
 * End-to-end property tests through the public Simulation facade: the
 * qualitative relationships the paper's figures rest on must hold on
 * small runs (out-of-order beats in-order, stricter consistency costs
 * more, optimizations close the gap, the stream buffer cuts instruction
 * stalls, hints reduce dirty-miss time, idealizations help).
 */

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/simulation.hpp"
#include "cpu/inorder_core.hpp"

namespace dbsim::core {
namespace {

SimConfig
quick(WorkloadKind kind, std::uint32_t nodes = 4)
{
    SimConfig cfg = makeScaledConfig(kind, nodes);
    cfg.total_instructions = 300000;
    cfg.warmup_instructions = 60000;
    return cfg;
}

double
cpiOf(const sim::RunResult &r)
{
    return static_cast<double>(r.breakdown.total()) /
           static_cast<double>(r.instructions);
}

sim::RunResult
runCfg(const SimConfig &cfg)
{
    Simulation s(cfg);
    return s.run();
}

TEST(Simulation, OooBeatsInOrderOltp)
{
    SimConfig ooo = quick(WorkloadKind::Oltp);
    SimConfig ino = ooo;
    ino.system.core = cpu::makeInOrderParams(ino.system.core);
    ino.system.core.issue_width = 1;
    const double t_ooo = cpiOf(runCfg(ooo));
    const double t_ino = cpiOf(runCfg(ino));
    EXPECT_LT(t_ooo, t_ino);
    // The paper's headline: ~1.5x for OLTP.
    EXPECT_GT(t_ino / t_ooo, 1.2);
}

TEST(Simulation, OooBeatsInOrderDssMore)
{
    SimConfig ooo = quick(WorkloadKind::Dss);
    SimConfig ino = ooo;
    ino.system.core = cpu::makeInOrderParams(ino.system.core);
    ino.system.core.issue_width = 1;
    const double r = cpiOf(runCfg(ino)) / cpiOf(runCfg(ooo));
    EXPECT_GT(r, 1.5); // paper: ~2.6x
}

TEST(Simulation, StricterConsistencyCostsMore)
{
    SimConfig rc = quick(WorkloadKind::Oltp);
    SimConfig sc = rc;
    sc.system.core.model = cpu::ConsistencyModel::SC;
    SimConfig pc = rc;
    pc.system.core.model = cpu::ConsistencyModel::PC;
    const double t_rc = cpiOf(runCfg(rc));
    const double t_pc = cpiOf(runCfg(pc));
    const double t_sc = cpiOf(runCfg(sc));
    EXPECT_LT(t_rc, t_pc);
    EXPECT_LT(t_pc, t_sc);
}

TEST(Simulation, OptimizationsCloseScGap)
{
    SimConfig sc = quick(WorkloadKind::Oltp);
    sc.system.core.model = cpu::ConsistencyModel::SC;
    SimConfig sc_opt = sc;
    sc_opt.system.core.cons.hw_prefetch = true;
    sc_opt.system.core.cons.spec_loads = true;
    SimConfig rc = quick(WorkloadKind::Oltp);

    const double t_sc = cpiOf(runCfg(sc));
    const double t_opt = cpiOf(runCfg(sc_opt));
    const double t_rc = cpiOf(runCfg(rc));
    EXPECT_LT(t_opt, t_sc * 0.9); // big win over plain SC
    EXPECT_LT(t_opt, t_rc * 1.35); // lands near RC
}

TEST(Simulation, StreamBufferCutsInstructionStalls)
{
    SimConfig base = quick(WorkloadKind::Oltp);
    SimConfig sbuf = base;
    sbuf.system.node.stream_buffer_entries = 4;
    const auto r_base = runCfg(base);
    const auto r_sbuf = runCfg(sbuf);
    const double i_base = r_base.breakdown.instr() /
                          static_cast<double>(r_base.instructions);
    const double i_sbuf = r_sbuf.breakdown.instr() /
                          static_cast<double>(r_sbuf.instructions);
    EXPECT_LT(i_sbuf, 0.7 * i_base);
    EXPECT_LT(cpiOf(r_sbuf), cpiOf(r_base));
}

TEST(Simulation, PerfectIcacheRemovesInstrStall)
{
    SimConfig cfg = quick(WorkloadKind::Oltp);
    cfg.system.node.perfect_icache = true;
    cfg.system.node.perfect_itlb = true;
    const auto r = runCfg(cfg);
    EXPECT_LT(r.breakdown.instr(),
              0.02 * r.breakdown.total());
}

TEST(Simulation, InfiniteFusBarelyHelpOltp)
{
    SimConfig base = quick(WorkloadKind::Oltp);
    SimConfig inf = base;
    inf.system.core.fu.infinite = true;
    const double a = cpiOf(runCfg(base));
    const double b = cpiOf(runCfg(inf));
    EXPECT_GT(b, a * 0.93); // less than ~7% gain
}

TEST(Simulation, HintsReduceDirtyReadTime)
{
    SimConfig base = quick(WorkloadKind::Oltp);
    base.system.node.stream_buffer_entries = 4;
    SimConfig hints = base;
    hints.hint_flush = true;
    hints.hint_prefetch = true;
    const auto r_base = runCfg(base);
    const auto r_hint = runCfg(hints);
    const double d_base =
        r_base.breakdown[StallCat::ReadDirty] /
        static_cast<double>(r_base.instructions);
    const double d_hint =
        r_hint.breakdown[StallCat::ReadDirty] /
        static_cast<double>(r_hint.instructions);
    EXPECT_LT(d_hint, d_base);
}

TEST(Simulation, DssIsComputeBound)
{
    // Needs a longer window than quick(): the per-process cold-start
    // instruction misses otherwise dominate the short measurement.
    SimConfig cfg = quick(WorkloadKind::Dss);
    cfg.total_instructions = 900000;
    cfg.warmup_instructions = 400000;
    const auto r = runCfg(cfg);
    EXPECT_GT(r.ipc, 0.8);
    // Negligible sync and instruction stall.
    EXPECT_LT(r.breakdown[StallCat::Sync],
              0.01 * r.breakdown.total());
    EXPECT_LT(r.breakdown.instr(), 0.10 * r.breakdown.total());
}

TEST(Simulation, OltpSlowerThanDss)
{
    const auto oltp = runCfg(quick(WorkloadKind::Oltp));
    const auto dss = runCfg(quick(WorkloadKind::Dss));
    EXPECT_LT(oltp.ipc, dss.ipc);
}

TEST(Simulation, CharacterizationRatesSane)
{
    SimConfig cfg = quick(WorkloadKind::Oltp);
    Simulation s(cfg);
    (void)s.run();
    const auto c = s.characterize();
    EXPECT_GT(c.l1d_miss_rate, 0.02);
    EXPECT_LT(c.l1d_miss_rate, 0.5);
    EXPECT_GT(c.l1i_mpki, 10.0);   // instruction footprint overwhelms L1I
    EXPECT_GT(c.branch_mispredict_rate, 0.02);
    EXPECT_LT(c.branch_mispredict_rate, 0.25);
    EXPECT_GT(c.dirty_misses, 0u);
}

TEST(Simulation, MigratoryDominatesDirtyReads)
{
    SimConfig cfg = quick(WorkloadKind::Oltp);
    Simulation s(cfg);
    (void)s.run();
    const auto &ms = s.system().fabric().migratoryStats();
    ASSERT_GT(ms.dirty_reads, 0u);
    EXPECT_GT(ms.dirtyReadFraction(), 0.5); // paper: 0.79
}

TEST(Simulation, HotLocksExposedForOltpOnly)
{
    Simulation oltp(quick(WorkloadKind::Oltp));
    (void)oltp.run();
    EXPECT_FALSE(oltp.hotLocks().empty());
    Simulation dss(quick(WorkloadKind::Dss));
    (void)dss.run();
    EXPECT_TRUE(dss.hotLocks().empty());
}

TEST(Simulation, PaperScaleConfigConstructs)
{
    // Construction and description only (running 200M instructions is
    // out of scope for a unit test).
    const SimConfig cfg = makePaperScaleConfig(WorkloadKind::Oltp);
    EXPECT_EQ(cfg.system.node.l2.size_bytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.total_instructions, 200'000'000u);
    EXPECT_FALSE(describe(cfg).empty());
}

} // namespace
} // namespace dbsim::core
