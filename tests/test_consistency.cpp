/**
 * @file
 * Unit tests for the consistency-policy predicates (SC / PC / RC and
 * the optimized-implementation flags).
 */

#include <gtest/gtest.h>

#include "cpu/consistency.hpp"

namespace dbsim::cpu {
namespace {

TEST(Consistency, NamesDistinct)
{
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::SC), "SC");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::PC), "PC");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::RC), "RC");
}

TEST(Consistency, ScSerializesEverything)
{
    ConsistencyPolicy sc(ConsistencyModel::SC);
    EXPECT_TRUE(sc.loadMayIssue(true, true));
    EXPECT_FALSE(sc.loadMayIssue(false, true));
    EXPECT_FALSE(sc.loadMayIssue(true, false));
    EXPECT_TRUE(sc.storeMayIssue(true, true));
    EXPECT_FALSE(sc.storeMayIssue(true, false));
    EXPECT_TRUE(sc.loadBlocksRetire());
    EXPECT_TRUE(sc.storeBlocksRetire());
}

TEST(Consistency, PcLoadsBypassStores)
{
    ConsistencyPolicy pc(ConsistencyModel::PC);
    // Loads may bypass pending stores but not pending loads.
    EXPECT_TRUE(pc.loadMayIssue(true, false));
    EXPECT_FALSE(pc.loadMayIssue(false, true));
    // Stores stay ordered behind everything older.
    EXPECT_FALSE(pc.storeMayIssue(true, false));
    EXPECT_FALSE(pc.storeMayIssue(false, true));
    EXPECT_TRUE(pc.storeMayIssue(true, true));
    // PC retires stores into the (FIFO) write buffer.
    EXPECT_TRUE(pc.loadBlocksRetire());
    EXPECT_FALSE(pc.storeBlocksRetire());
}

TEST(Consistency, RcUnordered)
{
    ConsistencyPolicy rc(ConsistencyModel::RC);
    EXPECT_TRUE(rc.loadMayIssue(false, false));
    EXPECT_TRUE(rc.storeMayIssue(false, false));
    EXPECT_FALSE(rc.loadBlocksRetire());
    EXPECT_FALSE(rc.storeBlocksRetire());
}

TEST(Consistency, OptimizationFlags)
{
    ConsistencyPolicy plain(ConsistencyModel::SC);
    EXPECT_FALSE(plain.prefetchBlocked());
    EXPECT_FALSE(plain.speculativeLoads());

    ConsistencyPolicy pf(ConsistencyModel::SC, {true, false});
    EXPECT_TRUE(pf.prefetchBlocked());
    EXPECT_FALSE(pf.speculativeLoads());

    ConsistencyPolicy spec(ConsistencyModel::SC, {true, true});
    EXPECT_TRUE(spec.prefetchBlocked());
    EXPECT_TRUE(spec.speculativeLoads());
}

// Property: RC is never more restrictive than PC, and PC never more
// restrictive than SC, across all predicate inputs.
TEST(Consistency, MonotonicStrictness)
{
    ConsistencyPolicy sc(ConsistencyModel::SC);
    ConsistencyPolicy pc(ConsistencyModel::PC);
    ConsistencyPolicy rc(ConsistencyModel::RC);
    for (const bool lds : {false, true}) {
        for (const bool sts : {false, true}) {
            EXPECT_GE(pc.loadMayIssue(lds, sts), sc.loadMayIssue(lds, sts));
            EXPECT_GE(rc.loadMayIssue(lds, sts), pc.loadMayIssue(lds, sts));
            EXPECT_GE(pc.storeMayIssue(lds, sts),
                      sc.storeMayIssue(lds, sts));
            EXPECT_GE(rc.storeMayIssue(lds, sts),
                      pc.storeMayIssue(lds, sts));
        }
    }
}

} // namespace
} // namespace dbsim::cpu
