/**
 * @file
 * Unit tests for the processor core pipeline, using fake memory and
 * environment interfaces: issue/retire behavior, dependences, in-order
 * vs out-of-order issue, write buffering per consistency model, fences,
 * locks, system calls, branch misprediction, and speculative-load
 * rollback.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "cpu/inorder_core.hpp"
#include "cpu/ooo_core.hpp"
#include "trace/source.hpp"

namespace dbsim::cpu {
namespace {

using trace::OpClass;
using trace::TraceRecord;

/** Fake memory hierarchy with fixed latencies. */
class FakeMem : public CoreMemIf
{
  public:
    Cycles load_latency = 3;
    Cycles store_latency = 3;
    std::uint32_t refusals_remaining = 0;

    std::optional<MemAccessResult>
    dataAccess(Addr vaddr, Addr pc, bool is_write, Cycles now,
               bool prefetch, Cycles *retry_at) override
    {
        if (prefetch) {
            ++prefetches;
            return std::nullopt;
        }
        if (refusals_remaining > 0) {
            --refusals_remaining;
            if (retry_at)
                *retry_at = now + 1;
            return std::nullopt;
        }
        ++accesses;
        if (is_write)
            ++writes;
        last_addr = vaddr;
        return MemAccessResult{now + (is_write ? store_latency
                                               : load_latency),
                               coher::AccessClass::L1Hit,
                               blockAlign(vaddr, 64), false};
    }

    FetchResult
    instrFetch(Addr pc, Cycles now) override
    {
        ++fetches;
        return FetchResult{now + 1, false, true};
    }

    void flushHint(Addr vaddr, Cycles now) override { ++flushes; }

    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    std::uint64_t fetches = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t flushes = 0;
    Addr last_addr = 0;
};

/** Fake environment: lock table + event recording. */
class FakeEnv : public CoreEnvIf
{
  public:
    bool
    lockIsFree(Addr addr, ProcId proc) const override
    {
        auto it = holders.find(addr);
        return it == holders.end() || it->second == proc;
    }

    bool
    lockTryAcquire(Addr addr, ProcId proc) override
    {
        if (!lockIsFree(addr, proc))
            return false;
        holders[addr] = proc;
        return true;
    }

    void
    lockRelease(Addr addr, ProcId proc) override
    {
        holders.erase(addr);
        ++releases;
    }

    void
    onSyscallBlock(ProcId proc, Cycles latency) override
    {
        ++syscalls;
        last_syscall_latency = latency;
    }

    void onLockYield(ProcId proc) override { ++yields; }
    void onProcessDone(ProcId proc) override { ++dones; }

    std::map<Addr, ProcId> holders;
    int releases = 0;
    int syscalls = 0;
    int yields = 0;
    int dones = 0;
    Cycles last_syscall_latency = 0;
};

TraceRecord
op(OpClass cls, Addr pc, Addr va = kNoAddr, std::uint8_t dep1 = 0)
{
    TraceRecord r;
    r.op = cls;
    r.pc = pc;
    r.vaddr = va;
    r.dep1 = dep1;
    return r;
}

/** Test harness: drives one core over a fixed record vector. */
struct Harness
{
    explicit Harness(std::vector<TraceRecord> recs, CoreParams params = {})
        : src(std::move(recs)), proc(0, &src),
          core(0, params, &mem, &env)
    {
        core.switchTo(&proc, 0, false);
    }

    /** Run until the trace is fully retired and the write buffer has
     *  drained (or the cycle cap). */
    Cycles
    runToCompletion(Cycles cap = 100000)
    {
        Cycles now = 0;
        while ((env.dones == 0 || !core.drained()) && now < cap) {
            core.tick(now);
            ++now;
        }
        return now;
    }

    FakeMem mem;
    FakeEnv env;
    trace::VectorSource src;
    ProcessContext proc;
    Core core;
};

std::vector<TraceRecord>
aluChain(int n, std::uint8_t dep)
{
    std::vector<TraceRecord> v;
    for (int i = 0; i < n; ++i)
        v.push_back(op(OpClass::IntAlu, 0x1000 + i * 4, kNoAddr, dep));
    return v;
}

TEST(Core, RetiresAllInstructions)
{
    Harness h(aluChain(100, 0));
    h.runToCompletion();
    EXPECT_EQ(h.core.stats().instructions, 100u);
    EXPECT_EQ(h.env.dones, 1);
}

TEST(Core, DependentChainSlowerThanIndependent)
{
    Harness dep(aluChain(200, 1));
    Harness ind(aluChain(200, 0));
    const Cycles t_dep = dep.runToCompletion();
    const Cycles t_ind = ind.runToCompletion();
    EXPECT_GT(t_dep, t_ind);
    // Dependent chain: ~1 instruction per cycle at best.
    EXPECT_GE(t_dep, 200u);
}

TEST(Core, WiderIssueFasterOnIndependentCode)
{
    CoreParams narrow;
    narrow.issue_width = 1;
    CoreParams wide;
    wide.issue_width = 4;
    Harness n(aluChain(400, 0), narrow);
    Harness w(aluChain(400, 0), wide);
    EXPECT_GT(n.runToCompletion(), w.runToCompletion());
}

TEST(Core, LoadLatencyExposedToDependent)
{
    // load ; dependent alu chain behind it
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Load, 0x1000, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1004, kNoAddr, 1));
    Harness slow(v);
    slow.mem.load_latency = 200;
    Harness fast(v);
    fast.mem.load_latency = 1;
    EXPECT_GT(slow.runToCompletion(), fast.runToCompletion() + 150);
}

TEST(Core, OooOverlapsIndependentWorkBehindMiss)
{
    // A slow load followed by many independent ALU ops: the OOO core
    // hides the miss; the in-order core also issues past it (non-
    // blocking load, no dependence), so compare against a *dependent*
    // in-order stream to check the stall-at-first-dependence rule.
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Load, 0x1000, 0x8000));
    auto rest = aluChain(100, 0);
    v.insert(v.end(), rest.begin(), rest.end());

    Harness ooo(v);
    ooo.mem.load_latency = 300;
    Harness ino(v, makeInOrderParams(CoreParams{}));
    ino.mem.load_latency = 300;

    const Cycles t_ooo = ooo.runToCompletion();
    const Cycles t_ino = ino.runToCompletion();
    // Both overlap here; OOO at least as fast.
    EXPECT_LE(t_ooo, t_ino + 5);
}

TEST(Core, InOrderStallsAtFirstDependence)
{
    // load ; dependent alu ; many independent alus.
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Load, 0x1000, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1004, kNoAddr, 1)); // depends on load
    auto rest = aluChain(100, 0);
    v.insert(v.end(), rest.begin(), rest.end());

    Harness ooo(v);
    ooo.mem.load_latency = 300;
    Harness ino(v, makeInOrderParams(CoreParams{}));
    ino.mem.load_latency = 300;

    const Cycles t_ooo = ooo.runToCompletion();
    const Cycles t_ino = ino.runToCompletion();
    // The in-order core cannot issue the independent tail past the
    // dependent instruction; the OOO core does that work under the
    // miss (the in-order core regains some ground because the tail is
    // FU-bound either way, so the gap is modest but must exist).
    EXPECT_LT(t_ooo + 20, t_ino);
}

TEST(Core, RcStoreRetiresWithoutWaiting)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Store, 0x1000, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1004));
    Harness h(v);
    h.mem.store_latency = 500;
    // Measure when the trace retires (the write drains later).
    Cycles done_at = 0;
    for (Cycles now = 0; now < 2000; ++now) {
        h.core.tick(now);
        if (h.env.dones > 0 && done_at == 0)
            done_at = now;
    }
    EXPECT_GT(done_at, 0u);
    EXPECT_LT(done_at, 100u); // retirement did not wait for the store
    EXPECT_EQ(h.core.stats().stores, 1u);
    EXPECT_TRUE(h.core.drained()); // the store performed eventually
}

TEST(Core, ScStoreBlocksRetire)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Store, 0x1000, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1004));
    CoreParams p;
    p.model = ConsistencyModel::SC;
    Harness h(v, p);
    h.mem.store_latency = 500;
    EXPECT_GT(h.runToCompletion(), 500u);
}

TEST(Core, MemBarrierDrainsWriteBuffer)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Store, 0x1000, 0x8000));
    v.push_back(op(OpClass::MemBarrier, 0x1004));
    v.push_back(op(OpClass::IntAlu, 0x1008));
    Harness h(v);
    h.mem.store_latency = 400;
    // The MB cannot retire until the buffered store performs.
    EXPECT_GT(h.runToCompletion(), 400u);
}

TEST(Core, WmbOrdersStoreEpochs)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Store, 0x1000, 0x8000));
    v.push_back(op(OpClass::WriteBarrier, 0x1004));
    v.push_back(op(OpClass::Store, 0x1008, 0x9000));
    Harness h(v);
    h.mem.store_latency = 100;
    h.runToCompletion(5000);
    EXPECT_EQ(h.mem.writes, 2u);
    // The second store must have issued after the first performed
    // (epoch ordering); with 100-cycle stores that means the run took
    // at least two store latencies.
    EXPECT_GE(h.core.stats().run_cycles, 200u);
}

TEST(Core, LockAcquireWhenFree)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::LockAcquire, 0x1000, 0x8000));
    v.push_back(op(OpClass::MemBarrier, 0x1004));
    v.push_back(op(OpClass::IntAlu, 0x1008));
    v.push_back(op(OpClass::WriteBarrier, 0x100c));
    v.push_back(op(OpClass::LockRelease, 0x1010, 0x8000));
    Harness h(v);
    h.runToCompletion();
    EXPECT_EQ(h.core.stats().instructions, 5u);
    EXPECT_EQ(h.env.releases, 1);
    EXPECT_TRUE(h.env.holders.empty());
}

TEST(Core, LockAcquireSpinsWhileHeld)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::LockAcquire, 0x1000, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1004));
    Harness h(v);
    h.env.holders[0x8000] = 99; // someone else holds it
    Cycles now = 0;
    for (; now < 500; ++now)
        h.core.tick(now);
    EXPECT_EQ(h.core.stats().instructions, 0u);
    EXPECT_GT(h.core.stats().lock_spin_retries, 2u);
    // Release it; the acquire should now complete.
    h.env.holders.clear();
    for (; now < 1500 && h.env.dones == 0; ++now)
        h.core.tick(now);
    EXPECT_EQ(h.core.stats().instructions, 2u);
}

TEST(Core, LockSpinYieldsAfterThreshold)
{
    CoreParams p;
    p.spin_yield_threshold = 500;
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::LockAcquire, 0x1000, 0x8000));
    Harness h(v, p);
    h.env.holders[0x8000] = 99;
    for (Cycles now = 0; now < 2000 && h.env.yields == 0; ++now)
        h.core.tick(now);
    EXPECT_GE(h.env.yields, 1);
    EXPECT_GE(h.core.stats().lock_yields, 1u);
}

TEST(Core, SyscallNotifiesEnvAndBlocksFetch)
{
    std::vector<TraceRecord> v;
    TraceRecord sc = op(OpClass::SyscallBlock, 0x1000);
    sc.extra = 12345;
    v.push_back(sc);
    v.push_back(op(OpClass::IntAlu, 0x1004));
    Harness h(v);
    for (Cycles now = 0; now < 200 && h.env.syscalls == 0; ++now)
        h.core.tick(now);
    EXPECT_EQ(h.env.syscalls, 1);
    EXPECT_EQ(h.env.last_syscall_latency, 12345u);
    // Nothing after the syscall was fetched or retired.
    EXPECT_EQ(h.core.stats().instructions, 1u);
    EXPECT_TRUE(h.core.drained());
}

TEST(Core, DetachAndRedeliver)
{
    Harness h(aluChain(50, 0));
    for (Cycles now = 0; now < 3; ++now)
        h.core.tick(now);
    // Detach mid-flight: unretired records go back to the process.
    const auto retired = h.core.stats().instructions;
    h.core.detachCurrent();
    EXPECT_EQ(h.core.current(), nullptr);
    h.core.switchTo(&h.proc, 10, true);
    Cycles now = 10;
    while (h.env.dones == 0 && now < 10000) {
        h.core.tick(now);
        ++now;
    }
    EXPECT_EQ(h.core.stats().instructions, 50u + 0 * retired);
}

TEST(Core, MispredictedBranchSlowsFetch)
{
    // All-taken conditional branches at one site train quickly; compare
    // a perfect predictor against a cold one on hard (alternating-site)
    // branches.
    std::vector<TraceRecord> v;
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        TraceRecord r = op(OpClass::BranchCond, 0x1000 + (i % 97) * 4);
        r.taken = rng.chance(0.5);
        r.extra = r.taken ? r.pc + 16 : r.pc + 4;
        v.push_back(r);
        v.push_back(op(OpClass::IntAlu, r.pc + 4));
    }
    CoreParams perfect;
    perfect.bp.perfect = true;
    Harness cold(v);
    Harness perf(v, perfect);
    EXPECT_GT(cold.runToCompletion(), perf.runToCompletion());
    EXPECT_GT(cold.core.branchStats().mispredicts(), 10u);
    EXPECT_EQ(perf.core.branchStats().mispredicts(), 0u);
}

TEST(Core, HintsFireAndDoNotBlock)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::PrefetchExcl, 0x1000, 0x8000));
    v.push_back(op(OpClass::Flush, 0x1004, 0x8000));
    v.push_back(op(OpClass::IntAlu, 0x1008));
    Harness h(v);
    const Cycles t = h.runToCompletion();
    EXPECT_LT(t, 100u);
    EXPECT_EQ(h.mem.prefetches, 1u);
    EXPECT_EQ(h.mem.flushes, 1u);
}

TEST(Core, MemoryRetryAfterRefusal)
{
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Load, 0x1000, 0x8000));
    Harness h(v);
    h.mem.refusals_remaining = 5;
    h.runToCompletion();
    EXPECT_EQ(h.core.stats().instructions, 1u);
    EXPECT_EQ(h.mem.accesses, 1u);
}

TEST(Core, SpecLoadViolationRollsBack)
{
    // Under SC with speculative loads, two loads execute out of order;
    // invalidating the second load's line before it commits forces a
    // rollback and re-execution.
    CoreParams p;
    p.model = ConsistencyModel::SC;
    p.cons.spec_loads = true;
    std::vector<TraceRecord> v;
    v.push_back(op(OpClass::Load, 0x1000, 0x8000)); // slow via refusals
    v.push_back(op(OpClass::Load, 0x1004, 0x9000)); // speculates early
    v.push_back(op(OpClass::IntAlu, 0x1008));
    Harness h(v, p);
    h.mem.load_latency = 50;

    Cycles now = 0;
    for (; now < 20; ++now)
        h.core.tick(now);
    // Both loads issued (the second speculatively); violate it.
    h.core.onLineInvalidated(blockAlign(0x9000, 64));
    while (h.env.dones == 0 && now < 10000) {
        h.core.tick(now);
        ++now;
    }
    EXPECT_EQ(h.core.stats().instructions, 3u);
    EXPECT_GE(h.core.stats().spec_load_violations, 1u);
    // The violated load re-executed: more than two data accesses.
    EXPECT_GE(h.mem.accesses, 3u);
}

TEST(Core, WindowSizeBoundsInflight)
{
    CoreParams p;
    p.window_size = 4;
    Harness h(aluChain(100, 0), p);
    h.runToCompletion();
    EXPECT_EQ(h.core.stats().instructions, 100u);
}

TEST(Core, BreakdownAccountsAllCycles)
{
    Harness h(aluChain(100, 1));
    const Cycles t = h.runToCompletion();
    double sum = 0;
    for (std::size_t i = 0; i < kNumStallCats; ++i)
        sum += h.core.breakdown().cycles[i];
    EXPECT_NEAR(sum, static_cast<double>(t), 1.5);
}

} // namespace
} // namespace dbsim::cpu
