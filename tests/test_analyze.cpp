/**
 * @file
 * Self-tests for dbsim-analyze against the seeded fixture corpus in
 * tests/analyze_fixtures/: every rule must catch its seeded violation,
 * every clean twin must pass, suppressions and the baseline must
 * round-trip, and the SARIF output must have the 2.1.0 shape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace {

using dbsim::analyze::Finding;
using dbsim::analyze::Options;
using dbsim::analyze::Result;
using dbsim::analyze::RuleInfo;

std::string
fixture(const std::string &name)
{
    return std::string(DBSIM_ANALYZE_FIXTURES) + "/" + name;
}

Result
analyze(const std::string &dir, std::vector<std::string> rules = {},
        const std::string &baseline = "", bool write_baseline = false)
{
    Options opt;
    opt.corpus_root = fixture(dir);
    opt.rules = std::move(rules);
    opt.baseline_path = baseline;
    opt.write_baseline = write_baseline;
    Result r;
    std::string err;
    EXPECT_TRUE(dbsim::analyze::runAnalysis(opt, r, err)) << err;
    return r;
}

/// The fixture convention: every seeded violation lives in a file whose
/// name starts with "bad"; everything else is a clean twin.
bool
isSeededFile(const std::string &rel)
{
    const std::size_t slash = rel.rfind('/');
    const std::string base =
        slash == std::string::npos ? rel : rel.substr(slash + 1);
    return base.rfind("bad", 0) == 0;
}

struct SeededCase
{
    const char *dir;
    const char *rule;
    const char *file;
    std::size_t count; ///< findings expected from this rule alone
};

const SeededCase kSeeded[] = {
    {"determinism_unordered", "determinism-unordered-iteration",
     "bad.cpp", 1},
    {"determinism_wallclock", "determinism-wallclock", "bad.cpp", 1},
    {"determinism_rand", "determinism-rand", "bad.cpp", 1},
    {"determinism_pointer", "determinism-pointer-format", "bad.cpp", 1},
    // misses (updated, never read) + skips (never updated)
    {"accounting_counter", "accounting-counter-coverage",
     "bad_counters.hpp", 2},
    {"accounting_switch", "accounting-switch-exhaustive", "bad.cpp", 1},
    {"layering_order", "layering-order", "common/bad_reach.hpp", 1},
    {"layering_cycle", "layering-cycle", "alpha/bad_y.hpp", 1},
    {"convention_assert", "convention-assert", "bad.cpp", 1},
    {"convention_stdout", "convention-stdout", "bad.cpp", 1},
    {"convention_guard", "convention-include-guard", "bad.hpp", 1},
    {"convention_catch", "convention-catch-swallow", "bad.cpp", 1},
    // pointer bits + wall clock + unsorted unordered iteration
    {"checkpoint_purity", "checkpoint-purity", "bad.cpp", 3},
};

TEST(Analyze, EveryRuleCatchesItsSeededViolation)
{
    for (const SeededCase &c : kSeeded) {
        SCOPED_TRACE(c.dir);
        const Result r = analyze(c.dir, {c.rule});
        ASSERT_EQ(r.findings.size(), c.count);
        for (const Finding &f : r.findings) {
            EXPECT_EQ(f.rule, c.rule);
            EXPECT_EQ(f.file, c.file);
            EXPECT_GT(f.line, 0);
            EXPECT_FALSE(f.message.empty());
        }
    }
}

TEST(Analyze, CleanTwinsPassUnderAllRules)
{
    // Run the *full* rule set over each fixture: the only findings
    // allowed anywhere are in the seeded bad* files, so the clean twins
    // also stay clean under every other rule (no cross-rule noise).
    for (const SeededCase &c : kSeeded) {
        SCOPED_TRACE(c.dir);
        const Result r = analyze(c.dir);
        EXPECT_FALSE(r.findings.empty());
        for (const Finding &f : r.findings)
            EXPECT_TRUE(isSeededFile(f.file))
                << f.file << ":" << f.line << " [" << f.rule << "] "
                << f.message;
    }
}

TEST(Analyze, SingleRuleFilteringIsolatesFamilies)
{
    // accounting_counter seeds only counter-coverage findings, so any
    // other single rule over it must come back empty.
    const Result r =
        analyze("accounting_counter", {"determinism-unordered-iteration"});
    EXPECT_TRUE(r.findings.empty());
    EXPECT_GT(r.files_scanned, 0u);
}

TEST(Analyze, UnknownRuleIsAnError)
{
    Options opt;
    opt.corpus_root = fixture("determinism_rand");
    opt.rules = {"no-such-rule"};
    Result r;
    std::string err;
    EXPECT_FALSE(dbsim::analyze::runAnalysis(opt, r, err));
    EXPECT_NE(err.find("no-such-rule"), std::string::npos);
}

TEST(Analyze, InlineSuppressionsApplyAndAreCounted)
{
    const Result r = analyze("suppression");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 2u) << "one allow() above the line, one "
                                   "trailing on the line";
}

TEST(Analyze, BaselineRoundTrips)
{
    const std::string path =
        testing::TempDir() + "dbsim_analyze_baseline.txt";
    std::remove(path.c_str());

    // Without a baseline the fixture reports findings...
    const Result before = analyze("determinism_unordered");
    ASSERT_FALSE(before.findings.empty());
    const std::size_t n = before.findings.size();

    // ...writing the baseline grandfathers all of them...
    const Result wrote =
        analyze("determinism_unordered", {}, path, /*write=*/true);
    EXPECT_TRUE(wrote.findings.empty());
    EXPECT_EQ(wrote.baselined, n);

    // ...and a rerun against it is clean, with the count reported.
    const Result after = analyze("determinism_unordered", {}, path);
    EXPECT_TRUE(after.findings.empty());
    EXPECT_EQ(after.baselined, n);

    // A new violation would still surface: drop one baseline line and
    // the corresponding finding must come back.
    {
        std::ifstream in(path);
        std::vector<std::string> lines;
        std::string l;
        while (std::getline(in, l))
            lines.push_back(l);
        in.close();
        std::ofstream out(path, std::ios::trunc);
        bool dropped = false;
        for (const std::string &line : lines) {
            if (!dropped && !line.empty() && line[0] != '#') {
                dropped = true;
                continue;
            }
            out << line << "\n";
        }
        ASSERT_TRUE(dropped);
    }
    const Result regressed = analyze("determinism_unordered", {}, path);
    EXPECT_EQ(regressed.findings.size(), 1u);
    std::remove(path.c_str());
}

TEST(Analyze, ResultsAreDeterministicAndSorted)
{
    const Result a = analyze("accounting_counter");
    const Result b = analyze("accounting_counter");
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
        EXPECT_EQ(a.findings[i].file, b.findings[i].file);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
        EXPECT_EQ(a.findings[i].message, b.findings[i].message);
    }
    EXPECT_TRUE(std::is_sorted(
        a.findings.begin(), a.findings.end(),
        [](const Finding &x, const Finding &y) {
            return std::tie(x.file, x.line, x.rule, x.message) <=
                   std::tie(y.file, y.line, y.rule, y.message);
        }));
}

TEST(Analyze, SarifHasThe210Shape)
{
    const Result r = analyze("determinism_unordered");
    ASSERT_FALSE(r.findings.empty());
    std::ostringstream os;
    dbsim::analyze::writeSarif(os, r);
    const std::string doc = os.str();

    for (const char *needle :
         {"\"$schema\"", "sarif-2.1.0", "\"version\": \"2.1.0\"",
          "\"runs\"", "\"tool\"", "\"driver\"",
          "\"name\": \"dbsim-analyze\"", "\"rules\"", "\"results\"",
          "\"ruleId\": \"determinism-unordered-iteration\"",
          "\"level\": \"error\"", "\"message\"", "\"locations\"",
          "\"physicalLocation\"", "\"artifactLocation\"",
          "\"uri\": \"bad.cpp\"", "\"region\"", "\"startLine\""}) {
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle;
    }
    // Every catalog rule is declared in the driver metadata.
    for (const RuleInfo &rule : dbsim::analyze::ruleCatalog())
        EXPECT_NE(doc.find("\"id\": \"" + std::string(rule.id) + "\""),
                  std::string::npos)
            << rule.id;
    // Identical runs render byte-identical documents.
    std::ostringstream os2;
    dbsim::analyze::writeSarif(os2, r);
    EXPECT_EQ(doc, os2.str());
}

TEST(Analyze, RuleCatalogIsConsistent)
{
    const auto &catalog = dbsim::analyze::ruleCatalog();
    EXPECT_EQ(catalog.size(), 13u);
    for (const RuleInfo &r : catalog) {
        EXPECT_TRUE(dbsim::analyze::knownRule(r.id));
        EXPECT_FALSE(std::string(r.description).empty());
    }
    EXPECT_FALSE(dbsim::analyze::knownRule("not-a-rule"));
}

TEST(Analyze, LegacySwallowMarkerStillHonored)
{
    // clean_legacy.cpp swallows via the python-era marker; only bad.cpp
    // may be reported.
    const Result r =
        analyze("convention_catch", {"convention-catch-swallow"});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].file, "bad.cpp");
}

} // namespace
