/**
 * @file
 * Unit tests for the instruction stream buffer.
 */

#include <gtest/gtest.h>

#include "memory/stream_buffer.hpp"

namespace dbsim::mem {
namespace {

TEST(StreamBuffer, DisabledNeverHits)
{
    StreamBuffer sb(0, 64);
    EXPECT_FALSE(sb.enabled());
    Cycles ready = 0;
    std::vector<Addr> refills;
    EXPECT_FALSE(sb.probe(0x1000, 10, ready, refills));
    EXPECT_TRUE(refills.empty());
    EXPECT_EQ(sb.stats().probes, 0u);
}

TEST(StreamBuffer, MissArmsSequentialPrefetches)
{
    StreamBuffer sb(4, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    EXPECT_FALSE(sb.probe(0x1000, 0, ready, refills));
    ASSERT_EQ(refills.size(), 4u);
    EXPECT_EQ(refills[0], 0x1040u);
    EXPECT_EQ(refills[1], 0x1080u);
    EXPECT_EQ(refills[2], 0x10c0u);
    EXPECT_EQ(refills[3], 0x1100u);
    EXPECT_EQ(sb.stats().prefetches, 4u);
}

TEST(StreamBuffer, SequentialHitAfterFill)
{
    StreamBuffer sb(4, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x1000, 0, ready, refills);
    for (const Addr b : refills)
        sb.fill(b, 30);

    refills.clear();
    EXPECT_TRUE(sb.probe(0x1040, 10, ready, refills));
    EXPECT_EQ(ready, 30u); // prefetch still in flight
    ASSERT_EQ(refills.size(), 1u); // top-up
    EXPECT_EQ(refills[0], 0x1140u);
    EXPECT_DOUBLE_EQ(sb.stats().hitRate(), 0.5);
}

TEST(StreamBuffer, HitAfterReadyUsesProbeTime)
{
    StreamBuffer sb(2, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x2000, 0, ready, refills);
    for (const Addr b : refills)
        sb.fill(b, 20);
    refills.clear();
    EXPECT_TRUE(sb.probe(0x2040, 100, ready, refills));
    EXPECT_EQ(ready, 100u);
}

TEST(StreamBuffer, DeepHitSkipsAndCountsUseless)
{
    StreamBuffer sb(4, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x1000, 0, ready, refills);
    for (const Addr b : refills)
        sb.fill(b, 5);
    refills.clear();
    // Skip 0x1040, hit the second entry 0x1080.
    EXPECT_TRUE(sb.probe(0x1080, 10, ready, refills));
    EXPECT_EQ(sb.stats().useless, 1u);
    EXPECT_EQ(refills.size(), 2u); // two slots freed, two prefetches
}

TEST(StreamBuffer, NonSequentialMissFlushes)
{
    StreamBuffer sb(4, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x1000, 0, ready, refills);
    for (const Addr b : refills)
        sb.fill(b, 5);
    refills.clear();
    EXPECT_FALSE(sb.probe(0x9000, 10, ready, refills));
    EXPECT_EQ(sb.stats().flushes, 1u);
    EXPECT_EQ(sb.stats().useless, 4u);
    ASSERT_EQ(refills.size(), 4u);
    EXPECT_EQ(refills[0], 0x9040u);
}

TEST(StreamBuffer, FollowsLongStream)
{
    StreamBuffer sb(2, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x4000, 0, ready, refills);
    for (const Addr b : refills)
        sb.fill(b, 1);
    // Walk ten sequential lines; every probe after the first should hit.
    for (int i = 1; i <= 10; ++i) {
        refills.clear();
        const Addr blk = 0x4000 + static_cast<Addr>(i) * 64;
        EXPECT_TRUE(sb.probe(blk, i * 5, ready, refills)) << i;
        for (const Addr b : refills)
            sb.fill(b, i * 5 + 2);
    }
    EXPECT_EQ(sb.stats().hits, 10u);
}

TEST(StreamBuffer, FillWithoutSlotIsDropped)
{
    StreamBuffer sb(1, 64);
    Cycles ready = 0;
    std::vector<Addr> refills;
    sb.probe(0x1000, 0, ready, refills); // arms prefetch of 0x1040
    sb.fill(0x1040, 3);
    sb.fill(0x5540, 9); // stale fill: no free slot, dropped silently
    refills.clear();
    EXPECT_TRUE(sb.probe(0x1040, 10, ready, refills));
}

} // namespace
} // namespace dbsim::mem
