/**
 * @file
 * Error-path tests of the binary trace serializer: truncation, bad
 * magic, unsupported versions, corrupt op classes, unopenable files,
 * plus a save/load round trip through a real file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/serialize.hpp"

namespace dbsim::trace {
namespace {

std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> v;
    for (int i = 0; i < 8; ++i) {
        TraceRecord r;
        r.op = static_cast<OpClass>(i % kNumOpClasses);
        r.pc = 0x1000 + i * 4;
        r.vaddr = 0x80000 + i * 64;
        r.extra = i;
        r.dep1 = static_cast<std::uint8_t>(i);
        r.dep2 = static_cast<std::uint8_t>(i / 2);
        r.taken = (i % 2) != 0;
        v.push_back(r);
    }
    return v;
}

std::string
serialized(const std::vector<TraceRecord> &recs)
{
    std::ostringstream os(std::ios::binary);
    save(os, recs);
    return os.str();
}

/** Expect load() to throw a runtime_error whose message contains @p m. */
void
expectLoadError(const std::string &bytes, const char *m)
{
    std::istringstream is(bytes, std::ios::binary);
    try {
        load(is);
        FAIL() << "expected load() to reject the stream (" << m << ")";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(m), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, RoundTripsThroughAStream)
{
    const auto recs = sampleRecords();
    std::istringstream is(serialized(recs), std::ios::binary);
    const auto loaded = load(is);
    ASSERT_EQ(loaded.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(loaded[i].op, recs[i].op);
        EXPECT_EQ(loaded[i].pc, recs[i].pc);
        EXPECT_EQ(loaded[i].vaddr, recs[i].vaddr);
        EXPECT_EQ(loaded[i].extra, recs[i].extra);
        EXPECT_EQ(loaded[i].dep1, recs[i].dep1);
        EXPECT_EQ(loaded[i].dep2, recs[i].dep2);
        EXPECT_EQ(loaded[i].taken, recs[i].taken);
    }
}

TEST(Serialize, RejectsEmptyStream)
{
    expectLoadError("", "truncated stream");
}

TEST(Serialize, RejectsTruncationAtEveryPrefix)
{
    // Chopping the valid image anywhere must raise "truncated stream",
    // never a silent short read (the header fields themselves produce
    // their own diagnostics once complete).
    const std::string bytes = serialized(sampleRecords());
    for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
        if (cut == 8)
            continue; // magic+version complete: count field truncates
        std::istringstream is(bytes.substr(0, cut), std::ios::binary);
        EXPECT_THROW(load(is), std::runtime_error) << "cut=" << cut;
    }
}

TEST(Serialize, RejectsBadMagic)
{
    std::string bytes = serialized(sampleRecords());
    bytes[0] = 'X';
    expectLoadError(bytes, "bad magic");
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    std::string bytes = serialized(sampleRecords());
    bytes[4] = 99; // version field follows the 4-byte magic
    expectLoadError(bytes, "unsupported version");
}

TEST(Serialize, RejectsBadOpClass)
{
    const auto recs = sampleRecords();
    std::string bytes = serialized(recs);
    // The op byte of record 0 sits after the 16-byte header and the
    // record's pc/vaddr/extra fields (8 bytes each).
    const std::size_t op_off = 16 + 24;
    ASSERT_LT(op_off, bytes.size());
    bytes[op_off] = static_cast<char>(0xFF);
    expectLoadError(bytes, "bad op class");
}

TEST(Serialize, RejectsCountPastEndOfStream)
{
    // A header promising records the stream does not contain must be
    // reported as truncation, not produce partial results.
    std::ostringstream os(std::ios::binary);
    save(os, sampleRecords());
    std::string bytes = os.str();
    std::uint64_t huge = 1u << 20;
    std::memcpy(&bytes[8], &huge, sizeof(huge));
    expectLoadError(bytes, "truncated stream");
}

TEST(Serialize, LoadFileRejectsMissingPath)
{
    try {
        loadFile("/nonexistent-dir/no-such-trace.bin");
        FAIL() << "expected loadFile to reject the path";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Serialize, SaveFileRejectsUnwritablePath)
{
    EXPECT_THROW(saveFile("/nonexistent-dir/out.bin", sampleRecords()),
                 std::runtime_error);
}

TEST(Serialize, RoundTripsThroughAFile)
{
    const std::string path =
        testing::TempDir() + "dbsim_serialize_roundtrip.bin";
    const auto recs = sampleRecords();
    saveFile(path, recs);
    const auto loaded = loadFile(path);
    std::remove(path.c_str());
    ASSERT_EQ(loaded.size(), recs.size());
    EXPECT_EQ(loaded.back().pc, recs.back().pc);
    EXPECT_EQ(loaded.back().op, recs.back().op);
}

} // namespace
} // namespace dbsim::trace
