/**
 * @file
 * Unit tests for the migratory-data detector (the paper's heuristic:
 * exclusive request + two cached copies + different last writer).
 */

#include <gtest/gtest.h>

#include "coherence/migratory.hpp"

namespace dbsim::coher {
namespace {

TEST(Migratory, MarksOnHeuristicConditions)
{
    MigratoryDetector d;
    // The marking happens on the observing call itself.
    EXPECT_TRUE(d.observeWrite(0x100, 2, /*last_writer=*/0,
                               /*requester=*/1, true, 0x40));
    EXPECT_TRUE(d.isMigratory(0x100));
    EXPECT_EQ(d.stats().lines_marked, 1u);
}

TEST(Migratory, WaitNoMarkingReturnsFalseUntilMarked)
{
    MigratoryDetector d;
    // copies != 2: no marking
    d.observeWrite(0x200, 1, 0, 1, false, 0x40);
    EXPECT_FALSE(d.isMigratory(0x200));
    d.observeWrite(0x200, 3, 0, 1, true, 0x40);
    EXPECT_FALSE(d.isMigratory(0x200));
    // same requester as last writer: no marking
    d.observeWrite(0x200, 2, 1, 1, true, 0x40);
    EXPECT_FALSE(d.isMigratory(0x200));
    // no known last writer: no marking
    d.observeWrite(0x200, 2, -1, 1, true, 0x40);
    EXPECT_FALSE(d.isMigratory(0x200));
    // all conditions met
    d.observeWrite(0x200, 2, 0, 1, true, 0x40);
    EXPECT_TRUE(d.isMigratory(0x200));
}

TEST(Migratory, FractionsCounted)
{
    MigratoryDetector d;
    d.observeWrite(0x100, 2, 0, 1, true, 0x40); // marks
    d.observeWrite(0x100, 2, 1, 0, true, 0x40); // migratory shared write
    d.observeWrite(0x300, 1, -1, 0, false, 0x44); // not shared
    d.observeWrite(0x400, 3, 0, 1, true, 0x48);  // shared, not migratory

    EXPECT_EQ(d.stats().shared_writes, 3u);
    EXPECT_EQ(d.stats().migratory_writes, 2u);
    EXPECT_NEAR(d.stats().writeFraction(), 2.0 / 3.0, 1e-9);

    d.observeDirtyRead(0x100, 0x50);
    d.observeDirtyRead(0x999, 0x54);
    EXPECT_EQ(d.stats().dirty_reads, 2u);
    EXPECT_EQ(d.stats().migratory_dirty_reads, 1u);
    EXPECT_DOUBLE_EQ(d.stats().dirtyReadFraction(), 0.5);
}

TEST(Migratory, LineConcentration)
{
    MigratoryDetector d;
    // Two migratory lines; 9 of 10 write references to the first.
    d.observeWrite(0x100, 2, 0, 1, true, 0x40);
    d.observeWrite(0x200, 2, 0, 1, true, 0x40);
    for (int i = 0; i < 8; ++i)
        d.observeWrite(0x100, 2, i % 2, (i + 1) % 2, true, 0x40);
    // 0x100 has 9 refs, 0x200 has 1: 70% of refs covered by 1 of 2 lines.
    EXPECT_DOUBLE_EQ(d.lineConcentration(0.70), 0.5);
    EXPECT_DOUBLE_EQ(d.lineConcentration(1.0), 1.0);
}

TEST(Migratory, PcConcentration)
{
    MigratoryDetector d;
    d.observeWrite(0x100, 2, 0, 1, true, 0xA0); // marks; pc A0
    for (int i = 0; i < 9; ++i)
        d.observeDirtyRead(0x100, 0xA0);
    d.observeDirtyRead(0x100, 0xB0);
    d.observeDirtyRead(0x100, 0xC0);
    // 12 refs total over 3 PCs; pc A0 holds 10 => 75% needs 1 of 3.
    EXPECT_NEAR(d.pcConcentration(0.75), 1.0 / 3.0, 1e-9);
}

TEST(Migratory, EmptyConcentrationsAreZero)
{
    MigratoryDetector d;
    EXPECT_DOUBLE_EQ(d.lineConcentration(0.7), 0.0);
    EXPECT_DOUBLE_EQ(d.pcConcentration(0.75), 0.0);
}

TEST(Migratory, StickyMarking)
{
    MigratoryDetector d;
    d.observeWrite(0x100, 2, 0, 1, true, 0x40);
    ASSERT_TRUE(d.isMigratory(0x100));
    // Later non-matching observations do not unmark.
    d.observeWrite(0x100, 4, 1, 1, true, 0x40);
    EXPECT_TRUE(d.isMigratory(0x100));
}

} // namespace
} // namespace dbsim::coher
