/**
 * @file
 * Unit and property tests for the set-associative cache tag array.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "memory/cache.hpp"

namespace dbsim::mem {
namespace {

TEST(CacheArray, Geometry)
{
    CacheArray c(16 * 1024, 2, 64);
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.assoc(), 2u);
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(1000, 2, 64), std::runtime_error);
    EXPECT_THROW(CacheArray(1024, 2, 60), std::runtime_error);
    EXPECT_THROW(CacheArray(1024, 0, 64), std::runtime_error);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x100).has_value());
    c.insert(0x100, CoherState::Shared);
    const auto st = c.access(0x100);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(*st, CoherState::Shared);
}

TEST(CacheArray, SubBlockAddressesShareLine)
{
    CacheArray c(1024, 2, 64);
    c.insert(0x140, CoherState::Exclusive);
    EXPECT_TRUE(c.contains(0x141));
    EXPECT_TRUE(c.contains(0x17f));
    EXPECT_FALSE(c.contains(0x180));
}

TEST(CacheArray, LruEviction)
{
    // Direct construction of a conflict: 2-way set, three lines mapping
    // to the same set.
    CacheArray c(1024, 2, 64); // 8 sets; stride 512 maps to same set
    c.insert(0x0, CoherState::Shared);
    c.insert(0x200, CoherState::Shared);
    (void)c.access(0x0); // make 0x0 most recent
    const auto ev = c.insert(0x400, CoherState::Shared);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->block, 0x200u); // LRU victim
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x400));
    EXPECT_FALSE(c.contains(0x200));
}

TEST(CacheArray, EvictionReportsVictimState)
{
    CacheArray c(1024, 1, 64); // direct-mapped, 16 sets
    c.insert(0x0, CoherState::Modified);
    const auto ev = c.insert(0x400, CoherState::Shared); // same set
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->state, CoherState::Modified);
}

TEST(CacheArray, ReinsertUpdatesStateWithoutEviction)
{
    CacheArray c(1024, 2, 64);
    c.insert(0x80, CoherState::Shared);
    const auto ev = c.insert(0x80, CoherState::Modified);
    EXPECT_FALSE(ev.has_value());
    EXPECT_EQ(c.state(0x80), CoherState::Modified);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(CacheArray, SetStateAndInvalidate)
{
    CacheArray c(1024, 2, 64);
    c.insert(0xc0, CoherState::Exclusive);
    c.setState(0xc0, CoherState::Shared);
    EXPECT_EQ(c.state(0xc0), CoherState::Shared);
    EXPECT_EQ(c.invalidate(0xc0), CoherState::Shared);
    EXPECT_FALSE(c.contains(0xc0));
    EXPECT_EQ(c.invalidate(0xc0), CoherState::Invalid);
}

TEST(CacheArray, SetStateOnAbsentLineIsNoop)
{
    CacheArray c(1024, 2, 64);
    c.setState(0x40, CoherState::Modified);
    EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheArray, CapacityNeverExceeded)
{
    CacheArray c(4096, 4, 64); // 64 lines
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        c.insert(rng.below(1 << 20) * 64, CoherState::Shared);
    EXPECT_LE(c.validLines(), 64u);
}

// Property: a working set that fits one set's associativity never
// evicts within that set.
TEST(CacheArray, NoEvictionWithinAssociativity)
{
    CacheArray c(8192, 4, 64); // 32 sets
    // Four lines in the same set (stride = sets * line = 2048).
    for (int i = 0; i < 4; ++i)
        c.insert(static_cast<Addr>(i) * 2048, CoherState::Shared);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(c.access(static_cast<Addr>(i) * 2048).has_value());
    }
}

// Property test: the cache behaves identically to a reference model
// over random insert/access/invalidate sequences (presence only).
TEST(CacheArray, MatchesReferenceModelPresence)
{
    CacheArray c(2048, 2, 64); // 16 sets, 32 lines
    Rng rng(99);
    // Reference: per set, track up to 2 most-recently-used blocks.
    std::vector<std::vector<Addr>> ref(16);
    auto set_of = [](Addr blk) { return (blk / 64) % 16; };

    for (int i = 0; i < 20000; ++i) {
        const Addr blk = rng.below(256) * 64;
        auto &s = ref[set_of(blk)];
        const auto op = rng.below(3);
        if (op == 0) {
            // insert
            c.insert(blk, CoherState::Shared);
            auto it = std::find(s.begin(), s.end(), blk);
            if (it != s.end())
                s.erase(it);
            s.insert(s.begin(), blk);
            if (s.size() > 2)
                s.pop_back();
        } else if (op == 1) {
            const bool hit = c.access(blk).has_value();
            auto it = std::find(s.begin(), s.end(), blk);
            EXPECT_EQ(hit, it != s.end()) << "iter " << i;
            if (it != s.end()) {
                s.erase(it);
                s.insert(s.begin(), blk);
            }
        } else {
            c.invalidate(blk);
            auto it = std::find(s.begin(), s.end(), blk);
            if (it != s.end())
                s.erase(it);
        }
    }
}

} // namespace
} // namespace dbsim::mem
