/**
 * @file
 * Tests of the consistency litmus harness: the mp/sb/lb/iriw shapes run
 * through the real SC/PC/RC ConsistencyPolicy predicates, the
 * expectation matrix (each model allows and forbids exactly the right
 * outcomes), speculative-load rollback, and the two seeded consistency
 * mutants.
 */

#include <gtest/gtest.h>

#include "verify/litmus.hpp"
#include "verify/suite.hpp"

namespace dbsim::verify {
namespace {

using cpu::ConsistencyImpl;
using cpu::ConsistencyModel;
using cpu::ConsistencyPolicy;

LitmusResult
run(const LitmusTest &t, ConsistencyModel m, bool spec = false,
    const ProtocolMutator *mut = nullptr)
{
    ConsistencyImpl impl;
    impl.spec_loads = spec;
    return runLitmus(t, ConsistencyPolicy(m, impl), mut);
}

// ---------------------------------------------------------------------
// Per-shape expectations
// ---------------------------------------------------------------------

TEST(Litmus, MessagePassingRelaxationOnlyUnderRc)
{
    const LitmusTest mp = litmusMp(false);
    // (r_y, r_x) = (1, 0): the reader sees the flag but not the data.
    const LitmusOutcome relaxed = {1, 0};
    EXPECT_EQ(run(mp, ConsistencyModel::SC).outcomes.count(relaxed), 0u);
    EXPECT_EQ(run(mp, ConsistencyModel::PC).outcomes.count(relaxed), 0u);
    EXPECT_EQ(run(mp, ConsistencyModel::RC).outcomes.count(relaxed), 1u);

    // The in-order outcome is reachable under every model.
    for (auto m : {ConsistencyModel::SC, ConsistencyModel::PC,
                   ConsistencyModel::RC})
        EXPECT_EQ(run(mp, m).outcomes.count({1, 1}), 1u);
}

TEST(Litmus, StoreBufferingIsPcAndRcOnly)
{
    const LitmusTest sb = litmusSb(false);
    const LitmusOutcome relaxed = {0, 0}; // both loads miss both stores
    EXPECT_EQ(run(sb, ConsistencyModel::SC).outcomes.count(relaxed), 0u);
    // Loads bypassing pending stores is exactly PC's relaxation.
    EXPECT_EQ(run(sb, ConsistencyModel::PC).outcomes.count(relaxed), 1u);
    EXPECT_EQ(run(sb, ConsistencyModel::RC).outcomes.count(relaxed), 1u);
}

TEST(Litmus, LoadBufferingAndIriwOnlyUnderRc)
{
    const LitmusTest lb = litmusLb(false);
    const LitmusOutcome lb_relaxed = {1, 1};
    EXPECT_EQ(run(lb, ConsistencyModel::SC).outcomes.count(lb_relaxed), 0u);
    EXPECT_EQ(run(lb, ConsistencyModel::PC).outcomes.count(lb_relaxed), 0u);
    EXPECT_EQ(run(lb, ConsistencyModel::RC).outcomes.count(lb_relaxed), 1u);

    const LitmusTest iriw = litmusIriw(false);
    const LitmusOutcome iriw_relaxed = {1, 0, 1, 0};
    EXPECT_EQ(run(iriw, ConsistencyModel::SC).outcomes.count(iriw_relaxed),
              0u);
    EXPECT_EQ(run(iriw, ConsistencyModel::PC).outcomes.count(iriw_relaxed),
              0u);
    EXPECT_EQ(run(iriw, ConsistencyModel::RC).outcomes.count(iriw_relaxed),
              1u);
}

TEST(Litmus, FencesRestoreOrderUnderEveryModel)
{
    struct Case
    {
        LitmusTest test;
        LitmusOutcome relaxed;
    };
    const Case cases[] = {
        {litmusMp(true), {1, 0}},
        {litmusSb(true), {0, 0}},
        {litmusLb(true), {1, 1}},
        {litmusIriw(true), {1, 0, 1, 0}},
    };
    for (const Case &c : cases)
        for (auto m : {ConsistencyModel::SC, ConsistencyModel::PC,
                       ConsistencyModel::RC})
            EXPECT_EQ(run(c.test, m).outcomes.count(c.relaxed), 0u)
                << c.test.name << " under " << cpu::consistencyModelName(m);
}

// ---------------------------------------------------------------------
// Speculative load execution
// ---------------------------------------------------------------------

TEST(Litmus, SpeculationPreservesOutcomesAndExercisesRollback)
{
    std::uint64_t rollbacks = 0;
    for (const bool fenced : {false, true}) {
        for (const LitmusTest &t :
             {litmusMp(fenced), litmusSb(fenced), litmusLb(fenced),
              litmusIriw(fenced)}) {
            for (auto m : {ConsistencyModel::SC, ConsistencyModel::PC}) {
                const LitmusResult plain = run(t, m, false);
                const LitmusResult spec = run(t, m, true);
                EXPECT_EQ(plain.outcomes, spec.outcomes)
                    << t.name << " under " << cpu::consistencyModelName(m);
                rollbacks += spec.rollbacks;
            }
        }
    }
    // A correct speculative implementation must actually have squashed
    // and replayed loads somewhere -- otherwise equality is vacuous.
    EXPECT_GT(rollbacks, 0u);
}

// ---------------------------------------------------------------------
// The full matrix, as the suite bundles it
// ---------------------------------------------------------------------

TEST(Litmus, FullMatrixHoldsIncludingMonotonicity)
{
    const auto runs = runLitmusMatrix();
    // 4 shapes x {plain, fenced} x (SC, SC+spec, PC, PC+spec, RC).
    EXPECT_EQ(runs.size(), 40u);
    std::string why;
    EXPECT_TRUE(litmusMatrixOk(runs, &why)) << why;
    for (const LitmusRun &r : runs)
        EXPECT_GT(r.states, 0u) << r.test;
}

// ---------------------------------------------------------------------
// Seeded consistency mutants
// ---------------------------------------------------------------------

TEST(Litmus, SkippedSquashMutantCommitsStaleSpeculativeValue)
{
    ProtocolMutator m;
    m.bug = ProtocolBug::SkippedSpecSquash;
    const LitmusResult r = run(litmusMp(false), ConsistencyModel::SC,
                               /*spec=*/true, &m);
    EXPECT_GT(m.triggers, 0u);
    // The forbidden mp outcome becomes reachable: the bound stale value
    // commits without rollback.
    EXPECT_EQ(r.outcomes.count({1, 0}), 1u);

    // The same shape without the mutant stays clean.
    EXPECT_EQ(run(litmusMp(false), ConsistencyModel::SC, true)
                  .outcomes.count({1, 0}),
              0u);
}

TEST(Litmus, ReorderedReleaseMutantBreaksFencedMessagePassing)
{
    ProtocolMutator m;
    m.bug = ProtocolBug::ReorderedRelease;
    const LitmusResult r =
        run(litmusMp(true), ConsistencyModel::RC, false, &m);
    EXPECT_GT(m.triggers, 0u);
    EXPECT_EQ(r.outcomes.count({1, 0}), 1u);
    EXPECT_EQ(run(litmusMp(true), ConsistencyModel::RC).outcomes.count({1, 0}),
              0u);
}

TEST(Litmus, MatrixDetectsConsistencyMutants)
{
    // Running the whole matrix with a seeded consistency bug must flip
    // at least one expectation (this is what the mutation catalog
    // relies on).
    for (const ProtocolBug bug :
         {ProtocolBug::SkippedSpecSquash, ProtocolBug::ReorderedRelease}) {
        ProtocolMutator m;
        m.bug = bug;
        std::string why;
        EXPECT_FALSE(litmusMatrixOk(runLitmusMatrix(&m), &why))
            << protocolBugName(bug) << " not detected by the matrix";
    }
}

TEST(Litmus, OutcomeStringRendering)
{
    EXPECT_EQ(litmusOutcomeString({1, 0}), "1,0");
    EXPECT_EQ(litmusOutcomeString({1, 0, 1, 0}), "1,0,1,0");
    EXPECT_EQ(litmusOutcomeString({}), "");
}

} // namespace
} // namespace dbsim::verify
