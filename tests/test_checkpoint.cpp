/**
 * @file
 * Checkpoint/restore determinism tests (DESIGN.md §5g).
 *
 * The contract under test: a run that is stopped at an arbitrary cycle,
 * checkpointed, and restored into a *fresh* machine must finish with a
 * final report, machine-state dump, and epoch-hash series identical to
 * an uninterrupted run's -- for both workloads, at 1 and 4 nodes, at
 * any checkpoint interval, and regardless of the host's deadline poll
 * stride.  (The cross-process version of the same property -- kill -9 a
 * sweep, restart with --resume --restore, compare reports -- runs in
 * the CI checkpoint job via tools/compare_reports.py.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "core/config.hpp"
#include "core/simulation.hpp"
#include "core/sweep.hpp"
#include "sim/diagnostics.hpp"

namespace {

using namespace dbsim;
using core::SimConfig;
using core::Simulation;
using core::WorkloadKind;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

SimConfig
smallConfig(WorkloadKind kind, std::uint32_t nodes)
{
    SimConfig cfg = core::makeScaledConfig(kind, nodes);
    cfg.total_instructions = 30000;
    cfg.warmup_instructions = 6000;
    cfg.system.state_hash_interval = 2500;
    return cfg;
}

/** Run @p cfg start-to-finish; returns the result, final dump and
 *  final state hash. */
struct FullRun
{
    sim::RunResult result;
    std::string dump;
    std::uint64_t state_hash = 0;
};

FullRun
runFull(const SimConfig &cfg)
{
    Simulation simulation(cfg);
    FullRun out;
    out.result = simulation.run();
    out.dump = sim::machineStateDump(simulation.system());
    out.state_hash = simulation.system().stateHash();
    return out;
}

void
expectSameOutcome(const FullRun &a, const FullRun &b)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_DOUBLE_EQ(a.result.ipc, b.result.ipc);
    ASSERT_EQ(a.result.epoch_hashes.size(), b.result.epoch_hashes.size());
    for (std::size_t i = 0; i < a.result.epoch_hashes.size(); ++i) {
        EXPECT_EQ(a.result.epoch_hashes[i].epoch,
                  b.result.epoch_hashes[i].epoch);
        EXPECT_EQ(a.result.epoch_hashes[i].hash,
                  b.result.epoch_hashes[i].hash);
    }
    EXPECT_EQ(a.state_hash, b.state_hash);
    EXPECT_EQ(a.dump, b.dump) << "machine-state dumps differ";
}

TEST(Snapshot, WriterReaderRoundTrip)
{
    snap::Writer w;
    w.u8(7);
    w.u16(65535);
    w.u32(123456u);
    w.u64(0x123456789abcdef0ull);
    w.i32(-5);
    w.i64(-1234567890123ll);
    w.boolean(true);
    w.boolean(false);
    w.f64(3.25);
    w.f64(-0.0);
    w.str("checkpoint");
    w.str("");

    snap::Reader r(w.bytes().data(), w.size());
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u16(), 65535u);
    EXPECT_EQ(r.u32(), 123456u);
    EXPECT_EQ(r.u64(), 0x123456789abcdef0ull);
    EXPECT_EQ(r.i32(), -5);
    EXPECT_EQ(r.i64(), -1234567890123ll);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_DOUBLE_EQ(r.f64(), 3.25);
    EXPECT_DOUBLE_EQ(r.f64(), -0.0);
    EXPECT_EQ(r.str(), "checkpoint");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(Snapshot, TruncatedStreamThrows)
{
    snap::Writer w;
    w.u64(42);
    snap::Reader r(w.bytes().data(), 3);
    EXPECT_THROW(r.u64(), snap::SnapshotError);
}

TEST(Snapshot, ImplausibleContainerLengthThrows)
{
    snap::Writer w;
    w.u64(1ull << 40); // a "length" far beyond the stream's bytes
    snap::Reader r(w.bytes().data(), w.size());
    EXPECT_THROW(r.length(8), snap::SnapshotError);
}

TEST(Snapshot, IdenticalStatesHashIdentically)
{
    const SimConfig cfg = smallConfig(WorkloadKind::Oltp, 1);
    Simulation a(cfg), b(cfg);
    a.prepare();
    b.prepare();
    EXPECT_EQ(a.system().stateHash(), b.system().stateHash());
    EXPECT_EQ(a.system().configSignature(), b.system().configSignature());
}

/**
 * The core restore-determinism matrix: OLTP and DSS at 1 and 4 nodes.
 * Save at a mid-run cycle, restore into a fresh machine, run to the
 * end; everything observable must match the uninterrupted run.
 */
TEST(Checkpoint, RestoredRunMatchesUninterrupted)
{
    int case_id = 0;
    for (const WorkloadKind kind :
         {WorkloadKind::Oltp, WorkloadKind::Dss}) {
        for (const std::uint32_t nodes : {1u, 4u}) {
            SCOPED_TRACE(std::string(core::workloadName(kind)) + "/" +
                         std::to_string(nodes) + " nodes");
            const SimConfig base = smallConfig(kind, nodes);

            // Uninterrupted reference run (also tells us a valid
            // mid-run stop cycle).
            Simulation ref(base);
            FullRun a;
            a.result = ref.run();
            a.dump = sim::machineStateDump(ref.system());
            a.state_hash = ref.system().stateHash();
            const Cycles final_cycle = ref.system().now();
            ASSERT_GT(final_cycle, 4u);

            const std::string ckpt = tmpPath(
                "dbsim_ckpt_" + std::to_string(case_id++) + ".ckpt");
            std::remove(ckpt.c_str());

            // Interrupted run: stop mid-flight and checkpoint.
            SimConfig stop_cfg = base;
            stop_cfg.system.stop_at_cycle = final_cycle / 2;
            stop_cfg.system.checkpoint_path = ckpt;
            Simulation stopped(stop_cfg);
            stopped.run();
            EXPECT_LT(stopped.system().now(), final_cycle);

            // Fresh machine, restored, run to completion.
            Simulation resumed(base);
            ASSERT_TRUE(resumed.restoreFromCheckpoint(ckpt));
            EXPECT_EQ(resumed.system().now(), stopped.system().now());
            FullRun b;
            b.result = resumed.run();
            b.dump = sim::machineStateDump(resumed.system());
            b.state_hash = resumed.system().stateHash();

            expectSameOutcome(a, b);
            std::remove(ckpt.c_str());
        }
    }
}

/** Periodic checkpointing must be observation-only: the run's results
 *  are bit-identical with and without it, at any interval, and the
 *  leftover checkpoint restores to the same final state. */
TEST(Checkpoint, PeriodicCheckpointingIsObservationOnly)
{
    const SimConfig base = smallConfig(WorkloadKind::Oltp, 2);
    const FullRun plain = runFull(base);

    for (const Cycles interval : {1500ull, 7000ull}) {
        SCOPED_TRACE("interval " + std::to_string(interval));
        const std::string ckpt =
            tmpPath("dbsim_ckpt_periodic_" + std::to_string(interval) +
                    ".ckpt");
        std::remove(ckpt.c_str());

        SimConfig ckpt_cfg = base;
        ckpt_cfg.system.checkpoint_path = ckpt;
        ckpt_cfg.system.checkpoint_interval = interval;
        const FullRun with_ckpt = runFull(ckpt_cfg);
        expectSameOutcome(plain, with_ckpt);

        // The last periodic checkpoint restores and finishes to the
        // same final state -- even under the *other* interval.
        SimConfig resume_cfg = base;
        resume_cfg.system.checkpoint_interval = interval * 2;
        Simulation resumed(resume_cfg);
        ASSERT_TRUE(resumed.restoreFromCheckpoint(ckpt));
        FullRun b;
        b.result = resumed.run();
        b.dump = sim::machineStateDump(resumed.system());
        b.state_hash = resumed.system().stateHash();
        EXPECT_EQ(plain.state_hash, b.state_hash);
        EXPECT_EQ(plain.dump, b.dump);
        std::remove(ckpt.c_str());
    }
}

/** A checkpoint must only restore into a structurally identical
 *  machine: node count, core model, placement, ... all signed. */
TEST(Checkpoint, ConfigSignatureMismatchIsRejected)
{
    const std::string ckpt = tmpPath("dbsim_ckpt_mismatch.ckpt");
    std::remove(ckpt.c_str());

    SimConfig one = smallConfig(WorkloadKind::Oltp, 1);
    one.system.stop_at_cycle = 500;
    one.system.checkpoint_path = ckpt;
    Simulation a(one);
    a.run();

    SimConfig two = smallConfig(WorkloadKind::Oltp, 2);
    Simulation b(two);
    b.prepare();
    EXPECT_THROW(b.system().restoreCheckpoint(ckpt),
                 snap::SnapshotError);
    // The facade degrades gracefully: warn and start fresh.
    EXPECT_FALSE(b.restoreFromCheckpoint(ckpt));
    std::remove(ckpt.c_str());
}

/** A torn or corrupted checkpoint file fails the integrity trailer and
 *  is ignored (the item starts fresh rather than crashing). */
TEST(Checkpoint, CorruptFileIsRejected)
{
    const std::string ckpt = tmpPath("dbsim_ckpt_corrupt.ckpt");
    std::remove(ckpt.c_str());

    SimConfig cfg = smallConfig(WorkloadKind::Dss, 1);
    cfg.system.stop_at_cycle = 500;
    cfg.system.checkpoint_path = ckpt;
    Simulation a(cfg);
    a.run();

    // Flip one byte in the middle of the file.
    {
        std::fstream f(ckpt, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        const std::streamoff size = f.tellg();
        ASSERT_GT(size, 64);
        f.seekp(size / 2);
        char byte = 0;
        f.seekg(size / 2);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }

    SimConfig clean = smallConfig(WorkloadKind::Dss, 1);
    Simulation b(clean);
    EXPECT_FALSE(b.restoreFromCheckpoint(ckpt));
    std::remove(ckpt.c_str());

    // And a missing file is silently "no checkpoint yet".
    EXPECT_FALSE(b.restoreFromCheckpoint(ckpt + ".does-not-exist"));
}

/** DBSIM_DEADLINE_STRIDE only changes how often the *host* clock and
 *  signal flag are polled; a much tighter stride must leave every
 *  simulated byte unchanged. */
TEST(Checkpoint, DeadlinePollStrideIsObservationOnly)
{
    const SimConfig base = smallConfig(WorkloadKind::Oltp, 2);
    const FullRun loose = runFull(base);

    ::setenv("DBSIM_DEADLINE_STRIDE", "64", 1);
    EXPECT_EQ(sim::deadlinePollStride(), 64u);
    const FullRun tight = runFull(base);
    ::unsetenv("DBSIM_DEADLINE_STRIDE");
    EXPECT_EQ(sim::deadlinePollStride(), 4096u);

    expectSameOutcome(loose, tight);
}

// ---------------------------------------------------------------------
// Sweep-layer integration
// ---------------------------------------------------------------------

std::vector<core::SweepItem>
sweepItems()
{
    std::vector<core::SweepItem> items;
    SimConfig oltp = smallConfig(WorkloadKind::Oltp, 1);
    oltp.system.state_hash_interval = 0; // the runner forwards its own
    SimConfig dss = smallConfig(WorkloadKind::Dss, 1);
    dss.system.state_hash_interval = 0;
    items.push_back({"oltp-1", oltp});
    items.push_back({"dss-1", dss});
    return items;
}

void
expectSameSweepOutcome(const core::SweepOutcome &a,
                       const core::SweepOutcome &b)
{
    ASSERT_EQ(a.items.size(), b.items.size());
    for (std::size_t i = 0; i < a.items.size(); ++i) {
        SCOPED_TRACE("item " + std::to_string(i));
        ASSERT_TRUE(a.items[i].ok());
        ASSERT_TRUE(b.items[i].ok());
        const core::SweepResult &ra = a.items[i].result;
        const core::SweepResult &rb = b.items[i].result;
        EXPECT_EQ(ra.run.cycles, rb.run.cycles);
        EXPECT_EQ(ra.run.instructions, rb.run.instructions);
        EXPECT_DOUBLE_EQ(ra.run.ipc, rb.run.ipc);
        ASSERT_EQ(ra.run.epoch_hashes.size(), rb.run.epoch_hashes.size());
        for (std::size_t k = 0; k < ra.run.epoch_hashes.size(); ++k)
            EXPECT_EQ(ra.run.epoch_hashes[k].hash,
                      rb.run.epoch_hashes[k].hash);
        EXPECT_EQ(ra.fabric.totalMisses(), rb.fabric.totalMisses());
        EXPECT_EQ(ra.context_switches, rb.context_switches);
    }
}

TEST(SweepCheckpoint, CheckpointedSweepMatchesPlainAndRestores)
{
    const std::string dir = tmpPath("dbsim_sweep_ckpt");
    const std::vector<core::SweepItem> items = sweepItems();

    core::SweepRunner plain(1);
    plain.setStateHashInterval(2500);
    const core::SweepOutcome base = plain.runChecked(items);
    ASSERT_TRUE(base.allOk());
    for (const auto &o : base.items)
        EXPECT_FALSE(o.result.run.epoch_hashes.empty())
            << "state-hash interval was forwarded to the item config";

    // Same sweep with periodic checkpointing: observation-only.
    core::SweepRunner ckpt(1);
    ckpt.setStateHashInterval(2500);
    ckpt.setCheckpointDir(dir);
    ckpt.setCheckpointInterval(1500);
    const core::SweepOutcome with_ckpt = ckpt.runChecked(items);
    ASSERT_TRUE(with_ckpt.allOk());
    expectSameSweepOutcome(base, with_ckpt);

    // The per-item checkpoints exist where checkpointPathFor says.
    for (std::size_t i = 0; i < items.size(); ++i) {
        std::ifstream f(ckpt.checkpointPathFor(i), std::ios::binary);
        EXPECT_TRUE(f.good()) << "missing checkpoint for item " << i;
    }

    // --restore: a re-run continues each item from its mid-run
    // checkpoint and still converges to the identical final results.
    core::SweepRunner restore(1);
    restore.setStateHashInterval(2500);
    restore.setCheckpointDir(dir);
    restore.setCheckpointInterval(1500);
    restore.setRestore(true);
    const core::SweepOutcome resumed = restore.runChecked(items);
    ASSERT_TRUE(resumed.allOk());
    expectSameSweepOutcome(base, resumed);

    for (std::size_t i = 0; i < items.size(); ++i)
        std::remove(restore.checkpointPathFor(i).c_str());
}

TEST(SweepCheckpoint, ReportCarriesEpochHashesAndCheckpointPaths)
{
    const std::vector<core::SweepItem> items = sweepItems();
    core::SweepRunner runner(1);
    runner.setStateHashInterval(2500);
    const core::SweepOutcome outcome = runner.runChecked(items);
    ASSERT_TRUE(outcome.allOk());

    const std::string json =
        core::renderSweepEntryJson("sec", outcome.items[0]);
    EXPECT_NE(json.find("\"epoch_hashes\""), std::string::npos);
    EXPECT_NE(json.find("0x"), std::string::npos)
        << "epoch hashes render as hex strings";

    // A failure whose item has a checkpoint on disk records its path.
    core::SweepItemOutcome failed;
    failed.status = core::SweepItemOutcome::Status::Failed;
    failed.index = 3;
    failed.failure.label = "x";
    failed.failure.index = 3;
    failed.failure.kind = core::FailureKind::Timeout;
    failed.failure.what = "deadline";
    failed.failure.checkpoint_path = "/tmp/ckpt/item-3.ckpt";
    const std::string failed_json =
        core::renderSweepEntryJson("sec", failed);
    EXPECT_NE(failed_json.find("\"checkpoint\""), std::string::npos);
    EXPECT_NE(failed_json.find("item-3.ckpt"), std::string::npos);
    EXPECT_NE(failed_json.find("\"timeout\""), std::string::npos);
}

/** FailurePolicy retry:N x timeout honesty (no checkpoint dir): a
 *  timed-out item must not burn retries that would deterministically
 *  time out again from scratch; attempts stays honest at 1. */
TEST(SweepCheckpoint, TimeoutWithoutCheckpointDirIsNotRetried)
{
    std::vector<core::SweepItem> items = sweepItems();
    items.resize(1);

    core::FaultPlan plan;
    core::FaultSpec delay;
    delay.index = 0;
    delay.attempt = 1;
    delay.kind = core::FaultSpec::Kind::Delay;
    delay.delay_seconds = 0.5;
    plan.add(delay);

    core::SweepRunner runner(1);
    runner.setFailurePolicy(core::FailurePolicy::retry(3));
    runner.setItemTimeout(0.05);
    runner.setFaultPlan(&plan);
    const core::SweepOutcome outcome = runner.runChecked(items);
    ASSERT_EQ(outcome.items.size(), 1u);
    ASSERT_FALSE(outcome.items[0].ok());
    EXPECT_EQ(outcome.items[0].failure.kind, core::FailureKind::Timeout);
    EXPECT_EQ(outcome.items[0].attempts, 1u)
        << "without a checkpoint dir, a timeout retry would start from "
           "scratch and time out again; attempts must stay honest";
}

} // namespace
