/**
 * @file
 * Unit tests for the Node cache hierarchy: hit/miss timing through L1,
 * L2 and the fabric, delayed hits on in-flight lines, non-inclusive
 * victim handling, TLB penalties, write upgrades, the instruction-fetch
 * path with and without the stream buffer, and the flush-hint path.
 */

#include <gtest/gtest.h>

#include "coherence/directory.hpp"
#include "memory/page_map.hpp"
#include "sim/node.hpp"

namespace dbsim::sim {
namespace {

using coher::AccessClass;
using mem::CoherState;

struct NodeFixture : ::testing::Test
{
    NodeFixture()
        : page_map(8192, 16, 2), fabric(2),
          node0(0, params(), &page_map, &fabric),
          node1(1, params(), &page_map, &fabric)
    {
        fabric.attachSite(0, &node0);
        fabric.attachSite(1, &node1);
    }

    static NodeParams
    params()
    {
        NodeParams p;
        p.l1i = {4 * 1024, 2, 64, 1, 8, 1};
        p.l1d = {4 * 1024, 2, 64, 1, 8, 2};
        p.l2 = {32 * 1024, 4, 64, 20, 8, 1};
        return p;
    }

    cpu::MemAccessResult
    access(Node &n, Addr va, bool write, Cycles now)
    {
        auto r = n.dataAccess(va, 0x100, write, now, false);
        EXPECT_TRUE(r.has_value());
        return *r;
    }

    mem::PageMap page_map;
    coher::CoherenceFabric fabric;
    Node node0;
    Node node1;
};

TEST_F(NodeFixture, ColdMissThenL1Hit)
{
    const auto miss = access(node0, 0x10000, false, 0);
    EXPECT_EQ(miss.cls, AccessClass::LocalMem);
    EXPECT_GT(miss.ready, 80u);

    const Cycles after = miss.ready + 1;
    const auto hit = access(node0, 0x10000, false, after);
    EXPECT_EQ(hit.cls, AccessClass::L1Hit);
    EXPECT_EQ(hit.ready, after + 1);
    EXPECT_EQ(node0.stats().l1d_misses, 1u);
    EXPECT_EQ(node0.stats().l1d_accesses, 2u);
}

TEST_F(NodeFixture, DelayedHitWaitsForFill)
{
    const auto miss = access(node0, 0x10000, false, 0);
    // Access the same line while the fill is in flight: the data cannot
    // arrive before the original fill.
    const auto delayed = access(node0, 0x10008, false, 5);
    EXPECT_GE(delayed.ready, miss.ready);
    EXPECT_EQ(node0.stats().l1d_delayed_hits, 1u);
    EXPECT_EQ(node0.stats().l1d_misses, 1u);
}

TEST_F(NodeFixture, WriteUpgradeOnSharedLine)
{
    // Both nodes read the line (Shared everywhere), then node0 writes:
    // that takes an upgrade through the fabric, not an L1 hit.
    const auto r0 = access(node0, 0x20000, false, 0);
    access(node1, 0x20000, false, 1000);
    const auto w = access(node0, 0x20000, true, 2000);
    EXPECT_GT(w.ready, 2000u + 10u); // not a 1-cycle hit
    EXPECT_GT(fabric.stats().upgrades + fabric.stats().writes_local +
                  fabric.stats().writes_remote,
              0u);
    (void)r0;
    // Node1's copy must be gone.
    EXPECT_EQ(node1.siteState(blockAlign(page_map.translate(0x20000, 0),
                                         64)),
              CoherState::Invalid);
}

TEST_F(NodeFixture, StoreHitOnExclusiveIsSilent)
{
    const auto rd = access(node0, 0x30000, false, 0); // grants E
    const Cycles t = rd.ready + 1;
    const auto wr = access(node0, 0x30000, true, t);
    EXPECT_EQ(wr.cls, AccessClass::L1Hit);
    EXPECT_EQ(wr.ready, t + 1);
}

TEST_F(NodeFixture, DtlbMissAddsPenalty)
{
    const auto a = access(node0, 0x40000, false, 0);
    // New page: dTLB miss flagged; a second access to the same page
    // hits the TLB.
    EXPECT_TRUE(a.dtlb_miss);
    const auto b = access(node0, 0x40008, false, a.ready + 1);
    EXPECT_FALSE(b.dtlb_miss);
}

TEST_F(NodeFixture, PerfectDtlbNeverMisses)
{
    NodeParams p = params();
    p.perfect_dtlb = true;
    Node n(0, p, &page_map, &fabric);
    // Not attached to the fabric as a site: use addresses homed at 0.
    auto r = n.dataAccess(0x900000, 0x100, false, 0, false);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->dtlb_miss);
}

TEST_F(NodeFixture, NonInclusiveVictimSurvivesInL1)
{
    // Keep one line hot in the L1 (periodic re-touches) while streaming
    // far more than the L2's capacity past it.  The L1 hits do not
    // refresh the line's L2 LRU state, so the L2 eventually evicts it;
    // in the non-inclusive hierarchy the L1 copy survives and the node
    // still answers for the line.
    const auto first = access(node0, 0x50000, false, 0);
    Cycles t = first.ready + 1;
    const Addr pblock = first.pblock;

    bool evicted_from_l2 = false;
    for (int i = 1; i <= 1500; ++i) {
        const auto r = access(
            node0, 0x100000 + static_cast<Addr>(i) * 64, false, t);
        t = r.ready + 1;
        if (i % 8 == 0) {
            const auto keep = access(node0, 0x50000, false, t);
            EXPECT_EQ(keep.cls, AccessClass::L1Hit)
                << "hot line lost at iteration " << i;
            t = keep.ready + 1;
        }
        if (!node0.l2Array().contains(pblock))
            evicted_from_l2 = true;
    }
    EXPECT_TRUE(evicted_from_l2) << "stream never evicted the L2 copy";
    EXPECT_NE(node0.siteState(pblock), CoherState::Invalid);
}

TEST_F(NodeFixture, IfetchMissThenHit)
{
    const auto f0 = node0.instrFetch(0x60000, 0);
    EXPECT_FALSE(f0.l1_hit);
    EXPECT_GT(f0.ready, 50u);
    const auto f1 = node0.instrFetch(0x60004, f0.ready + 1);
    EXPECT_TRUE(f1.l1_hit);
}

TEST_F(NodeFixture, StreamBufferCoversSequentialFetch)
{
    NodeParams p = params();
    p.stream_buffer_entries = 4;
    mem::PageMap pm(8192, 16, 1);
    coher::CoherenceFabric fab(1);
    Node n(0, p, &pm, &fab);
    fab.attachSite(0, &n);

    // First line misses and arms the buffer; following sequential lines
    // are covered by prefetches.
    auto f = n.instrFetch(0x70000, 0);
    Cycles t = f.ready + 50;
    for (int i = 1; i <= 6; ++i) {
        f = n.instrFetch(0x70000 + static_cast<Addr>(i) * 64, t);
        t = f.ready + 50;
    }
    EXPECT_GE(n.stats().l1i_sbuf_hits, 4u);
    EXPECT_GT(n.streamBufferStats().hitRate(), 0.4);
}

TEST_F(NodeFixture, FlushPushesLineHome)
{
    const auto w = access(node0, 0x80000, true, 0);
    node0.flushHint(0x80000, w.ready + 1);
    EXPECT_EQ(node0.stats().flush_hints, 1u);
    EXPECT_EQ(fabric.stats().flushes, 1u);
    // The next reader on another node is serviced by memory, not c2c.
    const auto r = access(node1, 0x80000, false, w.ready + 500);
    EXPECT_NE(r.cls, AccessClass::RemoteDirty);
}

TEST_F(NodeFixture, PrefetchWarmsCacheWithoutCounting)
{
    (void)node0.dataAccess(0x90000, 0x100, false, 0, /*prefetch=*/true);
    EXPECT_EQ(node0.stats().l1d_accesses, 0u);
    // A later demand access hits (once the prefetch fill completes).
    const auto r = access(node0, 0x90000, false, 1000);
    EXPECT_EQ(r.cls, AccessClass::L1Hit);
}

TEST_F(NodeFixture, PortLimitRefusesThirdAccessInCycle)
{
    access(node0, 0xa0000, false, 0);
    access(node0, 0xa1000, false, 0);
    auto r3 = node0.dataAccess(0xa2000, 0x100, false, 0, false);
    EXPECT_FALSE(r3.has_value()); // dual-ported L1D
    auto r4 = node0.dataAccess(0xa2000, 0x100, false, 1, false);
    EXPECT_TRUE(r4.has_value());
}

TEST_F(NodeFixture, MshrFullSetsRetryHint)
{
    NodeParams p = params();
    p.l1d.mshrs = 1;
    p.l2.mshrs = 1;
    mem::PageMap pm(8192, 16, 1);
    coher::CoherenceFabric fab(1);
    Node n(0, p, &pm, &fab);
    fab.attachSite(0, &n);

    auto first = n.dataAccess(0xb0000, 0x100, false, 0, false);
    ASSERT_TRUE(first.has_value());
    Cycles retry = 0;
    auto second = n.dataAccess(0xb1000, 0x100, false, 1, false, &retry);
    EXPECT_FALSE(second.has_value());
    EXPECT_GE(retry, first->ready); // retry once the register frees
}

TEST_F(NodeFixture, SiteInvalidateClearsAllLevels)
{
    const auto r = access(node0, 0xc0000, false, 0);
    node0.siteInvalidate(r.pblock);
    EXPECT_EQ(node0.siteState(r.pblock), CoherState::Invalid);
    // Next access misses again.
    const auto r2 = access(node0, 0xc0000, false, r.ready + 100);
    EXPECT_NE(r2.cls, AccessClass::L1Hit);
}

TEST_F(NodeFixture, ResetStatsClearsCounters)
{
    access(node0, 0xd0000, false, 0);
    node0.resetStats();
    EXPECT_EQ(node0.stats().l1d_accesses, 0u);
    EXPECT_EQ(node0.stats().l1d_misses, 0u);
}

} // namespace
} // namespace dbsim::sim
