/**
 * @file
 * Unit tests for the MSHR file: allocation, coalescing, capacity,
 * draining, and occupancy accounting.
 */

#include <gtest/gtest.h>

#include "memory/mshr.hpp"

namespace dbsim::mem {
namespace {

TEST(Mshr, RejectsZeroEntries)
{
    EXPECT_THROW(MshrFile(0), std::runtime_error);
}

TEST(Mshr, AllocateAndDrain)
{
    MshrFile m(4);
    EXPECT_TRUE(m.allocate(0x100, true, 0, 50));
    EXPECT_TRUE(m.outstanding(0x100));
    EXPECT_EQ(m.inUse(), 1u);
    m.drain(49);
    EXPECT_TRUE(m.outstanding(0x100));
    m.drain(50);
    EXPECT_FALSE(m.outstanding(0x100));
    EXPECT_EQ(m.inUse(), 0u);
}

TEST(Mshr, FullRefusesAllocation)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(0x0, true, 0, 100));
    EXPECT_TRUE(m.allocate(0x40, true, 0, 100));
    EXPECT_FALSE(m.allocate(0x80, true, 0, 100));
    EXPECT_EQ(m.stats().full_stalls, 1u);
    m.drain(100);
    EXPECT_TRUE(m.allocate(0x80, true, 100, 200));
}

TEST(Mshr, RetriedFullStallCountsOnce)
{
    MshrFile m(1);
    ASSERT_TRUE(m.allocate(0x0, true, 0, 100));
    // A stalled request retries every cycle until an entry frees up;
    // that is one stall episode, not five.
    for (Cycles now = 1; now <= 5; ++now) {
        m.drain(now);
        EXPECT_FALSE(m.allocate(0x40, true, now, now + 100));
    }
    EXPECT_EQ(m.stats().full_stalls, 1u);
}

TEST(Mshr, DistinctBlocksStallSeparately)
{
    MshrFile m(1);
    ASSERT_TRUE(m.allocate(0x0, true, 0, 100));
    EXPECT_FALSE(m.allocate(0x40, true, 1, 101));
    EXPECT_FALSE(m.allocate(0x80, true, 1, 101));
    EXPECT_FALSE(m.allocate(0x40, true, 2, 102)); // retry, same episode
    EXPECT_EQ(m.stats().full_stalls, 2u);
}

TEST(Mshr, NewEpisodeAfterSuccessfulAllocation)
{
    MshrFile m(1);
    ASSERT_TRUE(m.allocate(0x0, true, 0, 50));
    EXPECT_FALSE(m.allocate(0x40, true, 1, 101));
    m.drain(50);
    ASSERT_TRUE(m.allocate(0x40, true, 50, 150)); // episode over
    m.drain(150);
    ASSERT_TRUE(m.allocate(0x0, true, 150, 250));
    EXPECT_FALSE(m.allocate(0x40, true, 151, 251)); // new episode
    EXPECT_EQ(m.stats().full_stalls, 2u);
}

TEST(Mshr, RetriedStallDoesNotSkewOccupancy)
{
    MshrFile m(1);
    // One entry busy 0..100.  A stalled competitor hammers drain() every
    // cycle from 10..90; the occupancy distribution must still see one
    // uninterrupted interval at occupancy 1.
    ASSERT_TRUE(m.allocate(0x0, true, 0, 100));
    for (Cycles now = 10; now <= 90; ++now) {
        m.drain(now);
        EXPECT_FALSE(m.allocate(0x40, true, now, now + 100));
    }
    m.drain(100);
    const auto &occ = m.stats().occupancy;
    EXPECT_EQ(occ.busyTime(), 100u);
    EXPECT_DOUBLE_EQ(occ.fracAtLeast(1), 1.0);
}

TEST(Mshr, CoalesceReturnsFillTime)
{
    MshrFile m(4);
    ASSERT_TRUE(m.allocate(0x100, true, 0, 75));
    EXPECT_EQ(m.coalesce(0x100, true, 10), 75u);
    EXPECT_EQ(m.inUse(), 1u);
    EXPECT_EQ(m.stats().coalesced, 1u);
}

TEST(Mshr, WriteJoiningReadCountsAsRead)
{
    MshrFile m(4);
    ASSERT_TRUE(m.allocate(0x100, /*is_read=*/false, 0, 60));
    EXPECT_FALSE(m.outstandingRead(0x100));
    m.coalesce(0x100, /*is_read=*/true, 5);
    EXPECT_TRUE(m.outstandingRead(0x100));
}

TEST(Mshr, ExtendPushesFillTime)
{
    MshrFile m(2);
    ASSERT_TRUE(m.allocate(0x200, true, 0, 50));
    m.extend(0x200, 90);
    m.drain(60);
    EXPECT_TRUE(m.outstanding(0x200));
    m.drain(90);
    EXPECT_FALSE(m.outstanding(0x200));
}

TEST(Mshr, ExtendNeverShortens)
{
    MshrFile m(2);
    ASSERT_TRUE(m.allocate(0x200, true, 0, 80));
    m.extend(0x200, 40);
    m.drain(50);
    EXPECT_TRUE(m.outstanding(0x200));
}

TEST(Mshr, OccupancyTracksAllAndReads)
{
    MshrFile m(4);
    // One read miss outstanding 0..100, one write miss 50..100.
    ASSERT_TRUE(m.allocate(0x0, true, 0, 100));
    ASSERT_TRUE(m.allocate(0x40, false, 50, 100));
    m.drain(100);
    m.drain(150); // idle tail should not affect busy fractions

    const auto &all = m.stats().occupancy;
    EXPECT_EQ(all.busyTime(), 100u);
    EXPECT_DOUBLE_EQ(all.fracAtLeast(1), 1.0);
    EXPECT_DOUBLE_EQ(all.fracAtLeast(2), 0.5);

    const auto &rd = m.stats().read_occupancy;
    EXPECT_EQ(rd.busyTime(), 100u);
    EXPECT_DOUBLE_EQ(rd.fracAtLeast(2), 0.0);
}

TEST(Mshr, AllocationsCounted)
{
    MshrFile m(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(m.allocate(static_cast<Addr>(i) * 64, true, 0, 10));
    EXPECT_EQ(m.stats().allocations, 5u);
}

} // namespace
} // namespace dbsim::mem
