/**
 * @file
 * Integration tests of the full machine (System): termination,
 * determinism, lock mutual exclusion across processors, scheduling and
 * blocking-syscall behavior, and breakdown accounting.
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "trace/source.hpp"
#include "workload/oltp_engine.hpp"

namespace dbsim::sim {
namespace {

using trace::OpClass;
using trace::TraceRecord;

TraceRecord
rec(OpClass op, Addr pc, Addr va = kNoAddr, std::uint64_t extra = 0)
{
    TraceRecord r;
    r.op = op;
    r.pc = pc;
    r.vaddr = va;
    r.extra = extra;
    return r;
}

SystemParams
smallParams(std::uint32_t nodes)
{
    SystemParams sp;
    sp.num_nodes = nodes;
    sp.max_cycles = 50'000'000;
    return sp;
}

TEST(System, RunsToTraceCompletion)
{
    System sys(smallParams(1));
    std::vector<TraceRecord> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rec(OpClass::IntAlu, 0x1000 + i * 4));
    sys.addProcess(std::make_unique<trace::VectorSource>(v), 0);
    const auto r = sys.run(10'000'000);
    EXPECT_EQ(r.instructions, 500u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(System, StopsAtInstructionBudget)
{
    workload::OltpWorkload wl(workload::OltpParams{});
    System sys(smallParams(1));
    sys.addProcess(wl.makeProcess(0), 0);
    const auto r = sys.run(5000);
    EXPECT_GE(r.instructions, 5000u);
    EXPECT_LT(r.instructions, 6000u);
}

TEST(System, DeterministicAcrossRuns)
{
    auto run_once = [] {
        workload::OltpParams p;
        p.num_procs = 8;
        workload::OltpWorkload wl(p);
        System sys(smallParams(2));
        for (ProcId i = 0; i < 8; ++i)
            sys.addProcess(wl.makeProcess(i), i % 2);
        return sys.run(60000, 10000);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    for (std::size_t i = 0; i < kNumStallCats; ++i)
        EXPECT_DOUBLE_EQ(a.breakdown.cycles[i], b.breakdown.cycles[i]);
}

TEST(System, LockMutualExclusionAcrossNodes)
{
    // Two processes on different CPUs fight over one lock; the lock
    // table must never show interleaved ownership (this is enforced
    // inside System::lockTryAcquire, so here we check the run completes
    // and both critical sections executed).
    System sys(smallParams(2));
    auto make = [](Addr pcbase) {
        std::vector<TraceRecord> v;
        for (int i = 0; i < 50; ++i) {
            v.push_back(rec(OpClass::LockAcquire, pcbase, 0x80000));
            v.push_back(rec(OpClass::MemBarrier, pcbase + 4));
            v.push_back(rec(OpClass::Load, pcbase + 8, 0x80040));
            v.push_back(rec(OpClass::Store, pcbase + 12, 0x80040));
            v.push_back(rec(OpClass::WriteBarrier, pcbase + 16));
            v.push_back(rec(OpClass::LockRelease, pcbase + 20, 0x80000));
            for (int k = 0; k < 10; ++k)
                v.push_back(rec(OpClass::IntAlu, pcbase + 24 + k * 4));
        }
        return std::make_unique<trace::VectorSource>(v);
    };
    sys.addProcess(make(0x1000), 0);
    sys.addProcess(make(0x2000), 1);
    const auto r = sys.run(10'000'000);
    EXPECT_EQ(r.instructions, 2u * 50u * 16u);
}

TEST(System, SyscallBlocksAndOverlapsOtherProcess)
{
    // Process A blocks on a long syscall; process B (same CPU) runs
    // meanwhile.  Completion requires the scheduler to switch.
    System sys(smallParams(1));
    std::vector<TraceRecord> a;
    a.push_back(rec(OpClass::IntAlu, 0x1000));
    a.push_back(rec(OpClass::SyscallBlock, 0x1004, kNoAddr, 20000));
    a.push_back(rec(OpClass::IntAlu, 0x1008));
    std::vector<TraceRecord> b;
    for (int i = 0; i < 2000; ++i)
        b.push_back(rec(OpClass::IntAlu, 0x2000 + (i % 64) * 4));
    sys.addProcess(std::make_unique<trace::VectorSource>(a), 0);
    sys.addProcess(std::make_unique<trace::VectorSource>(b), 0);
    const auto r = sys.run(10'000'000);
    EXPECT_EQ(r.instructions, 3u + 2000u);
    // The 20k-cycle block must be visible in total time.
    EXPECT_GT(r.cycles, 20000u);
    // ... but B's 2000 instructions overlapped it, so idle is less than
    // the full block time.
    EXPECT_LT(r.breakdown[StallCat::Idle], 25000.0);
}

TEST(System, WarmupResetDropsEarlyCycles)
{
    workload::OltpWorkload wl(workload::OltpParams{});
    System sys(smallParams(1));
    sys.addProcess(wl.makeProcess(0), 0);
    const auto r = sys.run(40000, 20000);
    // Post-warmup window only.
    EXPECT_LT(r.instructions, 25000u);
    EXPECT_GT(r.instructions, 15000u);
}

TEST(System, BreakdownAccountsWindowCycles)
{
    workload::OltpParams p;
    p.num_procs = 4;
    workload::OltpWorkload wl(p);
    System sys(smallParams(2));
    for (ProcId i = 0; i < 4; ++i)
        sys.addProcess(wl.makeProcess(i), i % 2);
    const auto r = sys.run(50000, 0);
    double sum = 0;
    for (std::size_t i = 0; i < kNumStallCats; ++i)
        sum += r.breakdown.cycles[i];
    // Two cores accounting every cycle of the window.
    EXPECT_NEAR(sum, 2.0 * static_cast<double>(r.cycles),
                0.01 * sum + 4.0);
}

TEST(System, UniprocessorHasNoRemoteOrDirtyReads)
{
    workload::OltpParams p;
    p.num_procs = 4;
    workload::OltpWorkload wl(p);
    System sys(smallParams(1));
    for (ProcId i = 0; i < 4; ++i)
        sys.addProcess(wl.makeProcess(i), 0);
    const auto r = sys.run(80000, 0);
    EXPECT_DOUBLE_EQ(r.breakdown[StallCat::ReadRemote], 0.0);
    EXPECT_DOUBLE_EQ(r.breakdown[StallCat::ReadDirty], 0.0);
    EXPECT_EQ(sys.fabric().stats().reads_remote, 0u);
    EXPECT_EQ(sys.fabric().stats().dirtyMisses(), 0u);
}

TEST(System, MultiprocessorGeneratesCommunication)
{
    workload::OltpParams p;
    p.num_procs = 8;
    workload::OltpWorkload wl(p);
    System sys(smallParams(4));
    for (ProcId i = 0; i < 8; ++i)
        sys.addProcess(wl.makeProcess(i), i % 4);
    const auto r = sys.run(200000, 20000);
    (void)r;
    EXPECT_GT(sys.fabric().stats().dirtyMisses(), 0u);
    EXPECT_GT(sys.fabric().stats().invalidations_sent, 0u);
}

TEST(System, IdleWhenNoProcesses)
{
    System sys(smallParams(2));
    workload::OltpParams p;
    p.num_procs = 1;
    workload::OltpWorkload wl(p);
    sys.addProcess(wl.makeProcess(0), 0);
    const auto r = sys.run(20000);
    // CPU 1 had nothing to run: its time is all idle.
    EXPECT_GT(r.breakdown[StallCat::Idle],
              static_cast<double>(r.cycles) * 0.9);
}

} // namespace
} // namespace dbsim::sim
