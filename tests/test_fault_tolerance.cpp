/**
 * @file
 * Sweep fault-tolerance layer (DESIGN.md §5e): per-item isolation under
 * collect/retry policies, failure classification, retry determinism,
 * host item deadlines, the crash-dump registry under concurrent
 * failures, the incremental journal + resume planner, and the bench
 * harness glue (flag parsing, exit codes, end-to-end resume).
 *
 * Heavyweight end-to-end scenarios live in tools/dbsim-faultsim; this
 * file keeps the unit-level contracts pinned down.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "common/errors.hpp"
#include "core/config.hpp"
#include "core/fault_plan.hpp"
#include "core/sweep.hpp"

namespace dbsim::core {
namespace {

SimConfig
quick(WorkloadKind kind, std::uint32_t nodes = 1)
{
    SimConfig cfg = makeScaledConfig(kind, nodes);
    cfg.total_instructions = 30000;
    cfg.warmup_instructions = 6000;
    return cfg;
}

std::vector<SweepItem>
okItems(std::size_t n)
{
    std::vector<SweepItem> items;
    for (std::size_t i = 0; i < n; ++i) {
        char label[16];
        std::snprintf(label, sizeof(label), "i%zu", i);
        items.push_back({label, quick(WorkloadKind::Oltp)});
    }
    return items;
}

/** Zero the host-timing fields of a rendered entry (field-exact compare). */
std::string
normalizeEntry(std::string line)
{
    for (const char *key :
         {"\"wall_seconds\":", "\"sim_instructions_per_host_second\":"}) {
        const std::size_t at = line.find(key);
        if (at == std::string::npos)
            continue;
        std::size_t from = at + std::string(key).size();
        std::size_t to = from;
        while (to < line.size() && line[to] != ',' && line[to] != '}')
            ++to;
        line.replace(from, to - from, "0");
    }
    return line;
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

TEST(FaultPlan, MatchesExactIndexAndAttempt)
{
    FaultPlan plan;
    FaultSpec s;
    s.index = 3;
    s.attempt = 2;
    s.kind = FaultSpec::Kind::Throw;
    plan.add(s);

    EXPECT_EQ(plan.match(3, 1), nullptr);
    ASSERT_NE(plan.match(3, 2), nullptr);
    EXPECT_EQ(plan.match(3, 2)->kind, FaultSpec::Kind::Throw);
    EXPECT_EQ(plan.match(4, 2), nullptr);
}

TEST(FaultPlan, FailAttemptsExpandsInclusiveRange)
{
    FaultPlan plan;
    plan.failAttempts(7, 3, FaultSpec::Kind::Panic, "boom");
    EXPECT_EQ(plan.size(), 3u);
    for (unsigned a = 1; a <= 3; ++a) {
        ASSERT_NE(plan.match(7, a), nullptr) << "attempt " << a;
        EXPECT_EQ(plan.match(7, a)->message, "boom");
    }
    EXPECT_EQ(plan.match(7, 4), nullptr);
}

// ---------------------------------------------------------------------
// FailurePolicy / classification
// ---------------------------------------------------------------------

TEST(FailurePolicy, DescribeAndIsolating)
{
    EXPECT_EQ(FailurePolicy::abort().describe(), "abort");
    EXPECT_EQ(FailurePolicy::collect().describe(), "collect");
    EXPECT_EQ(FailurePolicy::retry(3).describe(), "retry:3");
    EXPECT_FALSE(FailurePolicy::abort().isolating());
    EXPECT_TRUE(FailurePolicy::collect().isolating());
    EXPECT_TRUE(FailurePolicy::retry(2).isolating());
    EXPECT_EQ(FailurePolicy::retry(0).max_attempts, 1u);
}

TEST(SweepFaultTolerance, CollectIsolatesPanicAsStructuredFailure)
{
    auto items = okItems(4);
    FaultPlan plan;
    plan.failAttempts(1, 1, FaultSpec::Kind::Panic, "isolated panic");

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    ASSERT_EQ(out.items.size(), 4u);
    EXPECT_EQ(out.failures(), 1u);
    EXPECT_TRUE(out.items[0].ok());
    EXPECT_TRUE(out.items[2].ok());
    EXPECT_TRUE(out.items[3].ok());

    const SweepFailure &f = out.items[1].failure;
    EXPECT_EQ(f.index, 1u);
    EXPECT_EQ(f.label, "i1");
    EXPECT_EQ(f.kind, FailureKind::Invariant);
    EXPECT_NE(f.what.find("isolated panic"), std::string::npos);
    EXPECT_EQ(f.attempts, 1u);
    EXPECT_NE(out.items[1].error, nullptr);
}

TEST(SweepFaultTolerance, RetryReproducesUndisturbedResultsExactly)
{
    auto items = okItems(4);

    SweepRunner clean(1);
    const auto baseline = clean.run(items);

    FaultPlan plan;
    plan.failAttempts(2, 1, FaultSpec::Kind::Throw, "flaky once");

    for (const unsigned jobs : {1u, 4u}) {
        SweepRunner runner(jobs);
        runner.setFailurePolicy(FailurePolicy::retry(2));
        runner.setFaultPlan(&plan);
        const SweepOutcome out = runner.runChecked(items);

        ASSERT_TRUE(out.allOk()) << "jobs=" << jobs;
        EXPECT_EQ(out.items[2].attempts, 2u);
        for (std::size_t i = 0; i < items.size(); ++i) {
            EXPECT_EQ(out.items[i].result.run.cycles,
                      baseline[i].run.cycles)
                << "jobs=" << jobs << " item " << i;
            EXPECT_EQ(out.items[i].result.run.instructions,
                      baseline[i].run.instructions)
                << "jobs=" << jobs << " item " << i;
        }
    }
}

TEST(SweepFaultTolerance, ConfigRejectionIsNeverRetried)
{
    auto items = okItems(3);
    items[1].cfg.total_instructions = 0;

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::retry(5));
    const SweepOutcome out = runner.runChecked(items);

    EXPECT_EQ(out.failures(), 1u);
    EXPECT_EQ(out.items[1].failure.kind, FailureKind::Config);
    EXPECT_EQ(out.items[1].attempts, 1u)
        << "deterministic rejection must not burn retries";
}

TEST(SweepFaultTolerance, AbortModeRunCarriesLegacySemantics)
{
    auto items = okItems(3);
    items[0].cfg.total_instructions = 0;

    SweepRunner runner(2); // default policy: abort
    EXPECT_THROW(runner.run(items), ConfigError);
}

TEST(SweepFaultTolerance, DelayedItemBecomesTimeoutWithMachineDump)
{
    auto items = okItems(2);
    FaultPlan plan;
    FaultSpec delay;
    delay.index = 1;
    delay.attempt = 1;
    delay.kind = FaultSpec::Kind::Delay;
    delay.delay_seconds = 0.5;
    plan.add(delay);

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setItemTimeout(0.2);
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    EXPECT_TRUE(out.items[0].ok());
    ASSERT_FALSE(out.items[1].ok());
    EXPECT_EQ(out.items[1].failure.kind, FailureKind::Timeout);
    EXPECT_NE(out.items[1].failure.what.find("deadline"),
              std::string::npos);
    EXPECT_FALSE(out.items[1].failure.crash_dump_excerpt.empty())
        << "timeout failures must carry the machine-state dump";
}

/** Two items panicking concurrently on different pool threads must
 *  produce two distinct, uncorrupted failure records -- the crash-dump
 *  registry and panic path are shared process state. */
TEST(SweepFaultTolerance, ConcurrentPanicsYieldDistinctRecords)
{
    auto items = okItems(4);
    FaultPlan plan;
    plan.failAttempts(0, 1, FaultSpec::Kind::Panic, "panic-alpha");
    plan.failAttempts(3, 1, FaultSpec::Kind::Panic, "panic-omega");

    SweepRunner runner(4);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setFaultPlan(&plan);
    const SweepOutcome out = runner.runChecked(items);

    EXPECT_EQ(out.failures(), 2u);
    ASSERT_FALSE(out.items[0].ok());
    ASSERT_FALSE(out.items[3].ok());
    EXPECT_EQ(out.items[0].failure.kind, FailureKind::Invariant);
    EXPECT_EQ(out.items[3].failure.kind, FailureKind::Invariant);
    EXPECT_NE(out.items[0].failure.what.find("panic-alpha"),
              std::string::npos);
    EXPECT_EQ(out.items[0].failure.what.find("panic-omega"),
              std::string::npos)
        << "record 0 contaminated by the other thread's panic";
    EXPECT_NE(out.items[3].failure.what.find("panic-omega"),
              std::string::npos);
    EXPECT_EQ(out.items[3].failure.what.find("panic-alpha"),
              std::string::npos)
        << "record 3 contaminated by the other thread's panic";
    EXPECT_EQ(out.items[0].failure.index, 0u);
    EXPECT_EQ(out.items[3].failure.index, 3u);
}

// ---------------------------------------------------------------------
// resolveJobs / resolveItemTimeout environment handling
// ---------------------------------------------------------------------

TEST(SweepRunnerEnv, ResolveItemTimeoutPrecedenceAndHardening)
{
    ASSERT_EQ(unsetenv("DBSIM_ITEM_TIMEOUT"), 0);
    EXPECT_EQ(SweepRunner::resolveItemTimeout(0.0), 0.0);
    EXPECT_EQ(SweepRunner::resolveItemTimeout(7.5), 7.5);

    ASSERT_EQ(setenv("DBSIM_ITEM_TIMEOUT", "30", 1), 0);
    EXPECT_EQ(SweepRunner::resolveItemTimeout(0.0), 30.0);
    EXPECT_EQ(SweepRunner::resolveItemTimeout(5.0), 5.0); // CLI wins

    for (const char *bad : {"banana", "-3", "1e9x", ""}) {
        ASSERT_EQ(setenv("DBSIM_ITEM_TIMEOUT", bad, 1), 0);
        EXPECT_EQ(SweepRunner::resolveItemTimeout(0.0), 0.0)
            << "DBSIM_ITEM_TIMEOUT=\"" << bad << "\"";
    }
    ASSERT_EQ(unsetenv("DBSIM_ITEM_TIMEOUT"), 0);
}

// ---------------------------------------------------------------------
// Journal + resume planner
// ---------------------------------------------------------------------

TEST(SweepJournalTest, RoundTripAndTornLineTolerance)
{
    const std::string path = "TEST_FT_journal.jsonl";
    auto items = okItems(3);
    FaultPlan plan;
    plan.failAttempts(1, 1, FaultSpec::Kind::Throw, "journaled failure");

    SweepRunner runner(2);
    runner.setFailurePolicy(FailurePolicy::collect());
    runner.setFaultPlan(&plan);
    SweepJournal journal;
    ASSERT_TRUE(journal.open(path, /*append=*/false));
    runner.setCompletionCallback([&](const SweepItemOutcome &o) {
        journal.append("sec", o);
    });
    const SweepOutcome out = runner.runChecked(items);
    journal.close();

    auto entries = SweepJournal::load(path);
    ASSERT_EQ(entries.size(), 3u);
    std::size_t ok = 0, failed = 0;
    for (const auto &e : entries) {
        EXPECT_EQ(e.section, "sec");
        (e.ok() ? ok : failed) += 1;
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(failed, 1u);

    // A mid-write kill leaves a torn final line: loader skips it.
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"section\":\"sec\",\"label\":\"i9\",\"status\":\"o";
    }
    EXPECT_EQ(SweepJournal::load(path).size(), 3u);

    // Journal lines are byte-identical to report entries (the splice
    // property the resume path depends on).
    for (const auto &e : entries) {
        bool matched = false;
        for (const auto &o : out.items) {
            if (renderSweepEntryJson("sec", o) == e.raw)
                matched = true;
        }
        EXPECT_TRUE(matched) << "journal line is not a report entry: "
                             << e.raw;
    }
    std::remove(path.c_str());
}

TEST(SweepJournalTest, MissingFileLoadsEmpty)
{
    EXPECT_TRUE(SweepJournal::load("TEST_FT_does_not_exist.jsonl").empty());
}

TEST(ResumePlanner, ReplaysOkReRunsFailedAndMissing)
{
    auto items = okItems(4);
    std::vector<SweepJournalEntry> entries;
    entries.push_back({"sec", "i0", "ok", "{\"line\":0}"});
    entries.push_back({"sec", "i1", "failed", "{\"line\":1}"});
    entries.push_back({"other", "i2", "ok", "{\"line\":2}"});

    const ResumePlan plan = planResume("sec", items, entries);
    ASSERT_EQ(plan.replayed.size(), 4u);
    EXPECT_EQ(plan.replayed[0], "{\"line\":0}");
    EXPECT_TRUE(plan.replayed[1].empty()) << "failed entries re-run";
    EXPECT_TRUE(plan.replayed[2].empty()) << "wrong section ignored";
    EXPECT_TRUE(plan.replayed[3].empty()) << "missing entries re-run";
    EXPECT_EQ(plan.to_run, (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_EQ(plan.replayedCount(), 1u);
}

TEST(ResumePlanner, DuplicateLabelsConsumeJournalLinesInOrder)
{
    std::vector<SweepItem> items(3, {"same", quick(WorkloadKind::Oltp)});
    std::vector<SweepJournalEntry> entries;
    entries.push_back({"sec", "same", "ok", "{\"first\":1}"});
    entries.push_back({"sec", "same", "ok", "{\"second\":2}"});

    const ResumePlan plan = planResume("sec", items, entries);
    EXPECT_EQ(plan.replayed[0], "{\"first\":1}");
    EXPECT_EQ(plan.replayed[1], "{\"second\":2}");
    EXPECT_TRUE(plan.replayed[2].empty());
    EXPECT_EQ(plan.to_run, (std::vector<std::size_t>{2}));
}

/** Resume with original indices must reproduce the clean run's per-item
 *  seeds: item i re-run in a subset still simulates as item i. */
TEST(ResumePlanner, ReRunSubsetPreservesOriginalSeeds)
{
    auto items = okItems(4);
    SweepRunner runner(2);
    runner.setBaseSeed(99); // per-item seeds depend on the index
    const auto baseline = runner.run(items);

    std::vector<SweepItem> subset = {items[1], items[3]};
    runner.setFailurePolicy(FailurePolicy::collect());
    const SweepOutcome out = runner.runChecked(subset, {1, 3});
    ASSERT_TRUE(out.allOk());
    EXPECT_EQ(out.items[0].index, 1u);
    EXPECT_EQ(out.items[1].index, 3u);
    EXPECT_EQ(out.items[0].result.run.cycles, baseline[1].run.cycles);
    EXPECT_EQ(out.items[1].result.run.cycles, baseline[3].run.cycles);
}

// ---------------------------------------------------------------------
// Bench harness: flag parsing, exit codes, end-to-end resume
// ---------------------------------------------------------------------

bench::BenchOptions
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto &a : args)
        argv.push_back(a.data());
    return bench::parseBenchArgs(static_cast<int>(argv.size()),
                                 argv.data());
}

TEST(BenchArgs, ParsesSharedFlagsInBothForms)
{
    const auto opts =
        parse({"--jobs", "3", "--json=out.json", "--journal", "j.jsonl",
               "--resume=r.jsonl", "--max-retries", "2",
               "--item-timeout-sec=45", "--on-failure", "collect",
               "--sharing"});
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.json_path, "out.json");
    EXPECT_EQ(opts.journal_path, "j.jsonl");
    EXPECT_EQ(opts.resume_path, "r.jsonl");
    EXPECT_EQ(opts.max_retries, 2u);
    EXPECT_EQ(opts.item_timeout_sec, 45u);
    EXPECT_TRUE(opts.collect_failures);
    ASSERT_EQ(opts.rest.size(), 1u);
    EXPECT_TRUE(opts.has("--sharing"));
}

TEST(BenchArgs, RejectsBadValues)
{
    EXPECT_THROW(parse({"--jobs", "0"}), ConfigError);
    EXPECT_THROW(parse({"--jobs", "banana"}), ConfigError);
    EXPECT_THROW(parse({"--max-retries", "-1"}), ConfigError);
    EXPECT_THROW(parse({"--on-failure", "maybe"}), ConfigError);
    EXPECT_THROW(parse({"--json"}), ConfigError); // missing value
}

TEST(BenchHarness, UnwritableReportYieldsExitOne)
{
    bench::BenchOptions opts;
    opts.json_path = "/nonexistent-dir-zz/report.json";
    opts.journal_path = "none";
    bench::BenchContext ctx("ft_exit1", opts);
    ctx.sweep("s", okItems(1));
    EXPECT_EQ(ctx.finish(), 1);
}

TEST(BenchHarness, CollectedFailureYieldsPartialFailureExit)
{
    bench::BenchOptions opts;
    opts.journal_path = "none";
    opts.collect_failures = true;
    bench::BenchContext ctx("ft_exit4", opts);
    auto items = okItems(2);
    items[0].cfg.total_instructions = 0; // config rejection, collected
    const auto fresh = ctx.sweep("s", items);
    EXPECT_EQ(fresh.size(), 1u);
    EXPECT_EQ(ctx.finish(), kSweepPartialFailureExit);
}

TEST(BenchHarness, InterruptedThenResumedReportIsFieldExact)
{
    const std::string clean_json = "TEST_FT_clean.json";
    const std::string clean_journal = "TEST_FT_clean.journal.jsonl";
    const std::string torn_journal = "TEST_FT_torn.journal.jsonl";
    const std::string resumed_json = "TEST_FT_resumed.json";
    auto items = okItems(3);

    { // Clean reference run.
        bench::BenchOptions opts;
        opts.json_path = clean_json;
        opts.journal_path = clean_journal;
        bench::BenchContext ctx("ft_resume", opts);
        ctx.sweep("s", items);
        ASSERT_EQ(ctx.finish(), 0);
    }

    { // "Interrupt": keep one journal line plus a torn fragment.
        std::ifstream in(clean_journal);
        std::ofstream out(torn_journal, std::ios::trunc);
        std::string line;
        ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
        out << line << "\n{\"section\":\"s\",\"label\":\"i1\",\"sta";
    }

    { // Resume from the torn journal.
        bench::BenchOptions opts;
        opts.json_path = resumed_json;
        opts.resume_path = torn_journal;
        opts.journal_path = torn_journal; // append mode
        bench::BenchContext ctx("ft_resume", opts);
        const auto fresh = ctx.sweep("s", items);
        EXPECT_EQ(fresh.size(), 2u) << "one item replayed, two re-run";
        ASSERT_EQ(ctx.finish(), 0);
    }

    // Field-exact comparison of the two reports, modulo host timing.
    auto slurp = [](const std::string &path) {
        std::ifstream is(path);
        std::vector<std::string> entries;
        std::string line;
        while (std::getline(is, line)) {
            if (line.find("\"label\":") != std::string::npos)
                entries.push_back(normalizeEntry(line));
        }
        return entries;
    };
    const auto a = slurp(clean_json);
    const auto b = slurp(resumed_json);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b);

    // The resumed journal (append mode) now covers the whole sweep, so
    // a second resume replays everything.
    const auto entries = SweepJournal::load(torn_journal);
    EXPECT_EQ(entries.size(), 3u);

    for (const auto &p :
         {clean_json, clean_journal, torn_journal, resumed_json})
        std::remove(p.c_str());
}

} // namespace
} // namespace dbsim::core
