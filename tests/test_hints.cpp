/**
 * @file
 * Tests for the software prefetch / flush hint-insertion pass
 * (paper section 4.2).
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/source.hpp"
#include "workload/hints.hpp"

namespace dbsim::workload {
namespace {

using trace::OpClass;
using trace::TraceRecord;

TraceRecord
rec(OpClass op, Addr pc, Addr va = kNoAddr)
{
    TraceRecord r;
    r.op = op;
    r.pc = pc;
    r.vaddr = va;
    return r;
}

std::vector<TraceRecord>
criticalSection(Addr lock, std::initializer_list<Addr> stores)
{
    std::vector<TraceRecord> v;
    v.push_back(rec(OpClass::LockAcquire, 0x100, lock));
    v.push_back(rec(OpClass::MemBarrier, 0x104));
    for (const Addr a : stores) {
        v.push_back(rec(OpClass::Load, 0x108, a));
        v.push_back(rec(OpClass::Store, 0x10c, a));
    }
    v.push_back(rec(OpClass::WriteBarrier, 0x110));
    v.push_back(rec(OpClass::LockRelease, 0x114, lock));
    return v;
}

std::vector<TraceRecord>
drainAll(trace::TraceSource &src)
{
    std::vector<TraceRecord> v;
    TraceRecord r;
    while (src.next(r))
        v.push_back(r);
    return v;
}

TEST(HintInserter, InsertsPrefetchBeforeAcquireAndFlushAfterRelease)
{
    auto v = criticalSection(0x8000, {0x9000});
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    const auto out = drainAll(hi);

    // Prefetches first, then the original section, then flushes.
    std::size_t i = 0;
    while (i < out.size() && out[i].op == OpClass::PrefetchExcl)
        ++i;
    EXPECT_GT(i, 0u) << "expected at least one prefetch";
    EXPECT_EQ(out[i].op, OpClass::LockAcquire);
    EXPECT_EQ(out.back().op, OpClass::Flush);
    EXPECT_GE(hi.prefetchesInserted(), 2u); // lock line + data line
    // The latch line is prefetched but never flushed.
    EXPECT_EQ(hi.prefetchesInserted(), hi.flushesInserted() + 1);
}

TEST(HintInserter, CoversLockAndStoreLines)
{
    auto v = criticalSection(0x8000, {0x9000, 0x9040});
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    const auto out = drainAll(hi);
    std::set<Addr> flushed, prefetched;
    for (const auto &r : out) {
        if (r.op == OpClass::Flush)
            flushed.insert(r.vaddr);
        if (r.op == OpClass::PrefetchExcl)
            prefetched.insert(r.vaddr);
    }
    // Data lines are flushed; the latch line is only prefetched.
    EXPECT_FALSE(flushed.count(blockAlign(0x8000, 64)));
    EXPECT_TRUE(flushed.count(blockAlign(0x9000, 64)));
    EXPECT_TRUE(flushed.count(blockAlign(0x9040, 64)));
    EXPECT_TRUE(prefetched.count(blockAlign(0x8000, 64)));
}

TEST(HintInserter, DeduplicatesLines)
{
    // Two stores to the same line yield one flush for it.
    auto v = criticalSection(0x8000, {0x9000, 0x9008});
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    const auto out = drainAll(hi);
    int flushes_to_line = 0;
    for (const auto &r : out) {
        if (r.op == OpClass::Flush && r.vaddr == blockAlign(0x9000, 64))
            ++flushes_to_line;
    }
    EXPECT_EQ(flushes_to_line, 1);
}

TEST(HintInserter, PrefetchOnlyMode)
{
    auto v = criticalSection(0x8000, {0x9000});
    HintOptions opts;
    opts.flush = false;
    HintInserter hi(std::make_unique<trace::VectorSource>(v), opts);
    const auto out = drainAll(hi);
    for (const auto &r : out)
        EXPECT_NE(r.op, OpClass::Flush);
    EXPECT_GT(hi.prefetchesInserted(), 0u);
    EXPECT_EQ(hi.flushesInserted(), 0u);
}

TEST(HintInserter, HotLockFilter)
{
    auto v = criticalSection(0x8000, {0x9000});
    auto w = criticalSection(0xF000, {0x9100});
    v.insert(v.end(), w.begin(), w.end());
    HintOptions opts;
    opts.hot_locks.insert(0x8000); // only the first lock is hot
    HintInserter hi(std::make_unique<trace::VectorSource>(v), opts);
    const auto out = drainAll(hi);
    for (const auto &r : out) {
        if (r.op == OpClass::Flush)
            EXPECT_NE(r.vaddr, blockAlign(0x9100, 64));
    }
}

TEST(HintInserter, PassesThroughNonSectionRecords)
{
    std::vector<TraceRecord> v;
    for (int i = 0; i < 100; ++i)
        v.push_back(rec(OpClass::IntAlu, 0x100 + i * 4));
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    EXPECT_EQ(drainAll(hi), v);
}

TEST(HintInserter, PreservesOriginalRecordOrder)
{
    auto v = criticalSection(0x8000, {0x9000});
    v.push_back(rec(OpClass::IntAlu, 0x200));
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    const auto out = drainAll(hi);
    // Strip hints: the rest must equal the input.
    std::vector<TraceRecord> stripped;
    for (const auto &r : out)
        if (!trace::isHint(r.op))
            stripped.push_back(r);
    EXPECT_EQ(stripped, v);
}

TEST(HintInserter, UnterminatedSectionPassesThrough)
{
    std::vector<TraceRecord> v;
    v.push_back(rec(OpClass::LockAcquire, 0x100, 0x8000));
    v.push_back(rec(OpClass::IntAlu, 0x104));
    // Trace ends without a release.
    HintInserter hi(std::make_unique<trace::VectorSource>(v),
                    HintOptions{});
    const auto out = drainAll(hi);
    for (const auto &r : out)
        EXPECT_FALSE(trace::isHint(r.op));
    EXPECT_EQ(out.size(), 2u);
}

TEST(HintInserter, SectionLengthCapRespected)
{
    std::vector<TraceRecord> v;
    v.push_back(rec(OpClass::LockAcquire, 0x100, 0x8000));
    for (int i = 0; i < 1000; ++i)
        v.push_back(rec(OpClass::IntAlu, 0x104));
    v.push_back(rec(OpClass::LockRelease, 0x108, 0x8000));
    HintOptions opts;
    opts.max_section = 64;
    HintInserter hi(std::make_unique<trace::VectorSource>(v), opts);
    const auto out = drainAll(hi);
    // The cap was hit: no hints inserted, everything delivered.
    EXPECT_EQ(out.size(), v.size());
}

} // namespace
} // namespace dbsim::workload
