/**
 * @file
 * Tests for the breakdown accounting type and the report printers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "common/breakdown.hpp"

namespace dbsim {
namespace {

using core::BreakdownRow;
using dbsim::Breakdown;
using dbsim::StallCat;

Breakdown
sample(double busy, double dirty, double instr)
{
    Breakdown b;
    b.add(StallCat::Busy, busy);
    b.add(StallCat::ReadDirty, dirty);
    b.add(StallCat::Instr, instr);
    return b;
}

TEST(Breakdown, ComponentSums)
{
    Breakdown b;
    b.add(StallCat::Busy, 10);
    b.add(StallCat::Fu, 5);
    b.add(StallCat::ReadL2, 3);
    b.add(StallCat::ReadDirty, 7);
    b.add(StallCat::Itlb, 2);
    b.add(StallCat::Idle, 100);
    EXPECT_DOUBLE_EQ(b.cpu(), 15.0);
    EXPECT_DOUBLE_EQ(b.read(), 10.0);
    EXPECT_DOUBLE_EQ(b.instr(), 2.0);
    // Idle excluded from total.
    EXPECT_DOUBLE_EQ(b.total(), 27.0);
}

TEST(Breakdown, AccumulateAndReset)
{
    Breakdown a = sample(1, 2, 3);
    Breakdown b = sample(10, 20, 30);
    a += b;
    EXPECT_DOUBLE_EQ(a[StallCat::Busy], 11.0);
    EXPECT_DOUBLE_EQ(a[StallCat::ReadDirty], 22.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(Breakdown, NamesDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumStallCats; ++i)
        names.insert(stallCatName(static_cast<StallCat>(i)));
    EXPECT_EQ(names.size(), kNumStallCats);
}

TEST(Breakdown, ToStringListsAllCategories)
{
    const std::string s = sample(1, 2, 3).toString();
    EXPECT_NE(s.find("busy"), std::string::npos);
    EXPECT_NE(s.find("read_dirty"), std::string::npos);
    EXPECT_NE(s.find("idle"), std::string::npos);
}

TEST(Report, ExecutionBarsNormalizeToFirstRow)
{
    std::vector<BreakdownRow> rows;
    rows.push_back({"base", sample(50, 30, 20), 100});
    rows.push_back({"half", sample(25, 15, 10), 100});
    std::ostringstream os;
    core::printExecutionBars(os, rows);
    const std::string out = os.str();
    EXPECT_NE(out.find("base"), std::string::npos);
    EXPECT_NE(out.find("100.0"), std::string::npos);
    EXPECT_NE(out.find("50.0"), std::string::npos);
}

TEST(Report, ExecutionBarsNormalizePerInstruction)
{
    // Same total cycles but double the instructions = half the bar.
    std::vector<BreakdownRow> rows;
    rows.push_back({"base", sample(100, 0, 0), 100});
    rows.push_back({"2x-instr", sample(100, 0, 0), 200});
    std::ostringstream os;
    core::printExecutionBars(os, rows);
    EXPECT_NE(os.str().find("50.0"), std::string::npos);
}

TEST(Report, CompositionBarsRowsSumTo100)
{
    std::vector<BreakdownRow> rows;
    rows.push_back({"a", sample(40, 40, 20), 100});
    std::ostringstream os;
    core::printCompositionBars(os, rows);
    const std::string out = os.str();
    EXPECT_NE(out.find("40.0"), std::string::npos);
    EXPECT_NE(out.find("20.0"), std::string::npos);
}

TEST(Report, ReadStallBarsShowDirtyComponent)
{
    std::vector<BreakdownRow> rows;
    rows.push_back({"a", sample(50, 25, 25), 100});
    std::ostringstream os;
    core::printReadStallBars(os, rows);
    EXPECT_NE(os.str().find("25.0"), std::string::npos);
}

TEST(Report, OccupancyPrintsSeries)
{
    stats::OccupancyTracker occ(4);
    occ.advance(0, 2);
    occ.advance(10, 0);
    std::ostringstream os;
    core::printOccupancy(os, "test", occ, 4);
    EXPECT_NE(os.str().find("1.000"), std::string::npos);
}

TEST(Report, EmptyRowsAreSafe)
{
    std::ostringstream os;
    core::printExecutionBars(os, {});
    core::printReadStallBars(os, {});
    core::printCompositionBars(os, {});
    EXPECT_TRUE(os.str().find("nan") == std::string::npos);
}

TEST(Report, HeaderUnderlines)
{
    std::ostringstream os;
    core::printHeader(os, "Title");
    EXPECT_NE(os.str().find("-----"), std::string::npos);
}

} // namespace
} // namespace dbsim
