/**
 * @file
 * Unit tests for the interconnect: reservation resources and the
 * wormhole mesh.
 */

#include <gtest/gtest.h>

#include "interconnect/network.hpp"

namespace dbsim::net {
namespace {

TEST(Resource, UncontendedAcquire)
{
    Resource r;
    EXPECT_EQ(r.acquire(10, 5), 15u);
    EXPECT_EQ(r.busyUntil(), 15u);
    EXPECT_EQ(r.totalWait(), 0u);
}

TEST(Resource, QueuesBehindHolder)
{
    Resource r;
    r.acquire(0, 10);
    EXPECT_EQ(r.acquire(5, 10), 20u); // waits until 10
    EXPECT_EQ(r.totalWait(), 5u);
    EXPECT_EQ(r.acquisitions(), 2u);
}

TEST(Resource, NoWaitWhenIdle)
{
    Resource r;
    r.acquire(0, 10);
    EXPECT_EQ(r.acquire(50, 10), 60u);
    EXPECT_EQ(r.totalWait(), 0u);
}

TEST(Mesh, HopsOn2x2)
{
    Mesh m(4);
    // Layout: 0 1 / 2 3.
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 1), 1u);
    EXPECT_EQ(m.hops(0, 2), 1u);
    EXPECT_EQ(m.hops(0, 3), 2u);
    EXPECT_EQ(m.hops(3, 0), 2u);
}

TEST(Mesh, LocalTransferFree)
{
    Mesh m(4);
    EXPECT_EQ(m.transfer(2, 2, 5, 100), 100u);
}

TEST(Mesh, LatencyScalesWithHops)
{
    Mesh m(4);
    const Cycles one = m.control(0, 1, 0);
    Mesh m2(4);
    const Cycles two = m2.control(0, 3, 0);
    EXPECT_GT(two, one);
}

TEST(Mesh, DataCostsMoreThanControl)
{
    Mesh a(4), b(4);
    EXPECT_GT(b.data(0, 1, 0), a.control(0, 1, 0));
}

TEST(Mesh, ContentionOnSharedLink)
{
    Mesh m(4);
    const Cycles first = m.data(0, 1, 0);
    const Cycles second = m.data(0, 1, 0);
    EXPECT_GT(second, first);
    EXPECT_GT(m.totalLinkWait(), 0u);
}

TEST(Mesh, DisjointLinksNoContention)
{
    Mesh m(4);
    const Cycles a = m.control(0, 1, 0);
    const Cycles b = m.control(2, 3, 0); // different link
    EXPECT_EQ(a, b);
    EXPECT_EQ(m.totalLinkWait(), 0u);
}

TEST(Mesh, SingleNodeMesh)
{
    Mesh m(1);
    EXPECT_EQ(m.transfer(0, 0, 9, 42), 42u);
}

TEST(Mesh, RejectsBadNode)
{
    Mesh m(4);
    EXPECT_DEATH((void)m.hops(0, 7), "bad node");
}

TEST(Mesh, DeterministicLatency)
{
    Mesh a(4), b(4);
    for (std::uint32_t s = 0; s < 4; ++s)
        for (std::uint32_t d = 0; d < 4; ++d)
            EXPECT_EQ(a.control(s, d, 1000), b.control(s, d, 1000));
}

} // namespace
} // namespace dbsim::net
