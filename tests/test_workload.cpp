/**
 * @file
 * Tests for the synthetic workload engines: address-space layout, lock
 * directory, code layout / trace builder, and the OLTP / DSS trace
 * generators' structural invariants (lock pairing, call balance,
 * region-confined addresses, determinism).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/code_layout.hpp"
#include "workload/dss_engine.hpp"
#include "workload/lock_manager.hpp"
#include "workload/oltp_engine.hpp"
#include "workload/sga_layout.hpp"

namespace dbsim::workload {
namespace {

using trace::OpClass;
using trace::TraceRecord;

// ---------------------------------------------------------------- SGA

TEST(SgaLayout, RegionsDisjoint)
{
    SgaLayout lay;
    EXPECT_LT(SgaLayout::kCodeBase, SgaLayout::kMetadataBase);
    EXPECT_LT(lay.metadata(lay.params().metadata_bytes - 1),
              SgaLayout::kBufferBase);
    EXPECT_LT(lay.bufferBlock(lay.params().buffer_blocks - 1,
                              lay.params().block_bytes - 1),
              SgaLayout::kLogBase);
    EXPECT_LT(lay.log(lay.params().log_buffer_bytes - 1),
              SgaLayout::kPrivateBase);
}

TEST(SgaLayout, PrivateAreasPerProcessDisjoint)
{
    SgaLayout lay;
    const Addr a = lay.privateMem(0, 0);
    const Addr b = lay.privateMem(1, 0);
    EXPECT_GE(b - a, lay.params().private_bytes);
}

TEST(SgaLayout, OffsetsWrap)
{
    SgaLayout lay;
    EXPECT_EQ(lay.metadata(0), lay.metadata(lay.params().metadata_bytes));
    EXPECT_EQ(lay.log(1), lay.log(lay.params().log_buffer_bytes + 1));
}

TEST(SgaLayout, BufferBlockRangeChecked)
{
    SgaLayout lay;
    EXPECT_DEATH((void)lay.bufferBlock(lay.params().buffer_blocks, 0),
                 "out of range");
}

// ------------------------------------------------------ LockDirectory

TEST(LockDirectory, LatchesDistinct)
{
    SgaLayout lay;
    LockDirectory ld(&lay, 40, 10, 512);
    std::set<Addr> latches;
    for (std::uint32_t b = 0; b < 40; ++b)
        latches.insert(ld.branchLock(b));
    for (std::uint32_t t = 0; t < 400; ++t)
        latches.insert(ld.tellerLock(t));
    for (std::uint32_t h = 0; h < 512; ++h)
        latches.insert(ld.bucketLock(h));
    latches.insert(ld.logLatch());
    EXPECT_EQ(latches.size(), 40u + 400u + 512u + 1u);
}

TEST(LockDirectory, DataOnDifferentLineThanLatch)
{
    SgaLayout lay;
    LockDirectory ld(&lay, 40, 10, 512);
    for (std::uint32_t b = 0; b < 40; ++b) {
        EXPECT_NE(blockAlign(ld.branchLock(b), 64),
                  blockAlign(ld.branchData(b, 0), 64));
    }
}

TEST(LockDirectory, DataStaysInsideSlot)
{
    SgaLayout lay;
    LockDirectory ld(&lay, 40, 10, 512);
    for (std::uint32_t w = 0; w < 64; ++w) {
        const Addr d = ld.tellerData(7, w);
        EXPECT_GE(d, ld.tellerLock(7));
        EXPECT_LT(d, ld.tellerLock(7) + LockDirectory::kSlotBytes);
    }
}

TEST(LockDirectory, HotLatchesCoverBranchesTellersLog)
{
    SgaLayout lay;
    LockDirectory ld(&lay, 40, 10, 512);
    const auto hot = ld.hotLatches();
    EXPECT_EQ(hot.size(), 40u + 400u + 1u);
}

TEST(LockDirectory, RejectsOversizedDirectory)
{
    SgaParams sp;
    sp.metadata_bytes = 4096;
    SgaLayout lay(sp);
    EXPECT_THROW(LockDirectory(&lay, 1000, 10, 512), std::runtime_error);
}

// -------------------------------------------------------- CodeLayout

TEST(CodeLayout, RoutinesTileFootprint)
{
    CodeLayout code(0x10000, 64 * 1024, 42);
    ASSERT_GT(code.numRoutines(), 10u);
    Addr expect = 0x10000;
    for (std::uint32_t r = 0; r < code.numRoutines(); ++r) {
        EXPECT_EQ(code.routineStart(r), expect);
        expect += static_cast<Addr>(code.routineInstrs(r)) * 4;
    }
    EXPECT_LE(expect, 0x10000 + 64 * 1024);
    EXPECT_GE(expect, 0x10000 + 60 * 1024); // nearly full coverage
}

TEST(CodeLayout, DeterministicInSeed)
{
    CodeLayout a(0x10000, 32 * 1024, 7);
    CodeLayout b(0x10000, 32 * 1024, 7);
    CodeLayout c(0x10000, 32 * 1024, 8);
    ASSERT_EQ(a.numRoutines(), b.numRoutines());
    for (std::uint32_t r = 0; r < a.numRoutines(); ++r)
        EXPECT_EQ(a.routineInstrs(r), b.routineInstrs(r));
    bool differs = a.numRoutines() != c.numRoutines();
    for (std::uint32_t r = 0;
         !differs && r < std::min(a.numRoutines(), c.numRoutines()); ++r)
        differs = a.routineInstrs(r) != c.routineInstrs(r);
    EXPECT_TRUE(differs);
}

TEST(CodeLayout, RejectsTinyFootprint)
{
    EXPECT_THROW(CodeLayout(0, 1024, 1), std::runtime_error);
}

// ------------------------------------------------------ TraceBuilder

std::vector<TraceRecord>
build(std::function<void(TraceBuilder &)> f, std::uint64_t seed = 3)
{
    static CodeLayout code(0x10000, 32 * 1024, 11);
    std::vector<TraceRecord> out;
    Rng rng(seed);
    TraceBuilder b(&code, &rng,
                   [&out](const TraceRecord &r) { out.push_back(r); });
    f(b);
    return out;
}

TEST(TraceBuilder, ComputeEmitsRequestedWork)
{
    const auto recs = build([](TraceBuilder &b) { b.compute(50); });
    // At least 50 records (fillers + embedded branches).
    EXPECT_GE(recs.size(), 50u);
    int alu = 0;
    for (const auto &r : recs)
        alu += r.op == OpClass::IntAlu;
    EXPECT_GE(alu, 50);
}

TEST(TraceBuilder, PcsStayInsideCodeSegment)
{
    const auto recs = build([](TraceBuilder &b) {
        for (int i = 0; i < 20; ++i) {
            b.call();
            b.compute(30);
            b.ret();
        }
    });
    for (const auto &r : recs) {
        EXPECT_GE(r.pc, 0x10000u);
        EXPECT_LT(r.pc, 0x10000u + 32 * 1024);
    }
}

TEST(TraceBuilder, CallRetBalanced)
{
    const auto recs = build([](TraceBuilder &b) {
        b.call();
        b.compute(10);
        b.call();
        b.compute(10);
        b.ret();
        b.ret();
    });
    int depth = 0;
    for (const auto &r : recs) {
        if (r.op == OpClass::BranchCall)
            ++depth;
        if (r.op == OpClass::BranchRet) {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
}

TEST(TraceBuilder, LockPairEmitsFences)
{
    const auto recs = build([](TraceBuilder &b) {
        b.lockAcquire(0x8000);
        b.compute(5);
        b.lockRelease(0x8000);
    });
    std::vector<OpClass> ops;
    for (const auto &r : recs)
        if (r.op != OpClass::IntAlu && r.op != OpClass::BranchCond &&
            r.op != OpClass::BranchJmp)
            ops.push_back(r.op);
    ASSERT_GE(ops.size(), 4u);
    EXPECT_EQ(ops[0], OpClass::LockAcquire);
    EXPECT_EQ(ops[1], OpClass::MemBarrier);
    EXPECT_EQ(ops[ops.size() - 2], OpClass::WriteBarrier);
    EXPECT_EQ(ops.back(), OpClass::LockRelease);
}

TEST(TraceBuilder, MemOpCarriesAddressAndDep)
{
    const auto recs = build([](TraceBuilder &b) {
        b.memOp(OpClass::Load, 0x1234);
        b.memOp(OpClass::Load, 0x5678, 1);
    });
    std::vector<TraceRecord> loads;
    for (const auto &r : recs)
        if (r.op == OpClass::Load)
            loads.push_back(r);
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].vaddr, 0x1234u);
    EXPECT_EQ(loads[1].dep1, 1u);
}

TEST(TraceBuilder, TakenBranchesChangePc)
{
    const auto recs = build([](TraceBuilder &b) { b.compute(500); });
    bool saw_taken_jump = false;
    for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
        if (recs[i].op == OpClass::BranchCond && recs[i].taken) {
            EXPECT_EQ(recs[i + 1].pc, recs[i].extra);
            saw_taken_jump = true;
        }
    }
    EXPECT_TRUE(saw_taken_jump);
}

// ------------------------------------------------------- OLTP engine

std::vector<TraceRecord>
drain(trace::TraceSource &src, int n)
{
    std::vector<TraceRecord> v;
    TraceRecord r;
    while (static_cast<int>(v.size()) < n && src.next(r))
        v.push_back(r);
    return v;
}

TEST(OltpEngine, LocksAlwaysPaired)
{
    OltpWorkload wl(OltpParams{});
    auto src = wl.makeProcess(0);
    const auto recs = drain(*src, 50000);
    std::map<Addr, int> held;
    for (const auto &r : recs) {
        if (r.op == OpClass::LockAcquire) {
            EXPECT_EQ(held[r.vaddr], 0) << "recursive acquire";
            held[r.vaddr] = 1;
        } else if (r.op == OpClass::LockRelease) {
            EXPECT_EQ(held[r.vaddr], 1) << "release without acquire";
            held[r.vaddr] = 0;
        }
    }
}

TEST(OltpEngine, AddressesConfinedToRegions)
{
    OltpWorkload wl(OltpParams{});
    auto src = wl.makeProcess(3);
    const auto recs = drain(*src, 30000);
    for (const auto &r : recs) {
        if (!trace::isMemory(r.op))
            continue;
        const bool in_known_region =
            (r.vaddr >= SgaLayout::kMetadataBase &&
             r.vaddr < SgaLayout::kBufferBase) ||
            (r.vaddr >= SgaLayout::kBufferBase &&
             r.vaddr < SgaLayout::kLogBase) ||
            (r.vaddr >= SgaLayout::kLogBase &&
             r.vaddr < SgaLayout::kPrivateBase) ||
            r.vaddr >= SgaLayout::kPrivateBase;
        EXPECT_TRUE(in_known_region) << trace::toString(r);
    }
}

TEST(OltpEngine, PrivateAccessesUseOwnArea)
{
    OltpWorkload wl(OltpParams{});
    auto src = wl.makeProcess(5);
    const auto recs = drain(*src, 30000);
    for (const auto &r : recs) {
        if (!trace::isMemory(r.op) ||
            r.vaddr < SgaLayout::kPrivateBase)
            continue;
        const auto proc_slot =
            (r.vaddr - SgaLayout::kPrivateBase) / SgaLayout::kPrivateStride;
        EXPECT_EQ(proc_slot, 5u);
    }
}

TEST(OltpEngine, DeterministicPerSeedAndProcess)
{
    OltpWorkload wl(OltpParams{});
    auto a = drain(*wl.makeProcess(2), 5000);
    auto b = drain(*wl.makeProcess(2), 5000);
    EXPECT_EQ(a, b);
    auto c = drain(*wl.makeProcess(3), 5000);
    EXPECT_NE(a, c);
}

TEST(OltpEngine, EmitsSyscallsAtGroupCommitRate)
{
    OltpParams p;
    p.commits_per_group = 2;
    OltpWorkload wl(p);
    auto recs = drain(*wl.makeProcess(0), 100000);
    int syscalls = 0;
    for (const auto &r : recs)
        syscalls += r.op == OpClass::SyscallBlock;
    EXPECT_GT(syscalls, 3);
}

TEST(OltpEngine, InstructionMixReasonable)
{
    OltpWorkload wl(OltpParams{});
    auto recs = drain(*wl.makeProcess(1), 60000);
    std::uint64_t mem = 0, br = 0;
    for (const auto &r : recs) {
        mem += r.op == OpClass::Load || r.op == OpClass::Store;
        br += trace::isBranch(r.op);
    }
    const double mem_frac = double(mem) / recs.size();
    const double br_frac = double(br) / recs.size();
    EXPECT_GT(mem_frac, 0.10);
    EXPECT_LT(mem_frac, 0.45);
    EXPECT_GT(br_frac, 0.08);
    EXPECT_LT(br_frac, 0.30);
}

// -------------------------------------------------------- DSS engine

TEST(DssEngine, PartitionsCoverTableWithoutOverlap)
{
    DssParams p;
    p.num_procs = 4;
    DssWorkload wl(p);
    // Each process scans distinct blocks; verify via block-header loads.
    std::set<Addr> seen;
    for (ProcId proc = 0; proc < 4; ++proc) {
        auto src = wl.makeProcess(proc);
        auto recs = drain(*src, 20000);
        for (const auto &r : recs) {
            if (r.op != OpClass::Load || r.vaddr < SgaLayout::kBufferBase ||
                r.vaddr >= SgaLayout::kLogBase)
                continue;
            const Addr blk =
                (r.vaddr - SgaLayout::kBufferBase) / p.sga.block_bytes;
            const std::uint32_t per = wl.tableBlocks() / 4;
            EXPECT_EQ(blk / per, proc) << "block outside partition";
            seen.insert(blk);
        }
    }
    EXPECT_GT(seen.size(), 4u);
}

TEST(DssEngine, NoLockingActivity)
{
    DssWorkload wl(DssParams{});
    auto recs = drain(*wl.makeProcess(0), 50000);
    for (const auto &r : recs) {
        EXPECT_NE(r.op, OpClass::LockAcquire);
        EXPECT_NE(r.op, OpClass::SyscallBlock);
    }
}

TEST(DssEngine, SourceEndsAfterPartition)
{
    DssParams p;
    p.table_bytes = 64 * 1024; // tiny table
    p.sga.buffer_blocks = 64;
    p.num_procs = 2;
    DssWorkload wl(p);
    auto src = wl.makeProcess(0);
    TraceRecord r;
    std::uint64_t n = 0;
    while (src->next(r))
        ++n;
    EXPECT_GT(n, 100u);
    EXPECT_LT(n, 2'000'000u);
}

TEST(DssEngine, UsesFloatingPoint)
{
    DssWorkload wl(DssParams{});
    auto recs = drain(*wl.makeProcess(0), 30000);
    int fp = 0;
    for (const auto &r : recs)
        fp += r.op == OpClass::FpAlu;
    EXPECT_GT(fp, 100);
}

TEST(DssEngine, DeterministicPerSeed)
{
    DssWorkload wl(DssParams{});
    auto a = drain(*wl.makeProcess(1), 5000);
    auto b = drain(*wl.makeProcess(1), 5000);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace dbsim::workload
