/**
 * @file
 * Example: parallel decision-support query scaling.
 *
 * Runs the DSS (TPC-D Query 6 style) parallel scan with different
 * degrees of intra-query parallelism and on different machine sizes,
 * reporting scan throughput in simulated rows per million cycles --
 * the way a database performance engineer would evaluate a parallel
 * query execution plan on this machine.
 *
 * Usage: dss_parallel_query [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

std::uint64_t g_budget = 800000;

void
runScan(std::uint32_t nodes, std::uint32_t procs_per_cpu)
{
    core::SimConfig cfg =
        core::makeScaledConfig(core::WorkloadKind::Dss, nodes);
    cfg.dss.num_procs = procs_per_cpu * nodes;
    cfg.total_instructions = g_budget;
    cfg.warmup_instructions = g_budget / 5;

    core::Simulation simulation(cfg);
    const sim::RunResult r = simulation.run();

    // Rows processed ~ instructions / instructions-per-row; derive the
    // per-row cost from the workload parameters (approximate).
    const double instrs_per_row =
        cfg.dss.compute_per_row + cfg.dss.table_refs_per_row +
        cfg.dss.private_refs_per_row + 6.0;
    const double rows = static_cast<double>(r.instructions) / instrs_per_row;
    const double rows_per_mcycle =
        r.cycles ? rows / (static_cast<double>(r.cycles) / 1e6) : 0.0;

    std::printf("%u node%s x %u procs: IPC %.2f, ~%.0f rows/Mcycle, "
                "read-stall %.1f%%\n",
                nodes, nodes == 1 ? " " : "s", procs_per_cpu, r.ipc,
                rows_per_mcycle,
                100.0 * r.breakdown.read() / r.breakdown.total());
}

} // namespace

static int
run(int argc, char **argv)
{
    if (argc > 1)
        g_budget = std::strtoull(argv[1], nullptr, 10);

    core::printHeader(std::cout,
                      "DSS parallel query: machine-size scaling "
                      "(4 scan processes per CPU)");
    for (const std::uint32_t nodes : {1u, 2u, 4u})
        runScan(nodes, 4);

    core::printHeader(std::cout,
                      "DSS parallel query: intra-query parallelism on "
                      "4 nodes");
    for (const std::uint32_t ppc : {1u, 2u, 4u, 8u})
        runScan(4, ppc);

    core::printHeader(std::cout, "functional-unit sensitivity (4 nodes)");
    {
        core::SimConfig cfg = core::makeScaledConfig(core::WorkloadKind::Dss);
        cfg.total_instructions = g_budget;
        cfg.warmup_instructions = g_budget / 5;
        core::Simulation base(cfg);
        const auto rb = base.run();
        cfg.system.core.fu.int_alus = 16;
        cfg.system.core.fu.addr_units = 16;
        core::Simulation wide(cfg);
        const auto rw = wide.run();
        std::printf("2 ALU/2 AGU: IPC %.2f   16 ALU/16 AGU: IPC %.2f "
                    "(%.1f%% faster)\n",
                    rb.ipc, rw.ipc,
                    100.0 * (rw.ipc / rb.ipc - 1.0));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
