/**
 * @file
 * Quickstart: simulate the scaled OLTP workload on the base 4-node
 * out-of-order machine and print the execution-time breakdown -- the
 * smallest complete use of the library.
 *
 * Usage: quickstart [oltp|dss] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

static int
run(int argc, char **argv)
{
    using namespace dbsim;

    core::WorkloadKind kind = core::WorkloadKind::Oltp;
    if (argc > 1 && std::string(argv[1]) == "dss")
        kind = core::WorkloadKind::Dss;

    core::SimConfig cfg = core::makeScaledConfig(kind);
    if (argc > 2) {
        cfg.total_instructions = std::strtoull(argv[2], nullptr, 10);
        cfg.warmup_instructions = cfg.total_instructions / 5;
    }

    std::cout << "dbsim quickstart: " << core::describe(cfg) << "\n";

    core::Simulation simulation(cfg);
    const sim::RunResult r = simulation.run();

    std::cout << "\ninstructions retired : " << r.instructions
              << "\nsimulated cycles     : " << r.cycles
              << "\nIPC (per processor)  : " << r.ipc << "\n";

    std::cout << "\nexecution-time breakdown (cycles):\n"
              << r.breakdown.toString();

    const core::Characterization c = simulation.characterize();
    std::cout << "\ncharacterization:"
              << "\n  L1I miss / fetch    : " << c.l1i_miss_per_fetch
              << "\n  L1I MPKI            : " << c.l1i_mpki
              << "\n  L1D miss rate       : " << c.l1d_miss_rate
              << "\n  L2 miss rate        : " << c.l2_miss_rate
              << "\n  branch mispredicts  : " << c.branch_mispredict_rate
              << "\n  dirty / L2 misses   : "
              << (c.total_l2_misses
                      ? double(c.dirty_misses) / double(c.total_l2_misses)
                      : 0.0)
              << "\n";
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
