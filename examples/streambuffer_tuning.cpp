/**
 * @file
 * Example: tuning the instruction stream buffer.
 *
 * Sweeps stream-buffer depth on the OLTP workload and prints the
 * effectiveness metrics a memory-system designer would look at: L1I
 * misses covered, useless prefetches (L2 bandwidth wasted), and the
 * execution-time return -- illustrating the paper's observation that
 * 2-4 entries capture nearly all the benefit because OLTP instruction
 * streams are short (section 4.1).
 *
 * Usage: streambuffer_tuning [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

static int
run(int argc, char **argv)
{
    std::uint64_t budget = 1'000'000;
    if (argc > 1)
        budget = std::strtoull(argv[1], nullptr, 10);

    core::printHeader(std::cout,
                      "Instruction stream buffer depth sweep (OLTP)");
    std::printf("%-8s %10s %12s %12s %12s %10s\n", "depth", "CPI",
                "L1I-miss/fl", "sbuf-cover", "useless-pf", "IPC");

    double base_cpi = 0.0;
    for (const std::uint32_t depth : {0u, 1u, 2u, 4u, 8u, 16u}) {
        core::SimConfig cfg =
            core::makeScaledConfig(core::WorkloadKind::Oltp);
        cfg.system.node.stream_buffer_entries = depth;
        cfg.total_instructions = budget;
        cfg.warmup_instructions = budget / 5;

        core::Simulation simulation(cfg);
        const sim::RunResult r = simulation.run();

        std::uint64_t fetches = 0, misses = 0, covered = 0, useless = 0;
        auto &sys = simulation.system();
        for (std::uint32_t i = 0; i < sys.numNodes(); ++i) {
            fetches += sys.node(i).stats().l1i_fetches;
            misses += sys.node(i).stats().l1i_misses;
            covered += sys.node(i).stats().l1i_sbuf_hits;
            useless += sys.node(i).streamBufferStats().useless;
        }

        const double cpi = r.breakdown.total() /
                           static_cast<double>(r.instructions);
        if (depth == 0)
            base_cpi = cpi;
        std::printf("%-8u %7.3f %s %11.4f %11.1f%% %12llu %9.3f\n", depth,
                    cpi,
                    base_cpi > 0.0 && depth > 0
                        ? (cpi < base_cpi ? "(-)" : "(+)")
                        : "   ",
                    fetches ? double(misses) / double(fetches) : 0.0,
                    misses ? 100.0 * double(covered) / double(misses) : 0.0,
                    static_cast<unsigned long long>(useless), r.ipc);
    }

    std::cout << "\n'sbuf-cover' is the fraction of L1I misses supplied "
                 "by the stream buffer\ninstead of the L2; 'useless-pf' "
                 "are prefetched lines flushed unused\n(the L2 contention "
                 "cost of over-deep buffers).\n";
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
