/**
 * @file
 * Example: exploring memory consistency models interactively.
 *
 * Runs one workload under a chosen consistency model and implementation
 * and prints the full execution-time breakdown, spec-load violation
 * counts, and the comparison against RC -- the experiment a hardware
 * architect would run when deciding whether a stricter model's
 * simplicity is worth its cost on database workloads (paper section
 * 3.4 argues it mostly is, once the ILP optimizations are in).
 *
 * Usage: consistency_explorer [oltp|dss] [sc|pc|rc] [plain|pf|spec]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

static int
run(int argc, char **argv)
{
    core::WorkloadKind kind = core::WorkloadKind::Oltp;
    cpu::ConsistencyModel model = cpu::ConsistencyModel::SC;
    int impl = 2; // 0 plain, 1 +prefetch, 2 +prefetch+spec

    if (argc > 1 && !std::strcmp(argv[1], "dss"))
        kind = core::WorkloadKind::Dss;
    if (argc > 2) {
        if (!std::strcmp(argv[2], "pc"))
            model = cpu::ConsistencyModel::PC;
        else if (!std::strcmp(argv[2], "rc"))
            model = cpu::ConsistencyModel::RC;
    }
    if (argc > 3) {
        if (!std::strcmp(argv[3], "plain"))
            impl = 0;
        else if (!std::strcmp(argv[3], "pf"))
            impl = 1;
    }

    core::SimConfig cfg = core::makeScaledConfig(kind);
    cfg.system.core.model = model;
    cfg.system.core.cons.hw_prefetch = impl >= 1;
    cfg.system.core.cons.spec_loads = impl >= 2;
    cfg.total_instructions = 1'000'000;
    cfg.warmup_instructions = 200'000;

    std::cout << "configuration: " << core::describe(cfg) << "\n";

    core::Simulation simulation(cfg);
    const sim::RunResult r = simulation.run();
    const core::Characterization c = simulation.characterize();

    std::cout << "\nIPC " << r.ipc << ", spec-load violations "
              << c.spec_load_violations << "\n\nbreakdown:\n"
              << r.breakdown.toString();

    // Reference run: the same workload under RC (the Alpha model the
    // paper's base system uses) for the "how far from relaxed" answer.
    core::SimConfig ref = cfg;
    ref.system.core.model = cpu::ConsistencyModel::RC;
    ref.system.core.cons = {};
    core::Simulation rc_sim(ref);
    const sim::RunResult rr = rc_sim.run();

    const double mine =
        r.breakdown.total() / static_cast<double>(r.instructions);
    const double rc_cpi =
        rr.breakdown.total() / static_cast<double>(rr.instructions);
    std::printf("\nthis configuration is %.1f%% %s than plain RC\n",
                100.0 * std::abs(mine / rc_cpi - 1.0),
                mine >= rc_cpi ? "slower" : "faster");
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
