/**
 * @file
 * Example: studying an OLTP server configuration.
 *
 * Walks through the kind of what-if analysis a server architect would
 * do with this library: take the base OLTP machine, then vary one
 * dimension at a time (processes per CPU, issue width, L2 size) and
 * report throughput-relevant metrics.  Demonstrates direct use of
 * SimConfig knobs, per-run characterization, and the migratory-sharing
 * analysis.
 *
 * Usage: oltp_server_study [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

std::uint64_t g_budget = 800000;

void
runAndReport(core::SimConfig cfg, const std::string &label)
{
    cfg.total_instructions = g_budget;
    cfg.warmup_instructions = g_budget / 5;
    core::Simulation simulation(cfg);
    const sim::RunResult r = simulation.run();
    const core::Characterization c = simulation.characterize();
    std::printf("%-28s IPC %.3f  CPI-breakdown: cpu %4.1f%% read %4.1f%% "
                "sync %4.1f%% instr %4.1f%%  L1D %4.1f%%  dirty/L2 %4.1f%%\n",
                label.c_str(), r.ipc,
                100.0 * r.breakdown.cpu() / r.breakdown.total(),
                100.0 * r.breakdown.read() / r.breakdown.total(),
                100.0 * r.breakdown[StallCat::Sync] /
                    r.breakdown.total(),
                100.0 * r.breakdown.instr() / r.breakdown.total(),
                100.0 * c.l1d_miss_rate,
                c.total_l2_misses ? 100.0 * double(c.dirty_misses) /
                                        double(c.total_l2_misses)
                                  : 0.0);
}

} // namespace

static int
run(int argc, char **argv)
{
    if (argc > 1)
        g_budget = std::strtoull(argv[1], nullptr, 10);

    core::printHeader(std::cout, "OLTP server study: base system");
    runAndReport(core::makeScaledConfig(core::WorkloadKind::Oltp),
                 "base (8 procs/cpu, 4-way)");

    core::printHeader(std::cout, "vary server processes per CPU");
    for (const std::uint32_t ppc : {4u, 8u, 16u}) {
        core::SimConfig cfg =
            core::makeScaledConfig(core::WorkloadKind::Oltp);
        cfg.oltp.num_procs = ppc * cfg.system.num_nodes;
        char label[64];
        std::snprintf(label, sizeof(label), "%u procs/cpu", ppc);
        runAndReport(cfg, label);
    }

    core::printHeader(std::cout, "vary issue width");
    for (const std::uint32_t w : {2u, 4u, 8u}) {
        core::SimConfig cfg =
            core::makeScaledConfig(core::WorkloadKind::Oltp);
        cfg.system.core.issue_width = w;
        char label[64];
        std::snprintf(label, sizeof(label), "%u-way issue", w);
        runAndReport(cfg, label);
    }

    core::printHeader(std::cout, "vary L2 size");
    for (const std::uint64_t kb : {256ull, 512ull, 1024ull}) {
        core::SimConfig cfg =
            core::makeScaledConfig(core::WorkloadKind::Oltp);
        cfg.system.node.l2.size_bytes = kb * 1024;
        char label[64];
        std::snprintf(label, sizeof(label), "L2 %lluKB",
                      static_cast<unsigned long long>(kb));
        runAndReport(cfg, label);
    }

    core::printHeader(std::cout, "migratory sharing on the base system");
    {
        core::SimConfig cfg =
            core::makeScaledConfig(core::WorkloadKind::Oltp);
        cfg.total_instructions = g_budget;
        cfg.warmup_instructions = g_budget / 5;
        core::Simulation simulation(cfg);
        (void)simulation.run();
        const auto &mig = simulation.system().fabric().migratory();
        std::printf("migratory lines: %zu, dirty reads migratory: %.0f%%, "
                    "top-PC concentration(75%%): %.1f%%\n",
                    mig.migratoryLines(),
                    100.0 * mig.stats().dirtyReadFraction(),
                    100.0 * mig.pcConcentration(0.75));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
