
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/directory.cpp" "src/CMakeFiles/dbsim.dir/coherence/directory.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/coherence/directory.cpp.o.d"
  "/root/repo/src/coherence/migratory.cpp" "src/CMakeFiles/dbsim.dir/coherence/migratory.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/coherence/migratory.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/dbsim.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dbsim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/dbsim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/dbsim.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/core/config.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/dbsim.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/core/report.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/dbsim.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/core/simulation.cpp.o.d"
  "/root/repo/src/cpu/branch_predictor.cpp" "src/CMakeFiles/dbsim.dir/cpu/branch_predictor.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/cpu/branch_predictor.cpp.o.d"
  "/root/repo/src/cpu/consistency.cpp" "src/CMakeFiles/dbsim.dir/cpu/consistency.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/cpu/consistency.cpp.o.d"
  "/root/repo/src/cpu/func_units.cpp" "src/CMakeFiles/dbsim.dir/cpu/func_units.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/cpu/func_units.cpp.o.d"
  "/root/repo/src/cpu/inorder_core.cpp" "src/CMakeFiles/dbsim.dir/cpu/inorder_core.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/cpu/inorder_core.cpp.o.d"
  "/root/repo/src/cpu/ooo_core.cpp" "src/CMakeFiles/dbsim.dir/cpu/ooo_core.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/cpu/ooo_core.cpp.o.d"
  "/root/repo/src/interconnect/network.cpp" "src/CMakeFiles/dbsim.dir/interconnect/network.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/interconnect/network.cpp.o.d"
  "/root/repo/src/memory/cache.cpp" "src/CMakeFiles/dbsim.dir/memory/cache.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/memory/cache.cpp.o.d"
  "/root/repo/src/memory/mshr.cpp" "src/CMakeFiles/dbsim.dir/memory/mshr.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/memory/mshr.cpp.o.d"
  "/root/repo/src/memory/page_map.cpp" "src/CMakeFiles/dbsim.dir/memory/page_map.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/memory/page_map.cpp.o.d"
  "/root/repo/src/memory/stream_buffer.cpp" "src/CMakeFiles/dbsim.dir/memory/stream_buffer.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/memory/stream_buffer.cpp.o.d"
  "/root/repo/src/memory/tlb.cpp" "src/CMakeFiles/dbsim.dir/memory/tlb.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/memory/tlb.cpp.o.d"
  "/root/repo/src/sim/breakdown.cpp" "src/CMakeFiles/dbsim.dir/sim/breakdown.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/sim/breakdown.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/CMakeFiles/dbsim.dir/sim/node.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/sim/node.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/dbsim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/dbsim.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/sim/system.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/dbsim.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/CMakeFiles/dbsim.dir/trace/serialize.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/trace/serialize.cpp.o.d"
  "/root/repo/src/trace/source.cpp" "src/CMakeFiles/dbsim.dir/trace/source.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/trace/source.cpp.o.d"
  "/root/repo/src/workload/code_layout.cpp" "src/CMakeFiles/dbsim.dir/workload/code_layout.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/code_layout.cpp.o.d"
  "/root/repo/src/workload/dss_engine.cpp" "src/CMakeFiles/dbsim.dir/workload/dss_engine.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/dss_engine.cpp.o.d"
  "/root/repo/src/workload/hints.cpp" "src/CMakeFiles/dbsim.dir/workload/hints.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/hints.cpp.o.d"
  "/root/repo/src/workload/lock_manager.cpp" "src/CMakeFiles/dbsim.dir/workload/lock_manager.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/lock_manager.cpp.o.d"
  "/root/repo/src/workload/oltp_engine.cpp" "src/CMakeFiles/dbsim.dir/workload/oltp_engine.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/oltp_engine.cpp.o.d"
  "/root/repo/src/workload/sga_layout.cpp" "src/CMakeFiles/dbsim.dir/workload/sga_layout.cpp.o" "gcc" "src/CMakeFiles/dbsim.dir/workload/sga_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
