# Empty compiler generated dependencies file for dbsim.
# This may be replaced when dependencies are built.
