file(REMOVE_RECURSE
  "libdbsim.a"
)
