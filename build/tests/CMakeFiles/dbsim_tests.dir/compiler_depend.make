# Empty compiler generated dependencies file for dbsim_tests.
# This may be replaced when dependencies are built.
