
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_branch_predictor.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_branch_predictor.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_consistency.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_consistency.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_directory.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_directory.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_directory.cpp.o.d"
  "/root/repo/tests/test_hints.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_hints.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_hints.cpp.o.d"
  "/root/repo/tests/test_migratory.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_migratory.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_migratory.cpp.o.d"
  "/root/repo/tests/test_mshr.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_mshr.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_mshr.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_stream_buffer.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_stream_buffer.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_stream_buffer.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_tlb_pagemap.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_tlb_pagemap.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_tlb_pagemap.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/dbsim_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/dbsim_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
