# Empty dependencies file for oltp_server_study.
# This may be replaced when dependencies are built.
