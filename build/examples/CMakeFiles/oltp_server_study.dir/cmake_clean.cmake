file(REMOVE_RECURSE
  "CMakeFiles/oltp_server_study.dir/oltp_server_study.cpp.o"
  "CMakeFiles/oltp_server_study.dir/oltp_server_study.cpp.o.d"
  "oltp_server_study"
  "oltp_server_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_server_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
