# Empty compiler generated dependencies file for streambuffer_tuning.
# This may be replaced when dependencies are built.
