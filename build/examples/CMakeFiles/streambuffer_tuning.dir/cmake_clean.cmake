file(REMOVE_RECURSE
  "CMakeFiles/streambuffer_tuning.dir/streambuffer_tuning.cpp.o"
  "CMakeFiles/streambuffer_tuning.dir/streambuffer_tuning.cpp.o.d"
  "streambuffer_tuning"
  "streambuffer_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streambuffer_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
