file(REMOVE_RECURSE
  "CMakeFiles/dss_parallel_query.dir/dss_parallel_query.cpp.o"
  "CMakeFiles/dss_parallel_query.dir/dss_parallel_query.cpp.o.d"
  "dss_parallel_query"
  "dss_parallel_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_parallel_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
