# Empty compiler generated dependencies file for dss_parallel_query.
# This may be replaced when dependencies are built.
