# Empty compiler generated dependencies file for consistency_explorer.
# This may be replaced when dependencies are built.
