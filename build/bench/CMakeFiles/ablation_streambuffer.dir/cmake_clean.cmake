file(REMOVE_RECURSE
  "CMakeFiles/ablation_streambuffer.dir/ablation_streambuffer.cpp.o"
  "CMakeFiles/ablation_streambuffer.dir/ablation_streambuffer.cpp.o.d"
  "ablation_streambuffer"
  "ablation_streambuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_streambuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
