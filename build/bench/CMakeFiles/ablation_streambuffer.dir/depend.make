# Empty dependencies file for ablation_streambuffer.
# This may be replaced when dependencies are built.
