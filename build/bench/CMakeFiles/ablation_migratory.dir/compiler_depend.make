# Empty compiler generated dependencies file for ablation_migratory.
# This may be replaced when dependencies are built.
