file(REMOVE_RECURSE
  "CMakeFiles/ablation_migratory.dir/ablation_migratory.cpp.o"
  "CMakeFiles/ablation_migratory.dir/ablation_migratory.cpp.o.d"
  "ablation_migratory"
  "ablation_migratory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_migratory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
