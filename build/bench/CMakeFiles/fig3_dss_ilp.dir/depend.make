# Empty dependencies file for fig3_dss_ilp.
# This may be replaced when dependencies are built.
