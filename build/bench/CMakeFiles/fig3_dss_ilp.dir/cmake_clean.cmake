file(REMOVE_RECURSE
  "CMakeFiles/fig3_dss_ilp.dir/fig3_dss_ilp.cpp.o"
  "CMakeFiles/fig3_dss_ilp.dir/fig3_dss_ilp.cpp.o.d"
  "fig3_dss_ilp"
  "fig3_dss_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dss_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
