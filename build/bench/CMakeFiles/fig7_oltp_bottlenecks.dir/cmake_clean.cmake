file(REMOVE_RECURSE
  "CMakeFiles/fig7_oltp_bottlenecks.dir/fig7_oltp_bottlenecks.cpp.o"
  "CMakeFiles/fig7_oltp_bottlenecks.dir/fig7_oltp_bottlenecks.cpp.o.d"
  "fig7_oltp_bottlenecks"
  "fig7_oltp_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_oltp_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
