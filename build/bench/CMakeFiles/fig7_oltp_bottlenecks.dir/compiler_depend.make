# Empty compiler generated dependencies file for fig7_oltp_bottlenecks.
# This may be replaced when dependencies are built.
