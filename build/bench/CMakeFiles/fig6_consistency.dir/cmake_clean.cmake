file(REMOVE_RECURSE
  "CMakeFiles/fig6_consistency.dir/fig6_consistency.cpp.o"
  "CMakeFiles/fig6_consistency.dir/fig6_consistency.cpp.o.d"
  "fig6_consistency"
  "fig6_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
