# Empty dependencies file for fig4_oltp_limits.
# This may be replaced when dependencies are built.
