file(REMOVE_RECURSE
  "CMakeFiles/fig4_oltp_limits.dir/fig4_oltp_limits.cpp.o"
  "CMakeFiles/fig4_oltp_limits.dir/fig4_oltp_limits.cpp.o.d"
  "fig4_oltp_limits"
  "fig4_oltp_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_oltp_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
