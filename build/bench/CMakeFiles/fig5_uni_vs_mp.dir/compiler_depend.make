# Empty compiler generated dependencies file for fig5_uni_vs_mp.
# This may be replaced when dependencies are built.
