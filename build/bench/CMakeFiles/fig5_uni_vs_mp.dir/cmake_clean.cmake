file(REMOVE_RECURSE
  "CMakeFiles/fig5_uni_vs_mp.dir/fig5_uni_vs_mp.cpp.o"
  "CMakeFiles/fig5_uni_vs_mp.dir/fig5_uni_vs_mp.cpp.o.d"
  "fig5_uni_vs_mp"
  "fig5_uni_vs_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_uni_vs_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
