file(REMOVE_RECURSE
  "CMakeFiles/fig2_oltp_ilp.dir/fig2_oltp_ilp.cpp.o"
  "CMakeFiles/fig2_oltp_ilp.dir/fig2_oltp_ilp.cpp.o.d"
  "fig2_oltp_ilp"
  "fig2_oltp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_oltp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
