# Empty compiler generated dependencies file for fig2_oltp_ilp.
# This may be replaced when dependencies are built.
