/**
 * @file
 * A small statistics package: counters, ratios, histograms, and
 * occupancy distributions, with uniform text formatting.
 *
 * Components own their stats as plain members of these types; the system
 * aggregates and prints them.  There is deliberately no global registry.
 */

#ifndef DBSIM_COMMON_STATS_HPP
#define DBSIM_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::stats {

/**
 * A histogram over a fixed number of integer-indexed buckets with an
 * overflow bucket.  Used e.g. for stream lengths and queue depths.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16) : counts_(buckets + 1, 0) {}

    void
    sample(std::uint64_t value, std::uint64_t weight = 1)
    {
        const std::size_t idx =
            value >= counts_.size() - 1 ? counts_.size() - 1
                                        : static_cast<std::size_t>(value);
        counts_[idx] += weight;
        total_ += weight;
        sum_ += value * weight;
    }

    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? double(sum_) / double(total_) : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size(); }

    /** Fraction of samples with value >= i (for occupancy curves). */
    double fracAtLeast(std::size_t i) const;

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = sum_ = 0;
    }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(counts_.size());
        for (std::uint64_t c : counts_)
            w.u64(c);
        w.u64(total_);
        w.u64(sum_);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(8);
        if (n != counts_.size())
            throw snap::SnapshotError("snapshot: histogram bucket mismatch");
        for (auto &c : counts_)
            c = r.u64();
        total_ = r.u64();
        sum_ = r.u64();
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Tracks, over simulated time, how many units of a resource are in use,
 * and reports the distribution of occupancy conditioned on the resource
 * being non-idle.  This is exactly the "MSHR occupancy distribution" of
 * the paper's Figures 2(d)-(g): the fraction of non-idle time with at
 * least n entries in use.
 */
class OccupancyTracker
{
  public:
    explicit OccupancyTracker(std::uint32_t max_units = 8)
        : time_at_(max_units + 1, 0) {}

    /**
     * Advance time to @p now (charging the elapsed interval to the
     * occupancy level in effect since the last call), then set the
     * occupancy to @p in_use.  Call on every occupancy change.
     *
     * Repeated samples at the same timestamp are deduplicated: they
     * charge nothing and only the latest level survives, so callers
     * that re-sample in a retry loop (e.g. MshrFile::drain on every
     * failed allocation) cannot skew the distribution.
     */
    void advance(Cycles now, std::uint32_t in_use);

    std::uint32_t current() const { return current_; }

    /** Total non-idle time (occupancy >= 1). */
    Cycles busyTime() const;

    /** Fraction of non-idle time with occupancy >= n. */
    double fracAtLeast(std::uint32_t n) const;

    void reset();

    void
    saveState(snap::Writer &w) const
    {
        w.u64(time_at_.size());
        for (Cycles t : time_at_)
            w.u64(t);
        w.u64(last_);
        w.u32(current_);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(8);
        if (n != time_at_.size())
            throw snap::SnapshotError("snapshot: occupancy level mismatch");
        for (auto &t : time_at_)
            t = r.u64();
        last_ = r.u64();
        current_ = r.u32();
    }

  private:
    std::vector<Cycles> time_at_;
    Cycles last_ = 0;
    std::uint32_t current_ = 0;
};

/** A named scalar for report tables. */
struct NamedValue
{
    std::string name;
    double value;
};

/** Render "name value" lines with aligned columns. */
std::string formatTable(const std::vector<NamedValue> &rows);

/** Percentage with one decimal, e.g. 12.3%. */
std::string pct(double fraction);

} // namespace dbsim::stats

#endif // DBSIM_COMMON_STATS_HPP
