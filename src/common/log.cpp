#include "common/log.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace dbsim {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit so library users (and tests) can catch
    // configuration errors.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " (" << file << ":" << line << ")\n";
}

} // namespace dbsim
