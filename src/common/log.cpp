#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>
#include <vector>

#include "common/errors.hpp"

namespace dbsim {

namespace {

struct DumpEntry
{
    int handle;
    std::string name;
    std::function<std::string()> fn;
};

// The sweep runner constructs and destroys Systems from worker threads,
// and each System registers a crash dump around its lifetime, so the
// registry is guarded by a mutex.  Dump callbacks themselves are invoked
// under the lock: they only run on the (rare) panic path, and holding
// the lock keeps a concurrently destructing System from invalidating the
// entry being executed.
std::mutex &
dumpMutex()
{
    static std::mutex m;
    return m;
}

std::vector<DumpEntry> &
dumpRegistry()
{
    static std::vector<DumpEntry> reg;
    return reg;
}

std::atomic<PanicBehavior> g_panic_behavior{PanicBehavior::Abort};

/** Run every registered crash dump; returns the concatenated text. */
std::string
runCrashDumps()
{
    // Re-entrancy guard (per thread): a dump callback that itself panics
    // must not recurse into the dump machinery, and must not deadlock on
    // the registry mutex it already holds.
    thread_local bool in_panic = false;
    if (in_panic)
        return {};
    in_panic = true;
    std::string all;
    {
        std::lock_guard<std::mutex> lock(dumpMutex());
        for (const auto &d : dumpRegistry()) {
            all += "=== crash dump: " + d.name + " ===\n";
            try {
                all += d.fn();
            } catch (const std::exception &e) {
                all += std::string("(dump callback failed: ") + e.what() +
                       ")";
            } catch (...) {
                // lint: allowed-swallow -- a throwing dump callback
                // must never escape the panic path itself.
                all += "(dump callback failed)";
            }
            if (!all.empty() && all.back() != '\n')
                all += '\n';
        }
    }
    in_panic = false;
    return all;
}

} // namespace

void
setPanicBehavior(PanicBehavior b)
{
    g_panic_behavior.store(b, std::memory_order_relaxed);
}

PanicBehavior
panicBehavior()
{
    return g_panic_behavior.load(std::memory_order_relaxed);
}

int
registerCrashDump(std::string name, std::function<std::string()> fn)
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    static int next_handle = 1;
    const int h = next_handle++;
    dumpRegistry().push_back({h, std::move(name), std::move(fn)});
    return h;
}

void
unregisterCrashDump(int handle)
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    auto &reg = dumpRegistry();
    for (auto it = reg.begin(); it != reg.end(); ++it) {
        if (it->handle == handle) {
            reg.erase(it);
            return;
        }
    }
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " (" << file << ":" << line << ")\n";
    os << runCrashDumps();
    if (panicBehavior() == PanicBehavior::Throw)
        throw SimInvariantError(os.str());
    std::cerr << os.str();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit so library users (and tests) can catch
    // configuration errors.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    // Compose the whole line first so concurrent warnings from sweep
    // worker threads cannot interleave mid-line.
    std::ostringstream os;
    os << "warn: " << msg << " (" << file << ":" << line << ")\n";
    std::cerr << os.str();
}

} // namespace dbsim
