#include "common/log.hpp"

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "common/errors.hpp"

namespace dbsim {

namespace {

struct DumpEntry
{
    int handle;
    std::string name;
    std::function<std::string()> fn;
};

// The registry is deliberately simple (no locking): the simulator is
// single-threaded and dumps are registered by long-lived objects
// (System) around their lifetime.
std::vector<DumpEntry> &
dumpRegistry()
{
    static std::vector<DumpEntry> reg;
    return reg;
}

PanicBehavior g_panic_behavior = PanicBehavior::Abort;

/** Run every registered crash dump; returns the concatenated text. */
std::string
runCrashDumps()
{
    // Re-entrancy guard: a dump callback that itself panics must not
    // recurse into the dump machinery.
    static bool in_panic = false;
    if (in_panic)
        return {};
    in_panic = true;
    std::string all;
    for (const auto &d : dumpRegistry()) {
        all += "=== crash dump: " + d.name + " ===\n";
        try {
            all += d.fn();
        } catch (const std::exception &e) {
            all += std::string("(dump callback failed: ") + e.what() + ")";
        } catch (...) {
            all += "(dump callback failed)";
        }
        if (!all.empty() && all.back() != '\n')
            all += '\n';
    }
    in_panic = false;
    return all;
}

} // namespace

void
setPanicBehavior(PanicBehavior b)
{
    g_panic_behavior = b;
}

PanicBehavior
panicBehavior()
{
    return g_panic_behavior;
}

int
registerCrashDump(std::string name, std::function<std::string()> fn)
{
    static int next_handle = 1;
    const int h = next_handle++;
    dumpRegistry().push_back({h, std::move(name), std::move(fn)});
    return h;
}

void
unregisterCrashDump(int handle)
{
    auto &reg = dumpRegistry();
    for (auto it = reg.begin(); it != reg.end(); ++it) {
        if (it->handle == handle) {
            reg.erase(it);
            return;
        }
    }
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " (" << file << ":" << line << ")\n";
    os << runCrashDumps();
    if (g_panic_behavior == PanicBehavior::Throw)
        throw SimInvariantError(os.str());
    std::cerr << os.str();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit so library users (and tests) can catch
    // configuration errors.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " (" << file << ":" << line << ")\n";
}

} // namespace dbsim
