/**
 * @file
 * Execution-time breakdown categories and accounting.
 *
 * The paper's convention (section 3): every cycle, the fraction
 * retired/max-retire-rate counts as busy; the remainder is charged as
 * stall time to the first instruction that could not retire that cycle,
 * classified by what it is waiting for.  Reads are subdivided into
 * L1+misc, L2, local memory, remote memory, dirty (cache-to-cache) and
 * dTLB components for the magnified read-stall graphs.
 */

#ifndef DBSIM_COMMON_BREAKDOWN_HPP
#define DBSIM_COMMON_BREAKDOWN_HPP

#include <array>
#include <cstdint>
#include <string>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim {

/** Stall/busy categories of the execution-time breakdown. */
enum class StallCat : std::uint8_t {
    Busy,       ///< retire-slot utilization
    Fu,         ///< CPU pipeline stalls (functional units, dependences)
    ReadL1,     ///< read at L1 / address-generation / misc (paper "L1+misc")
    ReadL2,     ///< read hits in L2
    ReadLocal,  ///< read serviced by local memory
    ReadRemote, ///< read serviced by remote memory
    ReadDirty,  ///< read serviced cache-to-cache (dirty miss)
    ReadDtlb,   ///< data TLB miss handling
    Write,      ///< store-related stalls (buffer full, SC store latency)
    Sync,       ///< lock acquire/release, fences, spin time
    Instr,      ///< instruction-fetch stalls (L1I miss and beyond)
    Itlb,       ///< instruction TLB miss handling
    Idle,       ///< no runnable process (factored out of comparisons)
    kCount,
};

inline constexpr std::size_t kNumStallCats =
    static_cast<std::size_t>(StallCat::kCount);

const char *stallCatName(StallCat c);

/**
 * Accumulated execution-time components, in cycles (fractional because
 * busy accounting splits cycles across retire slots).
 */
struct Breakdown
{
    std::array<double, kNumStallCats> cycles{};

    double &operator[](StallCat c) { return cycles[static_cast<std::size_t>(c)]; }
    double operator[](StallCat c) const { return cycles[static_cast<std::size_t>(c)]; }

    void add(StallCat c, double amount) { (*this)[c] += amount; }

    /** CPU component as plotted by the paper: busy + FU stalls. */
    double cpu() const { return (*this)[StallCat::Busy] + (*this)[StallCat::Fu]; }

    /** All data-read stall components. */
    double read() const;

    /** Instruction stall: icache + iTLB. */
    double instr() const { return (*this)[StallCat::Instr] + (*this)[StallCat::Itlb]; }

    /** Total excluding idle (the paper factors out idle time). */
    double total() const;

    Breakdown &operator+=(const Breakdown &o);

    void reset() { cycles.fill(0.0); }

    void
    saveState(snap::Writer &w) const
    {
        for (double c : cycles)
            w.f64(c);
    }

    void
    restoreState(snap::Reader &r)
    {
        for (double &c : cycles)
            c = r.f64();
    }

    /** Multi-line human-readable dump. */
    std::string toString() const;
};

} // namespace dbsim

#endif // DBSIM_COMMON_BREAKDOWN_HPP
