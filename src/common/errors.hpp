/**
 * @file
 * Exception types of the simulation integrity layer.
 *
 * ConfigError        -- a configuration was rejected by validate() before
 *                       any simulation state was built.  Carries the
 *                       offending field name for programmatic handling.
 * SimInvariantError  -- an internal simulator invariant was violated
 *                       (coherence audit failure, forward-progress
 *                       watchdog, DBSIM_PANIC in throwing mode).
 * SimTimeoutError    -- a host-side per-item deadline expired while the
 *                       simulation was still running (sweep fault
 *                       isolation); carries the machine-state dump taken
 *                       at the point the deadline was noticed.
 * SimInterruptedError-- the process received SIGINT/SIGTERM while a
 *                       simulation was running and the run loop unwound
 *                       cooperatively (after writing a checkpoint when
 *                       one is configured); carries the machine-state
 *                       dump like SimTimeoutError.
 */

#ifndef DBSIM_COMMON_ERRORS_HPP
#define DBSIM_COMMON_ERRORS_HPP

#include <stdexcept>
#include <string>
#include <utility>

namespace dbsim {

/**
 * The user asked for an impossible configuration.  Thrown by the
 * validate() entry points; the message always names the field and says
 * what a legal value would look like.
 */
class ConfigError : public std::runtime_error
{
  public:
    ConfigError(std::string field, const std::string &why)
        : std::runtime_error("config error [" + field + "]: " + why),
          field_(std::move(field))
    {
    }

    /** Dotted path of the rejected parameter (e.g. "system.node.l2.line_bytes"). */
    const std::string &field() const { return field_; }

  private:
    std::string field_;
};

/**
 * An internal invariant was violated at runtime (simulator bug or
 * corrupted machine state).  Raised by DBSIM_PANIC when the panic
 * behavior is set to Throw (see common/log.hpp), and by the coherence
 * checker.  The message includes any diagnostic dump text available at
 * the point of failure.
 */
class SimInvariantError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A host-side deadline (sweep --item-timeout-sec / DBSIM_ITEM_TIMEOUT)
 * expired while a simulation was still running.  Thrown from the
 * System::run loop, so every destructor on the way out runs normally
 * and the machine can be rebuilt for a retry.  The dump() is the
 * machineStateDump() taken when the deadline was noticed, kept separate
 * from what() so reporting layers can bound its size independently.
 */
class SimTimeoutError : public std::runtime_error
{
  public:
    SimTimeoutError(const std::string &msg, std::string dump)
        : std::runtime_error(msg), dump_(std::move(dump))
    {
    }

    /** Machine state at deadline expiry (may be empty). */
    const std::string &dump() const { return dump_; }

  private:
    std::string dump_;
};

/**
 * A termination signal (SIGINT / SIGTERM) was noticed by the run loop's
 * cooperative poll (sim/diagnostics.hpp).  Thrown from System::run
 * *after* any configured checkpoint has been written, so destructors run
 * normally and the caller can report the checkpoint path before exiting.
 */
class SimInterruptedError : public std::runtime_error
{
  public:
    SimInterruptedError(const std::string &msg, std::string dump)
        : std::runtime_error(msg), dump_(std::move(dump))
    {
    }

    /** Machine state at the point the signal was noticed (may be empty). */
    const std::string &dump() const { return dump_; }

  private:
    std::string dump_;
};

} // namespace dbsim

#endif // DBSIM_COMMON_ERRORS_HPP
