/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator and the workload engines draws
 * from an explicitly seeded Rng instance, so that identical configurations
 * reproduce identical simulated executions cycle for cycle.  The generator
 * is xoshiro256**, which is fast, tiny, and has no global state.
 */

#ifndef DBSIM_COMMON_RNG_HPP
#define DBSIM_COMMON_RNG_HPP

#include <cstdint>

#include "common/snapshot.hpp"

namespace dbsim {

/**
 * A deterministic random-number stream (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) with rejection to avoid modulo bias. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish run length: 1 + number of successes of probability
     * @p cont, clamped to @p max.  Used for burst/stream lengths.
     */
    std::uint32_t runLength(double cont, std::uint32_t max);

    /**
     * Sample from a Zipf-like distribution over [0, n) with skew @p s
     * using inverse-power rejection sampling.  Hot items get low indices.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Derive an independent child stream (for per-process generators). */
    Rng fork();

    void
    saveState(snap::Writer &w) const
    {
        for (std::uint64_t s : s_)
            w.u64(s);
    }

    void
    restoreState(snap::Reader &r)
    {
        for (std::uint64_t &s : s_)
            s = r.u64();
    }

  private:
    std::uint64_t s_[4];
};

} // namespace dbsim

#endif // DBSIM_COMMON_RNG_HPP
