/**
 * @file
 * Byte-stable binary serialization for deterministic checkpoints.
 *
 * snap::Writer / snap::Reader encode machine state as a fixed
 * little-endian byte stream, independent of host endianness, struct
 * padding, and container iteration order.  Every component of the
 * simulator exposes
 *
 *     void saveState(snap::Writer &) const;
 *     void restoreState(snap::Reader &);
 *
 * pairs that serialize exactly the mutable simulation state (never
 * construction-derived configuration, never host pointers or host
 * clocks -- enforced by the dbsim-analyze `checkpoint-purity` rule).
 * The same byte stream feeds both on-disk checkpoints and the cheap
 * per-epoch FNV-1a state hashes used by tools/dbsim-diverge.
 *
 * Encoding rules (DESIGN.md §5g):
 *  - integers are fixed-width little-endian, never varint;
 *  - doubles are serialized as their IEEE-754 bit pattern (bit_cast),
 *    so restored values are bitwise-identical, not round-tripped
 *    through text;
 *  - strings and containers are a u64 element count followed by the
 *    elements;
 *  - unordered_{map,set} contents are emitted in sorted key order via
 *    sortedKeys(), making the stream independent of hash-table layout.
 */

#ifndef DBSIM_COMMON_SNAPSHOT_HPP
#define DBSIM_COMMON_SNAPSHOT_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dbsim::snap {

/** 64-bit FNV-1a over a byte range, chainable via @p h. */
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n, std::uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

/**
 * A checkpoint stream was truncated, corrupt, or produced by an
 * incompatible configuration.  Restore paths treat this as "checkpoint
 * unusable", not as a simulator invariant failure.
 */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only little-endian byte stream builder. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern; restores bitwise-identical doubles. */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            buf_.push_back(static_cast<std::uint8_t>(c));
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

    /** FNV-1a 64 over everything written so far. */
    std::uint64_t
    hash() const
    {
        return fnv1a(buf_.data(), buf_.size());
    }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over a Writer-produced byte stream. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : Reader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v = static_cast<std::uint16_t>(
                v | static_cast<std::uint16_t>(data_[pos_++]) << (8 * i));
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool boolean() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_) + pos_,
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /**
     * Read a container length and validate it against the remaining
     * bytes (each element needs >= @p min_elem_bytes), so a corrupt
     * length fails fast instead of driving a huge allocation.
     */
    std::size_t
    length(std::size_t min_elem_bytes = 1)
    {
        const std::uint64_t n = u64();
        if (min_elem_bytes != 0 && n > (size_ - pos_) / min_elem_bytes)
            throw SnapshotError("snapshot: implausible container length");
        return static_cast<std::size_t>(n);
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            throw SnapshotError("snapshot: truncated stream");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/**
 * Keys of an associative container in ascending order.  The only
 * sanctioned way to serialize unordered_{map,set} contents: iterate the
 * returned vector and look values up by key, so the byte stream never
 * depends on hash-table layout.
 */
template <class Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (auto it = m.begin(); it != m.end(); ++it) {
        if constexpr (requires { it->first; })
            keys.push_back(it->first); // map entry
        else
            keys.push_back(*it); // set element
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace dbsim::snap

#endif // DBSIM_COMMON_SNAPSHOT_HPP
