/**
 * @file
 * Protocol fault injection for the offline verification layer.
 *
 * A ProtocolMutator seeds exactly one protocol bug into the *real*
 * implementation: the coherence fabric (src/coherence/directory.cpp)
 * and the core's consistency machinery (src/cpu/ooo_core.cpp, and the
 * litmus executor mirroring it) consult the attached mutator at the
 * protocol decision points a real implementation could get wrong.  The
 * model checker / litmus harness must detect every catalogued mutant;
 * that mutation self-test is what makes the checkers trustworthy
 * (a checker that flags nothing is indistinguishable from a checker
 * that checks nothing).
 *
 * This header is a dependency leaf (nothing but <cstdint>).  It lives in
 * common/ -- the bottom of the include-layer order -- so that both the
 * protocol layers below verify/ and the verification layer itself can
 * include it without creating an upward include or a directory cycle
 * (enforced by dbsim-analyze rule layering-order).  The types keep the
 * dbsim::verify namespace: the mutation catalog is verification-layer
 * vocabulary; only its home on disk is dictated by layering.  Mutators
 * are never attached outside
 * tests and the dbsim-mc driver; the hooks are nullptr-guarded and cost
 * one pointer test on paths that are already protocol transactions.
 */

#ifndef DBSIM_COMMON_MUTATOR_HPP
#define DBSIM_COMMON_MUTATOR_HPP

#include <cstdint>

namespace dbsim::verify {

/** The catalogued protocol bugs (DESIGN.md "Verification layer"). */
enum class ProtocolBug : std::uint8_t {
    None,
    /** write(): one remote sharer is not sent its invalidation (its
     *  directory bit is still cleared), leaving a stale Shared copy
     *  invisible to the directory. */
    DroppedInvalidation,
    /** write(): the directory forgets to record the new owner, so the
     *  writer's Modified copy is unknown to (or contradicts) the
     *  directory. */
    StaleOwner,
    /** read(): a dirty remote owner supplies the line cache-to-cache
     *  but is not downgraded, leaving Modified and Shared copies
     *  coexisting. */
    MissingDowngrade,
    /** read(): a read serviced while the line is directory-Shared does
     *  not record the requester's sharer bit, so later invalidations
     *  miss its copy. */
    LostSharerBit,
    /** An invalidation fails to flag speculatively-performed loads of
     *  the invalidated line, so a consistency-violating early value can
     *  commit without rollback. */
    SkippedSpecSquash,
    /** The WMB epoch ordering in the write buffer is ignored: a store
     *  after a write barrier (e.g. a releasing store's predecessors)
     *  may perform before pre-barrier stores. */
    ReorderedRelease,
};

const char *protocolBugName(ProtocolBug b);

/**
 * Holds the single seeded bug and counts how often it actually fired.
 * The trigger count lets tests distinguish "mutant detected" from
 * "mutant never exercised" -- a detection claim is only meaningful when
 * triggers > 0.  Not thread-safe; mutators are test-/tool-only.
 */
struct ProtocolMutator
{
    ProtocolBug bug = ProtocolBug::None;
    mutable std::uint64_t triggers = 0;

    /** True iff @p b is the seeded bug; counts the firing. */
    bool
    armed(ProtocolBug b) const
    {
        if (bug != b)
            return false;
        ++triggers;
        return true;
    }
};

inline const char *
protocolBugName(ProtocolBug b)
{
    switch (b) {
      case ProtocolBug::None:                return "none";
      case ProtocolBug::DroppedInvalidation: return "dropped-invalidation";
      case ProtocolBug::StaleOwner:          return "stale-owner";
      case ProtocolBug::MissingDowngrade:    return "missing-downgrade";
      case ProtocolBug::LostSharerBit:       return "lost-sharer-bit";
      case ProtocolBug::SkippedSpecSquash:   return "skipped-spec-squash";
      case ProtocolBug::ReorderedRelease:    return "reordered-release";
    }
    return "?";
}

} // namespace dbsim::verify

#endif // DBSIM_COMMON_MUTATOR_HPP
