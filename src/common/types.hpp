/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef DBSIM_COMMON_TYPES_HPP
#define DBSIM_COMMON_TYPES_HPP

#include <cstdint>

namespace dbsim {

/** Simulated time, measured in processor clock cycles (1 GHz base). */
using Cycles = std::uint64_t;

/** A virtual or physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a processor / node in the multiprocessor. */
using CpuId = std::uint32_t;

/** Identifier of a (server or daemon) process in the workload. */
using ProcId = std::uint32_t;

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = ~Addr{0};

/** Sentinel cycle value meaning "never" / unscheduled. */
inline constexpr Cycles kNever = ~Cycles{0};

/**
 * Align @p addr down to a power-of-two block of @p block_bytes.
 */
constexpr Addr
blockAlign(Addr addr, std::uint32_t block_bytes)
{
    return addr & ~static_cast<Addr>(block_bytes - 1);
}

/** True iff @p x is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr std::uint32_t
log2i(std::uint64_t x)
{
    std::uint32_t n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

} // namespace dbsim

#endif // DBSIM_COMMON_TYPES_HPP
