#include "common/rng.hpp"

#include <cmath>

namespace dbsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Lemire-style rejection: keep the top bits unbiased.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint32_t
Rng::runLength(double cont, std::uint32_t max)
{
    std::uint32_t n = 1;
    while (n < max && chance(cont))
        ++n;
    return n;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Inverse-CDF approximation for the continuous analogue, then clamp.
    // Adequate for workload skew modeling; exactness is not required.
    const double u = uniform();
    if (s == 1.0) {
        const double h = std::log(static_cast<double>(n));
        return static_cast<std::uint64_t>(std::exp(u * h)) - 1;
    }
    const double p = 1.0 - s;
    const double nn = static_cast<double>(n);
    const double x = std::pow(u * (std::pow(nn, p) - 1.0) + 1.0, 1.0 / p);
    std::uint64_t idx = static_cast<std::uint64_t>(x) - 1;
    return idx >= n ? n - 1 : idx;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace dbsim
