/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated; this is a simulator bug.
 * fatal()  -- the user asked for something impossible (bad configuration).
 * warn()   -- something is off but the simulation can proceed.
 *
 * The panic path is hardened for diagnosability: components may register
 * crash-dump callbacks (see registerCrashDump) that panicImpl runs before
 * terminating, so an invariant failure deep in the machine still produces
 * a full machine-state dump.  By default panic aborts the process; tests
 * switch it to throwing SimInvariantError so they can assert on invariant
 * violations (PanicThrowGuard provides scoped switching).
 */

#ifndef DBSIM_COMMON_LOG_HPP
#define DBSIM_COMMON_LOG_HPP

#include <functional>
#include <sstream>
#include <string>

namespace dbsim {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

/** What DBSIM_PANIC does after running the registered crash dumps. */
enum class PanicBehavior : std::uint8_t {
    Abort, ///< print to stderr and std::abort() (default)
    Throw, ///< throw SimInvariantError (for tests asserting on invariants)
};

void setPanicBehavior(PanicBehavior b);
PanicBehavior panicBehavior();

/**
 * Register a callback producing a diagnostic dump to emit on panic.
 * @param name  heading printed above the dump text
 * @param fn    returns the dump; exceptions it throws are swallowed
 * @return a handle for unregisterCrashDump()
 */
int registerCrashDump(std::string name, std::function<std::string()> fn);

/** Remove a callback registered with registerCrashDump (no-op if gone). */
void unregisterCrashDump(int handle);

/** Scoped switch of the panic behavior to Throw (restores on exit). */
class PanicThrowGuard
{
  public:
    PanicThrowGuard() : prev_(panicBehavior())
    {
        setPanicBehavior(PanicBehavior::Throw);
    }
    ~PanicThrowGuard() { setPanicBehavior(prev_); }
    PanicThrowGuard(const PanicThrowGuard &) = delete;
    PanicThrowGuard &operator=(const PanicThrowGuard &) = delete;

  private:
    PanicBehavior prev_;
};

namespace detail {

inline std::string
formatParts()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatParts(const T &head, const Rest &...rest)
{
    std::ostringstream os;
    os << head;
    return os.str() + formatParts(rest...);
}

} // namespace detail
} // namespace dbsim

#define DBSIM_PANIC(...) \
    ::dbsim::panicImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

#define DBSIM_FATAL(...) \
    ::dbsim::fatalImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

#define DBSIM_WARN(...) \
    ::dbsim::warnImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

/** Panic unless @p cond holds; used for internal simulator invariants. */
#define DBSIM_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            DBSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                    \
    } while (0)

#endif // DBSIM_COMMON_LOG_HPP
