/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated; this is a simulator bug.
 * fatal()  -- the user asked for something impossible (bad configuration).
 * warn()   -- something is off but the simulation can proceed.
 */

#ifndef DBSIM_COMMON_LOG_HPP
#define DBSIM_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace dbsim {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

inline std::string
formatParts()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatParts(const T &head, const Rest &...rest)
{
    std::ostringstream os;
    os << head;
    return os.str() + formatParts(rest...);
}

} // namespace detail
} // namespace dbsim

#define DBSIM_PANIC(...) \
    ::dbsim::panicImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

#define DBSIM_FATAL(...) \
    ::dbsim::fatalImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

#define DBSIM_WARN(...) \
    ::dbsim::warnImpl(__FILE__, __LINE__, ::dbsim::detail::formatParts(__VA_ARGS__))

/** Panic unless @p cond holds; used for internal simulator invariants. */
#define DBSIM_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            DBSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                    \
    } while (0)

#endif // DBSIM_COMMON_LOG_HPP
