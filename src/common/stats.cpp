#include "common/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dbsim::stats {

double
Histogram::fracAtLeast(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t b = i; b < counts_.size(); ++b)
        acc += counts_[b];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

void
OccupancyTracker::advance(Cycles now, std::uint32_t in_use)
{
    if (now <= last_) {
        // Zero-width sample (or a stale timestamp): nothing to charge;
        // keep only the latest level.
        current_ = in_use;
        return;
    }
    const Cycles dt = now - last_;
    const std::size_t idx = current_ >= time_at_.size()
                                ? time_at_.size() - 1
                                : current_;
    time_at_[idx] += dt;
    last_ = now;
    current_ = in_use;
}

Cycles
OccupancyTracker::busyTime() const
{
    Cycles t = 0;
    for (std::size_t i = 1; i < time_at_.size(); ++i)
        t += time_at_[i];
    return t;
}

double
OccupancyTracker::fracAtLeast(std::uint32_t n) const
{
    const Cycles busy = busyTime();
    if (busy == 0 || n == 0)
        return n == 0 ? 1.0 : 0.0;
    Cycles t = 0;
    for (std::size_t i = n; i < time_at_.size(); ++i)
        t += time_at_[i];
    return static_cast<double>(t) / static_cast<double>(busy);
}

void
OccupancyTracker::reset()
{
    std::fill(time_at_.begin(), time_at_.end(), Cycles{0});
    last_ = 0;
    current_ = 0;
}

std::string
formatTable(const std::vector<NamedValue> &rows)
{
    std::size_t width = 0;
    for (const auto &r : rows)
        width = std::max(width, r.name.size());
    std::ostringstream os;
    for (const auto &r : rows) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%12.4f", r.value);
        os << r.name;
        os << std::string(width - r.name.size() + 2, ' ');
        os << buf << '\n';
    }
    return os.str();
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace dbsim::stats
