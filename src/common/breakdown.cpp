#include "common/breakdown.hpp"

#include <cstdio>
#include <sstream>

namespace dbsim {

const char *
stallCatName(StallCat c)
{
    switch (c) {
      case StallCat::Busy:       return "busy";
      case StallCat::Fu:         return "fu_stall";
      case StallCat::ReadL1:     return "read_l1_misc";
      case StallCat::ReadL2:     return "read_l2";
      case StallCat::ReadLocal:  return "read_local";
      case StallCat::ReadRemote: return "read_remote";
      case StallCat::ReadDirty:  return "read_dirty";
      case StallCat::ReadDtlb:   return "read_dtlb";
      case StallCat::Write:      return "write";
      case StallCat::Sync:       return "sync";
      case StallCat::Instr:      return "instr";
      case StallCat::Itlb:       return "itlb";
      case StallCat::Idle:       return "idle";
      case StallCat::kCount:     break;
    }
    return "?";
}

double
Breakdown::read() const
{
    return (*this)[StallCat::ReadL1] + (*this)[StallCat::ReadL2] +
           (*this)[StallCat::ReadLocal] + (*this)[StallCat::ReadRemote] +
           (*this)[StallCat::ReadDirty] + (*this)[StallCat::ReadDtlb];
}

double
Breakdown::total() const
{
    double t = 0.0;
    for (std::size_t i = 0; i < kNumStallCats; ++i) {
        if (static_cast<StallCat>(i) != StallCat::Idle)
            t += cycles[i];
    }
    return t;
}

Breakdown &
Breakdown::operator+=(const Breakdown &o)
{
    for (std::size_t i = 0; i < kNumStallCats; ++i)
        cycles[i] += o.cycles[i];
    return *this;
}

std::string
Breakdown::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < kNumStallCats; ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%-14s %14.1f\n",
                      stallCatName(static_cast<StallCat>(i)), cycles[i]);
        os << buf;
    }
    return os.str();
}

} // namespace dbsim
