/**
 * @file
 * Interconnect timing models: reservation resources, the per-node
 * split-transaction bus, and the two-dimensional wormhole-routed mesh.
 *
 * Timing uses a resource-reservation discipline: each contended unit
 * (bus, directory controller, memory bank, mesh link) is a Resource with
 * a busy-until horizon.  A transaction walks its path, acquiring each
 * resource no earlier than it arrives and no earlier than the resource
 * frees up.  Because the simulator issues transactions in nondecreasing
 * time order, this produces consistent queuing delays without simulating
 * individual flits.
 */

#ifndef DBSIM_INTERCONNECT_NETWORK_HPP
#define DBSIM_INTERCONNECT_NETWORK_HPP

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::net {

/**
 * A unit-capacity resource with a busy-until reservation horizon.
 */
class Resource
{
  public:
    /**
     * Reserve the resource for @p hold cycles starting no earlier than
     * @p earliest.
     * @return the cycle at which the hold completes.
     */
    Cycles
    acquire(Cycles earliest, Cycles hold)
    {
        const Cycles start = earliest > busy_until_ ? earliest : busy_until_;
        busy_until_ = start + hold;
        total_held_ += hold;
        total_wait_ += start - earliest;
        ++acquisitions_;
        return busy_until_;
    }

    Cycles busyUntil() const { return busy_until_; }
    Cycles totalHeld() const { return total_held_; }
    Cycles totalWait() const { return total_wait_; }
    std::uint64_t acquisitions() const { return acquisitions_; }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(busy_until_);
        w.u64(total_held_);
        w.u64(total_wait_);
        w.u64(acquisitions_);
    }

    void
    restoreState(snap::Reader &r)
    {
        busy_until_ = r.u64();
        total_held_ = r.u64();
        total_wait_ = r.u64();
        acquisitions_ = r.u64();
    }

  private:
    Cycles busy_until_ = 0;
    Cycles total_held_ = 0;
    Cycles total_wait_ = 0;
    std::uint64_t acquisitions_ = 0;
};

/** Mesh configuration. */
struct MeshParams
{
    std::uint32_t router_delay = 4;  ///< per-hop router pipeline delay
    std::uint32_t wire_delay = 2;    ///< per-hop wire delay
    std::uint32_t inject_delay = 8;  ///< NI injection/ejection overhead
    std::uint32_t ctrl_flits = 1;    ///< flits in a control message
    std::uint32_t data_flits = 5;    ///< flits in a data (line) message
};

/**
 * A two-dimensional wormhole-routed mesh connecting the nodes.
 *
 * Nodes are arranged in the most square grid possible (2x2 for four
 * nodes).  Routing is dimension-ordered (X then Y).  Each directional
 * link is a Resource held for the message's flit count, which models
 * wormhole serialization; header latency accrues per hop.
 */
class Mesh
{
  public:
    explicit Mesh(std::uint32_t num_nodes, MeshParams params = {});

    std::uint32_t numNodes() const { return num_nodes_; }

    /** Manhattan hop distance between two nodes. */
    std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

    /**
     * Send a message of @p flits flits from @p src to @p dst, departing
     * no earlier than @p start.
     * @return arrival time of the tail flit at @p dst.
     */
    Cycles transfer(std::uint32_t src, std::uint32_t dst,
                    std::uint32_t flits, Cycles start);

    /** Control-message transfer (requests, invalidations, acks). */
    Cycles
    control(std::uint32_t src, std::uint32_t dst, Cycles start)
    {
        return transfer(src, dst, params_.ctrl_flits, start);
    }

    /** Data-message transfer (a cache line). */
    Cycles
    data(std::uint32_t src, std::uint32_t dst, Cycles start)
    {
        return transfer(src, dst, params_.data_flits, start);
    }

    const MeshParams &params() const { return params_; }

    /** Aggregate queueing delay experienced on all links (contention). */
    Cycles totalLinkWait() const;

    void
    saveState(snap::Writer &w) const
    {
        w.u64(links_.size());
        for (const Resource &res : links_)
            res.saveState(w);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(32);
        if (n != links_.size())
            throw snap::SnapshotError("snapshot: mesh geometry mismatch");
        for (Resource &res : links_)
            res.restoreState(r);
    }

  private:
    std::uint32_t xOf(std::uint32_t node) const { return node % width_; }
    std::uint32_t yOf(std::uint32_t node) const { return node / width_; }
    Resource &link(std::uint32_t from, std::uint32_t to);

    std::uint32_t num_nodes_;
    std::uint32_t width_;
    std::uint32_t height_;
    std::uint32_t grid_; ///< width*height: routes may cross positions
                         ///< beyond num_nodes on non-square meshes
    MeshParams params_;
    /** links indexed [from * grid_ + to] for adjacent grid positions. */
    std::vector<Resource> links_;
};

} // namespace dbsim::net

#endif // DBSIM_INTERCONNECT_NETWORK_HPP
