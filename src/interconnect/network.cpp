#include "interconnect/network.hpp"

#include <cmath>

#include "common/log.hpp"

namespace dbsim::net {

Mesh::Mesh(std::uint32_t num_nodes, MeshParams params)
    : num_nodes_(num_nodes), params_(params)
{
    if (num_nodes == 0)
        DBSIM_FATAL("mesh needs at least one node");
    // Most-square grid: width = ceil(sqrt(n)).
    width_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    height_ = (num_nodes + width_ - 1) / width_;
    grid_ = width_ * height_;
    links_.resize(static_cast<std::size_t>(grid_) * grid_);
}

std::uint32_t
Mesh::hops(std::uint32_t src, std::uint32_t dst) const
{
    DBSIM_ASSERT(src < num_nodes_ && dst < num_nodes_, "bad node id");
    const auto dx = xOf(src) > xOf(dst) ? xOf(src) - xOf(dst)
                                        : xOf(dst) - xOf(src);
    const auto dy = yOf(src) > yOf(dst) ? yOf(src) - yOf(dst)
                                        : yOf(dst) - yOf(src);
    return dx + dy;
}

Resource &
Mesh::link(std::uint32_t from, std::uint32_t to)
{
    DBSIM_ASSERT(from < grid_ && to < grid_, "link index out of grid");
    return links_[static_cast<std::size_t>(from) * grid_ + to];
}

Cycles
Mesh::transfer(std::uint32_t src, std::uint32_t dst, std::uint32_t flits,
               Cycles start)
{
    DBSIM_ASSERT(src < num_nodes_ && dst < num_nodes_, "bad node id");
    if (src == dst)
        return start; // local, no network traversal

    Cycles t = start + params_.inject_delay;

    // Dimension-order route: X first, then Y.
    std::uint32_t cur = src;
    while (cur != dst) {
        std::uint32_t next;
        if (xOf(cur) != xOf(dst)) {
            next = xOf(cur) < xOf(dst) ? cur + 1 : cur - 1;
        } else {
            next = yOf(cur) < yOf(dst) ? cur + width_ : cur - width_;
        }
        // Header traverses router + wire; body flits pipeline behind it.
        // The link is held for the full flit count (wormhole channel
        // occupancy).
        const Cycles hop_latency = params_.router_delay + params_.wire_delay;
        t = link(cur, next).acquire(t, flits) - flits + hop_latency + flits;
        cur = next;
    }
    return t + params_.inject_delay;
}

Cycles
Mesh::totalLinkWait() const
{
    Cycles w = 0;
    for (const auto &l : links_)
        w += l.totalWait();
    return w;
}

} // namespace dbsim::net
