#include "verify/suite.hpp"

#include <sstream>

#include "common/log.hpp"

namespace dbsim::verify {

namespace {

McStep rd(std::uint32_t node, std::uint32_t block = 0)
{
    return {McOp::Read, node, block};
}
McStep wr(std::uint32_t node, std::uint32_t block = 0)
{
    return {McOp::Write, node, block};
}
McStep ev(std::uint32_t node, std::uint32_t block = 0)
{
    return {McOp::Evict, node, block};
}
McStep fl(std::uint32_t node, std::uint32_t block = 0)
{
    return {McOp::Flush, node, block};
}

} // namespace

std::vector<McConfig>
standardConfigs()
{
    std::vector<McConfig> cfgs;

    {
        // Two nodes race read/upgrade/read on one block: GetS exclusive
        // grants, owner downgrades, upgrades with sharer invalidation,
        // cache-to-cache dirty transfers.
        McConfig c;
        c.name = "2n1b";
        c.nodes = 2;
        c.blocks = 1;
        c.programs = {{rd(0), wr(0), rd(0)}, {rd(1), wr(1), rd(1)}};
        cfgs.push_back(c);
    }

    {
        // Evictions interleaved with a writer: covers the directory's
        // shared-refill path (a reader returning after its copy was
        // evicted) and clean/dirty replacement notifications.
        McConfig c;
        c.name = "2n1b-evict";
        c.nodes = 2;
        c.blocks = 1;
        c.programs = {{rd(0), ev(0), rd(0), rd(0)}, {rd(1), wr(1), rd(1)}};
        cfgs.push_back(c);
    }

    {
        // Adaptive migratory protocol with flush hints: ping-pong
        // write/read sequences mark the line migratory, so later reads
        // take the exclusive-handoff path; flushes push dirty data home
        // while keeping a Shared copy.
        McConfig c;
        c.name = "2n1b-migratory";
        c.nodes = 2;
        c.blocks = 1;
        c.fabric.adaptive_migratory = true;
        c.fabric.migratory_read_factor = 0.6;
        c.programs = {{wr(0), rd(0), wr(0), fl(0)}, {wr(1), rd(1), wr(1), rd(1)}};
        cfgs.push_back(c);
    }

    {
        // Three nodes over two blocks (homes on different nodes), mixing
        // all four operation kinds.
        McConfig c;
        c.name = "3n2b";
        c.nodes = 3;
        c.blocks = 2;
        c.programs = {{wr(0, 0), rd(0, 1), ev(0, 0)},
                      {rd(1, 0), wr(1, 1), fl(1, 1)},
                      {rd(2, 0), rd(2, 1), wr(2, 0)}};
        cfgs.push_back(c);
    }

    return cfgs;
}

namespace {

/** Is the shape's characteristic relaxed outcome architecturally
 *  allowed under @p model?  (Plain variants; fenced variants forbid it
 *  under every model.) */
bool
relaxedAllowed(const std::string &shape, cpu::ConsistencyModel model)
{
    switch (model) {
      case cpu::ConsistencyModel::SC:
        return false; // SC forbids all four relaxations
      case cpu::ConsistencyModel::PC:
        return shape == "sb"; // loads bypassing stores is PC's relaxation
      case cpu::ConsistencyModel::RC:
        return true; // only fences order RC
    }
    return false;
}

LitmusRun
runOne(const LitmusTest &test, const std::string &shape, bool fenced,
       const LitmusOutcome &relaxed, cpu::ConsistencyModel model,
       bool spec, const ProtocolMutator *mutator)
{
    cpu::ConsistencyImpl impl;
    impl.spec_loads = spec;
    const cpu::ConsistencyPolicy policy(model, impl);
    const LitmusResult r = runLitmus(test, policy, mutator);

    LitmusRun run;
    run.test = test.name;
    run.model = model;
    run.spec_loads = spec;
    run.outcomes = r.outcomes;
    run.states = r.states;
    run.rollbacks = r.rollbacks;
    run.relaxed = relaxed;
    run.relaxed_expected = !fenced && relaxedAllowed(shape, model);
    run.relaxed_observed = r.outcomes.count(relaxed) != 0;
    run.ok = run.relaxed_observed == run.relaxed_expected;
    return run;
}

} // namespace

std::vector<LitmusRun>
runLitmusMatrix(const ProtocolMutator *mutator)
{
    struct Shape
    {
        std::string name;
        LitmusTest (*make)(bool);
        LitmusOutcome relaxed;
    };
    const std::vector<Shape> shapes = {
        {"mp", litmusMp, {1, 0}},
        {"sb", litmusSb, {0, 0}},
        {"lb", litmusLb, {1, 1}},
        {"iriw", litmusIriw, {1, 0, 1, 0}},
    };
    const cpu::ConsistencyModel models[] = {cpu::ConsistencyModel::SC,
                                            cpu::ConsistencyModel::PC,
                                            cpu::ConsistencyModel::RC};

    std::vector<LitmusRun> runs;
    for (const Shape &s : shapes) {
        for (const bool fenced : {false, true}) {
            const LitmusTest test = s.make(fenced);
            for (const cpu::ConsistencyModel m : models) {
                runs.push_back(runOne(test, s.name, fenced, s.relaxed, m,
                                      /*spec=*/false, mutator));
                // Speculative loads are the strict models' ILP
                // optimization; under RC they never trigger (loads are
                // never consistency-blocked).
                if (m != cpu::ConsistencyModel::RC)
                    runs.push_back(runOne(test, s.name, fenced, s.relaxed,
                                          m, /*spec=*/true, mutator));
            }
        }
    }
    return runs;
}

bool
litmusMatrixOk(const std::vector<LitmusRun> &runs, std::string *why)
{
    auto fail = [&](const std::string &what) {
        if (why)
            *why = what;
        return false;
    };

    auto find = [&](const std::string &test, cpu::ConsistencyModel m,
                    bool spec) -> const LitmusRun * {
        for (const LitmusRun &r : runs)
            if (r.test == test && r.model == m && r.spec_loads == spec)
                return &r;
        return nullptr;
    };

    std::uint64_t spec_rollbacks = 0;
    for (const LitmusRun &r : runs) {
        if (!r.ok)
            return fail(r.test + " under " +
                        cpu::consistencyModelName(r.model) +
                        (r.spec_loads ? "+spec" : "") + ": outcome " +
                        litmusOutcomeString(r.relaxed) +
                        (r.relaxed_observed ? " observed but forbidden"
                                            : " required but never observed"));
        if (r.spec_loads)
            spec_rollbacks += r.rollbacks;

        // Outcome-set monotonicity: SC subset of PC subset of RC.
        if (!r.spec_loads && r.model != cpu::ConsistencyModel::SC) {
            const cpu::ConsistencyModel stronger =
                r.model == cpu::ConsistencyModel::RC
                    ? cpu::ConsistencyModel::PC
                    : cpu::ConsistencyModel::SC;
            const LitmusRun *s = find(r.test, stronger, false);
            if (!s)
                return fail(r.test + ": missing " +
                            cpu::consistencyModelName(stronger) + " run");
            for (const LitmusOutcome &o : s->outcomes)
                if (!r.outcomes.count(o))
                    return fail(r.test + ": outcome " +
                                litmusOutcomeString(o) + " allowed under " +
                                cpu::consistencyModelName(stronger) +
                                " but not under " +
                                cpu::consistencyModelName(r.model));
        }

        // Speculation must not change the architectural outcome set.
        if (r.spec_loads) {
            const LitmusRun *base = find(r.test, r.model, false);
            if (!base || base->outcomes != r.outcomes)
                return fail(r.test + " under " +
                            cpu::consistencyModelName(r.model) +
                            ": speculative outcome set differs from"
                            " non-speculative");
        }
    }

    // The harness must actually have exercised the rollback path --
    // otherwise the spec-equality check above is vacuous.
    if (spec_rollbacks == 0)
        return fail("no speculative-load rollback was ever exercised");
    return true;
}

std::vector<MutationVerdict>
runMutationCatalog()
{
    std::vector<MutationVerdict> verdicts;

    // Fabric bugs: each must produce a model-checker violation in at
    // least one standard configuration.
    const ProtocolBug fabric_bugs[] = {
        ProtocolBug::DroppedInvalidation,
        ProtocolBug::StaleOwner,
        ProtocolBug::MissingDowngrade,
        ProtocolBug::LostSharerBit,
    };
    for (const ProtocolBug bug : fabric_bugs) {
        MutationVerdict v;
        v.bug = bug;
        for (McConfig cfg : standardConfigs()) {
            cfg.bug = bug;
            const McResult r = ModelChecker(cfg).check();
            v.fires += r.mutation_fires;
            if (!r.ok) {
                v.caught = true;
                v.detector = "model-checker/" + cfg.name;
                v.detail = r.violation;
                break;
            }
        }
        verdicts.push_back(v);
    }

    // Consistency bugs: each must make a forbidden litmus outcome
    // reachable.
    {
        // A skipped speculative-load squash lets a bound stale value
        // commit: mp's (1,0) appears under SC with speculative loads.
        MutationVerdict v;
        v.bug = ProtocolBug::SkippedSpecSquash;
        ProtocolMutator m;
        m.bug = v.bug;
        const LitmusTest test = litmusMp(false);
        cpu::ConsistencyImpl impl;
        impl.spec_loads = true;
        const LitmusResult r =
            runLitmus(test, {cpu::ConsistencyModel::SC, impl}, &m);
        v.fires = m.triggers;
        if (r.outcomes.count({1, 0})) {
            v.caught = true;
            v.detector = "litmus/mp SC+spec";
            v.detail = "forbidden outcome 1,0 reachable";
        }
        verdicts.push_back(v);
    }
    {
        // A release reordered past its WMB epoch breaks fenced message
        // passing under RC: mp+fences admits (1,0).
        MutationVerdict v;
        v.bug = ProtocolBug::ReorderedRelease;
        ProtocolMutator m;
        m.bug = v.bug;
        const LitmusTest test = litmusMp(true);
        const LitmusResult r =
            runLitmus(test, cpu::ConsistencyPolicy(cpu::ConsistencyModel::RC),
                      &m);
        v.fires = m.triggers;
        if (r.outcomes.count({1, 0})) {
            v.caught = true;
            v.detector = "litmus/mp+fences RC";
            v.detail = "forbidden outcome 1,0 reachable";
        }
        verdicts.push_back(v);
    }

    return verdicts;
}

} // namespace dbsim::verify
