#include "verify/model_checker.hpp"

#include <functional>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "coherence/checker.hpp"
#include "common/log.hpp"

namespace dbsim::verify {

namespace {

/** Block addresses are spaced one line apart, starting nonzero so a
 *  zero Addr always means "no block". */
constexpr Addr kBlockBytes = 64;

Addr
addrOf(std::uint32_t block)
{
    return (static_cast<Addr>(block) + 1) * kBlockBytes;
}

class Machine;

/**
 * The model cache site: one MESI state + data version per block.  A
 * version number stands in for the line's data; the harness checks
 * reads observe the version of the globally most recent write.
 */
class ModelSite final : public coher::CacheSite
{
  public:
    void attach(Machine *m, std::uint32_t node);

    mem::CoherState siteState(Addr block) override;
    void siteInvalidate(Addr block) override;
    void siteDowngrade(Addr block) override;

  private:
    Machine *m_ = nullptr;
    std::uint32_t node_ = 0;
};

/**
 * One concrete machine: the real fabric + real dynamic checker
 * (collecting mode) + model sites + the value model.  Machines are
 * rebuilt by replaying a schedule prefix; all protocol state lives in
 * the fabric and the sites, so replay is deterministic.
 */
class Machine
{
  public:
    explicit Machine(const McConfig &cfg)
        : cfg_(&cfg), mut_{cfg.bug}, fabric_(cfg.nodes, cfg.fabric),
          sites_(cfg.nodes),
          lines_(static_cast<std::size_t>(cfg.nodes) * cfg.blocks),
          mem_ver_(cfg.blocks, 0), latest_(cfg.blocks, 0)
    {
        for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
            sites_[n].attach(this, n);
            fabric_.attachSite(n, &sites_[n]);
        }
        fabric_.attachChecker(&checker_);
        fabric_.attachMutator(&mut_);
    }

    // The fabric and the sites hold pointers into this object.
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Apply one step; false iff an invariant was violated. */
    bool
    apply(const McStep &s)
    {
        switch (s.op) {
          case McOp::Read:  applyRead(s);  break;
          case McOp::Write: applyWrite(s); break;
          case McOp::Evict: applyEvict(s); break;
          case McOp::Flush: applyFlush(s); break;
        }
        if (violation_.empty())
            checkInvariants(s);
        return violation_.empty();
    }

    /** Audit the quiesced machine once more (terminal states). */
    bool
    finalAudit()
    {
        for (std::uint32_t b = 0; b < cfg_->blocks && violation_.empty();
             ++b) {
            checker_.auditBlock(fabric_, addrOf(b), "quiescence", now_);
            reapCheckerViolations();
        }
        return violation_.empty();
    }

    const std::string &violation() const { return violation_; }
    std::uint64_t mutationFires() const { return mut_.triggers; }

    /**
     * Canonical state key: program counters are appended by the caller.
     * Data versions are relabeled in order of first appearance so that
     * schedules reaching isomorphic states collide.
     */
    std::string
    stateKey() const
    {
        std::ostringstream os;
        std::unordered_map<std::uint64_t, std::uint64_t> relabel;
        auto canon = [&](std::uint64_t v) {
            auto [it, fresh] = relabel.try_emplace(v, relabel.size());
            (void)fresh;
            return it->second;
        };
        for (std::uint32_t b = 0; b < cfg_->blocks; ++b) {
            const coher::DirSnapshot d = fabric_.dirState(addrOf(b));
            os << 'd' << d.owner << ',' << d.sharers << ','
               << d.last_writer << ','
               << fabric_.migratory().isMigratory(addrOf(b)) << ','
               << canon(mem_ver_[b]) << ',' << canon(latest_[b]) << ';';
            for (std::uint32_t n = 0; n < cfg_->nodes; ++n) {
                const Line &ln = line(n, b);
                os << static_cast<int>(ln.st) << ','
                   << (ln.st == mem::CoherState::Invalid ? 0 : canon(ln.ver))
                   << ';';
            }
        }
        return os.str();
    }

    /** Human-readable machine state (for counterexample dumps). */
    std::string
    dump() const
    {
        std::ostringstream os;
        for (std::uint32_t b = 0; b < cfg_->blocks; ++b) {
            const coher::DirSnapshot d = fabric_.dirState(addrOf(b));
            os << "block b" << b << ": dir owner=" << d.owner
               << " sharers=0x" << std::hex << d.sharers << std::dec
               << " migratory="
               << fabric_.migratory().isMigratory(addrOf(b))
               << " mem=v" << mem_ver_[b] << " latest=v" << latest_[b];
            for (std::uint32_t n = 0; n < cfg_->nodes; ++n) {
                const Line &ln = line(n, b);
                os << " | n" << n << '=' << mem::coherStateName(ln.st);
                if (ln.st != mem::CoherState::Invalid)
                    os << ":v" << ln.ver;
            }
            os << '\n';
        }
        return os.str();
    }

  private:
    friend class ModelSite;

    struct Line
    {
        mem::CoherState st = mem::CoherState::Invalid;
        std::uint64_t ver = 0;
    };

    Line &
    line(std::uint32_t node, std::uint32_t block)
    {
        return lines_[static_cast<std::size_t>(node) * cfg_->blocks + block];
    }

    const Line &
    line(std::uint32_t node, std::uint32_t block) const
    {
        return lines_[static_cast<std::size_t>(node) * cfg_->blocks + block];
    }

    std::uint32_t homeOf(std::uint32_t block) const
    {
        return block % cfg_->nodes;
    }

    /** Distinct PC per (node, block) so migratory PC stats stay sane. */
    Addr pcFor(const McStep &s) const
    {
        return 0x1000 + s.node * 0x100 + s.block * 0x10;
    }

    void
    applyRead(const McStep &s)
    {
        Line &ln = line(s.node, s.block);
        std::uint64_t observed;
        if (ln.st != mem::CoherState::Invalid) {
            // Cache hit: served locally, never reaches the fabric --
            // which is exactly how a dropped invalidation or a lost
            // sharer bit becomes a user-visible stale read.
            observed = ln.ver;
        } else {
            const Addr a = addrOf(s.block);
            const coher::DirSnapshot pre = fabric_.dirState(a);
            const std::uint64_t pre_owner_ver =
                pre.owner >= 0
                    ? line(static_cast<std::uint32_t>(pre.owner), s.block).ver
                    : 0;
            const coher::FabricResult r =
                fabric_.read(s.node, a, homeOf(s.block), now_, pcFor(s));
            advance(r.ready);
            // A cache-to-cache transfer carries the dirty owner's data;
            // every other service source is the home memory.
            observed = r.cls == coher::AccessClass::RemoteDirty
                           ? pre_owner_ver
                           : mem_ver_[s.block];
            ln.st = r.grant;
            ln.ver = observed;
        }
        if (observed != latest_[s.block]) {
            std::ostringstream os;
            os << "data-value invariant violated: " << mcStepString(s)
               << " observed v" << observed << " but the latest write is v"
               << latest_[s.block];
            violation_ = os.str();
        }
    }

    void
    applyWrite(const McStep &s)
    {
        Line &ln = line(s.node, s.block);
        if (ln.st == mem::CoherState::Invalid ||
            ln.st == mem::CoherState::Shared) {
            const coher::FabricResult r =
                fabric_.write(s.node, addrOf(s.block), homeOf(s.block), now_,
                              pcFor(s));
            advance(r.ready);
            ln.st = r.grant;
        } else {
            // Write hit: Exclusive upgrades to Modified silently,
            // Modified writes in place -- no fabric transaction, as in
            // a real cache controller.
            ln.st = mem::CoherState::Modified;
        }
        ln.ver = ++version_counter_;
        latest_[s.block] = ln.ver;
    }

    void
    applyEvict(const McStep &s)
    {
        Line &ln = line(s.node, s.block);
        if (ln.st == mem::CoherState::Invalid)
            return; // nothing cached; the op degenerates to a no-op
        const bool dirty = ln.st == mem::CoherState::Modified;
        if (dirty)
            mem_ver_[s.block] = ln.ver; // the writeback carries the data
        ln.st = mem::CoherState::Invalid;
        fabric_.evict(s.node, addrOf(s.block), homeOf(s.block), dirty, now_);
        ++now_;
    }

    void
    applyFlush(const McStep &s)
    {
        // The fabric validates ownership itself; the model site's
        // downgrade performs the writeback when it fires.
        const Cycles done =
            fabric_.flush(s.node, addrOf(s.block), homeOf(s.block), now_);
        if (done != kNever)
            advance(done);
    }

    void
    checkInvariants(const McStep &s)
    {
        // I1-I3 via the real dynamic checker.
        checker_.auditPending(fabric_, now_);
        reapCheckerViolations();
        if (!violation_.empty())
            return;

        for (std::uint32_t b = 0; b < cfg_->blocks; ++b) {
            // Strict SWMR over the model sites.
            int strong = -1;
            std::uint32_t valid = 0;
            for (std::uint32_t n = 0; n < cfg_->nodes; ++n) {
                const mem::CoherState st = line(n, b).st;
                if (st == mem::CoherState::Invalid)
                    continue;
                ++valid;
                if (st != mem::CoherState::Shared)
                    strong = static_cast<int>(n);
            }
            if (strong >= 0 && valid > 1) {
                fail(s, b, "SWMR violated: node " + std::to_string(strong) +
                               " holds E/M while another copy is valid");
                return;
            }

            // Strict directory-cache agreement (model evictions are
            // always notified, so no silent-eviction slack is needed).
            const coher::DirSnapshot d = fabric_.dirState(addrOf(b));
            if (d.owner >= 0) {
                const mem::CoherState st =
                    line(static_cast<std::uint32_t>(d.owner), b).st;
                if (st != mem::CoherState::Exclusive &&
                    st != mem::CoherState::Modified) {
                    fail(s, b,
                         "directory records owner node " +
                             std::to_string(d.owner) +
                             " which holds no E/M copy");
                    return;
                }
            }
            for (std::uint32_t n = 0; n < cfg_->nodes; ++n) {
                const bool cached =
                    line(n, b).st != mem::CoherState::Invalid;
                const bool recorded = d.owner == static_cast<int>(n) ||
                                      (d.sharers & (1u << n)) != 0;
                if (cached && !recorded) {
                    fail(s, b,
                         "node " + std::to_string(n) +
                             " holds a copy unknown to the directory");
                    return;
                }
                if (!cached && recorded) {
                    fail(s, b,
                         "directory records node " + std::to_string(n) +
                             " which holds no copy");
                    return;
                }
            }
        }
    }

    void
    fail(const McStep &s, std::uint32_t block, const std::string &what)
    {
        std::ostringstream os;
        os << what << " (block b" << block << ", after " << mcStepString(s)
           << ")";
        violation_ = os.str();
    }

    void
    reapCheckerViolations()
    {
        if (checker_.stats().violations > checker_seen_) {
            checker_seen_ = checker_.stats().violations;
            violation_ = checker_.violations().empty()
                             ? std::string("dynamic checker violation")
                             : checker_.violations().back();
        }
    }

    void
    advance(Cycles t)
    {
        now_ = t > now_ ? t : now_;
        ++now_;
    }

    const McConfig *cfg_;
    ProtocolMutator mut_;
    coher::CoherenceFabric fabric_;
    coher::CoherenceChecker checker_{/*panic_on_violation=*/false};
    std::vector<ModelSite> sites_;
    std::vector<Line> lines_;        ///< [node * blocks + block]
    std::vector<std::uint64_t> mem_ver_; ///< version home memory holds
    std::vector<std::uint64_t> latest_;  ///< version of the latest write
    std::uint64_t version_counter_ = 0;
    std::uint64_t checker_seen_ = 0;
    Cycles now_ = 0;
    std::string violation_;
};

void
ModelSite::attach(Machine *m, std::uint32_t node)
{
    m_ = m;
    node_ = node;
}

mem::CoherState
ModelSite::siteState(Addr block)
{
    const std::uint32_t b = static_cast<std::uint32_t>(block / kBlockBytes) - 1;
    return m_->line(node_, b).st;
}

void
ModelSite::siteInvalidate(Addr block)
{
    const std::uint32_t b = static_cast<std::uint32_t>(block / kBlockBytes) - 1;
    m_->line(node_, b).st = mem::CoherState::Invalid;
}

void
ModelSite::siteDowngrade(Addr block)
{
    const std::uint32_t b = static_cast<std::uint32_t>(block / kBlockBytes) - 1;
    Machine::Line &ln = m_->line(node_, b);
    if (ln.st == mem::CoherState::Modified)
        m_->mem_ver_[b] = ln.ver; // downgrading a dirty line writes back
    if (ln.st != mem::CoherState::Invalid)
        ln.st = mem::CoherState::Shared;
}

/** Replay @p steps on a fresh machine; the index of the violating step
 *  (violation text in @p out), or -1 if the replay is clean. */
int
replayForViolation(const McConfig &cfg, const std::vector<McStep> &steps,
                   std::string *out)
{
    Machine m(cfg);
    for (std::size_t i = 0; i < steps.size(); ++i) {
        if (!m.apply(steps[i])) {
            if (out)
                *out = m.violation();
            return static_cast<int>(i);
        }
    }
    return -1;
}

/** Greedy delta-removal: drop ops whose removal preserves a violation. */
std::vector<McStep>
minimizeTrace(const McConfig &cfg, std::vector<McStep> steps,
              std::string *violation)
{
    bool improved = true;
    while (improved && steps.size() > 1) {
        improved = false;
        for (std::size_t i = 0; i < steps.size(); ++i) {
            std::vector<McStep> cand;
            cand.reserve(steps.size() - 1);
            for (std::size_t j = 0; j < steps.size(); ++j)
                if (j != i)
                    cand.push_back(steps[j]);
            std::string what;
            const int hit = replayForViolation(cfg, cand, &what);
            if (hit >= 0) {
                cand.resize(static_cast<std::size_t>(hit) + 1);
                steps = std::move(cand);
                if (violation)
                    *violation = what;
                improved = true;
                break;
            }
        }
    }
    return steps;
}

} // namespace

const char *
mcOpName(McOp op)
{
    switch (op) {
      case McOp::Read:  return "read";
      case McOp::Write: return "write";
      case McOp::Evict: return "evict";
      case McOp::Flush: return "flush";
    }
    return "?";
}

std::string
mcStepString(const McStep &step)
{
    std::ostringstream os;
    os << 'n' << step.node << ' ' << mcOpName(step.op) << " b" << step.block;
    return os.str();
}

std::string
McResult::traceString() const
{
    std::ostringstream os;
    os << "counterexample (" << trace.size() << " ops) in config '" << config
       << "':\n";
    for (std::size_t i = 0; i < trace.size(); ++i)
        os << "  " << i + 1 << ". " << mcStepString(trace[i]) << '\n';
    if (!violation.empty())
        os << "violation: " << violation << '\n';
    return os.str();
}

ModelChecker::ModelChecker(McConfig cfg, bool panic_on_violation)
    : cfg_(std::move(cfg)), panic_on_violation_(panic_on_violation)
{
    DBSIM_ASSERT(cfg_.nodes >= 1 && cfg_.nodes <= 8, "bad node count");
    DBSIM_ASSERT(cfg_.blocks >= 1 && cfg_.blocks <= 8, "bad block count");
    DBSIM_ASSERT(cfg_.programs.size() == cfg_.nodes,
                 "one program per node required");
    for (const auto &prog : cfg_.programs)
        for (const McStep &s : prog)
            DBSIM_ASSERT(s.node < cfg_.nodes && s.block < cfg_.blocks,
                         "program step out of range");
}

McResult
ModelChecker::check()
{
    McResult res;
    res.config = cfg_.name;

    std::unordered_set<std::string> seen;
    std::vector<std::uint32_t> path; // schedule: node index per step
    bool stop = false;

    // The concrete step sequence a schedule denotes.
    auto stepsOf = [&](const std::vector<std::uint32_t> &p) {
        std::vector<McStep> steps;
        std::vector<std::uint32_t> pcs(cfg_.nodes, 0);
        steps.reserve(p.size());
        for (std::uint32_t node : p)
            steps.push_back(cfg_.programs[node][pcs[node]++]);
        return steps;
    };

    // Rebuild a machine by replaying the prefix.  Machines hold
    // self-pointers (fabric -> sites -> machine), so they live on the
    // heap.  Prefixes are only recursed into after being checked
    // clean, and the machine is deterministic in the schedule, so
    // replays cannot violate.
    auto rebuild = [&](const std::vector<std::uint32_t> &p) {
        auto m = std::make_unique<Machine>(cfg_);
        std::vector<std::uint32_t> pcs(cfg_.nodes, 0);
        for (std::uint32_t node : p) {
            const bool clean = m->apply(cfg_.programs[node][pcs[node]++]);
            DBSIM_ASSERT(clean, "replay of a clean prefix violated");
        }
        return m;
    };

    auto recordViolation = [&](Machine &m, std::vector<McStep> steps,
                               bool minimize) {
        res.ok = false;
        res.violation = m.violation();
        res.trace = minimize ? minimizeTrace(cfg_, std::move(steps),
                                             &res.violation)
                             : std::move(steps);
        Machine fin(cfg_);
        for (const McStep &ts : res.trace)
            if (!fin.apply(ts))
                break;
        res.final_dump = fin.dump();
        stop = true;
    };

    std::function<void()> dfs = [&]() {
        if (stop)
            return;
        std::vector<std::uint32_t> pcs(cfg_.nodes, 0);
        for (std::uint32_t n : path)
            ++pcs[n];

        bool terminal = true;
        for (std::uint32_t node = 0; node < cfg_.nodes && !stop; ++node) {
            if (pcs[node] >= cfg_.programs[node].size())
                continue;
            terminal = false;

            auto m = rebuild(path);
            const McStep step = cfg_.programs[node][pcs[node]];
            ++res.transitions;
            const bool clean = m->apply(step);
            res.mutation_fires += m->mutationFires();
            if (!clean) {
                std::vector<McStep> steps = stepsOf(path);
                steps.push_back(step);
                recordViolation(*m, std::move(steps), /*minimize=*/true);
                return;
            }

            std::ostringstream key;
            key << m->stateKey() << "|p";
            for (std::uint32_t n = 0; n < cfg_.nodes; ++n)
                key << (pcs[n] + (n == node ? 1u : 0u)) << ',';
            if (!seen.insert(key.str()).second)
                continue;
            if (seen.size() > cfg_.max_states) {
                res.ok = false;
                res.violation = "state budget exceeded (possible livelock)";
                stop = true;
                return;
            }

            path.push_back(node);
            dfs();
            path.pop_back();
        }

        if (terminal && !stop) {
            ++res.interleavings;
            auto m = rebuild(path);
            if (!m->finalAudit())
                recordViolation(*m, stepsOf(path), /*minimize=*/false);
        }
    };

    dfs();
    res.states = seen.size();
    res.exhausted = res.ok;

    if (!res.ok && panic_on_violation_) {
        const std::string text = res.traceString() + res.final_dump;
        const int dump = registerCrashDump("model-checker counterexample",
                                           [text] { return text; });
        try {
            DBSIM_PANIC("model checker: ", res.violation);
        } catch (...) {
            // Under PanicThrowGuard the panic returns as an exception;
            // drop the one-shot dump so it cannot leak into later,
            // unrelated panics of the embedding process.
            unregisterCrashDump(dump);
            throw;
        }
    }
    return res;
}

} // namespace dbsim::verify
