/**
 * @file
 * Standard verification suite: the model-checking configurations, the
 * litmus expectation matrix, and the protocol-mutation catalog.
 *
 * This is the single source of truth consumed by both the dbsim-mc
 * command-line driver and the unit tests, so "what the verification
 * layer proves" cannot drift between the two.
 */

#ifndef DBSIM_VERIFY_SUITE_HPP
#define DBSIM_VERIFY_SUITE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "verify/litmus.hpp"
#include "verify/model_checker.hpp"
#include "common/mutator.hpp"

namespace dbsim::verify {

/**
 * The standard model-checking configurations:
 *  - "2n1b"           two nodes racing reads/upgrades on one block
 *                     (exercises GetS, Upgrade, invalidation, c2c);
 *  - "2n1b-evict"     adds L2 evictions, covering the directory's
 *                     shared-read refill path after a sharer leaves;
 *  - "2n1b-migratory" adaptive migratory protocol plus flush hints
 *                     (exclusive handoffs to readers, sharing
 *                     writebacks);
 *  - "3n2b"           three nodes over two blocks, mixing all four
 *                     operation kinds across interleaved homes.
 */
std::vector<McConfig> standardConfigs();

/** One litmus execution compared against the model's expectation. */
struct LitmusRun
{
    std::string test;
    cpu::ConsistencyModel model;
    bool spec_loads = false;
    std::set<LitmusOutcome> outcomes;
    std::uint64_t states = 0;
    std::uint64_t rollbacks = 0;
    LitmusOutcome relaxed;        ///< the shape's characteristic outcome
    bool relaxed_expected = false;///< model must allow it
    bool relaxed_observed = false;
    bool ok = false;              ///< observed == expected
};

/**
 * Run mp/sb/lb/iriw (plain and fenced) under SC, PC and RC -- the
 * strict models both without and with speculative loads -- and compare
 * each outcome set against the expectation matrix.  With @p mutator a
 * seeded consistency bug participates (used by the mutation catalog).
 */
std::vector<LitmusRun> runLitmusMatrix(const ProtocolMutator *mutator = nullptr);

/**
 * Cross-run properties of a matrix result: every run ok, outcome sets
 * monotone (SC subset of PC subset of RC per test, non-speculative),
 * speculative outcome sets identical to non-speculative, and at least
 * one speculative run rolled a load back.  On failure @p why (if
 * non-null) receives a description.
 */
bool litmusMatrixOk(const std::vector<LitmusRun> &runs,
                    std::string *why = nullptr);

/** Outcome of hunting one seeded protocol bug. */
struct MutationVerdict
{
    ProtocolBug bug = ProtocolBug::None;
    bool caught = false;
    std::uint64_t fires = 0;  ///< times the seeded bug actually fired
    std::string detector;     ///< config / litmus run that caught it
    std::string detail;       ///< violation text or forbidden outcome
};

/**
 * Seed each catalogued protocol bug and verify the layer detects it:
 * fabric bugs must produce a model-checker violation in some standard
 * configuration, consistency bugs must make a forbidden litmus outcome
 * reachable.  A verdict with caught == false (or fires == 0, meaning
 * the bug never even executed) is a verification-layer failure.
 */
std::vector<MutationVerdict> runMutationCatalog();

} // namespace dbsim::verify

#endif // DBSIM_VERIFY_SUITE_HPP
