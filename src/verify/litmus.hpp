/**
 * @file
 * Consistency litmus harness for the SC / PC / RC implementations.
 *
 * The harness runs the classic litmus shapes -- message passing (mp),
 * store buffering (sb), load buffering (lb), independent reads of
 * independent writes (iriw), each in a plain and a fenced variant --
 * through the *real* cpu::ConsistencyPolicy predicates: an operation
 * may perform exactly when loadMayIssue / storeMayIssue (plus the
 * MB/WMB fence rules mirrored from the core's memory queue and write
 * buffer) say it may.  It explores every interleaving of eligible
 * perform events with memoized DFS and collects the exact set of final
 * load-value outcomes, which the expectation matrix (suite.cpp) then
 * compares against what each memory model must allow and forbid.
 *
 * Speculative load execution (the paper's ILP-enabled SC/PC
 * implementations) is modeled the way cpu::Core implements it: a
 * consistency-blocked load may bind a value early; a store by another
 * processor to the same variable flags the bound load (the
 * onLineInvalidated path); a flagged load is squashed at its ordering
 * point and re-reads memory.  A correct implementation therefore has
 * exactly the non-speculative outcome set -- which is the property the
 * litmus matrix asserts -- and the SkippedSpecSquash /
 * ReorderedRelease protocol mutants make forbidden outcomes reachable,
 * which is how the harness proves it can detect consistency bugs.
 */

#ifndef DBSIM_VERIFY_LITMUS_HPP
#define DBSIM_VERIFY_LITMUS_HPP

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cpu/consistency.hpp"
#include "common/mutator.hpp"

namespace dbsim::verify {

/** One instruction of a litmus thread. */
enum class LitOp : std::uint8_t {
    Ld,  ///< load var into the next result slot
    St,  ///< store val to var
    Mb,  ///< full memory barrier (orders everything)
    Wmb, ///< write barrier (orders stores, as the core's WMB epochs)
};

struct LitInstr
{
    LitOp op;
    int var = 0; ///< variable index (Ld/St)
    int val = 0; ///< stored value (St)
};

/** A litmus test: per-thread programs over shared variables (init 0). */
struct LitmusTest
{
    std::string name;
    int num_vars = 2;
    std::vector<std::vector<LitInstr>> threads;
};

/** An outcome: the committed values of all loads, in (thread, program
 *  order) order. */
using LitmusOutcome = std::vector<int>;

/** Result of exhaustively executing one test under one policy. */
struct LitmusResult
{
    std::set<LitmusOutcome> outcomes;
    std::uint64_t states = 0;    ///< distinct states explored
    std::uint64_t rollbacks = 0; ///< speculative-load squashes replayed
};

/**
 * Exhaustively execute @p test under @p policy, optionally with a
 * seeded consistency bug.
 */
LitmusResult runLitmus(const LitmusTest &test,
                       const cpu::ConsistencyPolicy &policy,
                       const ProtocolMutator *mutator = nullptr);

/** "0,1" rendering of an outcome (for diagnostics). */
std::string litmusOutcomeString(const LitmusOutcome &o);

// Canonical litmus shapes.  @p fenced inserts a WMB between the writer
// threads' stores and an MB between the reader threads' loads.
LitmusTest litmusMp(bool fenced);
LitmusTest litmusSb(bool fenced);
LitmusTest litmusLb(bool fenced);
LitmusTest litmusIriw(bool fenced);

} // namespace dbsim::verify

#endif // DBSIM_VERIFY_LITMUS_HPP
