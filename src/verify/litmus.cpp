#include "verify/litmus.hpp"

#include <sstream>
#include <unordered_set>

#include "common/log.hpp"

namespace dbsim::verify {

namespace {

/** Per-instruction execution state. */
struct InstrState
{
    bool performed = false;
    bool bound = false;    ///< load: value consumed speculatively
    bool violated = false; ///< load: bound value invalidated by a store
    int bound_val = 0;
    int value = 0;         ///< load: the committed value
};

/** Full executor state: small and copyable, so DFS copies per event. */
struct ExecState
{
    std::vector<std::vector<InstrState>> st; ///< [thread][instr]
    std::vector<int> mem;                    ///< [var], init 0

    std::string
    key() const
    {
        std::ostringstream os;
        for (const auto &thread : st) {
            for (const InstrState &i : thread)
                os << i.performed << i.bound << i.violated << ','
                   << i.bound_val << ',' << i.value << ';';
            os << '|';
        }
        for (int v : mem)
            os << v << ',';
        return os.str();
    }
};

class LitmusExec
{
  public:
    LitmusExec(const LitmusTest &test, const cpu::ConsistencyPolicy &policy,
               const ProtocolMutator *mutator)
        : test_(test), policy_(policy), mut_(mutator)
    {
    }

    LitmusResult
    run()
    {
        ExecState init;
        init.st.resize(test_.threads.size());
        for (std::size_t t = 0; t < test_.threads.size(); ++t)
            init.st[t].resize(test_.threads[t].size());
        init.mem.assign(test_.num_vars, 0);
        explore(init);
        res_.states = memo_.size();
        return res_;
    }

  private:
    /** Ordering context of instruction @p i in thread @p t. */
    struct Prior
    {
        bool loads_done = true;
        bool stores_done = true;
        bool mb_pending = false;
        bool wmb_pending = false;
        bool all_done = true;
    };

    Prior
    priorOf(const ExecState &s, std::size_t t, std::size_t i) const
    {
        Prior p;
        for (std::size_t j = 0; j < i; ++j) {
            const LitInstr &ins = test_.threads[t][j];
            const bool done = s.st[t][j].performed;
            p.all_done &= done;
            switch (ins.op) {
              case LitOp::Ld:  p.loads_done &= done; break;
              case LitOp::St:  p.stores_done &= done; break;
              case LitOp::Mb:  p.mb_pending |= !done; break;
              case LitOp::Wmb: p.wmb_pending |= !done; break;
            }
        }
        return p;
    }

    bool
    mayPerform(const ExecState &s, std::size_t t, std::size_t i) const
    {
        const LitInstr &ins = test_.threads[t][i];
        const Prior p = priorOf(s, t, i);
        switch (ins.op) {
          case LitOp::Ld:
            return !p.mb_pending &&
                   policy_.loadMayIssue(p.loads_done, p.stores_done);
          case LitOp::St:
            if (p.wmb_pending &&
                !(mut_ && mut_->armed(ProtocolBug::ReorderedRelease)))
                return false; // WMB epoch ordering (writeBufferStage)
            return !p.mb_pending &&
                   policy_.storeMayIssue(p.loads_done, p.stores_done);
          case LitOp::Mb:
            return p.all_done;
          case LitOp::Wmb:
            return p.stores_done;
        }
        return false;
    }

    bool
    mayBind(const ExecState &s, std::size_t t, std::size_t i) const
    {
        const LitInstr &ins = test_.threads[t][i];
        return ins.op == LitOp::Ld && policy_.speculativeLoads() &&
               !s.st[t][i].performed && !s.st[t][i].bound &&
               !mayPerform(s, t, i);
    }

    void
    perform(ExecState &s, std::size_t t, std::size_t i)
    {
        const LitInstr &ins = test_.threads[t][i];
        InstrState &is = s.st[t][i];
        switch (ins.op) {
          case LitOp::Ld:
            if (is.bound && is.violated) {
                // Speculative-load squash: roll back this load and every
                // younger binding of the thread (cpu::Core::rollbackFrom),
                // then replay by reading the current value.
                ++res_.rollbacks;
                for (std::size_t k = i; k < s.st[t].size(); ++k) {
                    s.st[t][k].bound = false;
                    s.st[t][k].violated = false;
                }
            }
            is.value = is.bound ? is.bound_val : s.mem[ins.var];
            break;
          case LitOp::St:
            s.mem[ins.var] = ins.val;
            // The invalidation reaches every other processor's
            // speculatively-bound loads of this variable
            // (cpu::Core::onLineInvalidated) -- unless the
            // SkippedSpecSquash bug is seeded.
            if (!(mut_ && mut_->armed(ProtocolBug::SkippedSpecSquash))) {
                for (std::size_t ot = 0; ot < s.st.size(); ++ot) {
                    if (ot == t)
                        continue;
                    for (std::size_t oi = 0; oi < s.st[ot].size(); ++oi) {
                        const LitInstr &other = test_.threads[ot][oi];
                        InstrState &ois = s.st[ot][oi];
                        if (other.op == LitOp::Ld && ois.bound &&
                            !ois.performed && other.var == ins.var)
                            ois.violated = true;
                    }
                }
            }
            break;
          case LitOp::Mb:
          case LitOp::Wmb:
            break;
        }
        is.performed = true;
    }

    void
    explore(const ExecState &s)
    {
        if (!memo_.insert(s.key()).second)
            return;
        DBSIM_ASSERT(memo_.size() < kMaxStates,
                     "litmus state space unexpectedly large");

        bool terminal = true;
        for (std::size_t t = 0; t < test_.threads.size(); ++t) {
            for (std::size_t i = 0; i < test_.threads[t].size(); ++i) {
                if (s.st[t][i].performed)
                    continue;
                terminal = false;
                if (mayPerform(s, t, i)) {
                    ExecState next = s;
                    perform(next, t, i);
                    explore(next);
                }
                if (mayBind(s, t, i)) {
                    ExecState next = s;
                    InstrState &is = next.st[t][i];
                    is.bound = true;
                    is.violated = false;
                    is.bound_val = next.mem[test_.threads[t][i].var];
                    explore(next);
                }
            }
        }

        if (terminal) {
            LitmusOutcome out;
            for (std::size_t t = 0; t < test_.threads.size(); ++t)
                for (std::size_t i = 0; i < test_.threads[t].size(); ++i)
                    if (test_.threads[t][i].op == LitOp::Ld)
                        out.push_back(s.st[t][i].value);
            res_.outcomes.insert(out);
        }
    }

    static constexpr std::size_t kMaxStates = 2'000'000;

    const LitmusTest &test_;
    cpu::ConsistencyPolicy policy_;
    const ProtocolMutator *mut_;
    LitmusResult res_;
    std::unordered_set<std::string> memo_;
};

} // namespace

LitmusResult
runLitmus(const LitmusTest &test, const cpu::ConsistencyPolicy &policy,
          const ProtocolMutator *mutator)
{
    DBSIM_ASSERT(!test.threads.empty(), "litmus test has no threads");
    return LitmusExec(test, policy, mutator).run();
}

std::string
litmusOutcomeString(const LitmusOutcome &o)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < o.size(); ++i)
        os << (i ? "," : "") << o[i];
    return os.str();
}

namespace {

LitInstr ld(int var) { return {LitOp::Ld, var, 0}; }
LitInstr st(int var, int val) { return {LitOp::St, var, val}; }
LitInstr mb() { return {LitOp::Mb, 0, 0}; }
LitInstr wmb() { return {LitOp::Wmb, 0, 0}; }

} // namespace

LitmusTest
litmusMp(bool fenced)
{
    LitmusTest t;
    t.name = fenced ? "mp+fences" : "mp";
    t.num_vars = 2;
    if (fenced) {
        t.threads = {{st(0, 1), wmb(), st(1, 1)}, {ld(1), mb(), ld(0)}};
    } else {
        t.threads = {{st(0, 1), st(1, 1)}, {ld(1), ld(0)}};
    }
    return t;
}

LitmusTest
litmusSb(bool fenced)
{
    LitmusTest t;
    t.name = fenced ? "sb+fences" : "sb";
    t.num_vars = 2;
    if (fenced) {
        t.threads = {{st(0, 1), mb(), ld(1)}, {st(1, 1), mb(), ld(0)}};
    } else {
        t.threads = {{st(0, 1), ld(1)}, {st(1, 1), ld(0)}};
    }
    return t;
}

LitmusTest
litmusLb(bool fenced)
{
    LitmusTest t;
    t.name = fenced ? "lb+fences" : "lb";
    t.num_vars = 2;
    if (fenced) {
        t.threads = {{ld(0), mb(), st(1, 1)}, {ld(1), mb(), st(0, 1)}};
    } else {
        t.threads = {{ld(0), st(1, 1)}, {ld(1), st(0, 1)}};
    }
    return t;
}

LitmusTest
litmusIriw(bool fenced)
{
    LitmusTest t;
    t.name = fenced ? "iriw+fences" : "iriw";
    t.num_vars = 2;
    if (fenced) {
        t.threads = {{st(0, 1)},
                     {st(1, 1)},
                     {ld(0), mb(), ld(1)},
                     {ld(1), mb(), ld(0)}};
    } else {
        t.threads = {{st(0, 1)}, {st(1, 1)}, {ld(0), ld(1)}, {ld(1), ld(0)}};
    }
    return t;
}

} // namespace dbsim::verify
