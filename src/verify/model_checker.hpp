/**
 * @file
 * Exhaustive offline model checker for the MESI directory fabric.
 *
 * The checker drives the *real* coher::CoherenceFabric (not a
 * re-model): it builds a small machine out of model cache sites -- one
 * MESI state + data-version pair per (node, block) -- and explores, by
 * depth-first search with canonical state hashing, every interleaving
 * of the per-node request programs (reads, writes / upgrades,
 * evictions, flushes; migratory handoffs when adaptive_migratory is
 * on).  Cache hits are served locally exactly as a real cache
 * controller would (a write to an Exclusive line silently upgrades);
 * everything else goes through the fabric, so the explored transitions
 * are the fabric's own protocol paths.
 *
 * Invariants checked after every transition:
 *  - the dynamic checker's I1-I3 (the real coher::CoherenceChecker is
 *    attached in collecting mode and audited, so the offline and online
 *    checkers can never drift apart);
 *  - strict SWMR: while any node holds a block Exclusive/Modified, no
 *    other node holds any valid copy (the full-system simulator's
 *    silent write-upgrade approximation never fires here, because the
 *    model sites upgrade silently only from Exclusive);
 *  - strict directory-cache agreement: every valid copy is recorded,
 *    every recorded owner holds a strong copy (model evictions are
 *    always notified, so the fabric's silent-eviction tolerances must
 *    never be needed);
 *  - the data-value invariant: every read -- cache hit, memory
 *    service, or cache-to-cache transfer -- observes the globally most
 *    recent write's value (versions stand in for data);
 *  - deadlock/livelock freedom: every transition consumes one program
 *    operation and every operation is always enabled, so every maximal
 *    path terminates; the checker verifies all paths reach the
 *    all-programs-done state within the state budget and audits the
 *    quiesced machine once more there.
 *
 * On violation the search stops, the failing schedule is minimized by
 * greedy delta-removal (drop any operation whose removal preserves a
 * violation), and the result carries the minimal counterexample trace.
 * In panicking mode the trace is also registered with the crash-dump
 * registry (common/log.hpp) and DBSIM_PANIC is raised, so the tool and
 * any embedding test emit the counterexample through the same
 * machinery the simulation integrity layer uses.
 */

#ifndef DBSIM_VERIFY_MODEL_CHECKER_HPP
#define DBSIM_VERIFY_MODEL_CHECKER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/directory.hpp"
#include "common/mutator.hpp"

namespace dbsim::verify {

/** One protocol-level operation of a node's program. */
enum class McOp : std::uint8_t {
    Read,  ///< load: cache hit or GetS through the fabric
    Write, ///< store: hit/silent upgrade or GetX/Upgrade through the fabric
    Evict, ///< L2 replacement (writeback when the copy is Modified)
    Flush, ///< flush/WriteThrough hint (no-op unless the node owns dirty)
};

const char *mcOpName(McOp op);

/** One step: @p node performs @p op on block index @p block. */
struct McStep
{
    McOp op;
    std::uint32_t node;
    std::uint32_t block;
};

/** A model-checking configuration: the machine and the programs. */
struct McConfig
{
    std::string name;
    std::uint32_t nodes = 2;
    std::uint32_t blocks = 1;
    /** Per-node operation sequences, issued in order; all interleavings
     *  across nodes are explored. */
    std::vector<std::vector<McStep>> programs;
    coher::FabricParams fabric{};
    /** Seeded protocol bug (ProtocolBug::None for the real protocol). */
    ProtocolBug bug = ProtocolBug::None;
    /** Exploration budget (distinct states); exceeding it fails the
     *  run with exhausted = false rather than silently truncating. */
    std::uint64_t max_states = 2'000'000;
};

/** Outcome of exhaustively checking one configuration. */
struct McResult
{
    std::string config;
    bool ok = true;         ///< no invariant violation found
    bool exhausted = false; ///< the full interleaving space was explored
    std::string violation;  ///< first violation's description
    std::vector<McStep> trace; ///< minimized counterexample schedule
    std::string final_dump;    ///< machine state at the violation
    std::uint64_t states = 0;      ///< distinct states visited
    std::uint64_t transitions = 0; ///< operations applied (incl. replays)
    std::uint64_t interleavings = 0; ///< maximal paths reaching quiescence
    std::uint64_t mutation_fires = 0; ///< times the seeded bug fired

    /** The counterexample schedule, one op per line. */
    std::string traceString() const;
};

/**
 * Exhaustive DFS explorer for one McConfig.
 */
class ModelChecker
{
  public:
    /**
     * @param panic_on_violation  raise DBSIM_PANIC (after registering
     *        the counterexample as a crash dump) instead of returning
     *        the violation in the result.
     */
    explicit ModelChecker(McConfig cfg, bool panic_on_violation = false);

    /** Explore every interleaving; first violation wins. */
    McResult check();

  private:
    McConfig cfg_;
    bool panic_on_violation_;
};

/** Render @p step as e.g. "n1 write b0". */
std::string mcStepString(const McStep &step);

} // namespace dbsim::verify

#endif // DBSIM_VERIFY_MODEL_CHECKER_HPP
