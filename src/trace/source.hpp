/**
 * @file
 * Trace-source abstractions.
 *
 * A TraceSource is a pull-model stream of TraceRecords for one simulated
 * process.  Workload engines implement it by lazily generating work;
 * tests use VectorSource; LimitSource caps a stream for scaled runs.
 */

#ifndef DBSIM_TRACE_SOURCE_HPP
#define DBSIM_TRACE_SOURCE_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "trace/record.hpp"

namespace dbsim::trace {

/**
 * Abstract per-process instruction stream.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record into @p out.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceRecord &out) = 0;

    /**
     * Serialize / restore the stream position for checkpointing.  The
     * defaults throw: a System built on a non-checkpointable source
     * still runs, it just cannot save or restore checkpoints.
     */
    virtual void
    saveState(snap::Writer &) const
    {
        throw snap::SnapshotError("trace source is not checkpointable");
    }

    virtual void
    restoreState(snap::Reader &)
    {
        throw snap::SnapshotError("trace source is not checkpointable");
    }
};

/**
 * A source backed by a fixed vector of records (testing, golden traces).
 */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> recs)
        : recs_(std::move(recs)) {}

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= recs_.size())
            return false;
        out = recs_[pos_++];
        return true;
    }

    void
    saveState(snap::Writer &w) const override
    {
        w.u64(pos_); // the backing vector is construction state
    }

    void
    restoreState(snap::Reader &r) override
    {
        const std::uint64_t pos = r.u64();
        if (pos > recs_.size())
            throw snap::SnapshotError("snapshot: VectorSource position "
                                      "beyond backing vector");
        pos_ = static_cast<std::size_t>(pos);
    }

  private:
    std::vector<TraceRecord> recs_;
    std::size_t pos_ = 0;
};

/**
 * Caps an underlying source at a maximum number of records; used to scale
 * simulations down (paper section 2.3).  The cap applies to dynamic
 * instructions delivered, not to transactions.
 */
class LimitSource : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit)
        : inner_(std::move(inner)), limit_(limit) {}

    bool
    next(TraceRecord &out) override
    {
        if (delivered_ >= limit_)
            return false;
        if (!inner_->next(out))
            return false;
        ++delivered_;
        return true;
    }

    std::uint64_t delivered() const { return delivered_; }

    void
    saveState(snap::Writer &w) const override
    {
        w.u64(delivered_);
        inner_->saveState(w);
    }

    void
    restoreState(snap::Reader &r) override
    {
        delivered_ = r.u64();
        inner_->restoreState(r);
    }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t delivered_ = 0;
};

/**
 * Convenience base for generators that produce records in bursts: derive
 * and implement refill(), pushing records with emit().
 */
class GeneratingSource : public TraceSource
{
  public:
    bool
    next(TraceRecord &out) override
    {
        while (buffer_.empty()) {
            if (done_)
                return false;
            refill();
        }
        out = buffer_.front();
        buffer_.pop_front();
        return true;
    }

    /**
     * Serialize the pending burst buffer.  Derived generators chain
     * these from their overrides before their own generator state.
     */
    void
    saveState(snap::Writer &w) const override
    {
        w.u64(buffer_.size());
        for (const TraceRecord &rec : buffer_)
            saveRecord(w, rec);
        w.boolean(done_);
    }

    void
    restoreState(snap::Reader &r) override
    {
        buffer_.clear();
        const std::size_t n = r.length(28);
        for (std::size_t i = 0; i < n; ++i)
            buffer_.push_back(loadRecord(r));
        done_ = r.boolean();
    }

  protected:
    /** Generate at least one more record via emit(), or call finish(). */
    virtual void refill() = 0;

    void emit(const TraceRecord &rec) { buffer_.push_back(rec); }
    void finish() { done_ = true; }
    bool finished() const { return done_; }

  private:
    std::deque<TraceRecord> buffer_;
    bool done_ = false;
};

} // namespace dbsim::trace

#endif // DBSIM_TRACE_SOURCE_HPP
