/**
 * @file
 * Trace-source abstractions.
 *
 * A TraceSource is a pull-model stream of TraceRecords for one simulated
 * process.  Workload engines implement it by lazily generating work;
 * tests use VectorSource; LimitSource caps a stream for scaled runs.
 */

#ifndef DBSIM_TRACE_SOURCE_HPP
#define DBSIM_TRACE_SOURCE_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "trace/record.hpp"

namespace dbsim::trace {

/**
 * Abstract per-process instruction stream.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record into @p out.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceRecord &out) = 0;
};

/**
 * A source backed by a fixed vector of records (testing, golden traces).
 */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> recs)
        : recs_(std::move(recs)) {}

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= recs_.size())
            return false;
        out = recs_[pos_++];
        return true;
    }

  private:
    std::vector<TraceRecord> recs_;
    std::size_t pos_ = 0;
};

/**
 * Caps an underlying source at a maximum number of records; used to scale
 * simulations down (paper section 2.3).  The cap applies to dynamic
 * instructions delivered, not to transactions.
 */
class LimitSource : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit)
        : inner_(std::move(inner)), limit_(limit) {}

    bool
    next(TraceRecord &out) override
    {
        if (delivered_ >= limit_)
            return false;
        if (!inner_->next(out))
            return false;
        ++delivered_;
        return true;
    }

    std::uint64_t delivered() const { return delivered_; }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t delivered_ = 0;
};

/**
 * Convenience base for generators that produce records in bursts: derive
 * and implement refill(), pushing records with emit().
 */
class GeneratingSource : public TraceSource
{
  public:
    bool
    next(TraceRecord &out) override
    {
        while (buffer_.empty()) {
            if (done_)
                return false;
            refill();
        }
        out = buffer_.front();
        buffer_.pop_front();
        return true;
    }

  protected:
    /** Generate at least one more record via emit(), or call finish(). */
    virtual void refill() = 0;

    void emit(const TraceRecord &rec) { buffer_.push_back(rec); }
    void finish() { done_ = true; }
    bool finished() const { return done_; }

  private:
    std::deque<TraceRecord> buffer_;
    bool done_ = false;
};

} // namespace dbsim::trace

#endif // DBSIM_TRACE_SOURCE_HPP
