/**
 * @file
 * Binary save/load of trace-record streams.
 *
 * The on-disk format is a small header (magic, version, count) followed by
 * packed little-endian records.  Used for golden traces in tests and for
 * capturing workload-engine output for offline inspection.
 */

#ifndef DBSIM_TRACE_SERIALIZE_HPP
#define DBSIM_TRACE_SERIALIZE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace dbsim::trace {

/** Write @p recs to @p os. Throws std::runtime_error on stream failure. */
void save(std::ostream &os, const std::vector<TraceRecord> &recs);

/** Read a stream written by save(). Throws on malformed input. */
std::vector<TraceRecord> load(std::istream &is);

/** File-path convenience wrappers. */
void saveFile(const std::string &path, const std::vector<TraceRecord> &recs);
std::vector<TraceRecord> loadFile(const std::string &path);

} // namespace dbsim::trace

#endif // DBSIM_TRACE_SERIALIZE_HPP
