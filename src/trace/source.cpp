#include "trace/source.hpp"

// TraceSource is header-only today; this translation unit anchors the
// vtable for the abstract base so that typeinfo lives in one object file.

namespace dbsim::trace {
} // namespace dbsim::trace
