#include "trace/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/log.hpp"

namespace dbsim::trace {

namespace {

constexpr std::uint32_t kMagic = 0x44425452; // "DBTR"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writeScalar(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
readScalar(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw std::runtime_error("trace::load: truncated stream");
    return v;
}

} // namespace

void
save(std::ostream &os, const std::vector<TraceRecord> &recs)
{
    writeScalar(os, kMagic);
    writeScalar(os, kVersion);
    writeScalar(os, static_cast<std::uint64_t>(recs.size()));
    for (const auto &r : recs) {
        writeScalar(os, r.pc);
        writeScalar(os, r.vaddr);
        writeScalar(os, r.extra);
        writeScalar(os, static_cast<std::uint8_t>(r.op));
        writeScalar(os, r.dep1);
        writeScalar(os, r.dep2);
        writeScalar(os, static_cast<std::uint8_t>(r.taken ? 1 : 0));
    }
    if (!os)
        throw std::runtime_error("trace::save: write failure");
}

std::vector<TraceRecord>
load(std::istream &is)
{
    if (readScalar<std::uint32_t>(is) != kMagic)
        throw std::runtime_error("trace::load: bad magic");
    if (readScalar<std::uint32_t>(is) != kVersion)
        throw std::runtime_error("trace::load: unsupported version");
    const auto count = readScalar<std::uint64_t>(is);
    std::vector<TraceRecord> recs;
    recs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.pc = readScalar<Addr>(is);
        r.vaddr = readScalar<Addr>(is);
        r.extra = readScalar<std::uint64_t>(is);
        const auto op = readScalar<std::uint8_t>(is);
        if (op >= kNumOpClasses)
            throw std::runtime_error("trace::load: bad op class");
        r.op = static_cast<OpClass>(op);
        r.dep1 = readScalar<std::uint8_t>(is);
        r.dep2 = readScalar<std::uint8_t>(is);
        r.taken = readScalar<std::uint8_t>(is) != 0;
        recs.push_back(r);
    }
    return recs;
}

void
saveFile(const std::string &path, const std::vector<TraceRecord> &recs)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("trace::saveFile: cannot open " + path);
    save(os, recs);
}

std::vector<TraceRecord>
loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("trace::loadFile: cannot open " + path);
    return load(is);
}

} // namespace dbsim::trace
