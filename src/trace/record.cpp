#include "trace/record.hpp"

#include <cstdio>

namespace dbsim::trace {

bool
isMemory(OpClass op)
{
    switch (op) {
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::LockAcquire:
      case OpClass::LockRelease:
      case OpClass::Prefetch:
      case OpClass::PrefetchExcl:
      case OpClass::Flush:
        return true;
      default:
        return false;
    }
}

bool
isLoad(OpClass op)
{
    return op == OpClass::Load || op == OpClass::LockAcquire;
}

bool
isStore(OpClass op)
{
    return op == OpClass::Store || op == OpClass::LockRelease;
}

bool
isBranch(OpClass op)
{
    switch (op) {
      case OpClass::BranchCond:
      case OpClass::BranchJmp:
      case OpClass::BranchCall:
      case OpClass::BranchRet:
        return true;
      default:
        return false;
    }
}

bool
isHint(OpClass op)
{
    return op == OpClass::Prefetch || op == OpClass::PrefetchExcl ||
           op == OpClass::Flush;
}

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:       return "IntAlu";
      case OpClass::FpAlu:        return "FpAlu";
      case OpClass::Load:         return "Load";
      case OpClass::Store:        return "Store";
      case OpClass::BranchCond:   return "BranchCond";
      case OpClass::BranchJmp:    return "BranchJmp";
      case OpClass::BranchCall:   return "BranchCall";
      case OpClass::BranchRet:    return "BranchRet";
      case OpClass::MemBarrier:   return "MemBarrier";
      case OpClass::WriteBarrier: return "WriteBarrier";
      case OpClass::LockAcquire:  return "LockAcquire";
      case OpClass::LockRelease:  return "LockRelease";
      case OpClass::SyscallBlock: return "SyscallBlock";
      case OpClass::Prefetch:     return "Prefetch";
      case OpClass::PrefetchExcl: return "PrefetchExcl";
      case OpClass::Flush:        return "Flush";
    }
    return "?";
}

std::string
toString(const TraceRecord &rec)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-12s pc=%#llx va=%#llx extra=%llu d1=%u d2=%u t=%d",
                  opClassName(rec.op),
                  static_cast<unsigned long long>(rec.pc),
                  static_cast<unsigned long long>(rec.vaddr),
                  static_cast<unsigned long long>(rec.extra),
                  rec.dep1, rec.dep2, rec.taken ? 1 : 0);
    return buf;
}

} // namespace dbsim::trace
