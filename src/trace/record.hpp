/**
 * @file
 * The instruction trace record consumed by the processor models.
 *
 * This is the analogue of the ATOM-derived Alpha traces in the paper: a
 * per-process stream of dynamic instructions annotated with memory
 * addresses, register-dependence information, branch outcomes, and the
 * higher-level synchronization / blocking-system-call markers the
 * simulator uses to drive scheduling and lock modeling (paper section 2.2).
 */

#ifndef DBSIM_TRACE_RECORD_HPP
#define DBSIM_TRACE_RECORD_HPP

#include <cstdint>
#include <string>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::trace {

/**
 * Dynamic-instruction class.  The processor model maps these onto
 * functional-unit demands and memory-system actions.
 */
enum class OpClass : std::uint8_t {
    IntAlu,       ///< integer arithmetic (uses an integer ALU)
    FpAlu,        ///< floating-point operation (uses an FP unit)
    Load,         ///< memory load (uses an address-generation unit)
    Store,        ///< memory store (uses an address-generation unit)
    BranchCond,   ///< conditional branch (hybrid PA/g predictor)
    BranchJmp,    ///< unconditional jump / indirect branch (BTB)
    BranchCall,   ///< call (BTB + pushes return-address stack)
    BranchRet,    ///< return (pops return-address stack)
    MemBarrier,   ///< Alpha MB: full memory fence
    WriteBarrier, ///< Alpha WMB: write fence
    LockAcquire,  ///< annotated lock acquire (RMW on vaddr, may spin)
    LockRelease,  ///< annotated lock release (store to vaddr)
    SyscallBlock, ///< blocking system call; extra = I/O latency in cycles
    Prefetch,     ///< software prefetch hint (non-binding, shared)
    PrefetchExcl, ///< software prefetch-exclusive hint
    Flush,        ///< flush / WriteThrough hint: sharing writeback of vaddr
};

/** Number of distinct OpClass values. */
inline constexpr std::size_t kNumOpClasses = 16;

/** True for classes that carry a data memory address. */
bool isMemory(OpClass op);

/** True for loads and load-like sync reads. */
bool isLoad(OpClass op);

/** True for stores and store-like sync writes. */
bool isStore(OpClass op);

/** True for all branch classes. */
bool isBranch(OpClass op);

/** True for the non-binding software hint classes. */
bool isHint(OpClass op);

/** Human-readable class name. */
const char *opClassName(OpClass op);

/**
 * One dynamic instruction.
 *
 * Dependence encoding: dep1/dep2 give the distance, in dynamic
 * instructions, backwards to the producers of this instruction's source
 * operands (0 = no dependence / producer too far back to matter).  For a
 * load, dep1 is the address-generation dependence; for a store, dep1 is
 * the address and dep2 the data dependence.  The out-of-order core uses
 * these to build its wakeup graph; the in-order core stalls on them.
 */
struct TraceRecord
{
    Addr pc = 0;             ///< virtual PC of the instruction
    Addr vaddr = kNoAddr;    ///< data virtual address (memory ops / hints)
    std::uint64_t extra = 0; ///< branch target, or syscall latency (cycles)
    OpClass op = OpClass::IntAlu;
    std::uint8_t dep1 = 0;   ///< distance to first source producer
    std::uint8_t dep2 = 0;   ///< distance to second source producer
    bool taken = false;      ///< conditional-branch outcome

    bool operator==(const TraceRecord &) const = default;
};

/** Compact single-line rendering, for debugging and golden tests. */
std::string toString(const TraceRecord &rec);

/// @{ Checkpoint encoding of a TraceRecord (field-by-field; never memcpy).
inline void
saveRecord(snap::Writer &w, const TraceRecord &rec)
{
    w.u64(rec.pc);
    w.u64(rec.vaddr);
    w.u64(rec.extra);
    w.u8(static_cast<std::uint8_t>(rec.op));
    w.u8(rec.dep1);
    w.u8(rec.dep2);
    w.boolean(rec.taken);
}

inline TraceRecord
loadRecord(snap::Reader &r)
{
    TraceRecord rec;
    rec.pc = r.u64();
    rec.vaddr = r.u64();
    rec.extra = r.u64();
    rec.op = static_cast<OpClass>(r.u8());
    rec.dep1 = r.u8();
    rec.dep2 = r.u8();
    rec.taken = r.boolean();
    return rec;
}
/// @}

} // namespace dbsim::trace

#endif // DBSIM_TRACE_RECORD_HPP
