#include "coherence/directory.hpp"

#include <bit>

#include "coherence/checker.hpp"
#include "common/log.hpp"

namespace dbsim::coher {

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::L1Hit:      return "L1Hit";
      case AccessClass::L2Hit:      return "L2Hit";
      case AccessClass::LocalMem:   return "LocalMem";
      case AccessClass::RemoteMem:  return "RemoteMem";
      case AccessClass::RemoteDirty:return "RemoteDirty";
    }
    return "?";
}

CoherenceFabric::CoherenceFabric(std::uint32_t num_nodes,
                                 FabricParams params,
                                 net::MeshParams mesh_params)
    : num_nodes_(num_nodes), params_(params), mesh_(num_nodes, mesh_params),
      res_(num_nodes), sites_(num_nodes, nullptr)
{
    if (num_nodes == 0 || num_nodes > 32)
        DBSIM_FATAL("fabric supports 1..32 nodes");
}

void
CoherenceFabric::attachSite(std::uint32_t node, CacheSite *site)
{
    DBSIM_ASSERT(node < num_nodes_, "bad node id");
    sites_[node] = site;
}

bool
CoherenceFabric::cached(Addr block) const
{
    auto it = dir_.find(block);
    if (it == dir_.end())
        return false;
    return it->second.owner >= 0 || it->second.sharers != 0;
}

DirSnapshot
CoherenceFabric::dirState(Addr block) const
{
    auto it = dir_.find(block);
    if (it == dir_.end())
        return {};
    return {true, it->second.sharers, it->second.owner,
            it->second.last_writer};
}

std::size_t
CoherenceFabric::dirCachedEntries() const
{
    std::size_t n = 0;
    // dbsim-analyze: allow(determinism-unordered-iteration) -- pure
    // count; the result is independent of traversal order.
    for (const auto &[block, e] : dir_)
        if (e.owner >= 0 || e.sharers != 0)
            ++n;
    return n;
}

FabricResult
CoherenceFabric::read(std::uint32_t node, Addr block, std::uint32_t home,
                      Cycles now, Addr pc)
{
    DBSIM_ASSERT(node < num_nodes_ && home < num_nodes_, "bad node/home");
    DirEntry &e = entry(block);

    // Requester bus, request to home, directory lookup.
    Cycles t = res_[node].bus.acquire(now, params_.bus_hold);
    t = mesh_.control(node, home, t);
    t = res_[home].dir.acquire(t, params_.dir_hold);

    AccessClass cls;
    if (e.owner >= 0 && static_cast<std::uint32_t>(e.owner) != node) {
        const auto owner = static_cast<std::uint32_t>(e.owner);
        const mem::CoherState ost =
            sites_[owner] ? sites_[owner]->siteState(block)
                          : mem::CoherState::Invalid;
        if (ost == mem::CoherState::Modified) {
            // Cache-to-cache transfer: forward to owner, owner supplies
            // the line to the requester and writes back to memory
            // (downgrading to Shared).
            t = mesh_.control(home, owner, t);
            t = res_[owner].bus.acquire(t, params_.bus_hold);
            t += params_.owner_l2_hold;
            if (!(mutator_ &&
                  mutator_->armed(verify::ProtocolBug::MissingDowngrade)))
                sites_[owner]->siteDowngrade(block);
            t = mesh_.data(owner, node, t);
            t += params_.c2c_extra;
            const bool was_migratory = migratory_.isMigratory(block);
            if (params_.adaptive_migratory && was_migratory) {
                // Migratory handoff: pass exclusive (dirty) ownership to
                // the reader; the old owner invalidates its copy.
                sites_[owner]->siteInvalidate(block);
                e.sharers = 0;
                e.owner = static_cast<int>(node);
                ++stats_.migratory_handoffs;
            } else {
                e.sharers = (1u << owner) | (1u << node);
                e.owner = -1;
            }
            cls = AccessClass::RemoteDirty;
            ++stats_.reads_dirty;
            migratory_.observeDirtyRead(block, pc);
            if (was_migratory && params_.migratory_read_factor != 1.0) {
                // Bound experiment: migratory reads serviced at
                // memory-like latency (paper section 4.2).
                t = now + static_cast<Cycles>(
                              static_cast<double>(t - now) *
                              params_.migratory_read_factor);
            }
        } else if (ost == mem::CoherState::Exclusive) {
            // Clean-exclusive: downgrade silently, service from memory.
            sites_[owner]->siteDowngrade(block);
            t = res_[home].mem.acquire(t, params_.dram_hold);
            t = mesh_.data(home, node, t);
            e.sharers = (1u << owner) | (1u << node);
            e.owner = -1;
            cls = home == node ? AccessClass::LocalMem
                               : AccessClass::RemoteMem;
        } else {
            // Stale directory info (silent eviction): treat as uncached.
            e.owner = -1;
            e.sharers = 1u << node;
            t = res_[home].mem.acquire(t, params_.dram_hold);
            t = mesh_.data(home, node, t);
            e.owner = node; // grant Exclusive again
            e.sharers = 0;
            cls = home == node ? AccessClass::LocalMem
                               : AccessClass::RemoteMem;
        }
    } else if (e.owner < 0 && e.sharers != 0) {
        // Shared at the directory: service from memory, add sharer.
        t = res_[home].mem.acquire(t, params_.dram_hold);
        t = mesh_.data(home, node, t);
        if (!(mutator_ && mutator_->armed(verify::ProtocolBug::LostSharerBit)))
            e.sharers |= 1u << node;
        cls = home == node ? AccessClass::LocalMem : AccessClass::RemoteMem;
    } else {
        // Uncached (or the requester itself was the stale owner):
        // grant Exclusive.
        t = res_[home].mem.acquire(t, params_.dram_hold);
        t = mesh_.data(home, node, t);
        e.owner = static_cast<int>(node);
        e.sharers = 0;
        cls = home == node ? AccessClass::LocalMem : AccessClass::RemoteMem;
    }

    t += params_.resp_overhead;
    if (cls == AccessClass::LocalMem)
        ++stats_.reads_local;
    else if (cls == AccessClass::RemoteMem)
        ++stats_.reads_remote;
    mem::CoherState grant = mem::CoherState::Shared;
    if (e.owner >= 0 && static_cast<std::uint32_t>(e.owner) == node) {
        // Exclusive grant; a migratory handoff carries dirty data.
        grant = cls == AccessClass::RemoteDirty ? mem::CoherState::Modified
                                                : mem::CoherState::Exclusive;
    }
    if (checker_)
        checker_->noteTransaction(block, "read");
    return {t, cls, grant};
}

FabricResult
CoherenceFabric::write(std::uint32_t node, Addr block, std::uint32_t home,
                       Cycles now, Addr pc)
{
    DBSIM_ASSERT(node < num_nodes_ && home < num_nodes_, "bad node/home");
    DirEntry &e = entry(block);

    const std::uint32_t my_bit = 1u << node;
    const std::uint32_t copies =
        (e.owner >= 0 ? 1u : 0u) +
        static_cast<std::uint32_t>(std::popcount(e.sharers));
    const bool shared_write =
        (e.owner >= 0 && static_cast<std::uint32_t>(e.owner) != node) ||
        (e.sharers & ~my_bit) != 0;

    migratory_.observeWrite(block, copies, e.last_writer, node,
                            shared_write, pc);

    Cycles t = res_[node].bus.acquire(now, params_.bus_hold);
    t = mesh_.control(node, home, t);
    t = res_[home].dir.acquire(t, params_.dir_hold);

    AccessClass cls;
    if (e.owner >= 0 && static_cast<std::uint32_t>(e.owner) != node) {
        const auto owner = static_cast<std::uint32_t>(e.owner);
        const mem::CoherState ost =
            sites_[owner] ? sites_[owner]->siteState(block)
                          : mem::CoherState::Invalid;
        if (ost == mem::CoherState::Modified ||
            ost == mem::CoherState::Exclusive) {
            // Forward; owner transfers ownership and invalidates.
            t = mesh_.control(home, owner, t);
            t = res_[owner].bus.acquire(t, params_.bus_hold);
            t += params_.owner_l2_hold;
            const bool was_dirty = ost == mem::CoherState::Modified;
            sites_[owner]->siteInvalidate(block);
            t = mesh_.data(owner, node, t);
            if (was_dirty) {
                t += params_.c2c_extra;
                cls = AccessClass::RemoteDirty;
                ++stats_.writes_dirty;
            } else {
                cls = home == node ? AccessClass::LocalMem
                                   : AccessClass::RemoteMem;
            }
        } else {
            // Stale owner: service from memory.
            t = res_[home].mem.acquire(t, params_.dram_hold);
            t = mesh_.data(home, node, t);
            cls = home == node ? AccessClass::LocalMem
                               : AccessClass::RemoteMem;
        }
    } else if ((e.sharers & ~my_bit) != 0) {
        // Invalidate all other sharers.
        Cycles acks = t;
        bool dropped_one = false;
        for (std::uint32_t n = 0; n < num_nodes_; ++n) {
            if (n == node || !(e.sharers & (1u << n)))
                continue;
            const Cycles arrive = mesh_.control(home, n, t);
            if (!dropped_one && mutator_ &&
                mutator_->armed(verify::ProtocolBug::DroppedInvalidation)) {
                // Seeded bug: this sharer never hears the invalidation
                // (its directory bit is still cleared below).
                dropped_one = true;
            } else if (sites_[n]) {
                sites_[n]->siteInvalidate(block);
            }
            const Cycles ack = mesh_.control(n, home, arrive);
            if (ack > acks)
                acks = ack;
            ++stats_.invalidations_sent;
        }
        if (e.sharers & my_bit) {
            // Upgrade: no data transfer, just the ownership grant.
            t = mesh_.control(home, node, acks);
            ++stats_.upgrades;
        } else {
            const Cycles mem_done =
                res_[home].mem.acquire(t, params_.dram_hold);
            const Cycles start = mem_done > acks ? mem_done : acks;
            t = mesh_.data(home, node, start);
        }
        cls = home == node ? AccessClass::LocalMem : AccessClass::RemoteMem;
    } else if (e.sharers & my_bit) {
        // Sole sharer upgrading: grant immediately.
        t = mesh_.control(home, node, t);
        ++stats_.upgrades;
        cls = home == node ? AccessClass::LocalMem : AccessClass::RemoteMem;
    } else {
        // Uncached, or requester is already the (stale) owner.
        t = res_[home].mem.acquire(t, params_.dram_hold);
        t = mesh_.data(home, node, t);
        cls = home == node ? AccessClass::LocalMem : AccessClass::RemoteMem;
    }

    // Seeded StaleOwner bug: the directory forgets to record the new
    // owner, so the writer's Modified copy contradicts (or is unknown
    // to) the directory.
    if (!(mutator_ && mutator_->armed(verify::ProtocolBug::StaleOwner)))
        e.owner = static_cast<int>(node);
    e.sharers = 0;
    e.last_writer = static_cast<int>(node);

    t += params_.resp_overhead;
    if (cls == AccessClass::LocalMem)
        ++stats_.writes_local;
    else if (cls == AccessClass::RemoteMem)
        ++stats_.writes_remote;
    if (checker_)
        checker_->noteTransaction(block, "write");
    return {t, cls, mem::CoherState::Modified};
}

void
CoherenceFabric::evict(std::uint32_t node, Addr block, std::uint32_t home,
                       bool dirty, Cycles now)
{
    auto it = dir_.find(block);
    if (it == dir_.end())
        return;
    DirEntry &e = it->second;
    if (e.owner >= 0 && static_cast<std::uint32_t>(e.owner) == node) {
        e.owner = -1;
        if (dirty) {
            // Writeback occupies the node bus, network, and home memory.
            Cycles t = res_[node].bus.acquire(now, params_.bus_hold);
            t = mesh_.data(node, home, t);
            res_[home].mem.acquire(t, params_.dram_hold);
            ++stats_.writebacks;
        }
    } else {
        e.sharers &= ~(1u << node);
    }
    if (checker_)
        checker_->noteTransaction(block, "evict");
}

Cycles
CoherenceFabric::flush(std::uint32_t node, Addr block, std::uint32_t home,
                       Cycles now)
{
    auto it = dir_.find(block);
    if (it == dir_.end())
        return kNever;
    DirEntry &e = it->second;
    if (e.owner < 0 || static_cast<std::uint32_t>(e.owner) != node)
        return kNever;
    if (!sites_[node] ||
        sites_[node]->siteState(block) != mem::CoherState::Modified) {
        return kNever;
    }

    // Unsolicited sharing writeback: memory is updated.  By default the
    // flushing node keeps a clean Shared copy so its own subsequent
    // reads still hit; the invalidating variant is an ablation knob.
    if (params_.flush_invalidates) {
        sites_[node]->siteInvalidate(block);
        e.owner = -1;
        e.sharers = 0;
    } else {
        sites_[node]->siteDowngrade(block);
        e.owner = -1;
        e.sharers = 1u << node;
    }

    Cycles t = res_[node].bus.acquire(now, params_.bus_hold);
    t = mesh_.data(node, home, t);
    t = res_[home].dir.acquire(t, params_.dir_hold);
    t = res_[home].mem.acquire(t, params_.dram_hold);
    ++stats_.flushes;
    if (checker_)
        checker_->noteTransaction(block, "flush");
    return t;
}

} // namespace dbsim::coher
