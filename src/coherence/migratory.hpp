/**
 * @file
 * Migratory-data detection and characterization.
 *
 * Implements the heuristic from the paper (section 4.2, footnote 2,
 * after Cox & Fowler / Stenstrom et al.): a cache line is marked
 * migratory when the directory receives a request for exclusive
 * ownership, the number of cached copies is two, and the last writer is
 * not the requester.  Once marked, the line's subsequent communication
 * misses are attributed to migratory sharing, and per-line / per-PC
 * concentration statistics are kept so the characterization numbers in
 * section 4.2 can be reproduced.
 */

#ifndef DBSIM_COHERENCE_MIGRATORY_HPP
#define DBSIM_COHERENCE_MIGRATORY_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::coher {

/** Aggregate migratory-sharing statistics. */
struct MigratoryStats
{
    std::uint64_t shared_writes = 0;        ///< GetX/upgrade to lines with prior sharers
    std::uint64_t migratory_writes = 0;     ///< ... of which to migratory lines
    std::uint64_t dirty_reads = 0;          ///< read misses serviced cache-to-cache
    std::uint64_t migratory_dirty_reads = 0;///< ... of which to migratory lines
    std::uint64_t lines_marked = 0;         ///< distinct lines ever marked

    double
    writeFraction() const
    {
        return shared_writes
                   ? double(migratory_writes) / double(shared_writes) : 0.0;
    }

    double
    dirtyReadFraction() const
    {
        return dirty_reads
                   ? double(migratory_dirty_reads) / double(dirty_reads) : 0.0;
    }
};

/**
 * Detector + characterization bookkeeping, owned by the coherence fabric.
 */
class MigratoryDetector
{
  public:
    /**
     * Observe a request for exclusive ownership.
     *
     * @param block        line address
     * @param copies       cached copies at the time of the request
     * @param last_writer  node that last wrote the line (or none)
     * @param requester    requesting node
     * @param shared       true if the line had other sharers (a "shared
     *                     write access")
     * @param pc           PC of the instruction causing the request
     * @return true iff the line is (now) marked migratory.
     */
    bool observeWrite(Addr block, std::uint32_t copies, int last_writer,
                      std::uint32_t requester, bool shared, Addr pc);

    /**
     * Observe a read miss serviced by a cache-to-cache transfer.
     * @return true iff the line is marked migratory.
     */
    bool observeDirtyRead(Addr block, Addr pc);

    /** True iff @p block has been marked migratory. */
    bool isMigratory(Addr block) const { return migratory_.count(block) != 0; }

    const MigratoryStats &stats() const { return stats_; }

    /**
     * Concentration of migratory write misses over lines: the smallest
     * fraction of migratory lines that accounts for @p frac of all
     * migratory write misses (paper: 3% of lines cover 70%).
     */
    double lineConcentration(double frac) const;

    /**
     * Concentration of migratory references over generating PCs: the
     * smallest fraction of PCs accounting for @p frac of migratory
     * references (paper: <10% of instructions cover 75%).
     */
    double pcConcentration(double frac) const;

    /** Number of distinct migratory lines observed. */
    std::size_t migratoryLines() const { return migratory_.size(); }

    /** Number of distinct PCs that ever generated a migratory reference. */
    std::size_t migratoryPcs() const { return pc_refs_.size(); }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(migratory_.size());
        for (Addr b : snap::sortedKeys(migratory_))
            w.u64(b);
        w.u64(line_write_refs_.size());
        for (Addr b : snap::sortedKeys(line_write_refs_)) {
            w.u64(b);
            w.u64(line_write_refs_.at(b));
        }
        w.u64(pc_refs_.size());
        for (Addr pc : snap::sortedKeys(pc_refs_)) {
            w.u64(pc);
            w.u64(pc_refs_.at(pc));
        }
        w.u64(stats_.shared_writes);
        w.u64(stats_.migratory_writes);
        w.u64(stats_.dirty_reads);
        w.u64(stats_.migratory_dirty_reads);
        w.u64(stats_.lines_marked);
    }

    void
    restoreState(snap::Reader &r)
    {
        migratory_.clear();
        line_write_refs_.clear();
        pc_refs_.clear();
        const std::size_t nm = r.length(8);
        for (std::size_t i = 0; i < nm; ++i)
            migratory_.insert(r.u64());
        const std::size_t nl = r.length(16);
        for (std::size_t i = 0; i < nl; ++i) {
            const Addr b = r.u64();
            line_write_refs_[b] = r.u64();
        }
        const std::size_t np = r.length(16);
        for (std::size_t i = 0; i < np; ++i) {
            const Addr pc = r.u64();
            pc_refs_[pc] = r.u64();
        }
        stats_.shared_writes = r.u64();
        stats_.migratory_writes = r.u64();
        stats_.dirty_reads = r.u64();
        stats_.migratory_dirty_reads = r.u64();
        stats_.lines_marked = r.u64();
    }

  private:
    static double concentration(std::vector<std::uint64_t> counts,
                                double frac);

    std::unordered_set<Addr> migratory_;
    std::unordered_map<Addr, std::uint64_t> line_write_refs_;
    std::unordered_map<Addr, std::uint64_t> pc_refs_;
    MigratoryStats stats_;
};

} // namespace dbsim::coher

#endif // DBSIM_COHERENCE_MIGRATORY_HPP
