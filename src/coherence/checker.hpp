/**
 * @file
 * Opt-in coherence invariant checker (part of the simulation integrity
 * layer).
 *
 * The checker audits directory-vs-cache state agreement for every block
 * touched by a directory transaction.  The fabric records the blocks it
 * transacts on (noteTransaction); the System drains that queue once per
 * run-loop iteration (auditPending), after the requesting node has
 * installed its granted line, so the audited state is settled.
 *
 * Checked invariants (chosen so that the model's documented
 * approximations do not trip them -- see DESIGN.md "Coherence checker"):
 *
 *  I1. Directory-entry consistency: the owner index is a valid node,
 *      and an owned entry has no sharer bits set.
 *  I2. No silent strong copies: a node whose hierarchy holds the block
 *      Exclusive or Modified must be known to the directory (as owner
 *      or sharer).  A strong copy the directory cannot see could never
 *      be invalidated, i.e. would be unbounded staleness.
 *  I3. Owned exclusivity (SWMR at the directory): while the directory
 *      records an owner, no *other* node's hierarchy may hold the block
 *      Exclusive or Modified.
 *
 * Note the model's silent write-upgrade approximation (a store
 * coalescing into an outstanding read miss upgrades the filled line to
 * Modified without a fabric transaction, see DESIGN.md) means several
 * *recorded sharers* may transiently hold Modified copies while the
 * directory believes the line is merely shared; the invariants above are
 * exactly the strongest set that approximation preserves.
 *
 * Enable via sim::SystemParams::check_coherence or DBSIM_CHECK=1 in the
 * environment; every tier-1 test runs with the checker on.
 */

#ifndef DBSIM_COHERENCE_CHECKER_HPP
#define DBSIM_COHERENCE_CHECKER_HPP

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::coher {

class CoherenceFabric;

/** Aggregate checker statistics. */
struct CheckerStats
{
    std::uint64_t transactions = 0; ///< fabric transactions observed
    std::uint64_t audits = 0;       ///< block audits performed
    std::uint64_t violations = 0;   ///< invariant failures detected
    std::uint64_t violating_blocks = 0; ///< distinct blocks with violations
};

/**
 * Audits SWMR / directory-vs-cache agreement after directory
 * transactions and reports violations.
 *
 * In panicking mode (default) a violation raises DBSIM_PANIC -- which
 * runs the registered crash dumps and aborts, or throws
 * SimInvariantError under PanicThrowGuard.  In collecting mode the
 * violation text is recorded (capped) for later inspection; tests use
 * this to assert on specific corruptions.
 */
class CoherenceChecker
{
  public:
    explicit CoherenceChecker(bool panic_on_violation = true)
        : panic_on_violation_(panic_on_violation)
    {
    }

    /** Record that the fabric transacted on @p block (called by fabric). */
    void
    noteTransaction(Addr block, const char *op)
    {
        ++stats_.transactions;
        pending_.emplace_back(block, op);
    }

    /** Audit every block recorded since the last call. */
    void auditPending(CoherenceFabric &fabric, Cycles now);

    /** Audit one block immediately. */
    void auditBlock(CoherenceFabric &fabric, Addr block, const char *op,
                    Cycles now);

    const CheckerStats &stats() const { return stats_; }

    /** Violation descriptions (collecting mode; capped at kMaxRecorded). */
    const std::vector<std::string> &violations() const { return violations_; }

    /**
     * The distinct blocks that have had violations (uncapped), in
     * ascending address order.  The tracking set is unordered; sorting
     * here keeps every diagnostic path that renders the block list
     * bitwise-deterministic (DESIGN.md §5c).
     */
    std::vector<Addr> violatingBlocks() const;

    static constexpr std::size_t kMaxRecorded = 32;

    /**
     * Checkpoints are taken at run-loop boundaries, after auditPending
     * drained the transaction queue, so pending_ (which holds
     * string-literal pointers) is never serialized.
     */
    void
    saveState(snap::Writer &w) const
    {
        if (!pending_.empty())
            throw snap::SnapshotError("snapshot: checker has undrained "
                                      "transactions");
        w.u64(stats_.transactions);
        w.u64(stats_.audits);
        w.u64(stats_.violations);
        w.u64(stats_.violating_blocks);
        w.u64(violations_.size());
        for (const std::string &v : violations_)
            w.str(v);
        w.u64(violating_blocks_.size());
        for (Addr b : snap::sortedKeys(violating_blocks_))
            w.u64(b);
    }

    void
    restoreState(snap::Reader &r)
    {
        pending_.clear();
        stats_.transactions = r.u64();
        stats_.audits = r.u64();
        stats_.violations = r.u64();
        stats_.violating_blocks = r.u64();
        violations_.clear();
        const std::size_t nv = r.length(8);
        for (std::size_t i = 0; i < nv; ++i)
            violations_.push_back(r.str());
        violating_blocks_.clear();
        const std::size_t nb = r.length(8);
        for (std::size_t i = 0; i < nb; ++i)
            violating_blocks_.insert(r.u64());
    }

  private:
    void reportViolation(Addr block, const std::string &what);

    bool panic_on_violation_;
    std::vector<std::pair<Addr, const char *>> pending_;
    std::vector<std::string> violations_;
    std::unordered_set<Addr> violating_blocks_;
    CheckerStats stats_;
};

} // namespace dbsim::coher

#endif // DBSIM_COHERENCE_CHECKER_HPP
