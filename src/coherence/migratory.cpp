#include "coherence/migratory.hpp"

#include <algorithm>

namespace dbsim::coher {

bool
MigratoryDetector::observeWrite(Addr block, std::uint32_t copies,
                                int last_writer, std::uint32_t requester,
                                bool shared, Addr pc)
{
    if (shared)
        ++stats_.shared_writes;

    // Paper heuristic: exclusive request, exactly two cached copies, and
    // the last writer is a different node.
    if (copies == 2 && last_writer >= 0 &&
        static_cast<std::uint32_t>(last_writer) != requester) {
        if (migratory_.insert(block).second)
            ++stats_.lines_marked;
    }

    const bool mig = isMigratory(block);
    if (mig) {
        if (shared)
            ++stats_.migratory_writes;
        ++line_write_refs_[block];
        ++pc_refs_[pc];
    }
    return mig;
}

bool
MigratoryDetector::observeDirtyRead(Addr block, Addr pc)
{
    ++stats_.dirty_reads;
    const bool mig = isMigratory(block);
    if (mig) {
        ++stats_.migratory_dirty_reads;
        ++pc_refs_[pc];
    }
    return mig;
}

double
MigratoryDetector::concentration(std::vector<std::uint64_t> counts,
                                 double frac)
{
    if (counts.empty())
        return 0.0;
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    const auto target = static_cast<std::uint64_t>(frac * double(total));
    std::uint64_t acc = 0;
    std::size_t used = 0;
    for (auto c : counts) {
        acc += c;
        ++used;
        if (acc >= target)
            break;
    }
    return double(used) / double(counts.size());
}

double
MigratoryDetector::lineConcentration(double frac) const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(line_write_refs_.size());
    // dbsim-analyze: allow(determinism-unordered-iteration) --
    // concentration() sorts the collected counts, so the result is
    // independent of traversal order.
    for (const auto &[line, n] : line_write_refs_)
        counts.push_back(n);
    return concentration(std::move(counts), frac);
}

double
MigratoryDetector::pcConcentration(double frac) const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(pc_refs_.size());
    // dbsim-analyze: allow(determinism-unordered-iteration) --
    // concentration() sorts the collected counts, so the result is
    // independent of traversal order.
    for (const auto &[pc, n] : pc_refs_)
        counts.push_back(n);
    return concentration(std::move(counts), frac);
}

} // namespace dbsim::coher
