#include "coherence/checker.hpp"

#include <algorithm>
#include <sstream>

#include "coherence/directory.hpp"
#include "common/log.hpp"
#include "memory/cache.hpp"

namespace dbsim::coher {

namespace {

bool
isStrong(mem::CoherState s)
{
    return s == mem::CoherState::Exclusive || s == mem::CoherState::Modified;
}

} // namespace

void
CoherenceChecker::auditPending(CoherenceFabric &fabric, Cycles now)
{
    // Swap out the queue first: a panic thrown mid-audit (and caught by
    // a test) must not leave stale work behind.
    std::vector<std::pair<Addr, const char *>> work;
    work.swap(pending_);
    for (const auto &[block, op] : work)
        auditBlock(fabric, block, op, now);
}

void
CoherenceChecker::auditBlock(CoherenceFabric &fabric, Addr block,
                             const char *op, Cycles now)
{
    ++stats_.audits;
    const DirSnapshot d = fabric.dirState(block);
    const std::uint32_t nodes = fabric.numNodes();

    auto describe = [&](const std::string &what) {
        std::ostringstream os;
        os << "coherence invariant violated after " << op << " of block 0x"
           << std::hex << block << std::dec << " at cycle " << now << ": "
           << what << " (dir owner=" << d.owner << " sharers=0x" << std::hex
           << d.sharers << std::dec << "; site states:";
        for (std::uint32_t n = 0; n < nodes; ++n) {
            CacheSite *site = fabric.site(n);
            os << " n" << n << "="
               << (site ? mem::coherStateName(site->siteState(block)) : "?");
        }
        os << ")";
        return os.str();
    };

    // I1: directory-entry internal consistency.
    if (d.owner >= static_cast<int>(nodes) || d.owner < -1) {
        reportViolation(block, describe("owner index out of range"));
        return;
    }
    if (d.owner >= 0 && d.sharers != 0) {
        reportViolation(block,
                        describe("owned entry still has sharer bits"));
        return;
    }
    if (nodes < 32 && (d.sharers >> nodes) != 0) {
        reportViolation(block,
                        describe("sharer bits for nonexistent nodes"));
        return;
    }

    for (std::uint32_t n = 0; n < nodes; ++n) {
        CacheSite *site = fabric.site(n);
        if (!site)
            continue;
        const mem::CoherState st = site->siteState(block);
        if (!isStrong(st))
            continue;
        // I3: while an owner is recorded, nobody else may be strong.
        if (d.owner >= 0 && d.owner != static_cast<int>(n)) {
            reportViolation(block, describe(
                "node " + std::to_string(n) +
                " holds an E/M copy while node " + std::to_string(d.owner) +
                " is the recorded owner"));
            return;
        }
        // I2: every E/M copy must be visible to the directory.  (A
        // recorded *sharer* holding M is tolerated: that is the model's
        // silent write-upgrade approximation, see the header comment.)
        const bool recorded =
            d.owner == static_cast<int>(n) || (d.sharers & (1u << n)) != 0;
        if (!recorded) {
            reportViolation(block,
                            describe("node " + std::to_string(n) +
                                     " holds an E/M copy unknown to the "
                                     "directory"));
            return;
        }
    }
}

std::vector<Addr>
CoherenceChecker::violatingBlocks() const
{
    std::vector<Addr> blocks;
    blocks.reserve(violating_blocks_.size());
    // dbsim-analyze: allow(determinism-unordered-iteration) -- collected
    // into a vector and sorted immediately below.
    for (const Addr b : violating_blocks_)
        blocks.push_back(b);
    std::sort(blocks.begin(), blocks.end());
    return blocks;
}

void
CoherenceChecker::reportViolation(Addr block, const std::string &what)
{
    ++stats_.violations;
    if (violating_blocks_.insert(block).second)
        ++stats_.violating_blocks;
    if (panic_on_violation_)
        DBSIM_PANIC(what);
    if (violations_.size() < kMaxRecorded)
        violations_.push_back(what);
}

} // namespace dbsim::coher
