/**
 * @file
 * Invalidation-based four-state MESI directory coherence fabric for the
 * CC-NUMA system (paper section 2.4).
 *
 * One CoherenceFabric instance serves the whole machine.  Each node's L2
 * miss enters the fabric, which walks the protocol path -- requester bus,
 * network, home directory, memory or remote owner -- acquiring timing
 * Resources along the way, updates the directory and the remote caches'
 * states synchronously, and returns the completion time plus the miss
 * class (local / remote / cache-to-cache "dirty").  The migratory
 * detector observes every exclusive request and dirty read.
 */

#ifndef DBSIM_COHERENCE_DIRECTORY_HPP
#define DBSIM_COHERENCE_DIRECTORY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coherence/migratory.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "interconnect/network.hpp"
#include "memory/cache.hpp"
#include "common/mutator.hpp"

namespace dbsim::coher {

class CoherenceChecker;

/** Read-only view of one directory entry (for the invariant checker
 *  and diagnostics). */
struct DirSnapshot
{
    bool present = false;      ///< directory has an entry for the block
    std::uint32_t sharers = 0; ///< bitmask of nodes with Shared copies
    int owner = -1;            ///< node holding E/M, or -1
    int last_writer = -1;      ///< last node granted write ownership
};

/** Classification of where a data access was serviced. */
enum class AccessClass : std::uint8_t {
    L1Hit,      ///< hit in the first-level cache
    L2Hit,      ///< hit in the second-level cache
    LocalMem,   ///< L2 miss serviced by local memory
    RemoteMem,  ///< L2 miss serviced by remote memory
    RemoteDirty,///< L2 miss serviced by a cache-to-cache transfer
};

const char *accessClassName(AccessClass c);

/**
 * Interface through which the fabric manipulates a node's cached state.
 * Implemented by sim::Node; it must invalidate/downgrade the L2 and the
 * L1s inclusively and notify the core (speculative-load violations).
 */
class CacheSite
{
  public:
    virtual ~CacheSite() = default;

    /** Coherence state of @p block in this node's L2. */
    virtual mem::CoherState siteState(Addr block) = 0;

    /** Invalidate @p block across the node's hierarchy. */
    virtual void siteInvalidate(Addr block) = 0;

    /** Downgrade @p block to Shared across the node's hierarchy. */
    virtual void siteDowngrade(Addr block) = 0;
};

/** Protocol timing parameters (contentionless hold times, cycles). */
struct FabricParams
{
    Cycles bus_hold = 6;      ///< split-transaction bus occupancy per phase
    Cycles dir_hold = 10;     ///< directory controller service time
    Cycles dram_hold = 50;    ///< DRAM access time
    Cycles resp_overhead = 14;///< fill/response overhead at the requester
    Cycles owner_l2_hold = 20;///< remote owner's L2 access for a transfer
    Cycles c2c_extra = 100;   ///< additional 3-hop protocol overhead

    /**
     * Latency scale applied to dirty reads of lines already marked
     * migratory -- the paper's approximate upper bound for the flush
     * optimization selectively reduces migratory read latency by 40%
     * (factor 0.6) to reflect service at memory (section 4.2).
     */
    double migratory_read_factor = 1.0;

    /**
     * Adaptive migratory protocol (Cox-Fowler / Stenstrom et al., the
     * paper's footnote 2): a read miss to a line already detected as
     * migratory is granted exclusively (the previous owner invalidates
     * instead of downgrading), so the reader's subsequent write hits
     * locally without an upgrade.  The paper argues this cannot help
     * under a relaxed model because write latency is already hidden;
     * bench/ablation_migratory checks that claim.
     */
    bool adaptive_migratory = false;

    /**
     * When true, flush() invalidates the flushing cache's copy instead
     * of keeping a clean Shared copy (ablation of the design choice the
     * paper calls out: invalidating neutralizes the gains because the
     * flusher's next read misses).
     */
    bool flush_invalidates = false;
};

/** Result of a fabric transaction. */
struct FabricResult
{
    Cycles ready;          ///< cycle the data is available at the L2
    AccessClass cls;       ///< service classification
    mem::CoherState grant; ///< state granted to the requester's caches
};

/** Aggregate fabric statistics. */
struct FabricStats
{
    std::uint64_t reads_local = 0;
    std::uint64_t reads_remote = 0;
    std::uint64_t reads_dirty = 0;
    std::uint64_t writes_local = 0;
    std::uint64_t writes_remote = 0;
    std::uint64_t writes_dirty = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t migratory_handoffs = 0; ///< adaptive exclusive grants
    std::uint64_t invalidations_sent = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t flushes = 0;

    std::uint64_t
    totalMisses() const
    {
        return reads_local + reads_remote + reads_dirty + writes_local +
               writes_remote + writes_dirty;
    }

    std::uint64_t
    dirtyMisses() const
    {
        return reads_dirty + writes_dirty;
    }
};

/**
 * The machine-wide coherence fabric.
 */
class CoherenceFabric
{
  public:
    CoherenceFabric(std::uint32_t num_nodes, FabricParams params = {},
                    net::MeshParams mesh_params = {});

    /** Register the cache site for @p node (must be done for all nodes). */
    void attachSite(std::uint32_t node, CacheSite *site);

    std::uint32_t numNodes() const { return num_nodes_; }

    /**
     * Read (GetS) for @p block whose home is @p home, issued by @p node
     * at @p now.  @p pc is the requesting instruction (for migratory
     * characterization).  The line is granted Exclusive if uncached,
     * Shared otherwise; remote M copies are downgraded with a
     * cache-to-cache transfer.
     */
    FabricResult read(std::uint32_t node, Addr block, std::uint32_t home,
                      Cycles now, Addr pc);

    /**
     * Write / read-exclusive (GetX or Upgrade).  Invalidates all other
     * copies and grants Modified ownership.
     */
    FabricResult write(std::uint32_t node, Addr block, std::uint32_t home,
                       Cycles now, Addr pc);

    /**
     * L2 eviction notification.  @p dirty selects a writeback of modified
     * data versus a silent clean replacement hint.
     */
    void evict(std::uint32_t node, Addr block, std::uint32_t home,
               bool dirty, Cycles now);

    /**
     * Flush / WriteThrough hint (paper section 4.2): if @p node holds the
     * block Modified, push the data back to the home memory while keeping
     * a clean Shared copy (unsolicited sharing writeback).  Non-blocking
     * for the issuing processor.
     * @return completion time of the writeback (kNever if it was a no-op).
     */
    Cycles flush(std::uint32_t node, Addr block, std::uint32_t home,
                 Cycles now);

    const FabricStats &stats() const { return stats_; }
    const MigratoryStats &migratoryStats() const { return migratory_.stats(); }
    const MigratoryDetector &migratory() const { return migratory_; }
    net::Mesh &mesh() { return mesh_; }

    /** True iff the directory believes @p block is cached somewhere. */
    bool cached(Addr block) const;

    // ------------------------------------------------------------------
    // Integrity-layer hooks
    // ------------------------------------------------------------------

    /**
     * Attach an invariant checker; every subsequent transaction is
     * recorded with it (nullptr detaches).  The checker is owned by the
     * caller (sim::System) and must outlive the fabric or be detached.
     */
    void attachChecker(CoherenceChecker *checker) { checker_ = checker; }
    CoherenceChecker *checker() const { return checker_; }

    /**
     * Attach a protocol mutator (verification layer / tests only;
     * nullptr detaches).  The seeded bug fires at its decision point in
     * every subsequent transaction; the caller owns the mutator and
     * reads its trigger count.
     */
    void attachMutator(const verify::ProtocolMutator *m) { mutator_ = m; }

    /** Snapshot of the directory entry for @p block (for audits/dumps). */
    DirSnapshot dirState(Addr block) const;

    /** The cache site attached for @p node (nullptr if none). */
    CacheSite *site(std::uint32_t node) const { return sites_[node]; }

    /** Number of blocks the directory currently tracks. */
    std::size_t dirEntries() const { return dir_.size(); }

    /** Number of tracked blocks the directory believes are cached. */
    std::size_t dirCachedEntries() const;

    void
    saveState(snap::Writer &w) const
    {
        for (const NodeRes &nr : res_) {
            nr.bus.saveState(w);
            nr.dir.saveState(w);
            nr.mem.saveState(w);
        }
        mesh_.saveState(w);
        w.u64(dir_.size());
        for (Addr block : snap::sortedKeys(dir_)) {
            const DirEntry &e = dir_.at(block);
            w.u64(block);
            w.u32(e.sharers);
            w.i32(e.owner);
            w.i32(e.last_writer);
        }
        migratory_.saveState(w);
        w.u64(stats_.reads_local);
        w.u64(stats_.reads_remote);
        w.u64(stats_.reads_dirty);
        w.u64(stats_.writes_local);
        w.u64(stats_.writes_remote);
        w.u64(stats_.writes_dirty);
        w.u64(stats_.upgrades);
        w.u64(stats_.migratory_handoffs);
        w.u64(stats_.invalidations_sent);
        w.u64(stats_.writebacks);
        w.u64(stats_.flushes);
    }

    void
    restoreState(snap::Reader &r)
    {
        for (NodeRes &nr : res_) {
            nr.bus.restoreState(r);
            nr.dir.restoreState(r);
            nr.mem.restoreState(r);
        }
        mesh_.restoreState(r);
        dir_.clear();
        const std::size_t n = r.length(20);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr block = r.u64();
            DirEntry e;
            e.sharers = r.u32();
            e.owner = r.i32();
            e.last_writer = r.i32();
            dir_[block] = e;
        }
        migratory_.restoreState(r);
        stats_.reads_local = r.u64();
        stats_.reads_remote = r.u64();
        stats_.reads_dirty = r.u64();
        stats_.writes_local = r.u64();
        stats_.writes_remote = r.u64();
        stats_.writes_dirty = r.u64();
        stats_.upgrades = r.u64();
        stats_.migratory_handoffs = r.u64();
        stats_.invalidations_sent = r.u64();
        stats_.writebacks = r.u64();
        stats_.flushes = r.u64();
    }

  private:
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< bitmask of nodes with Shared copies
        int owner = -1;            ///< node holding E/M, or -1
        int last_writer = -1;      ///< last node granted write ownership
    };

    DirEntry &entry(Addr block) { return dir_[block]; }

    struct NodeRes
    {
        net::Resource bus;
        net::Resource dir;
        net::Resource mem;
    };

    std::uint32_t num_nodes_;
    FabricParams params_;
    net::Mesh mesh_;
    std::vector<NodeRes> res_;
    std::vector<CacheSite *> sites_;
    std::unordered_map<Addr, DirEntry> dir_;
    MigratoryDetector migratory_;
    FabricStats stats_;
    CoherenceChecker *checker_ = nullptr;
    const verify::ProtocolMutator *mutator_ = nullptr;
};

} // namespace dbsim::coher

#endif // DBSIM_COHERENCE_DIRECTORY_HPP
