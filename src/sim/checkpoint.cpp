/**
 * @file
 * System-level checkpoint / restore (DESIGN.md §5g).
 *
 * serializeState() walks every stateful component of the machine in a
 * fixed order, producing the byte-stable stream that feeds both the
 * on-disk checkpoint format and the per-epoch FNV state hashes.
 * saveCheckpoint()/restoreCheckpoint() wrap that stream in a versioned
 * file format:
 *
 *     magic "DBSIMCKP" | u32 version | u64 config signature |
 *     machine state    | epoch bookkeeping | u64 FNV-1a of the above
 *
 * Files are written atomically (tmp + rename), so a checkpoint path
 * never holds a torn file even if the writer is SIGKILLed mid-write.
 * The config signature hashes the structural configuration (machine
 * geometry + process placement) but not host observation knobs
 * (checkpoint/state-hash intervals, stop_at_cycle), so a checkpoint
 * taken at one interval restores under any other.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/errors.hpp"
#include "sim/system.hpp"

namespace dbsim::sim {

namespace {

constexpr char kCheckpointMagic[8] = {'D', 'B', 'S', 'I', 'M',
                                      'C', 'K', 'P'};
constexpr std::uint32_t kCheckpointVersion = 1;

void
signCacheLevel(snap::Writer &w, const CacheLevelParams &p)
{
    w.u64(p.size_bytes);
    w.u32(p.assoc);
    w.u32(p.line_bytes);
    w.u64(p.hit_time);
    w.u32(p.mshrs);
    w.u32(p.ports);
}

} // namespace

std::uint64_t
System::configSignature() const
{
    snap::Writer w;
    w.u32(params_.num_nodes);
    w.u64(params_.sched_quantum);
    w.u32(params_.page_bins);
    w.u64(params_.max_cycles);
    w.u64(params_.watchdog_cycles);

    const cpu::CoreParams &c = params_.core;
    w.boolean(c.out_of_order);
    w.u32(c.issue_width);
    w.u32(c.window_size);
    w.u32(c.mem_queue_size);
    w.u32(c.write_buffer_size);
    w.u32(c.max_spec_branches);
    w.u32(c.mispredict_restart);
    w.u32(c.rollback_penalty);
    w.u32(c.fetch_line_bytes);
    w.u32(c.spin_retry_interval);
    w.u64(c.spin_yield_threshold);
    w.u64(c.context_switch_cost);
    w.u32(c.fu.int_alus);
    w.u32(c.fu.fp_units);
    w.u32(c.fu.addr_units);
    w.boolean(c.fu.infinite);
    w.u32(c.fu.int_latency);
    w.u32(c.fu.fp_latency);
    w.u32(c.fu.agen_latency);
    w.u32(c.fu.branch_latency);
    w.u32(c.bp.pa_entries);
    w.u32(c.bp.pa_hist_bits);
    w.u32(c.bp.g_hist_bits);
    w.u32(c.bp.g_pht_bits);
    w.u32(c.bp.chooser_entries);
    w.u32(c.bp.btb_entries);
    w.u32(c.bp.btb_assoc);
    w.u32(c.bp.ras_entries);
    w.boolean(c.bp.perfect);
    w.u8(static_cast<std::uint8_t>(c.model));
    w.boolean(c.cons.hw_prefetch);
    w.boolean(c.cons.spec_loads);

    const NodeParams &n = params_.node;
    signCacheLevel(w, n.l1i);
    signCacheLevel(w, n.l1d);
    signCacheLevel(w, n.l2);
    w.u32(n.itlb_entries);
    w.u32(n.dtlb_entries);
    w.u32(n.page_bytes);
    w.u64(n.tlb_miss_penalty);
    w.u32(n.stream_buffer_entries);
    w.boolean(n.perfect_icache);
    w.boolean(n.perfect_itlb);
    w.boolean(n.perfect_dtlb);
    w.u64(n.l2_port_hold);

    const coher::FabricParams &f = params_.fabric;
    w.u64(f.bus_hold);
    w.u64(f.dir_hold);
    w.u64(f.dram_hold);
    w.u64(f.resp_overhead);
    w.u64(f.owner_l2_hold);
    w.u64(f.c2c_extra);
    w.f64(f.migratory_read_factor);
    w.boolean(f.adaptive_migratory);
    w.boolean(f.flush_invalidates);

    const net::MeshParams &m = params_.mesh;
    w.u32(m.router_delay);
    w.u32(m.wire_delay);
    w.u32(m.inject_delay);
    w.u32(m.ctrl_flits);
    w.u32(m.data_flits);

    // Process placement: the checkpoint only restores into a machine
    // with the exact same process set on the exact same CPUs.
    w.u64(procs_.size());
    for (CpuId cpu : proc_cpu_)
        w.u32(cpu);
    w.boolean(checker_ != nullptr);

    return w.hash();
}

void
System::serializeState(snap::Writer &w) const
{
    w.u64(now_);
    w.u64(retired_before_reset_);
    w.u64(window_start_);

    // Run-loop carry state (see the member comment in system.hpp).
    w.boolean(warmed_);
    w.u64(wd_last_retired_);
    w.u64(wd_last_progress_);

    // Simulated-environment lock table, sorted for byte stability.
    w.u64(lock_holder_.size());
    for (Addr addr : snap::sortedKeys(lock_holder_)) {
        w.u64(addr);
        w.u32(lock_holder_.at(addr));
    }

    // Per-CPU scheduling glue.
    w.u32(static_cast<std::uint32_t>(cpus_.size()));
    for (const CpuState &cs : cpus_) {
        w.u8(static_cast<std::uint8_t>(cs.pending));
        w.u64(cs.pending_latency);
        w.u64(cs.run_start);
        w.boolean(cs.ever_ran);
    }

    page_map_.saveState(w);
    fabric_.saveState(w);
    sched_.saveState(w);

    w.boolean(checker_ != nullptr);
    if (checker_)
        checker_->saveState(w);

    for (const CpuState &cs : cpus_) {
        cs.node->saveState(w);
        cs.core->saveState(w);
    }

    w.u64(procs_.size());
    for (const auto &p : procs_)
        p->saveState(w);
    for (const auto &s : sources_)
        s->saveState(w);
}

void
System::deserializeState(snap::Reader &r)
{
    now_ = r.u64();
    retired_before_reset_ = r.u64();
    window_start_ = r.u64();

    warmed_ = r.boolean();
    wd_last_retired_ = r.u64();
    wd_last_progress_ = r.u64();

    lock_holder_.clear();
    const std::size_t nlocks = r.length(12);
    for (std::size_t i = 0; i < nlocks; ++i) {
        const Addr addr = r.u64();
        lock_holder_[addr] = r.u32();
    }

    if (r.u32() != cpus_.size())
        throw snap::SnapshotError("snapshot: CPU count mismatch");
    for (CpuState &cs : cpus_) {
        cs.pending = static_cast<Pending>(r.u8());
        cs.pending_latency = r.u64();
        cs.run_start = r.u64();
        cs.ever_ran = r.boolean();
    }

    const auto resolve = [this](ProcId id) -> cpu::ProcessContext * {
        return id < procs_.size() ? procs_[id].get() : nullptr;
    };

    page_map_.restoreState(r);
    fabric_.restoreState(r);
    sched_.restoreState(r, resolve);

    const bool had_checker = r.boolean();
    if (had_checker != (checker_ != nullptr)) {
        throw snap::SnapshotError(
            "snapshot: coherence-checker presence mismatch (was the "
            "checkpoint taken under a different DBSIM_CHECK setting?)");
    }
    if (checker_)
        checker_->restoreState(r);

    for (CpuState &cs : cpus_) {
        cs.node->restoreState(r);
        cs.core->restoreState(r, resolve);
    }

    if (r.u64() != procs_.size())
        throw snap::SnapshotError("snapshot: process count mismatch");
    for (const auto &p : procs_)
        p->restoreState(r);
    for (const auto &s : sources_)
        s->restoreState(r);

    carry_valid_ = true;
}

std::uint64_t
System::stateHash() const
{
    snap::Writer w;
    serializeState(w);
    return w.hash();
}

void
System::saveCheckpoint(const std::string &path) const
{
    snap::Writer w;
    for (char c : kCheckpointMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kCheckpointVersion);
    w.u64(configSignature());

    serializeState(w);

    // Epoch bookkeeping rides outside the machine state so stateHash()
    // stays insensitive to the hashing knobs, but restored runs still
    // continue the recorded hash series seamlessly.
    w.u64(epoch_next_);
    w.u64(epoch_hashes_.size());
    for (const EpochHash &eh : epoch_hashes_) {
        w.u64(eh.epoch);
        w.u64(eh.hash);
    }

    w.u64(w.hash()); // whole-file integrity trailer

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw snap::SnapshotError("checkpoint: cannot open " + tmp +
                                      " for writing");
        }
        out.write(reinterpret_cast<const char *>(w.bytes().data()),
                  static_cast<std::streamsize>(w.size()));
        out.flush();
        if (!out)
            throw snap::SnapshotError("checkpoint: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw snap::SnapshotError("checkpoint: cannot rename " + tmp +
                                  " to " + path);
    }
}

void
System::restoreCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw snap::SnapshotError("checkpoint: cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    if (bytes.size() < sizeof(kCheckpointMagic) + 4 + 8 + 8)
        throw snap::SnapshotError("checkpoint: file too short: " + path);

    // Integrity first: everything before the trailer must hash to it.
    const std::size_t body = bytes.size() - 8;
    std::uint64_t trailer = 0;
    for (int i = 0; i < 8; ++i)
        trailer |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
    if (snap::fnv1a(bytes.data(), body) != trailer) {
        throw snap::SnapshotError(
            "checkpoint: integrity hash mismatch (torn or corrupt "
            "file): " +
            path);
    }

    snap::Reader r(bytes.data(), body);
    for (char c : kCheckpointMagic) {
        if (r.u8() != static_cast<std::uint8_t>(c))
            throw snap::SnapshotError("checkpoint: bad magic in " + path);
    }
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
        throw snap::SnapshotError(
            "checkpoint: unsupported version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kCheckpointVersion) + "): " + path);
    }
    const std::uint64_t sig = r.u64();
    if (sig != configSignature()) {
        throw snap::SnapshotError(
            "checkpoint: config signature mismatch (checkpoint was taken "
            "under a structurally different configuration): " +
            path);
    }

    deserializeState(r);

    epoch_next_ = r.u64();
    epoch_hashes_.clear();
    const std::size_t nh = r.length(16);
    epoch_hashes_.reserve(nh);
    for (std::size_t i = 0; i < nh; ++i) {
        EpochHash eh;
        eh.epoch = r.u64();
        eh.hash = r.u64();
        epoch_hashes_.push_back(eh);
    }

    if (!r.atEnd()) {
        throw snap::SnapshotError(
            "checkpoint: trailing bytes after state: " + path);
    }
}

} // namespace dbsim::sim
