#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::sim {

using cpu::ProcessContext;
using cpu::ProcState;

Scheduler::Scheduler(std::uint32_t num_cpus) : queues_(num_cpus)
{
    if (num_cpus == 0)
        DBSIM_FATAL("scheduler needs at least one CPU");
}

void
Scheduler::addProcess(ProcessContext *proc, CpuId cpu)
{
    DBSIM_ASSERT(cpu < queues_.size(), "bad affinity");
    if (affinity_.size() <= proc->id())
        affinity_.resize(proc->id() + 1, kNoAffinity);
    affinity_[proc->id()] = cpu;
    proc->state = ProcState::Ready;
    queues_[cpu].ready.push_back(proc);
    queues_[cpu].all.push_back(proc);
}

CpuId
Scheduler::affinityOf(const ProcessContext *proc) const
{
    DBSIM_ASSERT(proc->id() < affinity_.size() &&
                     affinity_[proc->id()] != kNoAffinity,
                 "process ", proc->id(),
                 " was never registered with addProcess");
    return affinity_[proc->id()];
}

void
Scheduler::wake(CpuQueue &q, Cycles now)
{
    while (!q.blocked.empty() && q.blocked.front().wake_at <= now) {
        ProcessContext *p = q.blocked.front().proc;
        std::pop_heap(q.blocked.begin(), q.blocked.end(), WakesLater{});
        q.blocked.pop_back();
        p->state = ProcState::Ready;
        q.ready.push_back(p);
    }
}

ProcessContext *
Scheduler::pickNext(CpuId cpu, Cycles now)
{
    CpuQueue &q = queues_[cpu];
    wake(q, now);
    if (q.ready.empty())
        return nullptr;
    ProcessContext *p = q.ready.front();
    q.ready.pop_front();
    return p;
}

void
Scheduler::makeReady(ProcessContext *proc)
{
    proc->state = ProcState::Ready;
    queues_[affinityOf(proc)].ready.push_back(proc);
}

void
Scheduler::block(ProcessContext *proc, Cycles wake_at)
{
    CpuQueue &q = queues_[affinityOf(proc)];
    proc->state = ProcState::Blocked;
    proc->wake_at = wake_at;
    q.blocked.push_back(BlockedEntry{wake_at, block_seq_++, proc});
    std::push_heap(q.blocked.begin(), q.blocked.end(), WakesLater{});
}

void
Scheduler::finish(ProcessContext *proc)
{
    proc->state = ProcState::Done;
}

bool
Scheduler::anyIncomplete(CpuId cpu) const
{
    const CpuQueue &q = queues_[cpu];
    return std::any_of(q.all.begin(), q.all.end(),
                       [](const ProcessContext *p) {
                           return p->state != ProcState::Done;
                       });
}

bool
Scheduler::anyIncomplete() const
{
    for (CpuId c = 0; c < queues_.size(); ++c)
        if (anyIncomplete(c))
            return true;
    return false;
}

Cycles
Scheduler::nextWake(CpuId cpu) const
{
    const CpuQueue &q = queues_[cpu];
    return q.blocked.empty() ? kNever : q.blocked.front().wake_at;
}

void
Scheduler::saveState(snap::Writer &w) const
{
    w.u64(block_seq_);
    w.u64(queues_.size());
    for (const CpuQueue &q : queues_) {
        w.u64(q.ready.size());
        for (const cpu::ProcessContext *p : q.ready)
            w.u32(p->id());
        w.u64(q.blocked.size());
        for (const BlockedEntry &e : q.blocked) {
            w.u64(e.wake_at);
            w.u64(e.seq);
            w.u32(e.proc->id());
        }
    }
}

void
Scheduler::restoreState(
    snap::Reader &r,
    const std::function<cpu::ProcessContext *(ProcId)> &resolve)
{
    auto resolved = [&resolve](ProcId id) {
        cpu::ProcessContext *p = resolve(id);
        if (p == nullptr)
            throw snap::SnapshotError("snapshot: unresolvable scheduled "
                                      "process");
        return p;
    };
    block_seq_ = r.u64();
    if (r.length(16) != queues_.size())
        throw snap::SnapshotError("snapshot: CPU count mismatch");
    for (CpuQueue &q : queues_) {
        q.ready.clear();
        const std::size_t nr = r.length(4);
        for (std::size_t i = 0; i < nr; ++i)
            q.ready.push_back(resolved(r.u32()));
        q.blocked.clear();
        const std::size_t nb = r.length(20);
        for (std::size_t i = 0; i < nb; ++i) {
            BlockedEntry e;
            e.wake_at = r.u64();
            e.seq = r.u64();
            e.proc = resolved(r.u32());
            q.blocked.push_back(e);
        }
    }
}

} // namespace dbsim::sim
