#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::sim {

using cpu::ProcessContext;
using cpu::ProcState;

Scheduler::Scheduler(std::uint32_t num_cpus) : queues_(num_cpus)
{
    if (num_cpus == 0)
        DBSIM_FATAL("scheduler needs at least one CPU");
}

void
Scheduler::addProcess(ProcessContext *proc, CpuId cpu)
{
    DBSIM_ASSERT(cpu < queues_.size(), "bad affinity");
    if (affinity_.size() <= proc->id())
        affinity_.resize(proc->id() + 1, 0);
    affinity_[proc->id()] = cpu;
    proc->state = ProcState::Ready;
    queues_[cpu].ready.push_back(proc);
    queues_[cpu].all.push_back(proc);
}

void
Scheduler::wake(CpuQueue &q, Cycles now)
{
    for (auto it = q.blocked.begin(); it != q.blocked.end();) {
        if ((*it)->wake_at <= now) {
            (*it)->state = ProcState::Ready;
            q.ready.push_back(*it);
            it = q.blocked.erase(it);
        } else {
            ++it;
        }
    }
}

ProcessContext *
Scheduler::pickNext(CpuId cpu, Cycles now)
{
    CpuQueue &q = queues_[cpu];
    wake(q, now);
    if (q.ready.empty())
        return nullptr;
    ProcessContext *p = q.ready.front();
    q.ready.pop_front();
    return p;
}

void
Scheduler::makeReady(ProcessContext *proc)
{
    proc->state = ProcState::Ready;
    queues_[affinity_[proc->id()]].ready.push_back(proc);
}

void
Scheduler::block(ProcessContext *proc, Cycles wake_at)
{
    proc->state = ProcState::Blocked;
    proc->wake_at = wake_at;
    queues_[affinity_[proc->id()]].blocked.push_back(proc);
}

void
Scheduler::finish(ProcessContext *proc)
{
    proc->state = ProcState::Done;
}

bool
Scheduler::anyIncomplete(CpuId cpu) const
{
    const CpuQueue &q = queues_[cpu];
    return std::any_of(q.all.begin(), q.all.end(),
                       [](const ProcessContext *p) {
                           return p->state != ProcState::Done;
                       });
}

bool
Scheduler::anyIncomplete() const
{
    for (CpuId c = 0; c < queues_.size(); ++c)
        if (anyIncomplete(c))
            return true;
    return false;
}

Cycles
Scheduler::nextWake(CpuId cpu) const
{
    Cycles w = kNever;
    for (const ProcessContext *p : queues_[cpu].blocked)
        w = std::min(w, p->wake_at);
    return w;
}

} // namespace dbsim::sim
