#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::sim {

using cpu::ProcessContext;
using cpu::ProcState;

Scheduler::Scheduler(std::uint32_t num_cpus) : queues_(num_cpus)
{
    if (num_cpus == 0)
        DBSIM_FATAL("scheduler needs at least one CPU");
}

void
Scheduler::addProcess(ProcessContext *proc, CpuId cpu)
{
    DBSIM_ASSERT(cpu < queues_.size(), "bad affinity");
    if (affinity_.size() <= proc->id())
        affinity_.resize(proc->id() + 1, kNoAffinity);
    affinity_[proc->id()] = cpu;
    proc->state = ProcState::Ready;
    queues_[cpu].ready.push_back(proc);
    queues_[cpu].all.push_back(proc);
}

CpuId
Scheduler::affinityOf(const ProcessContext *proc) const
{
    DBSIM_ASSERT(proc->id() < affinity_.size() &&
                     affinity_[proc->id()] != kNoAffinity,
                 "process ", proc->id(),
                 " was never registered with addProcess");
    return affinity_[proc->id()];
}

void
Scheduler::wake(CpuQueue &q, Cycles now)
{
    while (!q.blocked.empty() && q.blocked.front().wake_at <= now) {
        ProcessContext *p = q.blocked.front().proc;
        std::pop_heap(q.blocked.begin(), q.blocked.end(), WakesLater{});
        q.blocked.pop_back();
        p->state = ProcState::Ready;
        q.ready.push_back(p);
    }
}

ProcessContext *
Scheduler::pickNext(CpuId cpu, Cycles now)
{
    CpuQueue &q = queues_[cpu];
    wake(q, now);
    if (q.ready.empty())
        return nullptr;
    ProcessContext *p = q.ready.front();
    q.ready.pop_front();
    return p;
}

void
Scheduler::makeReady(ProcessContext *proc)
{
    proc->state = ProcState::Ready;
    queues_[affinityOf(proc)].ready.push_back(proc);
}

void
Scheduler::block(ProcessContext *proc, Cycles wake_at)
{
    CpuQueue &q = queues_[affinityOf(proc)];
    proc->state = ProcState::Blocked;
    proc->wake_at = wake_at;
    q.blocked.push_back(BlockedEntry{wake_at, block_seq_++, proc});
    std::push_heap(q.blocked.begin(), q.blocked.end(), WakesLater{});
}

void
Scheduler::finish(ProcessContext *proc)
{
    proc->state = ProcState::Done;
}

bool
Scheduler::anyIncomplete(CpuId cpu) const
{
    const CpuQueue &q = queues_[cpu];
    return std::any_of(q.all.begin(), q.all.end(),
                       [](const ProcessContext *p) {
                           return p->state != ProcState::Done;
                       });
}

bool
Scheduler::anyIncomplete() const
{
    for (CpuId c = 0; c < queues_.size(); ++c)
        if (anyIncomplete(c))
            return true;
    return false;
}

Cycles
Scheduler::nextWake(CpuId cpu) const
{
    const CpuQueue &q = queues_[cpu];
    return q.blocked.empty() ? kNever : q.blocked.front().wake_at;
}

} // namespace dbsim::sim
