/**
 * @file
 * The internally modeled operating-system scheduler (paper section 2.2):
 * per-CPU run queues with processes pinned to their CPUs, context
 * switches at blocking system calls (whose I/O latencies come from the
 * trace), lock-spin yields, and a round-robin time slice as a backstop.
 */

#ifndef DBSIM_SIM_SCHEDULER_HPP
#define DBSIM_SIM_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "cpu/process.hpp"

namespace dbsim::sim {

/**
 * Per-CPU run queues over externally owned ProcessContexts.
 */
class Scheduler
{
  public:
    explicit Scheduler(std::uint32_t num_cpus);

    /** Register @p proc with affinity @p cpu; it starts Ready. */
    void addProcess(cpu::ProcessContext *proc, CpuId cpu);

    /**
     * Pick the next runnable process for @p cpu at time @p now (wakes
     * any blocked processes whose wake time has passed first).
     * @return nullptr if none is runnable.
     */
    cpu::ProcessContext *pickNext(CpuId cpu, Cycles now);

    /** Requeue a (yielding or preempted) process at the back. */
    void makeReady(cpu::ProcessContext *proc);

    /** Block @p proc until @p wake_at. */
    void block(cpu::ProcessContext *proc, Cycles wake_at);

    /** Mark @p proc finished. */
    void finish(cpu::ProcessContext *proc);

    /** Any process (Ready or Blocked) still incomplete on @p cpu? */
    bool anyIncomplete(CpuId cpu) const;

    /** Any incomplete process anywhere? */
    bool anyIncomplete() const;

    /**
     * Earliest wake time among blocked processes of @p cpu (kNever if
     * none are blocked).
     */
    Cycles nextWake(CpuId cpu) const;

    /** True iff a Ready process is queued on @p cpu. */
    bool hasReady(CpuId cpu) const { return !queues_[cpu].ready.empty(); }

    /** Ready-queue depth of @p cpu (for diagnostics). */
    std::size_t readyCount(CpuId cpu) const { return queues_[cpu].ready.size(); }

    /** Blocked-process count of @p cpu (for diagnostics). */
    std::size_t
    blockedCount(CpuId cpu) const
    {
        return queues_[cpu].blocked.size();
    }

    std::uint32_t numCpus() const { return static_cast<std::uint32_t>(queues_.size()); }

  private:
    struct CpuQueue
    {
        std::deque<cpu::ProcessContext *> ready;
        std::vector<cpu::ProcessContext *> blocked;
        std::vector<cpu::ProcessContext *> all;
    };

    void wake(CpuQueue &q, Cycles now);

    std::vector<CpuQueue> queues_;
    std::vector<CpuId> affinity_; ///< indexed by ProcId
};

} // namespace dbsim::sim

#endif // DBSIM_SIM_SCHEDULER_HPP
