/**
 * @file
 * The internally modeled operating-system scheduler (paper section 2.2):
 * per-CPU run queues with processes pinned to their CPUs, context
 * switches at blocking system calls (whose I/O latencies come from the
 * trace), lock-spin yields, and a round-robin time slice as a backstop.
 *
 * Blocked processes are kept in a per-CPU min-heap keyed on
 * (wake_at, block order), so the run loop's event-skip computation
 * (System::run calls nextWake for every CPU every iteration) is O(1)
 * and waking is O(log n) per woken process instead of a linear scan of
 * the blocked list.
 */

#ifndef DBSIM_SIM_SCHEDULER_HPP
#define DBSIM_SIM_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "cpu/process.hpp"

namespace dbsim::sim {

/**
 * Per-CPU run queues over externally owned ProcessContexts.
 */
class Scheduler
{
  public:
    explicit Scheduler(std::uint32_t num_cpus);

    /** Register @p proc with affinity @p cpu; it starts Ready. */
    void addProcess(cpu::ProcessContext *proc, CpuId cpu);

    /**
     * Pick the next runnable process for @p cpu at time @p now (wakes
     * any blocked processes whose wake time has passed first).
     * @return nullptr if none is runnable.
     */
    cpu::ProcessContext *pickNext(CpuId cpu, Cycles now);

    /** Requeue a (yielding or preempted) process at the back. */
    void makeReady(cpu::ProcessContext *proc);

    /** Block @p proc until @p wake_at. */
    void block(cpu::ProcessContext *proc, Cycles wake_at);

    /** Mark @p proc finished. */
    void finish(cpu::ProcessContext *proc);

    /** Any process (Ready or Blocked) still incomplete on @p cpu? */
    bool anyIncomplete(CpuId cpu) const;

    /** Any incomplete process anywhere? */
    bool anyIncomplete() const;

    /**
     * Earliest wake time among blocked processes of @p cpu (kNever if
     * none are blocked).  O(1): the heap root.
     */
    Cycles nextWake(CpuId cpu) const;

    /** True iff a Ready process is queued on @p cpu. */
    bool hasReady(CpuId cpu) const { return !queues_[cpu].ready.empty(); }

    /** Ready-queue depth of @p cpu (for diagnostics). */
    std::size_t readyCount(CpuId cpu) const { return queues_[cpu].ready.size(); }

    /** Blocked-process count of @p cpu (for diagnostics). */
    std::size_t
    blockedCount(CpuId cpu) const
    {
        return queues_[cpu].blocked.size();
    }

    std::uint32_t numCpus() const { return static_cast<std::uint32_t>(queues_.size()); }

    /**
     * Serialize queue membership (as ProcIds) and the blocked heaps'
     * backing vectors verbatim, so a restore reproduces the exact heap
     * layout and therefore the exact future pop order.  Registration
     * (`all`, affinity) is construction state and is not serialized.
     */
    void saveState(snap::Writer &w) const;

    /** @p resolve maps a serialized ProcId to the live context. */
    void
    restoreState(snap::Reader &r,
                 const std::function<cpu::ProcessContext *(ProcId)> &resolve);

  private:
    /** Min-heap element: earliest wake first, ties in block order. */
    struct BlockedEntry
    {
        Cycles wake_at;
        std::uint64_t seq;
        cpu::ProcessContext *proc;
    };

    struct WakesLater
    {
        bool
        operator()(const BlockedEntry &a, const BlockedEntry &b) const
        {
            if (a.wake_at != b.wake_at)
                return a.wake_at > b.wake_at;
            return a.seq > b.seq;
        }
    };

    struct CpuQueue
    {
        std::deque<cpu::ProcessContext *> ready;
        std::vector<BlockedEntry> blocked; ///< heap ordered by WakesLater
        std::vector<cpu::ProcessContext *> all;
    };

    void wake(CpuQueue &q, Cycles now);

    /** Affinity of @p proc; panics if it was never addProcess()ed. */
    CpuId affinityOf(const cpu::ProcessContext *proc) const;

    static constexpr CpuId kNoAffinity = ~CpuId{0};

    std::vector<CpuQueue> queues_;
    std::vector<CpuId> affinity_; ///< indexed by ProcId; kNoAffinity = unset
    std::uint64_t block_seq_ = 0; ///< tie-break for simultaneous wakes
};

} // namespace dbsim::sim

#endif // DBSIM_SIM_SCHEDULER_HPP
