/**
 * @file
 * Diagnostic machine-state dumps and progress tracing (the simulation
 * integrity layer's observability half).
 *
 * machineStateDump() renders the whole machine -- per-CPU run state and
 * head-of-window stall category, pipeline/window occupancy, MSHR and
 * stream-buffer occupancy, scheduler queue depths and wake horizons, and
 * directory population -- as human-readable text.  The System registers
 * it as a crash-dump callback (common/log.hpp), so any DBSIM_PANIC during
 * a run emits it, and the forward-progress watchdog embeds it in its
 * panic message.
 *
 * progressLine() is the periodic one-line trace formerly printf'd by
 * System::run under DBSIM_DEBUG; cyclesFromEnv() is the hardened parser
 * for that knob (warns on garbage instead of silently reading 0).
 *
 * The host-deadline API is the cooperative half of the sweep runner's
 * per-item timeout: the thread about to run a simulation arms a
 * wall-clock deadline (thread-local, so concurrent sweep workers do not
 * interfere), and the System::run loop polls it cheaply, converting an
 * expired deadline into a SimTimeoutError that carries the machine-state
 * dump -- a hung configuration becomes a structured, retryable failure
 * instead of a stuck process.
 */

#ifndef DBSIM_SIM_DIAGNOSTICS_HPP
#define DBSIM_SIM_DIAGNOSTICS_HPP

#include <string>

#include "common/types.hpp"

namespace dbsim::sim {

class System;

/**
 * Arm a wall-clock deadline @p seconds from now for simulations run on
 * the *calling thread*.  Values <= 0 clear any armed deadline.
 */
void setHostDeadline(double seconds);

/** Disarm the calling thread's host deadline. */
void clearHostDeadline();

/** True when the calling thread has a deadline armed. */
bool hostDeadlineArmed();

/** True when the calling thread's armed deadline has passed. */
bool hostDeadlineExpired();

/** Seconds the calling thread's deadline was armed with (0 if none). */
double hostDeadlineSeconds();

/** Scoped arming of the calling thread's host deadline. */
class HostDeadlineScope
{
  public:
    explicit HostDeadlineScope(double seconds)
    {
        if (seconds > 0.0)
            setHostDeadline(seconds);
    }
    ~HostDeadlineScope() { clearHostDeadline(); }
    HostDeadlineScope(const HostDeadlineScope &) = delete;
    HostDeadlineScope &operator=(const HostDeadlineScope &) = delete;
};

/**
 * Loop-iteration stride at which System::run polls host-side conditions
 * (the wall-clock deadline and the termination-signal flag).  Defaults
 * to 4096; overridable via the DBSIM_DEADLINE_STRIDE environment
 * variable (clamped to >= 1).  The stride only changes how fast the
 * host notices a deadline or signal -- simulated behavior and reports
 * are bitwise-identical at any stride (tested in test_checkpoint.cpp).
 */
std::uint32_t deadlinePollStride();

/**
 * Install the cooperative SIGINT/SIGTERM handler: the first signal sets
 * a flag the run loop polls (writing a checkpoint and throwing
 * SimInterruptedError); a second signal falls back to the default
 * disposition (SA_RESETHAND), so a stuck process can still be killed.
 * Opt-in: benchmarks with --checkpoint-dir install it; libraries and
 * tests that own their own signal handling are unaffected.
 */
void installCheckpointSignalHandler();

/** True when a termination signal has been received (and not consumed). */
bool checkpointSignalPending();

/** Consume the pending-signal flag; returns the signal number (0 if
 *  none was pending). */
int consumeCheckpointSignal();

/**
 * Parse a nonnegative cycle count from environment variable @p name.
 * Returns 0 (feature disabled) when the variable is unset or empty.
 * Invalid values -- non-numeric text, trailing junk, negative numbers,
 * overflow -- emit a DBSIM_WARN naming the variable and also return 0,
 * instead of strtoull's silent garbage-to-0 mapping.
 */
Cycles cyclesFromEnv(const char *name);

/** One-line per-CPU progress summary for periodic DBSIM_DEBUG tracing. */
std::string progressLine(const System &sys);

/**
 * Full machine-state dump: per-CPU head stall category and pipeline
 * state, MSHR / stream-buffer occupancy, scheduler queue depths, and
 * directory population.
 */
std::string machineStateDump(const System &sys);

} // namespace dbsim::sim

#endif // DBSIM_SIM_DIAGNOSTICS_HPP
