/**
 * @file
 * Diagnostic machine-state dumps and progress tracing (the simulation
 * integrity layer's observability half).
 *
 * machineStateDump() renders the whole machine -- per-CPU run state and
 * head-of-window stall category, pipeline/window occupancy, MSHR and
 * stream-buffer occupancy, scheduler queue depths and wake horizons, and
 * directory population -- as human-readable text.  The System registers
 * it as a crash-dump callback (common/log.hpp), so any DBSIM_PANIC during
 * a run emits it, and the forward-progress watchdog embeds it in its
 * panic message.
 *
 * progressLine() is the periodic one-line trace formerly printf'd by
 * System::run under DBSIM_DEBUG; cyclesFromEnv() is the hardened parser
 * for that knob (warns on garbage instead of silently reading 0).
 */

#ifndef DBSIM_SIM_DIAGNOSTICS_HPP
#define DBSIM_SIM_DIAGNOSTICS_HPP

#include <string>

#include "common/types.hpp"

namespace dbsim::sim {

class System;

/**
 * Parse a nonnegative cycle count from environment variable @p name.
 * Returns 0 (feature disabled) when the variable is unset or empty.
 * Invalid values -- non-numeric text, trailing junk, negative numbers,
 * overflow -- emit a DBSIM_WARN naming the variable and also return 0,
 * instead of strtoull's silent garbage-to-0 mapping.
 */
Cycles cyclesFromEnv(const char *name);

/** One-line per-CPU progress summary for periodic DBSIM_DEBUG tracing. */
std::string progressLine(const System &sys);

/**
 * Full machine-state dump: per-CPU head stall category and pipeline
 * state, MSHR / stream-buffer occupancy, scheduler queue depths, and
 * directory population.
 */
std::string machineStateDump(const System &sys);

} // namespace dbsim::sim

#endif // DBSIM_SIM_DIAGNOSTICS_HPP
