#include "sim/node.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::sim {

using coher::AccessClass;
using mem::CoherState;

Node::Node(CpuId id, const NodeParams &params, mem::PageMap *page_map,
           coher::CoherenceFabric *fabric)
    : id_(id), params_(params), page_map_(page_map), fabric_(fabric),
      l1i_(params.l1i.size_bytes, params.l1i.assoc, params.l1i.line_bytes),
      l1d_(params.l1d.size_bytes, params.l1d.assoc, params.l1d.line_bytes),
      l2_(params.l2.size_bytes, params.l2.assoc, params.l2.line_bytes),
      l1d_mshr_(params.l1d.mshrs), l2_mshr_(params.l2.mshrs),
      itlb_(params.perfect_itlb ? 0 : params.itlb_entries,
            params.page_bytes),
      dtlb_(params.perfect_dtlb ? 0 : params.dtlb_entries,
            params.page_bytes),
      sbuf_(params.stream_buffer_entries, params.l1i.line_bytes)
{
    if (params.l1i.line_bytes != params.l2.line_bytes ||
        params.l1d.line_bytes != params.l2.line_bytes) {
        DBSIM_FATAL("all cache levels must share one line size");
    }
}

void
Node::resetStats()
{
    stats_ = NodeStats{};
    // MSHR / stream-buffer / TLB statistics are embedded in their
    // components; reset the resettable ones.
    l1d_mshr_.stats().occupancy.reset();
    l1d_mshr_.stats().read_occupancy.reset();
    l2_mshr_.stats().occupancy.reset();
    l2_mshr_.stats().read_occupancy.reset();
}

void
Node::finalizeStats(Cycles now)
{
    l1d_mshr_.drain(now);
    l2_mshr_.drain(now);
}

// ---------------------------------------------------------------------
// Inclusion-maintaining line insertion
// ---------------------------------------------------------------------

void
Node::insertL1d(Addr block, CoherState st)
{
    if (auto ev = l1d_.insert(block, st)) {
        if (ev->state == CoherState::Modified) {
            // Dirty L1 victim folds into the L2 copy; in the
            // non-inclusive hierarchy the L2 may no longer hold the
            // line, in which case the victim re-enters the L2.
            if (l2_.contains(ev->block))
                l2_.setState(ev->block, CoherState::Modified);
            else
                insertL2(ev->block, CoherState::Modified, 0);
        }
    }
}

void
Node::insertL1i(Addr block)
{
    (void)l1i_.insert(block, CoherState::Shared);
}

void
Node::insertL2(Addr block, CoherState st, Cycles now)
{
    if (auto ev = l2_.insert(block, st)) {
        // Non-inclusive hierarchy (as in RSIM's cache model): if an L1
        // still holds the victim, the line simply lives on there and
        // the node remains its owner/sharer at the directory.  Only
        // when no L1 copy remains does the node give the line up.
        if (l1d_.contains(ev->block) || l1i_.contains(ev->block))
            return;
        const bool dirty = ev->state == CoherState::Modified;
        if (core_)
            core_->onLineInvalidated(ev->block);
        fabric_->evict(id_, ev->block, page_map_->homeOf(ev->block), dirty,
                       now);
    }
}

// ---------------------------------------------------------------------
// Shared L2 access path
// ---------------------------------------------------------------------

Node::L2Result
Node::accessL2(Addr block, std::uint32_t home, Addr pc, bool is_write,
               Cycles now, bool count_access)
{
    l2_mshr_.drain(now);

    // Secondary miss: coalesce into the outstanding register.
    if (l2_mshr_.outstanding(block)) {
        if (count_access) {
            ++stats_.l2_accesses;
            ++stats_.l2_delayed_hits;
        }
        const Cycles ready = l2_mshr_.coalesce(block, !is_write, now);
        auto it = pending_cls_.find(block);
        const AccessClass cls =
            it != pending_cls_.end() ? it->second : AccessClass::L2Hit;
        if (is_write) {
            // Approximation: a write coalescing into an outstanding read
            // upgrades the filled line silently (see DESIGN.md).
            l2_.setState(block, CoherState::Modified);
        }
        return {std::max(ready, now + params_.l2.hit_time), cls, true};
    }

    // Tag lookup first: a refused access must not hold any resource
    // (retries would otherwise inflate the port's reservation horizon).
    const auto st = l2_.access(block);
    const bool hit = st && (!is_write || *st == CoherState::Modified ||
                            *st == CoherState::Exclusive);
    if (!hit && l2_mshr_.full())
        return {0, AccessClass::L2Hit, false}; // retried; not counted

    // Pipelined L2: the port is held briefly, the data is available
    // after the hit latency.
    const Cycles port_done = l2_port_.acquire(now, params_.l2_port_hold);
    const Cycles access_start = port_done - params_.l2_port_hold;
    const Cycles hit_ready = access_start + params_.l2.hit_time;

    if (hit) {
        if (count_access)
            ++stats_.l2_accesses;
        if (is_write)
            l2_.setState(block, CoherState::Modified);
        return {hit_ready, AccessClass::L2Hit, true};
    }

    // Primary L2 miss (or write upgrade on a Shared line).
    if (count_access) {
        ++stats_.l2_accesses;
        ++stats_.l2_misses;
    }
    const coher::FabricResult fr =
        is_write ? fabric_->write(id_, block, home, hit_ready, pc)
                 : fabric_->read(id_, block, home, hit_ready, pc);
    l2_mshr_.allocate(block, !is_write, now, fr.ready);
    pending_cls_[block] = fr.cls;
    insertL2(block, fr.grant, now);
    return {fr.ready, fr.cls, true};
}

// ---------------------------------------------------------------------
// CoreMemIf
// ---------------------------------------------------------------------

bool
Node::l1dPortAvailable(Cycles now)
{
    if (l1d_port_cycle_ != now)
        return params_.l1d.ports > 0;
    return l1d_ports_used_ < params_.l1d.ports;
}

void
Node::consumeL1dPort(Cycles now)
{
    if (l1d_port_cycle_ != now) {
        l1d_port_cycle_ = now;
        l1d_ports_used_ = 0;
    }
    ++l1d_ports_used_;
}

std::optional<cpu::MemAccessResult>
Node::dataAccess(Addr vaddr, Addr pc, bool is_write, Cycles now,
                 bool prefetch, Cycles *retry_at)
{
    l1d_mshr_.drain(now);
    if (retry_at)
        *retry_at = now + 1;

    if (!prefetch && !l1dPortAvailable(now))
        return std::nullopt; // port conflict: retry next cycle

    const bool dtlb_miss = !prefetch && !dtlb_.access(vaddr);
    const Addr paddr = page_map_->translate(vaddr, id_);
    const Addr block = l2_.blockOf(paddr);
    const std::uint32_t home = page_map_->homeOf(paddr);
    const Cycles start =
        now + (dtlb_miss ? params_.tlb_miss_penalty : 0);

    // Delayed hit: the line's tags are installed when the miss issues,
    // so an access while the fill is still in flight must coalesce on
    // the MSHR (and count as a miss), not hit in one cycle.
    if (l1d_mshr_.outstanding(block)) {
        if (!prefetch) {
            consumeL1dPort(now);
            ++stats_.l1d_accesses;
            ++stats_.l1d_delayed_hits;
        }
        const Cycles ready = l1d_mshr_.coalesce(block, !is_write, now);
        auto it = pending_cls_.find(block);
        const AccessClass cls =
            it != pending_cls_.end() ? it->second : AccessClass::L2Hit;
        if (is_write) {
            l1d_.setState(block, CoherState::Modified);
            l2_.setState(block, CoherState::Modified);
        }
        return cpu::MemAccessResult{std::max(ready, start + 1), cls, block,
                                    dtlb_miss};
    }

    // L1 data cache.
    const auto l1 = l1d_.access(block);
    if (l1 && (!is_write || *l1 == CoherState::Modified ||
               *l1 == CoherState::Exclusive)) {
        if (!prefetch) {
            consumeL1dPort(now);
            ++stats_.l1d_accesses;
        }
        if (is_write && *l1 != CoherState::Modified) {
            l1d_.setState(block, CoherState::Modified);
            l2_.setState(block, CoherState::Modified);
        }
        return cpu::MemAccessResult{start + params_.l1d.hit_time,
                                    AccessClass::L1Hit, block, dtlb_miss};
    }

    // L1 miss (or write upgrade).
    if (l1d_mshr_.outstanding(block)) {
        // Secondary miss: coalesce.
        if (!prefetch) {
            consumeL1dPort(now);
            ++stats_.l1d_accesses;
            ++stats_.l1d_misses;
        }
        const Cycles ready = l1d_mshr_.coalesce(block, !is_write, now);
        auto it = pending_cls_.find(block);
        const AccessClass cls =
            it != pending_cls_.end() ? it->second : AccessClass::L2Hit;
        if (is_write) {
            // See DESIGN.md: writes coalescing into an outstanding read
            // miss upgrade the line on fill.
            l1d_.setState(block, CoherState::Modified);
            l2_.setState(block, CoherState::Modified);
        }
        return cpu::MemAccessResult{std::max(ready, start + 1), cls, block,
                                    dtlb_miss};
    }
    if (l1d_mshr_.full()) {
        if (prefetch)
            ++stats_.prefetches_dropped;
        if (retry_at)
            *retry_at = l1d_mshr_.earliestDone();
        return std::nullopt;
    }

    const L2Result l2r =
        accessL2(block, home, pc, is_write, start + params_.l1d.hit_time,
                 /*count_access=*/!prefetch);
    if (!l2r.accepted) {
        if (prefetch)
            ++stats_.prefetches_dropped;
        if (retry_at)
            *retry_at = l2_mshr_.earliestDone();
        return std::nullopt;
    }

    if (!prefetch) {
        consumeL1dPort(now);
        ++stats_.l1d_accesses;
        ++stats_.l1d_misses;
    }
    l1d_mshr_.allocate(block, !is_write, now, l2r.ready);
    insertL1d(block, is_write ? CoherState::Modified
                              : (l2_.state(block) == CoherState::Exclusive
                                     ? CoherState::Exclusive
                                     : CoherState::Shared));
    return cpu::MemAccessResult{l2r.ready, l2r.cls, block, dtlb_miss};
}

cpu::FetchResult
Node::instrFetch(Addr pc, Cycles now)
{
    ++stats_.l1i_fetches;
    const bool itlb_miss = !itlb_.access(pc);
    const Addr paddr = page_map_->translate(pc, id_);
    const Addr block = l2_.blockOf(paddr);
    const std::uint32_t home = page_map_->homeOf(paddr);
    const Cycles start =
        now + (itlb_miss ? params_.tlb_miss_penalty : 0);

    if (l1i_.access(block)) {
        // Delayed hit: honor an in-flight fill for this line.
        const Cycles fill = l2_mshr_.doneTimeOf(block);
        const Cycles ready = start + params_.l1i.hit_time;
        return cpu::FetchResult{fill == kNever ? ready
                                               : std::max(ready, fill),
                                itlb_miss, true};
    }

    ++stats_.l1i_misses;

    if (params_.perfect_icache) {
        return cpu::FetchResult{start + params_.l1i.hit_time, itlb_miss,
                                false};
    }

    // Probe the instruction stream buffer.
    std::vector<Addr> refills;
    Cycles sb_ready = 0;
    const bool sb_hit = sbuf_.probe(block, start, sb_ready, refills);

    Cycles ready;
    if (sb_hit) {
        ++stats_.l1i_sbuf_hits;
        ready = std::max(sb_ready, start + params_.l1i.hit_time);
        insertL1i(block);
    } else {
        // Miss everywhere: fetch the line through the L2.
        L2Result l2r = accessL2(block, home, pc, /*is_write=*/false,
                                start, /*count_access=*/true);
        if (!l2r.accepted) {
            // L2 MSHRs full: the fetch queues behind the outstanding
            // misses; charge the earliest time a register frees up.
            l2r = accessL2(block, home, pc, /*is_write=*/false,
                           start + params_.l2.hit_time,
                           /*count_access=*/false);
        }
        if (!l2r.accepted) {
            // Still full: conservatively wait out an L2 hit time; the
            // core will re-request the line.
            return cpu::FetchResult{now + params_.l2.hit_time, itlb_miss,
                                    false};
        }
        ready = l2r.ready;
        insertL1i(block);
    }

    // Issue the stream-buffer refill prefetches through the L2 (these
    // consume L2 bandwidth; useless ones cause the contention the paper
    // notes for oversized buffers).
    for (const Addr rb : refills) {
        if (l1i_.contains(rb)) {
            sbuf_.fill(rb, now); // already cached; trivially ready
            continue;
        }
        const L2Result pr = accessL2(rb, page_map_->homeOf(rb), pc,
                                     /*is_write=*/false, now,
                                     /*count_access=*/false);
        if (pr.accepted)
            sbuf_.fill(rb, pr.ready);
        else
            ++stats_.prefetches_dropped;
    }

    return cpu::FetchResult{ready, itlb_miss, false};
}

void
Node::flushHint(Addr vaddr, Cycles now)
{
    const Addr paddr = page_map_->translate(vaddr, id_);
    const Addr block = l2_.blockOf(paddr);
    ++stats_.flush_hints;
    fabric_->flush(id_, block, page_map_->homeOf(paddr), now);
}

// ---------------------------------------------------------------------
// CacheSite
// ---------------------------------------------------------------------

mem::CoherState
Node::siteState(Addr block)
{
    // Non-inclusive hierarchy: a line may live in an L1 without an L2
    // copy; report the strongest state held anywhere in the node.
    const CoherState l2s = l2_.state(block);
    if (l2s != CoherState::Invalid)
        return l2s;
    const CoherState l1s = l1d_.state(block);
    if (l1s != CoherState::Invalid)
        return l1s;
    if (l1i_.contains(block))
        return CoherState::Shared;
    return CoherState::Invalid;
}

void
Node::siteInvalidate(Addr block)
{
    l2_.invalidate(block);
    l1d_.invalidate(block);
    l1i_.invalidate(block);
    if (core_)
        core_->onLineInvalidated(block);
}

void
Node::siteDowngrade(Addr block)
{
    l2_.setState(block, CoherState::Shared);
    if (l1d_.contains(block))
        l1d_.setState(block, CoherState::Shared);
}

} // namespace dbsim::sim
