#include "sim/diagnostics.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hpp"
#include "sim/system.hpp"

namespace dbsim::sim {

namespace {

// Annotated host-timing code: the sweep deadline layer measures the
// *host* wall clock by design and never feeds simulated state or
// reported statistics (a timeout becomes a structured SweepFailure).
// Every wall-clock read below goes through this one sanctioned alias.
// dbsim-analyze: allow(determinism-wallclock)
using HostClock = std::chrono::steady_clock;

// Per-thread deadline state: each sweep worker arms its own item's
// deadline, so concurrently running simulations cannot time each other
// out.
thread_local bool t_deadline_armed = false;
thread_local double t_deadline_seconds = 0.0;
thread_local HostClock::time_point t_deadline{};

} // namespace

void
setHostDeadline(double seconds)
{
    if (seconds <= 0.0) {
        clearHostDeadline();
        return;
    }
    t_deadline_armed = true;
    t_deadline_seconds = seconds;
    t_deadline = HostClock::now() +
                 std::chrono::duration_cast<HostClock::duration>(
                     std::chrono::duration<double>(seconds));
}

void
clearHostDeadline()
{
    t_deadline_armed = false;
    t_deadline_seconds = 0.0;
}

bool
hostDeadlineArmed()
{
    return t_deadline_armed;
}

bool
hostDeadlineExpired()
{
    return t_deadline_armed && HostClock::now() >= t_deadline;
}

double
hostDeadlineSeconds()
{
    return t_deadline_armed ? t_deadline_seconds : 0.0;
}

namespace {

// Async-signal state: written only from the handler, read (and
// consumed) from the run loop's strided poll.
volatile std::sig_atomic_t g_signal_pending = 0;

extern "C" void
checkpointSignalTrampoline(int signo)
{
    g_signal_pending = signo;
}

} // namespace

std::uint32_t
deadlinePollStride()
{
    const Cycles v = cyclesFromEnv("DBSIM_DEADLINE_STRIDE");
    if (v == 0)
        return 4096;
    return static_cast<std::uint32_t>(
        std::min<Cycles>(v, ~std::uint32_t{0}));
}

void
installCheckpointSignalHandler()
{
#ifdef _WIN32
    std::signal(SIGINT, checkpointSignalTrampoline);
    std::signal(SIGTERM, checkpointSignalTrampoline);
#else
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = checkpointSignalTrampoline;
    sigemptyset(&sa.sa_mask);
    // One-shot: a second SIGINT/SIGTERM gets the default disposition,
    // so an operator can still kill a process stuck before the poll.
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
#endif
}

bool
checkpointSignalPending()
{
    return g_signal_pending != 0;
}

int
consumeCheckpointSignal()
{
    const int signo = g_signal_pending;
    g_signal_pending = 0;
    return signo;
}

Cycles
cyclesFromEnv(const char *name)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return 0;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE ||
        std::strchr(s, '-') != nullptr) {
        DBSIM_WARN(name, "=\"", s,
                   "\" is not a valid cycle count (expected a nonnegative "
                   "decimal integer); ignoring it");
        return 0;
    }
    return static_cast<Cycles>(v);
}

std::string
progressLine(const System &sys)
{
    std::ostringstream os;
    os << "[dbsim] cyc=" << sys.now() << " retired=" << sys.totalRetired();
    for (std::uint32_t i = 0; i < sys.numNodes(); ++i) {
        const cpu::Core &core = sys.core(i);
        os << " cpu" << i << "(" << (core.current() ? "run" : "idle") << ","
           << stallCatName(core.headCat()) << ") " << core.debugString();
    }
    return os.str();
}

std::string
machineStateDump(const System &sys)
{
    const Scheduler &sched = sys.scheduler();
    std::ostringstream os;
    os << "machine state @ cycle " << sys.now()
       << " (total retired=" << sys.totalRetired() << ")\n";
    for (std::uint32_t i = 0; i < sys.numNodes(); ++i) {
        const cpu::Core &core = sys.core(i);
        const Node &node = sys.node(i);
        os << "  cpu" << i << ": ";
        if (const cpu::ProcessContext *p = core.current()) {
            os << "running proc " << p->id() << " (retired=" << p->retired
               << "), head stall=" << stallCatName(core.headCat()) << ", "
               << core.debugString();
        } else {
            os << "idle";
        }
        os << "\n        sched: ready=" << sched.readyCount(i)
           << " blocked=" << sched.blockedCount(i);
        const Cycles wake = sched.nextWake(i);
        os << " next_wake=";
        if (wake == kNever)
            os << "never";
        else
            os << wake;
        const mem::MshrFile &l1d = node.l1dMshr();
        const mem::MshrFile &l2 = node.l2Mshr();
        os << "\n        l1d mshr " << l1d.inUse() << "/" << l1d.capacity();
        if (l1d.inUse())
            os << " (earliest fill @" << l1d.earliestDone() << ")";
        os << ", l2 mshr " << l2.inUse() << "/" << l2.capacity();
        if (l2.inUse())
            os << " (earliest fill @" << l2.earliestDone() << ")";
        if (node.streamBuffer().enabled()) {
            os << ", sbuf stuck=" << node.streamBuffer().unboundedEntries();
        }
        os << "\n";
    }
    const coher::CoherenceFabric &fabric = sys.fabric();
    os << "  directory: " << fabric.dirEntries() << " blocks tracked, "
       << fabric.dirCachedEntries() << " believed cached; "
       << fabric.stats().totalMisses() << " misses serviced ("
       << fabric.stats().dirtyMisses() << " dirty), "
       << fabric.stats().invalidations_sent << " invalidations, "
       << fabric.stats().writebacks << " writebacks\n";

    // Lock table and checker state are rendered from sorted snapshots:
    // both live in unordered containers, and a crash dump must be
    // bitwise-identical across runs (DESIGN.md §5c).
    const auto locks = sys.heldLocks();
    os << "  locks: " << locks.size() << " held";
    constexpr std::size_t kMaxLocksShown = 16;
    for (std::size_t i = 0; i < locks.size() && i < kMaxLocksShown; ++i) {
        os << (i == 0 ? " (" : " ") << "0x" << std::hex << locks[i].first
           << std::dec << ":p" << locks[i].second;
    }
    if (!locks.empty()) {
        if (locks.size() > kMaxLocksShown)
            os << " ... +" << locks.size() - kMaxLocksShown << " more";
        os << ")";
    }
    os << "\n";
    if (const coher::CoherenceChecker *chk = sys.checker()) {
        os << "  checker: " << chk->stats().audits << " audits, "
           << chk->stats().violations << " violations";
        const auto blocks = chk->violatingBlocks();
        constexpr std::size_t kMaxBlocksShown = 16;
        for (std::size_t i = 0;
             i < blocks.size() && i < kMaxBlocksShown; ++i) {
            os << (i == 0 ? " (blocks: " : " ") << "0x" << std::hex
               << blocks[i] << std::dec;
        }
        if (!blocks.empty()) {
            if (blocks.size() > kMaxBlocksShown)
                os << " ... +" << blocks.size() - kMaxBlocksShown << " more";
            os << ")";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace dbsim::sim
