/**
 * @file
 * One node of the CC-NUMA machine: the processor's cache hierarchy
 * (split L1 I/D caches, unified L2, MSHRs, TLBs, optional instruction
 * stream buffer) plus the glue to the coherence fabric.
 *
 * The Node implements cpu::CoreMemIf (data accesses and instruction
 * fetches from its core) and coher::CacheSite (invalidations and
 * downgrades from the fabric).  All caches are physically indexed and
 * tagged; the hierarchy is inclusive (an L2 invalidation or eviction
 * removes the L1 copies).
 */

#ifndef DBSIM_SIM_NODE_HPP
#define DBSIM_SIM_NODE_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "coherence/directory.hpp"
#include "cpu/interfaces.hpp"
#include "cpu/ooo_core.hpp"
#include "interconnect/network.hpp"
#include "memory/cache.hpp"
#include "memory/mshr.hpp"
#include "memory/page_map.hpp"
#include "memory/stream_buffer.hpp"
#include "memory/tlb.hpp"

namespace dbsim::sim {

/** Parameters of one cache level. */
struct CacheLevelParams
{
    std::uint64_t size_bytes;
    std::uint32_t assoc;
    std::uint32_t line_bytes;
    Cycles hit_time;
    std::uint32_t mshrs;
    std::uint32_t ports;
};

/** Node (cache hierarchy) parameters; defaults follow paper Figure 1,
 *  scaled as documented in DESIGN.md. */
struct NodeParams
{
    CacheLevelParams l1i{128 * 1024, 2, 64, 1, 8, 1};
    CacheLevelParams l1d{128 * 1024, 2, 64, 1, 8, 2};
    CacheLevelParams l2{8 * 1024 * 1024, 4, 64, 20, 8, 1};
    std::uint32_t itlb_entries = 128;
    std::uint32_t dtlb_entries = 128;
    std::uint32_t page_bytes = 8192;
    Cycles tlb_miss_penalty = 40;
    std::uint32_t stream_buffer_entries = 0; ///< 0 disables (base system)
    bool perfect_icache = false;             ///< idealization (Figure 4)
    bool perfect_itlb = false;
    bool perfect_dtlb = false;
    Cycles l2_port_hold = 4;                 ///< pipelined L2 occupancy
};

/** Cache-hierarchy statistics for one node. */
struct NodeStats
{
    std::uint64_t l1i_fetches = 0;   ///< fetch-line requests
    std::uint64_t l1i_misses = 0;    ///< L1I tag misses
    std::uint64_t l1i_sbuf_hits = 0; ///< ... of which the stream buffer caught
    std::uint64_t l1d_accesses = 0;
    std::uint64_t l1d_misses = 0;       ///< primary misses
    std::uint64_t l1d_delayed_hits = 0; ///< coalesced on an in-flight fill
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t l2_delayed_hits = 0;
    std::uint64_t prefetches_dropped = 0;
    std::uint64_t flush_hints = 0;

    double
    l1dMissRate() const
    {
        return l1d_accesses ? double(l1d_misses) / double(l1d_accesses) : 0.0;
    }

    double
    l2MissRate() const
    {
        return l2_accesses ? double(l2_misses) / double(l2_accesses) : 0.0;
    }
};

/**
 * A CC-NUMA node.  The core itself is owned by the Node but constructed
 * by the System (which supplies the environment interface).
 */
class Node : public cpu::CoreMemIf, public coher::CacheSite
{
  public:
    Node(CpuId id, const NodeParams &params, mem::PageMap *page_map,
         coher::CoherenceFabric *fabric);

    CpuId id() const { return id_; }

    /** Attach the core after construction (two-phase init). */
    void attachCore(cpu::Core *core) { core_ = core; }

    // CoreMemIf
    std::optional<cpu::MemAccessResult>
    dataAccess(Addr vaddr, Addr pc, bool is_write, Cycles now,
               bool prefetch, Cycles *retry_at = nullptr) override;
    cpu::FetchResult instrFetch(Addr pc, Cycles now) override;
    void flushHint(Addr vaddr, Cycles now) override;

    // CacheSite
    mem::CoherState siteState(Addr block) override;
    void siteInvalidate(Addr block) override;
    void siteDowngrade(Addr block) override;

    const NodeStats &stats() const { return stats_; }
    const mem::MshrFile &l1dMshr() const { return l1d_mshr_; }
    const mem::MshrFile &l2Mshr() const { return l2_mshr_; }
    const mem::StreamBuffer &streamBuffer() const { return sbuf_; }
    const mem::MshrStats &l1dMshrStats() const { return l1d_mshr_.stats(); }
    const mem::MshrStats &l2MshrStats() const { return l2_mshr_.stats(); }
    const mem::StreamBufferStats &streamBufferStats() const
    {
        return sbuf_.stats();
    }
    const mem::TlbStats &itlbStats() const { return itlb_.stats(); }
    const mem::TlbStats &dtlbStats() const { return dtlb_.stats(); }

    /** Advance occupancy trackers to @p now (call at end of run). */
    void finalizeStats(Cycles now);

    /** Tag-array access for tests and diagnostics. */
    const mem::CacheArray &l1iArray() const { return l1i_; }
    const mem::CacheArray &l1dArray() const { return l1d_; }
    const mem::CacheArray &l2Array() const { return l2_; }

    void resetStats();

    void
    saveState(snap::Writer &w) const
    {
        l1i_.saveState(w);
        l1d_.saveState(w);
        l2_.saveState(w);
        l1d_mshr_.saveState(w);
        l2_mshr_.saveState(w);
        itlb_.saveState(w);
        dtlb_.saveState(w);
        sbuf_.saveState(w);
        l2_port_.saveState(w);
        w.u64(pending_cls_.size());
        for (Addr block : snap::sortedKeys(pending_cls_)) {
            w.u64(block);
            w.u8(static_cast<std::uint8_t>(pending_cls_.at(block)));
        }
        w.u64(l1d_port_cycle_);
        w.u32(l1d_ports_used_);
        w.u64(stats_.l1i_fetches);
        w.u64(stats_.l1i_misses);
        w.u64(stats_.l1i_sbuf_hits);
        w.u64(stats_.l1d_accesses);
        w.u64(stats_.l1d_misses);
        w.u64(stats_.l1d_delayed_hits);
        w.u64(stats_.l2_accesses);
        w.u64(stats_.l2_misses);
        w.u64(stats_.l2_delayed_hits);
        w.u64(stats_.prefetches_dropped);
        w.u64(stats_.flush_hints);
    }

    void
    restoreState(snap::Reader &r)
    {
        l1i_.restoreState(r);
        l1d_.restoreState(r);
        l2_.restoreState(r);
        l1d_mshr_.restoreState(r);
        l2_mshr_.restoreState(r);
        itlb_.restoreState(r);
        dtlb_.restoreState(r);
        sbuf_.restoreState(r);
        l2_port_.restoreState(r);
        pending_cls_.clear();
        const std::size_t n = r.length(9);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr block = r.u64();
            pending_cls_[block] = static_cast<coher::AccessClass>(r.u8());
        }
        l1d_port_cycle_ = r.u64();
        l1d_ports_used_ = r.u32();
        stats_.l1i_fetches = r.u64();
        stats_.l1i_misses = r.u64();
        stats_.l1i_sbuf_hits = r.u64();
        stats_.l1d_accesses = r.u64();
        stats_.l1d_misses = r.u64();
        stats_.l1d_delayed_hits = r.u64();
        stats_.l2_accesses = r.u64();
        stats_.l2_misses = r.u64();
        stats_.l2_delayed_hits = r.u64();
        stats_.prefetches_dropped = r.u64();
        stats_.flush_hints = r.u64();
    }

  private:
    /** L2 access shared by data, ifetch, and stream-buffer prefetch
     *  paths.  Performs the lookup, goes to the fabric on a miss, and
     *  maintains inclusion.  Returns completion time and class. */
    struct L2Result
    {
        Cycles ready;
        coher::AccessClass cls;
        bool accepted; ///< false if the L2 MSHRs were full
    };
    L2Result accessL2(Addr block, std::uint32_t home, Addr pc,
                      bool is_write, Cycles now, bool count_access);

    void insertL1d(Addr block, mem::CoherState st);
    void insertL1i(Addr block);
    void insertL2(Addr block, mem::CoherState st, Cycles now);

    bool l1dPortAvailable(Cycles now);
    void consumeL1dPort(Cycles now);

    CpuId id_;
    NodeParams params_;
    mem::PageMap *page_map_;
    coher::CoherenceFabric *fabric_;
    cpu::Core *core_ = nullptr;

    mem::CacheArray l1i_;
    mem::CacheArray l1d_;
    mem::CacheArray l2_;
    mem::MshrFile l1d_mshr_;
    mem::MshrFile l2_mshr_;
    mem::Tlb itlb_;
    mem::Tlb dtlb_;
    mem::StreamBuffer sbuf_;
    net::Resource l2_port_;

    /** Last-known service class per outstanding block (for coalesced
     *  secondary misses' attribution). */
    std::unordered_map<Addr, coher::AccessClass> pending_cls_;

    Cycles l1d_port_cycle_ = kNever;
    std::uint32_t l1d_ports_used_ = 0;

    NodeStats stats_;
};

} // namespace dbsim::sim

#endif // DBSIM_SIM_NODE_HPP
