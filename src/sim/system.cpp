#include "sim/system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/errors.hpp"
#include "common/log.hpp"
#include "sim/diagnostics.hpp"

namespace dbsim::sim {

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

namespace {

void
requirePow2(const std::string &field, std::uint64_t v)
{
    if (!isPow2(v)) {
        throw ConfigError(field, "must be a nonzero power of two, got " +
                                     std::to_string(v));
    }
}

void
requireNonzero(const std::string &field, std::uint64_t v, const char *why)
{
    if (v == 0)
        throw ConfigError(field, std::string("must be at least 1; ") + why);
}

void
validateCacheLevel(const std::string &prefix, const CacheLevelParams &p)
{
    requirePow2(prefix + ".size_bytes", p.size_bytes);
    requirePow2(prefix + ".line_bytes", p.line_bytes);
    requireNonzero(prefix + ".assoc", p.assoc,
                   "a cache needs at least one way");
    if (p.size_bytes %
            (static_cast<std::uint64_t>(p.assoc) * p.line_bytes) !=
        0) {
        throw ConfigError(prefix + ".size_bytes",
                          "size must be divisible by assoc * line_bytes (" +
                              std::to_string(p.size_bytes) + " % (" +
                              std::to_string(p.assoc) + " * " +
                              std::to_string(p.line_bytes) + ") != 0)");
    }
    const std::uint64_t sets =
        p.size_bytes / (static_cast<std::uint64_t>(p.assoc) * p.line_bytes);
    if (!isPow2(sets)) {
        throw ConfigError(prefix + ".size_bytes",
                          "set count " + std::to_string(sets) +
                              " must be a power of two; adjust size or "
                              "associativity");
    }
    requireNonzero(prefix + ".mshrs", p.mshrs,
                   "a lockup-free cache needs at least one MSHR");
    if (p.mshrs > 64) {
        throw ConfigError(prefix + ".mshrs",
                          "at most 64 MSHRs are supported (occupancy "
                          "statistics track 64 registers), got " +
                              std::to_string(p.mshrs));
    }
}

} // namespace

void
SystemParams::validate() const
{
    if (num_nodes < 1 || num_nodes > 32) {
        throw ConfigError("system.num_nodes",
                          "the coherence fabric supports 1..32 nodes (the "
                          "directory keeps a 32-bit sharer mask), got " +
                              std::to_string(num_nodes));
    }

    validateCacheLevel("system.node.l1i", node.l1i);
    validateCacheLevel("system.node.l1d", node.l1d);
    validateCacheLevel("system.node.l2", node.l2);
    if (node.l1i.line_bytes != node.l2.line_bytes ||
        node.l1d.line_bytes != node.l2.line_bytes) {
        throw ConfigError("system.node.*.line_bytes",
                          "all cache levels must share one line size "
                          "(inclusion bookkeeping is per-line): l1i=" +
                              std::to_string(node.l1i.line_bytes) +
                              " l1d=" + std::to_string(node.l1d.line_bytes) +
                              " l2=" + std::to_string(node.l2.line_bytes));
    }
    requireNonzero("system.node.l1d.ports", node.l1d.ports,
                   "a portless L1D would never accept an access");

    requirePow2("system.node.page_bytes", node.page_bytes);
    if (node.page_bytes < node.l2.line_bytes) {
        throw ConfigError("system.node.page_bytes",
                          "a page must hold at least one cache line (" +
                              std::to_string(node.page_bytes) + " < " +
                              std::to_string(node.l2.line_bytes) + ")");
    }
    requireNonzero("system.node.itlb_entries", node.itlb_entries,
                   "use perfect_itlb for an ideal iTLB instead of 0 entries");
    requireNonzero("system.node.dtlb_entries", node.dtlb_entries,
                   "use perfect_dtlb for an ideal dTLB instead of 0 entries");
    if (node.stream_buffer_entries > 64) {
        throw ConfigError("system.node.stream_buffer_entries",
                          "at most 64 stream-buffer entries are supported, "
                          "got " +
                              std::to_string(node.stream_buffer_entries));
    }

    requireNonzero("system.core.issue_width", core.issue_width,
                   "the core must issue at least one instruction per cycle");
    requireNonzero("system.core.window_size", core.window_size,
                   "the instruction window needs at least one slot");
    if (core.window_size < core.issue_width) {
        throw ConfigError("system.core.window_size",
                          "the window must cover at least one issue group (" +
                              std::to_string(core.window_size) + " < " +
                              std::to_string(core.issue_width) + ")");
    }
    requireNonzero("system.core.mem_queue_size", core.mem_queue_size,
                   "the memory queue needs at least one slot");
    requireNonzero("system.core.write_buffer_size", core.write_buffer_size,
                   "the write buffer needs at least one slot");
    requireNonzero("system.core.max_spec_branches", core.max_spec_branches,
                   "fetch stops forever at the first branch otherwise");
    requirePow2("system.core.fetch_line_bytes", core.fetch_line_bytes);
    if (core.fetch_line_bytes != node.l1i.line_bytes) {
        DBSIM_WARN("core.fetch_line_bytes (", core.fetch_line_bytes,
                   ") differs from the L1I line size (", node.l1i.line_bytes,
                   "); fetch-block accounting will be inconsistent");
    }

    requirePow2("system.page_bins", page_bins);
    requireNonzero("system.sched_quantum", sched_quantum,
                   "a zero time slice would preempt every cycle");
    requireNonzero("system.max_cycles", max_cycles,
                   "the safety cap would fire before the first cycle");
    if (!(fabric.migratory_read_factor > 0.0)) {
        throw ConfigError("system.fabric.migratory_read_factor",
                          "must be positive (1.0 = no scaling, 0.6 = the "
                          "paper's flush upper bound)");
    }
}

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

namespace {

/** Validate before any member is built (used in the ctor init list). */
const SystemParams &
validated(const SystemParams &params)
{
    params.validate();
    return params;
}

bool
coherenceCheckRequested(const SystemParams &params)
{
    if (params.check_coherence)
        return true;
    const char *env = std::getenv("DBSIM_CHECK");
    return env && *env && std::strcmp(env, "0") != 0;
}

} // namespace

System::System(const SystemParams &params)
    : params_(validated(params)),
      page_map_(params.node.page_bytes, params.page_bins, params.num_nodes),
      fabric_(params.num_nodes, params.fabric, params.mesh),
      sched_(params.num_nodes)
{
    cpus_.resize(params_.num_nodes);
    for (std::uint32_t i = 0; i < params_.num_nodes; ++i) {
        cpus_[i].node = std::make_unique<Node>(i, params_.node, &page_map_,
                                               &fabric_);
        cpus_[i].core = std::make_unique<cpu::Core>(i, params_.core,
                                                    cpus_[i].node.get(),
                                                    this);
        cpus_[i].node->attachCore(cpus_[i].core.get());
        fabric_.attachSite(i, cpus_[i].node.get());
    }
    if (coherenceCheckRequested(params_)) {
        checker_ = std::make_unique<coher::CoherenceChecker>();
        fabric_.attachChecker(checker_.get());
    }
    // Any panic while this machine exists dumps its state first.
    crash_dump_handle_ = registerCrashDump(
        "machine state", [this] { return machineStateDump(*this); });
}

System::~System()
{
    unregisterCrashDump(crash_dump_handle_);
}

cpu::ProcessContext *
System::addProcess(std::unique_ptr<trace::TraceSource> src, CpuId affinity)
{
    DBSIM_ASSERT(affinity < params_.num_nodes, "bad process affinity");
    const ProcId id = static_cast<ProcId>(procs_.size());
    sources_.push_back(std::move(src));
    procs_.push_back(std::make_unique<cpu::ProcessContext>(
        id, sources_.back().get()));
    proc_cpu_.push_back(affinity);
    sched_.addProcess(procs_.back().get(), affinity);
    return procs_.back().get();
}

std::uint64_t
System::totalRetired() const
{
    std::uint64_t n = retired_before_reset_;
    for (const auto &cs : cpus_)
        n += cs.core->stats().instructions;
    return n;
}

void
System::resetStats()
{
    for (auto &cs : cpus_) {
        retired_before_reset_ += cs.core->stats().instructions;
        cs.core->resetStats();
        cs.node->resetStats();
    }
    window_start_ = now_;
}

// ---------------------------------------------------------------------
// CoreEnvIf: locks
// ---------------------------------------------------------------------

bool
System::lockIsFree(Addr addr, ProcId proc) const
{
    auto it = lock_holder_.find(addr);
    return it == lock_holder_.end() || it->second == proc;
}

bool
System::lockTryAcquire(Addr addr, ProcId proc)
{
    auto [it, inserted] = lock_holder_.emplace(addr, proc);
    return inserted || it->second == proc;
}

void
System::lockRelease(Addr addr, ProcId proc)
{
    auto it = lock_holder_.find(addr);
    if (it != lock_holder_.end() && it->second == proc)
        lock_holder_.erase(it);
}

std::vector<std::pair<Addr, ProcId>>
System::heldLocks() const
{
    std::vector<std::pair<Addr, ProcId>> locks;
    locks.reserve(lock_holder_.size());
    // dbsim-analyze: allow(determinism-unordered-iteration) -- collected
    // into a vector and sorted immediately below.
    for (const auto &[addr, proc] : lock_holder_)
        locks.emplace_back(addr, proc);
    std::sort(locks.begin(), locks.end());
    return locks;
}

// ---------------------------------------------------------------------
// CoreEnvIf: scheduling notifications
// ---------------------------------------------------------------------

void
System::onSyscallBlock(ProcId proc, Cycles latency)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    cs.pending = Pending::Block;
    cs.pending_latency = latency;
}

void
System::onLockYield(ProcId proc)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    if (cs.pending == Pending::None)
        cs.pending = Pending::Yield;
}

void
System::onProcessDone(ProcId proc)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    cs.pending = Pending::Done;
}

void
System::handlePending(CpuState &cs)
{
    if (cs.pending == Pending::None)
        return;
    cpu::ProcessContext *proc = cs.core->current();
    DBSIM_ASSERT(proc != nullptr, "pending action without process");
    switch (cs.pending) {
      case Pending::Block:
        cs.core->detachCurrent();
        sched_.block(proc, now_ + cs.pending_latency);
        break;
      case Pending::Yield:
        cs.core->detachCurrent();
        sched_.makeReady(proc);
        break;
      case Pending::Done:
        cs.core->detachCurrent();
        sched_.finish(proc);
        break;
      case Pending::None:
        break;
    }
    cs.pending = Pending::None;
}

// ---------------------------------------------------------------------
// End-of-run quiescence audit
// ---------------------------------------------------------------------

void
System::verifyQuiesced() const
{
    for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
        const Node &n = *cpus_[i].node;
        if (n.l1dMshr().unboundedEntries() != 0 ||
            n.l2Mshr().unboundedEntries() != 0) {
            DBSIM_PANIC("quiescence check failed: cpu", i,
                        " has MSHR entries with no fill time (l1d=",
                        n.l1dMshr().unboundedEntries(),
                        " l2=", n.l2Mshr().unboundedEntries(), ")");
        }
        if (n.streamBuffer().unboundedEntries() != 0) {
            DBSIM_PANIC("quiescence check failed: cpu", i,
                        " has stream-buffer prefetches that can never "
                        "arrive (",
                        n.streamBuffer().unboundedEntries(), " entries)");
        }
        if (!sched_.anyIncomplete() && cpus_[i].core->current() != nullptr) {
            DBSIM_PANIC("quiescence check failed: every process finished "
                        "but cpu",
                        i, " still holds one");
        }
    }
}

// ---------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------

RunResult
System::run(std::uint64_t max_instructions,
            std::uint64_t warmup_instructions)
{
    // Run-loop carry state: a restored run continues the interrupted
    // run's warmup and watchdog bookkeeping instead of reinitializing
    // (carry_valid_ is armed by deserializeState).
    if (!carry_valid_) {
        warmed_ = warmup_instructions == 0;
        window_start_ = now_;
        wd_last_retired_ = totalRetired();
        wd_last_progress_ = now_;
    }
    carry_valid_ = false;
    const Cycles deadline = now_ + params_.max_cycles;

    // Optional progress tracing: DBSIM_DEBUG=<cycle interval>.
    const Cycles dbg_every = cyclesFromEnv("DBSIM_DEBUG");
    Cycles dbg_next = dbg_every;

    // Periodic checkpoint cadence: always recomputed from the *current*
    // interval (a checkpoint restores under any --checkpoint-interval).
    if (params_.checkpoint_interval) {
        ckpt_next_ =
            (now_ / params_.checkpoint_interval + 1) *
            params_.checkpoint_interval;
    }

    // Host-side condition polling (sweep fault isolation + cooperative
    // SIGINT/SIGTERM).  Polling the wall clock or the signal flag every
    // iteration would be measurable, so the checks run every
    // deadlinePollStride() loop iterations (DBSIM_DEADLINE_STRIDE;
    // default 4096) -- still sub-second reaction for any simulation
    // actually making iterations.  The stride never affects simulated
    // behavior, only how fast the host notices.
    const bool deadline_armed = hostDeadlineArmed();
    const std::uint32_t poll_stride = deadlinePollStride();
    std::uint32_t poll_count = 0;

    // Whether a terminal condition should leave a checkpoint behind.
    const bool ckpt_on_unwind = !params_.checkpoint_path.empty();
    bool stopped_early = false;

    while (sched_.anyIncomplete() && totalRetired() < max_instructions) {
        // Early stop for bisection / restore tests: capture the state
        // at the top of this iteration, before any epoch hashing or
        // machine activity, so a restored run resumes at exactly the
        // point an uninterrupted run would next act.
        if (params_.stop_at_cycle && now_ >= params_.stop_at_cycle) {
            if (ckpt_on_unwind)
                saveCheckpoint(params_.checkpoint_path);
            stopped_early = true;
            break;
        }

        // Epoch state-hashing: one sample per boundary crossing.  Event
        // skipping can jump several boundaries at once; every crossed
        // boundary gets an entry (sharing one hash -- no event fired in
        // between, so the machine state is the same at each).
        if (params_.state_hash_interval && now_ >= epoch_next_) {
            const std::uint64_t h = stateHash();
            while (now_ >= epoch_next_) {
                epoch_hashes_.push_back(EpochHash{epoch_next_, h});
                epoch_next_ += params_.state_hash_interval;
            }
        }

        if (params_.checkpoint_interval && ckpt_on_unwind &&
            now_ >= ckpt_next_) {
            saveCheckpoint(params_.checkpoint_path);
            ckpt_next_ =
                (now_ / params_.checkpoint_interval + 1) *
                params_.checkpoint_interval;
        }

        if (++poll_count >= poll_stride) {
            poll_count = 0;
            if (checkpointSignalPending()) {
                if (ckpt_on_unwind)
                    saveCheckpoint(params_.checkpoint_path);
                const int signo = consumeCheckpointSignal();
                std::ostringstream msg;
                msg << "termination signal " << signo
                    << " received at cycle " << now_ << "; "
                    << (ckpt_on_unwind ? "checkpoint written to " +
                                             params_.checkpoint_path
                                       : std::string("no checkpoint "
                                                     "path configured"));
                throw SimInterruptedError(msg.str(),
                                          machineStateDump(*this));
            }
            if (deadline_armed && hostDeadlineExpired()) {
                if (ckpt_on_unwind)
                    saveCheckpoint(params_.checkpoint_path);
                std::ostringstream msg;
                msg << "host item deadline (" << hostDeadlineSeconds()
                    << "s) expired at cycle " << now_
                    << "; simulation abandoned";
                throw SimTimeoutError(msg.str(), machineStateDump(*this));
            }
        }
        if (now_ >= deadline) {
            std::cerr << machineStateDump(*this);
            DBSIM_FATAL("simulation exceeded the max_cycles safety cap (",
                        params_.max_cycles,
                        " cycles); machine state dumped to stderr");
        }
        if (params_.watchdog_cycles) {
            const std::uint64_t retired = totalRetired();
            if (retired != wd_last_retired_) {
                wd_last_retired_ = retired;
                wd_last_progress_ = now_;
            } else if (now_ - wd_last_progress_ >= params_.watchdog_cycles) {
                // Livelock / deadlock: nothing retired anywhere for a
                // whole window.  The machine-state dump (also attached
                // by the panic path's crash-dump registry) names each
                // CPU's run state, head stall, and wake horizon.
                DBSIM_PANIC("forward-progress watchdog: no instruction "
                            "retired in ",
                            now_ - wd_last_progress_, " cycles (window=",
                            params_.watchdog_cycles,
                            "); machine is livelocked or deadlocked");
            }
        }
        if (dbg_every && now_ >= dbg_next) {
            dbg_next = now_ + dbg_every;
            std::cerr << progressLine(*this) << "\n";
        }

        // Dispatch processes onto idle cores.
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            if (!cs.core->current()) {
                if (cpu::ProcessContext *p = sched_.pickNext(i, now_)) {
                    cs.core->switchTo(p, now_, cs.ever_ran);
                    cs.ever_ran = true;
                    cs.run_start = now_;
                }
            }
        }

        // One cycle of execution on every core.
        for (auto &cs : cpus_)
            cs.core->tick(now_);

        // Scheduling actions requested during the tick.
        for (auto &cs : cpus_)
            handlePending(cs);

        // Audit the blocks the fabric transacted on this cycle (the
        // requesting nodes have installed their grants by now).
        if (checker_)
            checker_->auditPending(fabric_, now_);

        // Round-robin backstop: preempt over-quantum processes when
        // someone else is waiting.
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            if (cs.core->current() &&
                now_ - cs.run_start >= params_.sched_quantum &&
                sched_.hasReady(i)) {
                cpu::ProcessContext *p = cs.core->current();
                cs.core->detachCurrent();
                sched_.makeReady(p);
            }
        }

        if (!warmed_ && totalRetired() >= warmup_instructions) {
            resetStats();
            warmed_ = true;
        }

        // Advance time, skipping cycles in which nothing can happen.
        Cycles next = kNever;
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            Cycles e;
            if (!cs.core->current()) {
                e = sched_.hasReady(i) ? now_ + 1 : sched_.nextWake(i);
            } else {
                e = cs.core->nextEvent(now_);
                if (sched_.hasReady(i)) {
                    // A waiting process bounds the skip at the quantum.
                    e = std::min(e, cs.run_start + params_.sched_quantum);
                }
                e = std::min(e, sched_.nextWake(i));
            }
            next = std::min(next, e);
        }

        if (next == kNever) {
            if (!sched_.anyIncomplete())
                break;
            // Everything quiesced with work outstanding: the cores will
            // make progress next cycle (e.g. freshly scheduled work).
            next = now_ + 1;
        }
        next = std::max(next, now_ + 1);
        if (params_.watchdog_cycles) {
            // Bound the skip at the watchdog horizon: a wake time far
            // beyond the window must not leap over the no-progress
            // check (the retire that precedes a long block would reset
            // the baseline to the post-jump clock).
            next = std::min(
                next, std::max(wd_last_progress_ + params_.watchdog_cycles,
                               now_ + 1));
        }
        if (next > now_ + 1) {
            for (auto &cs : cpus_)
                cs.core->accountStall(now_ + 1, next);
        }
        now_ = next;
    }

    if (!stopped_early) {
        for (auto &cs : cpus_)
            cs.node->finalizeStats(now_);

        // End-of-run integrity audit: settle any transactions recorded
        // after the last in-loop audit, then verify the hierarchy can
        // drain.  Skipped on an early stop: the machine is deliberately
        // mid-flight (outstanding MSHRs, running processes), and the
        // occupancy finalization would perturb the state a restored run
        // continues from.
        if (checker_) {
            checker_->auditPending(fabric_, now_);
            verifyQuiesced();
        }
    }

    RunResult r;
    r.cycles = now_ - window_start_;
    for (auto &cs : cpus_) {
        r.instructions += cs.core->stats().instructions;
        r.breakdown += cs.core->breakdown();
    }
    r.ipc = r.cycles
                ? static_cast<double>(r.instructions) /
                      (static_cast<double>(r.cycles) * cpus_.size())
                : 0.0;
    r.epoch_hashes = epoch_hashes_;
    return r;
}

} // namespace dbsim::sim
