#include "sim/system.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace dbsim::sim {

System::System(const SystemParams &params)
    : params_(params),
      page_map_(params.node.page_bytes, params.page_bins, params.num_nodes),
      fabric_(params.num_nodes, params.fabric, params.mesh),
      sched_(params.num_nodes)
{
    cpus_.resize(params_.num_nodes);
    for (std::uint32_t i = 0; i < params_.num_nodes; ++i) {
        cpus_[i].node = std::make_unique<Node>(i, params_.node, &page_map_,
                                               &fabric_);
        cpus_[i].core = std::make_unique<cpu::Core>(i, params_.core,
                                                    cpus_[i].node.get(),
                                                    this);
        cpus_[i].node->attachCore(cpus_[i].core.get());
        fabric_.attachSite(i, cpus_[i].node.get());
    }
}

System::~System() = default;

cpu::ProcessContext *
System::addProcess(std::unique_ptr<trace::TraceSource> src, CpuId affinity)
{
    DBSIM_ASSERT(affinity < params_.num_nodes, "bad process affinity");
    const ProcId id = static_cast<ProcId>(procs_.size());
    sources_.push_back(std::move(src));
    procs_.push_back(std::make_unique<cpu::ProcessContext>(
        id, sources_.back().get()));
    proc_cpu_.push_back(affinity);
    sched_.addProcess(procs_.back().get(), affinity);
    return procs_.back().get();
}

std::uint64_t
System::totalRetired() const
{
    std::uint64_t n = retired_before_reset_;
    for (const auto &cs : cpus_)
        n += cs.core->stats().instructions;
    return n;
}

void
System::resetStats()
{
    for (auto &cs : cpus_) {
        retired_before_reset_ += cs.core->stats().instructions;
        cs.core->resetStats();
        cs.node->resetStats();
    }
    window_start_ = now_;
}

// ---------------------------------------------------------------------
// CoreEnvIf: locks
// ---------------------------------------------------------------------

bool
System::lockIsFree(Addr addr, ProcId proc) const
{
    auto it = lock_holder_.find(addr);
    return it == lock_holder_.end() || it->second == proc;
}

bool
System::lockTryAcquire(Addr addr, ProcId proc)
{
    auto [it, inserted] = lock_holder_.emplace(addr, proc);
    return inserted || it->second == proc;
}

void
System::lockRelease(Addr addr, ProcId proc)
{
    auto it = lock_holder_.find(addr);
    if (it != lock_holder_.end() && it->second == proc)
        lock_holder_.erase(it);
}

// ---------------------------------------------------------------------
// CoreEnvIf: scheduling notifications
// ---------------------------------------------------------------------

void
System::onSyscallBlock(ProcId proc, Cycles latency)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    cs.pending = Pending::Block;
    cs.pending_latency = latency;
}

void
System::onLockYield(ProcId proc)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    if (cs.pending == Pending::None)
        cs.pending = Pending::Yield;
}

void
System::onProcessDone(ProcId proc)
{
    CpuState &cs = cpus_[cpuOf(proc)];
    cs.pending = Pending::Done;
}

void
System::handlePending(CpuState &cs)
{
    if (cs.pending == Pending::None)
        return;
    cpu::ProcessContext *proc = cs.core->current();
    DBSIM_ASSERT(proc != nullptr, "pending action without process");
    switch (cs.pending) {
      case Pending::Block:
        cs.core->detachCurrent();
        sched_.block(proc, now_ + cs.pending_latency);
        break;
      case Pending::Yield:
        cs.core->detachCurrent();
        sched_.makeReady(proc);
        break;
      case Pending::Done:
        cs.core->detachCurrent();
        sched_.finish(proc);
        break;
      case Pending::None:
        break;
    }
    cs.pending = Pending::None;
}

// ---------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------

RunResult
System::run(std::uint64_t max_instructions,
            std::uint64_t warmup_instructions)
{
    bool warmed = warmup_instructions == 0;
    window_start_ = now_;
    const Cycles deadline = now_ + params_.max_cycles;

    // Optional progress debugging: DBSIM_DEBUG=<cycle interval>.
    const char *dbg_env = std::getenv("DBSIM_DEBUG");
    const Cycles dbg_every = dbg_env ? std::strtoull(dbg_env, nullptr, 10) : 0;
    Cycles dbg_next = dbg_every;

    while (sched_.anyIncomplete() && totalRetired() < max_instructions) {
        if (now_ >= deadline)
            DBSIM_FATAL("simulation exceeded max_cycles safety cap");
        if (dbg_every && now_ >= dbg_next) {
            dbg_next = now_ + dbg_every;
            std::fprintf(stderr, "[dbsim] cyc=%llu retired=%llu",
                         static_cast<unsigned long long>(now_),
                         static_cast<unsigned long long>(totalRetired()));
            for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
                const auto *cur = cpus_[i].core->current();
                std::fprintf(stderr, " cpu%u(%s,%s) %s", i,
                             cur ? "run" : "idle",
                             stallCatName(cpus_[i].core->headCat()),
                             cpus_[i].core->debugString().c_str());
            }
            std::fprintf(stderr, "\n");
        }

        // Dispatch processes onto idle cores.
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            if (!cs.core->current()) {
                if (cpu::ProcessContext *p = sched_.pickNext(i, now_)) {
                    cs.core->switchTo(p, now_, cs.ever_ran);
                    cs.ever_ran = true;
                    cs.run_start = now_;
                }
            }
        }

        // One cycle of execution on every core.
        for (auto &cs : cpus_)
            cs.core->tick(now_);

        // Scheduling actions requested during the tick.
        for (auto &cs : cpus_)
            handlePending(cs);

        // Round-robin backstop: preempt over-quantum processes when
        // someone else is waiting.
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            if (cs.core->current() &&
                now_ - cs.run_start >= params_.sched_quantum &&
                sched_.hasReady(i)) {
                cpu::ProcessContext *p = cs.core->current();
                cs.core->detachCurrent();
                sched_.makeReady(p);
            }
        }

        if (!warmed && totalRetired() >= warmup_instructions) {
            resetStats();
            warmed = true;
        }

        // Advance time, skipping cycles in which nothing can happen.
        Cycles next = kNever;
        for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
            CpuState &cs = cpus_[i];
            Cycles e;
            if (!cs.core->current()) {
                e = sched_.hasReady(i) ? now_ + 1 : sched_.nextWake(i);
            } else {
                e = cs.core->nextEvent(now_);
                if (sched_.hasReady(i)) {
                    // A waiting process bounds the skip at the quantum.
                    e = std::min(e, cs.run_start + params_.sched_quantum);
                }
                e = std::min(e, sched_.nextWake(i));
            }
            next = std::min(next, e);
        }

        if (next == kNever) {
            if (!sched_.anyIncomplete())
                break;
            // Everything quiesced with work outstanding: the cores will
            // make progress next cycle (e.g. freshly scheduled work).
            next = now_ + 1;
        }
        next = std::max(next, now_ + 1);
        if (next > now_ + 1) {
            for (auto &cs : cpus_)
                cs.core->accountStall(now_ + 1, next);
        }
        now_ = next;
    }

    for (auto &cs : cpus_)
        cs.node->finalizeStats(now_);

    RunResult r;
    r.cycles = now_ - window_start_;
    for (auto &cs : cpus_) {
        r.instructions += cs.core->stats().instructions;
        r.breakdown += cs.core->breakdown();
    }
    r.ipc = r.cycles
                ? static_cast<double>(r.instructions) /
                      (static_cast<double>(r.cycles) * cpus_.size())
                : 0.0;
    return r;
}

} // namespace dbsim::sim
