/**
 * @file
 * The simulated CC-NUMA multiprocessor: nodes (core + hierarchy),
 * coherence fabric, page map, OS scheduler model, the lock table
 * maintained in the simulated environment, and the main run loop with
 * event-driven cycle skipping.
 */

#ifndef DBSIM_SIM_SYSTEM_HPP
#define DBSIM_SIM_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/checker.hpp"
#include "coherence/directory.hpp"
#include "cpu/interfaces.hpp"
#include "cpu/ooo_core.hpp"
#include "cpu/process.hpp"
#include "memory/page_map.hpp"
#include "common/breakdown.hpp"
#include "common/mutator.hpp"
#include "common/snapshot.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "trace/source.hpp"

namespace dbsim::sim {

/** Whole-machine configuration. */
struct SystemParams
{
    std::uint32_t num_nodes = 4;
    cpu::CoreParams core;
    NodeParams node;
    coher::FabricParams fabric;
    net::MeshParams mesh;
    Cycles sched_quantum = 200000;  ///< round-robin backstop time slice
    std::uint32_t page_bins = 32;   ///< bin-hopping colors
    Cycles max_cycles = 4ull << 30; ///< hard safety cap

    /**
     * Forward-progress watchdog: if no instruction retires anywhere for
     * this many simulated cycles, the run loop panics with a full
     * machine-state dump instead of silently spinning to max_cycles.
     * Must comfortably exceed the longest legitimate retire-free period
     * (blocking-syscall latencies, scheduling quanta).  0 disables.
     */
    Cycles watchdog_cycles = 10'000'000;

    /**
     * Enable the coherence invariant checker (coherence/checker.hpp):
     * SWMR / directory-vs-cache agreement audited after every directory
     * transaction, plus an end-of-run quiescence check.  Also enabled
     * by a nonzero DBSIM_CHECK environment variable (how the tier-1
     * test suite turns it on everywhere).
     */
    bool check_coherence = false;

    /**
     * Epoch state-hashing: every state_hash_interval simulated cycles
     * the run loop records an FNV-1a hash of the full serialized
     * machine state (DESIGN.md §5g).  Hashing observes the machine
     * without mutating it, so enabling it never changes a run's
     * results.  0 disables.
     */
    Cycles state_hash_interval = 0;

    /**
     * Periodic checkpointing: every checkpoint_interval simulated
     * cycles the run loop writes a checkpoint to checkpoint_path
     * (atomically: tmp + rename).  Both knobs are host-side
     * observation parameters -- they are excluded from the checkpoint
     * config signature, so a checkpoint taken at one interval restores
     * under any other.  0 / empty disables.
     */
    Cycles checkpoint_interval = 0;
    std::string checkpoint_path;

    /**
     * Stop the run loop at the first iteration where now() >= this
     * cycle (writing a checkpoint first when checkpoint_path is set).
     * The machine is left mid-flight: the end-of-run quiescence audit
     * is skipped and the partial-window RunResult is returned.  Used
     * by the restore-determinism tests and the dbsim-diverge bisector.
     * 0 disables.
     */
    Cycles stop_at_cycle = 0;

    /**
     * Structured validation; throws ConfigError (common/errors.hpp)
     * naming the offending field if any parameter is out of bounds.
     * Called by the System constructor before any state is built.
     */
    void validate() const;
};

/** One epoch-hash sample: machine-state hash at an epoch boundary. */
struct EpochHash
{
    Cycles epoch = 0;        ///< the boundary cycle the sample labels
    std::uint64_t hash = 0;  ///< FNV-1a over the serialized machine
};

/** Results of a run (post-warmup window). */
struct RunResult
{
    Cycles cycles = 0;               ///< simulated cycles in the window
    std::uint64_t instructions = 0;  ///< instructions retired
    Breakdown breakdown;             ///< aggregated over all cores
    double ipc = 0.0;                ///< instructions / (cycles * cores)

    /** Epoch hash samples (empty unless state_hash_interval is set).
     *  A restored run carries the pre-restore samples forward, so the
     *  full list matches an uninterrupted run's. */
    std::vector<EpochHash> epoch_hashes;
};

/**
 * The simulated machine.
 */
class System : public cpu::CoreEnvIf
{
  public:
    explicit System(const SystemParams &params);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Add a workload process with @p affinity.  Ownership of the trace
     * source transfers to the system.
     */
    cpu::ProcessContext *addProcess(std::unique_ptr<trace::TraceSource> src,
                                    CpuId affinity);

    /**
     * Run until @p max_instructions have retired in total (across all
     * CPUs, including warmup) or every process finished.  Statistics are
     * reset once @p warmup_instructions have retired, so the returned
     * result covers the post-warmup window.
     */
    RunResult run(std::uint64_t max_instructions,
                  std::uint64_t warmup_instructions = 0);

    std::uint32_t numNodes() const { return params_.num_nodes; }
    Node &node(std::uint32_t i) { return *cpus_[i].node; }
    cpu::Core &core(std::uint32_t i) { return *cpus_[i].core; }
    const Node &node(std::uint32_t i) const { return *cpus_[i].node; }
    const cpu::Core &core(std::uint32_t i) const { return *cpus_[i].core; }
    const Scheduler &scheduler() const { return sched_; }
    const coher::CoherenceFabric &fabric() const { return fabric_; }
    Cycles now() const { return now_; }

    /** The coherence invariant checker, if enabled (else nullptr). */
    const coher::CoherenceChecker *checker() const { return checker_.get(); }

    /**
     * Snapshot of the simulated-environment lock table, sorted by lock
     * address.  The table itself is an unordered map; diagnostics
     * (machineStateDump) render this sorted view so crash dumps stay
     * bitwise-deterministic (DESIGN.md §5c).
     */
    std::vector<std::pair<Addr, ProcId>> heldLocks() const;

    /** Total instructions retired since construction (incl. warmup). */
    std::uint64_t totalRetired() const;

    // ----------------------------------------------------------------
    // Checkpoint / restore (DESIGN.md §5g)
    // ----------------------------------------------------------------

    /**
     * Serialize the complete architectural and micro-architectural
     * machine state -- clock, run-loop carry state, lock table, CPU
     * scheduling state, page map, fabric + directory, scheduler,
     * checker, every node's hierarchy, every core's window, every
     * process context and trace source -- in a fixed byte-stable order.
     * Epoch/checkpoint bookkeeping is *not* included, so the bytes (and
     * stateHash()) are insensitive to the observation knobs.
     */
    void serializeState(snap::Writer &w) const;

    /**
     * Inverse of serializeState().  The machine must have been built
     * from a structurally identical configuration (same node count,
     * cache geometry, process set); throws snap::SnapshotError
     * otherwise.  Arms the run-loop carry state so the next run()
     * continues mid-flight instead of reinitializing.
     */
    void deserializeState(snap::Reader &r);

    /** FNV-1a 64 over the serializeState() byte stream. */
    std::uint64_t stateHash() const;

    /**
     * Hash of the structural configuration (machine geometry + process
     * placement).  Stored in checkpoint headers; restore refuses a
     * checkpoint whose signature disagrees.  Host observation knobs
     * (checkpoint/state-hash intervals, stop_at_cycle, paths) are
     * excluded so a checkpoint restores under any of them.
     */
    std::uint64_t configSignature() const;

    /** Write a checkpoint file (atomic tmp + rename).  Throws
     *  snap::SnapshotError on I/O failure. */
    void saveCheckpoint(const std::string &path) const;

    /** Restore from a checkpoint file; validates magic, version,
     *  config signature, and a whole-file integrity hash. */
    void restoreCheckpoint(const std::string &path);

    /** Epoch hash samples recorded so far (see state_hash_interval). */
    const std::vector<EpochHash> &epochHashes() const
    {
        return epoch_hashes_;
    }

    /**
     * Attach a protocol mutator to the coherence fabric (tests and the
     * dbsim-diverge bisector only; nullptr detaches).  Caller owns the
     * mutator and keeps it alive for the system's lifetime.
     */
    void attachMutator(const verify::ProtocolMutator *m)
    {
        fabric_.attachMutator(m);
    }

    // CoreEnvIf
    bool lockIsFree(Addr addr, ProcId proc) const override;
    bool lockTryAcquire(Addr addr, ProcId proc) override;
    void lockRelease(Addr addr, ProcId proc) override;
    void onSyscallBlock(ProcId proc, Cycles latency) override;
    void onLockYield(ProcId proc) override;
    void onProcessDone(ProcId proc) override;

  private:
    enum class Pending : std::uint8_t { None, Block, Yield, Done };

    struct CpuState
    {
        std::unique_ptr<Node> node;
        std::unique_ptr<cpu::Core> core;
        Pending pending = Pending::None;
        Cycles pending_latency = 0;
        Cycles run_start = 0;
        bool ever_ran = false;
    };

    void resetStats();
    void handlePending(CpuState &cs);
    CpuId cpuOf(ProcId proc) const { return proc_cpu_.at(proc); }

    /**
     * End-of-run quiescence audit (checker enabled only): no MSHR or
     * stream-buffer entry may be unbounded, and once every process has
     * finished, every core must have released its process with an empty
     * window.  Panics with a machine-state dump otherwise.
     */
    void verifyQuiesced() const;

    SystemParams params_;
    mem::PageMap page_map_;
    coher::CoherenceFabric fabric_;
    Scheduler sched_;
    std::unique_ptr<coher::CoherenceChecker> checker_;
    int crash_dump_handle_ = 0;
    std::vector<CpuState> cpus_;
    std::vector<std::unique_ptr<cpu::ProcessContext>> procs_;
    std::vector<std::unique_ptr<trace::TraceSource>> sources_;
    std::vector<CpuId> proc_cpu_;
    std::unordered_map<Addr, ProcId> lock_holder_;
    Cycles now_ = 0;
    std::uint64_t retired_before_reset_ = 0;
    Cycles window_start_ = 0;

    // Run-loop carry state.  Formerly locals of run(); promoted to
    // members so a checkpoint captures them and a restored run()
    // continues with the exact same watchdog/warmup decisions an
    // uninterrupted run would have made (carry_valid_ gates the
    // reinitialization at run() entry).
    bool warmed_ = false;
    std::uint64_t wd_last_retired_ = 0;
    Cycles wd_last_progress_ = 0;
    bool carry_valid_ = false;

    // Epoch-hash / checkpoint bookkeeping (not part of the state hash).
    Cycles epoch_next_ = 0;
    Cycles ckpt_next_ = 0;
    std::vector<EpochHash> epoch_hashes_;
};

} // namespace dbsim::sim

#endif // DBSIM_SIM_SYSTEM_HPP
