/**
 * @file
 * The simulated CC-NUMA multiprocessor: nodes (core + hierarchy),
 * coherence fabric, page map, OS scheduler model, the lock table
 * maintained in the simulated environment, and the main run loop with
 * event-driven cycle skipping.
 */

#ifndef DBSIM_SIM_SYSTEM_HPP
#define DBSIM_SIM_SYSTEM_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/checker.hpp"
#include "coherence/directory.hpp"
#include "cpu/interfaces.hpp"
#include "cpu/ooo_core.hpp"
#include "cpu/process.hpp"
#include "memory/page_map.hpp"
#include "common/breakdown.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "trace/source.hpp"

namespace dbsim::sim {

/** Whole-machine configuration. */
struct SystemParams
{
    std::uint32_t num_nodes = 4;
    cpu::CoreParams core;
    NodeParams node;
    coher::FabricParams fabric;
    net::MeshParams mesh;
    Cycles sched_quantum = 200000;  ///< round-robin backstop time slice
    std::uint32_t page_bins = 32;   ///< bin-hopping colors
    Cycles max_cycles = 4ull << 30; ///< hard safety cap

    /**
     * Forward-progress watchdog: if no instruction retires anywhere for
     * this many simulated cycles, the run loop panics with a full
     * machine-state dump instead of silently spinning to max_cycles.
     * Must comfortably exceed the longest legitimate retire-free period
     * (blocking-syscall latencies, scheduling quanta).  0 disables.
     */
    Cycles watchdog_cycles = 10'000'000;

    /**
     * Enable the coherence invariant checker (coherence/checker.hpp):
     * SWMR / directory-vs-cache agreement audited after every directory
     * transaction, plus an end-of-run quiescence check.  Also enabled
     * by a nonzero DBSIM_CHECK environment variable (how the tier-1
     * test suite turns it on everywhere).
     */
    bool check_coherence = false;

    /**
     * Structured validation; throws ConfigError (common/errors.hpp)
     * naming the offending field if any parameter is out of bounds.
     * Called by the System constructor before any state is built.
     */
    void validate() const;
};

/** Results of a run (post-warmup window). */
struct RunResult
{
    Cycles cycles = 0;               ///< simulated cycles in the window
    std::uint64_t instructions = 0;  ///< instructions retired
    Breakdown breakdown;             ///< aggregated over all cores
    double ipc = 0.0;                ///< instructions / (cycles * cores)
};

/**
 * The simulated machine.
 */
class System : public cpu::CoreEnvIf
{
  public:
    explicit System(const SystemParams &params);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Add a workload process with @p affinity.  Ownership of the trace
     * source transfers to the system.
     */
    cpu::ProcessContext *addProcess(std::unique_ptr<trace::TraceSource> src,
                                    CpuId affinity);

    /**
     * Run until @p max_instructions have retired in total (across all
     * CPUs, including warmup) or every process finished.  Statistics are
     * reset once @p warmup_instructions have retired, so the returned
     * result covers the post-warmup window.
     */
    RunResult run(std::uint64_t max_instructions,
                  std::uint64_t warmup_instructions = 0);

    std::uint32_t numNodes() const { return params_.num_nodes; }
    Node &node(std::uint32_t i) { return *cpus_[i].node; }
    cpu::Core &core(std::uint32_t i) { return *cpus_[i].core; }
    const Node &node(std::uint32_t i) const { return *cpus_[i].node; }
    const cpu::Core &core(std::uint32_t i) const { return *cpus_[i].core; }
    const Scheduler &scheduler() const { return sched_; }
    const coher::CoherenceFabric &fabric() const { return fabric_; }
    Cycles now() const { return now_; }

    /** The coherence invariant checker, if enabled (else nullptr). */
    const coher::CoherenceChecker *checker() const { return checker_.get(); }

    /**
     * Snapshot of the simulated-environment lock table, sorted by lock
     * address.  The table itself is an unordered map; diagnostics
     * (machineStateDump) render this sorted view so crash dumps stay
     * bitwise-deterministic (DESIGN.md §5c).
     */
    std::vector<std::pair<Addr, ProcId>> heldLocks() const;

    /** Total instructions retired since construction (incl. warmup). */
    std::uint64_t totalRetired() const;

    // CoreEnvIf
    bool lockIsFree(Addr addr, ProcId proc) const override;
    bool lockTryAcquire(Addr addr, ProcId proc) override;
    void lockRelease(Addr addr, ProcId proc) override;
    void onSyscallBlock(ProcId proc, Cycles latency) override;
    void onLockYield(ProcId proc) override;
    void onProcessDone(ProcId proc) override;

  private:
    enum class Pending : std::uint8_t { None, Block, Yield, Done };

    struct CpuState
    {
        std::unique_ptr<Node> node;
        std::unique_ptr<cpu::Core> core;
        Pending pending = Pending::None;
        Cycles pending_latency = 0;
        Cycles run_start = 0;
        bool ever_ran = false;
    };

    void resetStats();
    void handlePending(CpuState &cs);
    CpuId cpuOf(ProcId proc) const { return proc_cpu_.at(proc); }

    /**
     * End-of-run quiescence audit (checker enabled only): no MSHR or
     * stream-buffer entry may be unbounded, and once every process has
     * finished, every core must have released its process with an empty
     * window.  Panics with a machine-state dump otherwise.
     */
    void verifyQuiesced() const;

    SystemParams params_;
    mem::PageMap page_map_;
    coher::CoherenceFabric fabric_;
    Scheduler sched_;
    std::unique_ptr<coher::CoherenceChecker> checker_;
    int crash_dump_handle_ = 0;
    std::vector<CpuState> cpus_;
    std::vector<std::unique_ptr<cpu::ProcessContext>> procs_;
    std::vector<std::unique_ptr<trace::TraceSource>> sources_;
    std::vector<CpuId> proc_cpu_;
    std::unordered_map<Addr, ProcId> lock_holder_;
    Cycles now_ = 0;
    std::uint64_t retired_before_reset_ = 0;
    Cycles window_start_ = 0;
};

} // namespace dbsim::sim

#endif // DBSIM_SIM_SYSTEM_HPP
