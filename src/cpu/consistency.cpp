#include "cpu/consistency.hpp"

namespace dbsim::cpu {

const char *
consistencyModelName(ConsistencyModel m)
{
    switch (m) {
      case ConsistencyModel::SC: return "SC";
      case ConsistencyModel::PC: return "PC";
      case ConsistencyModel::RC: return "RC";
    }
    return "?";
}

} // namespace dbsim::cpu
