#include "cpu/ooo_core.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace dbsim::cpu {

using trace::OpClass;

Core::Core(CpuId id, const CoreParams &params, CoreMemIf *mem,
           CoreEnvIf *env)
    : id_(id), params_(params), mem_(mem), env_(env),
      policy_(params.model, params.cons), bpred_(params.bp), fu_(params.fu)
{
    if (params_.issue_width == 0 || params_.window_size == 0)
        DBSIM_FATAL("issue width and window size must be nonzero");
    if (!params_.out_of_order) {
        // The in-order pipeline's "window" is just a small fetch buffer;
        // issue order is enforced in issueStage.
        params_.window_size =
            std::max<std::uint32_t>(8, 2 * params_.issue_width);
    }
}

void
Core::switchTo(ProcessContext *proc, Cycles now, bool charge_switch)
{
    DBSIM_ASSERT(window_.empty(), "switchTo with non-empty window");
    DBSIM_ASSERT(proc_ == nullptr, "switchTo without detach");
    proc_ = proc;
    proc_->state = ProcState::Running;
    pending_.reset();
    fetch_line_ = kNoAddr;
    fetch_pending_line_ = kNoAddr;
    fetch_ready_at_ = 0;
    fetch_itlb_miss_ = false;
    unresolved_branch_seq_ = kNoSeq;
    fetch_resume_at_ = 0;
    syscall_fetch_block_ = false;
    done_notified_ = false;
    head_seq_ = next_seq_;
    unresolved_branches_ = 0;
    if (charge_switch) {
        run_resume_at_ = now + params_.context_switch_cost;
        ++stats_.context_switches;
    } else {
        run_resume_at_ = now;
    }
}

void
Core::detachCurrent()
{
    if (!proc_)
        return;
    if (pending_) {
        proc_->unfetch(*pending_);
        pending_.reset();
    }
    for (auto it = window_.rbegin(); it != window_.rend(); ++it)
        proc_->unfetch(it->rec);
    window_.clear();
    head_seq_ = next_seq_;
    unresolved_branches_ = 0;
    unresolved_branch_seq_ = kNoSeq;
    syscall_fetch_block_ = false;
    fetch_line_ = kNoAddr;
    fetch_pending_line_ = kNoAddr;
    if (proc_->state == ProcState::Running)
        proc_->state = ProcState::Ready;
    proc_ = nullptr;
}

void
Core::resetStats()
{
    breakdown_.reset();
    stats_ = CoreStats{};
    bpred_.resetStats();
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

const Core::WindowEntry *
Core::entryFor(std::uint64_t seq) const
{
    if (seq < head_seq_)
        return nullptr;
    const std::uint64_t idx = seq - head_seq_;
    if (idx >= window_.size())
        return nullptr;
    return &window_[static_cast<std::size_t>(idx)];
}

bool
Core::producersReady(const WindowEntry &e) const
{
    for (const std::uint8_t dep : {e.rec.dep1, e.rec.dep2}) {
        if (dep == 0)
            continue;
        if (e.seq < dep)
            continue; // producer predates the trace window
        const std::uint64_t pseq = e.seq - dep;
        const WindowEntry *prod = entryFor(pseq);
        if (prod && !prod->completed)
            return false;
    }
    return true;
}

bool
Core::wbAllPerformed() const
{
    // Flush hints are non-binding and do not order stores or fences.
    for (const auto &w : wb_)
        if (!w.is_flush && !w.performed)
            return false;
    return true;
}

std::uint32_t
Core::memOpsInFlight() const
{
    std::uint32_t n = 0;
    for (const auto &e : window_) {
        if (trace::isMemory(e.rec.op) && e.issued && !e.performed)
            ++n;
    }
    for (const auto &w : wb_)
        if (!w.performed)
            ++n;
    return n;
}

StallCat
Core::readCat(const WindowEntry &e) const
{
    if (e.dtlb_miss && e.mem_issued)
        return StallCat::ReadDtlb;
    if (!e.mem_issued)
        return StallCat::ReadL1; // agen / dependence / port ("misc")
    switch (e.cls) {
      case coher::AccessClass::L1Hit:      return StallCat::ReadL1;
      case coher::AccessClass::L2Hit:      return StallCat::ReadL2;
      case coher::AccessClass::LocalMem:   return StallCat::ReadLocal;
      case coher::AccessClass::RemoteMem:  return StallCat::ReadRemote;
      case coher::AccessClass::RemoteDirty:return StallCat::ReadDirty;
    }
    return StallCat::ReadL1;
}

StallCat
Core::classifyHead() const
{
    if (!proc_)
        return StallCat::Idle;
    if (window_.empty()) {
        if (syscall_fetch_block_ || proc_->state != ProcState::Running)
            return StallCat::Idle;
        if (fetch_pending_line_ != kNoAddr &&
            fetch_line_ != fetch_pending_line_) {
            return fetch_itlb_miss_ ? StallCat::Itlb
                                    : StallCat::Instr;
        }
        if (proc_->exhausted())
            return StallCat::Idle;
        // Fetch bubble: misprediction restart or transient.
        return StallCat::Fu;
    }
    const WindowEntry &e = window_.front();
    switch (e.rec.op) {
      case OpClass::Load:
        return readCat(e);
      case OpClass::Store:
        return StallCat::Write;
      case OpClass::LockAcquire:
      case OpClass::LockRelease:
      case OpClass::MemBarrier:
      case OpClass::WriteBarrier:
        return StallCat::Sync;
      default:
        return StallCat::Fu;
    }
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

bool
Core::canRetire(const WindowEntry &e, Cycles now) const
{
    switch (e.rec.op) {
      case OpClass::Load:
        if (e.speculative)
            return e.complete_at <= now && !e.violated;
        if (policy_.loadBlocksRetire())
            return e.mem_issued && e.performed_at <= now;
        return e.complete_at <= now;
      case OpClass::Store:
        if (policy_.storeBlocksRetire())
            return e.mem_issued && e.performed_at <= now;
        return e.complete_at <= now &&
               wb_.size() < params_.write_buffer_size;
      case OpClass::LockRelease:
        if (policy_.storeBlocksRetire())
            return e.mem_issued && e.performed_at <= now;
        return e.complete_at <= now &&
               wb_.size() < params_.write_buffer_size;
      case OpClass::LockAcquire:
        return e.mem_issued && e.performed_at <= now;
      case OpClass::MemBarrier:
        // The fence orders real stores; pending flush hints do not
        // block it (they are non-binding).
        return e.complete_at <= now && wbAllPerformed();
      case OpClass::Flush:
        return e.complete_at <= now &&
               wb_.size() < params_.write_buffer_size;
      default:
        return e.complete_at <= now;
    }
}

void
Core::doRetireActions(WindowEntry &e, Cycles now)
{
    switch (e.rec.op) {
      case OpClass::Load:
        ++stats_.loads;
        break;
      case OpClass::Store:
        ++stats_.stores;
        if (!policy_.storeBlocksRetire()) {
            wb_.push_back(WbEntry{e.rec.vaddr, e.rec.pc, wmb_epoch_,
                                  /*is_release=*/false});
        }
        break;
      case OpClass::LockRelease:
        env_->lockRelease(e.rec.vaddr, proc_->id());
        if (!policy_.storeBlocksRetire()) {
            wb_.push_back(WbEntry{e.rec.vaddr, e.rec.pc, wmb_epoch_,
                                  /*is_release=*/true});
        }
        break;
      case OpClass::WriteBarrier:
        ++wmb_epoch_;
        break;
      case OpClass::Flush:
        // The flush fires from the write buffer once every earlier
        // store (in particular the critical section's stores and the
        // releasing store) has performed; see writeBufferStage.
        wb_.push_back(WbEntry{e.rec.vaddr, e.rec.pc, wmb_epoch_,
                              /*is_release=*/false, /*is_flush=*/true});
        break;
      case OpClass::SyscallBlock:
        env_->onSyscallBlock(proc_->id(), e.rec.extra);
        break;
      default:
        break;
    }
    ++stats_.instructions;
    ++proc_->retired;
}

void
Core::retireStage(Cycles now)
{
    std::uint32_t retired = 0;
    if (proc_ && now >= run_resume_at_) {
        while (retired < params_.issue_width && !window_.empty()) {
            WindowEntry &e = window_.front();
            if (e.violated && e.speculative) {
                // Speculative-load ordering violation: recover.
                rollbackFrom(0, now);
                break;
            }
            if (!canRetire(e, now))
                break;
            doRetireActions(e, now);
            progress_ = true;
            window_.pop_front();
            ++head_seq_;
            ++retired;
        }
    }

    const double busy =
        static_cast<double>(retired) / params_.issue_width;
    breakdown_.add(StallCat::Busy, busy);
    if (retired < params_.issue_width) {
        StallCat cat;
        if (proc_ && now < run_resume_at_)
            cat = StallCat::Idle; // context-switch overhead
        else
            cat = classifyHead();
        breakdown_.add(cat, 1.0 - busy);
    }
}

// ---------------------------------------------------------------------
// Complete / rollback
// ---------------------------------------------------------------------

void
Core::completeStage(Cycles now)
{
    for (auto &e : window_) {
        if (e.issued && !e.completed && e.complete_at <= now) {
            e.completed = true;
            progress_ = true;
            if (trace::isBranch(e.rec.op)) {
                DBSIM_ASSERT(unresolved_branches_ > 0,
                             "branch accounting underflow");
                --unresolved_branches_;
                if (e.seq == unresolved_branch_seq_) {
                    unresolved_branch_seq_ = kNoSeq;
                    fetch_resume_at_ = now + params_.mispredict_restart;
                }
            }
        }
    }
}

void
Core::rollbackFrom(std::size_t idx, Cycles now)
{
    ++stats_.spec_load_violations;
    for (std::size_t i = idx; i < window_.size(); ++i) {
        WindowEntry &e = window_[i];
        if (e.completed && trace::isBranch(e.rec.op))
            ++unresolved_branches_; // will re-resolve on replay
        e.issued = false;
        e.completed = false;
        e.complete_at = kNever;
        e.addr_ready_at = kNever;
        e.mem_issued = false;
        e.performed = false;
        e.performed_at = kNever;
        e.speculative = false;
        e.violated = false;
        e.spin_retry_at = 0;
        e.spin_start = kNever;
        // e.predicted stays true: the predictor was already trained and
        // the fetch-redirect cost was already paid on the first pass.
    }
    issue_block_until_ = now + params_.rollback_penalty;
}

void
Core::onLineInvalidated(Addr pblock)
{
    if (params_.mutator &&
        params_.mutator->armed(verify::ProtocolBug::SkippedSpecSquash)) {
        // Seeded bug: the invalidation does not flag speculative loads,
        // so a consistency-violating early value can commit.
        return;
    }
    for (auto &e : window_) {
        if (e.speculative && e.mem_issued && !e.violated &&
            e.pblock == pblock) {
            e.violated = true;
        }
    }
}

// ---------------------------------------------------------------------
// Memory issue
// ---------------------------------------------------------------------

void
Core::attemptLockAcquire(WindowEntry &e, Cycles now)
{
    if (now < e.spin_retry_at)
        return;
    if (env_->lockIsFree(e.rec.vaddr, proc_->id())) {
        Cycles retry = now + 1;
        auto r = mem_->dataAccess(e.rec.vaddr, e.rec.pc, /*is_write=*/true,
                                  now, /*prefetch=*/false, &retry);
        if (!r) {
            mem_retry_at_ = std::min(mem_retry_at_, retry);
            return;
        }
        if (env_->lockTryAcquire(e.rec.vaddr, proc_->id())) {
            e.mem_issued = true;
            progress_ = true;
            e.performed_at = r->ready;
            e.complete_at = r->ready;
            e.cls = r->cls;
            e.dtlb_miss = r->dtlb_miss;
            e.pblock = r->pblock;
            return;
        }
        // Lost the race (failed store-conditional); fall through to spin.
    } else {
        // Spin read keeps the lock line warm / re-fetches it after an
        // invalidation by the releasing processor.
        (void)mem_->dataAccess(e.rec.vaddr, e.rec.pc, /*is_write=*/false,
                               now, /*prefetch=*/true);
    }
    ++stats_.lock_spin_retries;
    if (e.spin_start == kNever)
        e.spin_start = now;
    e.spin_retry_at = now + params_.spin_retry_interval;
    if (now - e.spin_start >= params_.spin_yield_threshold) {
        ++stats_.lock_yields;
        e.spin_start = kNever;
        env_->onLockYield(proc_->id());
    }
}

void
Core::attemptMemIssue(WindowEntry &e, Cycles now, bool loads_done,
                      bool stores_done, bool fence_before)
{
    const OpClass op = e.rec.op;

    // Non-binding hints fire immediately once the address is known.
    if (op == OpClass::Prefetch || op == OpClass::PrefetchExcl) {
        (void)mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                               op == OpClass::PrefetchExcl, now,
                               /*prefetch=*/true);
        e.mem_issued = true;
        e.complete_at = now;
        e.performed_at = now;
        return;
    }

    if (op == OpClass::LockAcquire) {
        const bool allowed =
            !fence_before && policy_.storeMayIssue(loads_done, stores_done);
        if (allowed)
            attemptLockAcquire(e, now);
        return;
    }

    if (op == OpClass::Load) {
        const bool allowed =
            !fence_before && policy_.loadMayIssue(loads_done, stores_done);
        if (allowed || policy_.speculativeLoads()) {
            Cycles retry = now + 1;
            auto r = mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                                      /*is_write=*/false, now,
                                      /*prefetch=*/false, &retry);
            if (!r) {
                mem_retry_at_ = std::min(mem_retry_at_, retry);
                return;
            }
            e.mem_issued = true;
            progress_ = true;
            e.performed_at = r->ready;
            e.complete_at = r->ready; // value consumable on arrival
            e.cls = r->cls;
            e.dtlb_miss = r->dtlb_miss;
            e.pblock = r->pblock;
            e.speculative = !allowed;
            return;
        }
        if (policy_.prefetchBlocked() && !e.prefetched) {
            (void)mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                                   /*is_write=*/false, now,
                                   /*prefetch=*/true);
            e.prefetched = true;
        }
        return;
    }

    // Stores and lock releases reach here only under SC (elsewhere they
    // perform from the write buffer after retiring).
    if (op == OpClass::Store || op == OpClass::LockRelease) {
        const bool allowed =
            !fence_before && policy_.storeMayIssue(loads_done, stores_done);
        if (allowed) {
            Cycles retry = now + 1;
            auto r = mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                                      /*is_write=*/true, now,
                                      /*prefetch=*/false, &retry);
            if (!r) {
                mem_retry_at_ = std::min(mem_retry_at_, retry);
                return;
            }
            e.mem_issued = true;
            progress_ = true;
            e.performed_at = r->ready;
            e.cls = r->cls;
            e.dtlb_miss = r->dtlb_miss;
            e.pblock = r->pblock;
            return;
        }
        if (policy_.prefetchBlocked() && !e.prefetched) {
            (void)mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                                   /*is_write=*/true, now,
                                   /*prefetch=*/true);
            e.prefetched = true;
        }
        return;
    }
}

void
Core::memoryStage(Cycles now)
{
    bool loads_done = true;
    bool stores_done = wbAllPerformed();
    bool fence_before = false;

    for (auto &e : window_) {
        const OpClass op = e.rec.op;

        if (trace::isMemory(op) && e.issued && !e.mem_issued &&
            e.addr_ready_at <= now) {
            const bool sc_store_path =
                policy_.storeBlocksRetire() || !trace::isStore(op) ||
                op == OpClass::LockAcquire;
            if (op == OpClass::Load || op == OpClass::LockAcquire ||
                op == OpClass::Prefetch || op == OpClass::PrefetchExcl ||
                (trace::isStore(op) && sc_store_path)) {
                attemptMemIssue(e, now, loads_done, stores_done,
                                fence_before);
            }
            // Store prefetch-exclusive for write-buffered models.
            if (trace::isStore(op) && !policy_.storeBlocksRetire() &&
                policy_.prefetchBlocked() && !e.prefetched &&
                op != OpClass::LockAcquire) {
                (void)mem_->dataAccess(e.rec.vaddr, e.rec.pc,
                                       /*is_write=*/true, now,
                                       /*prefetch=*/true);
                e.prefetched = true;
            }
        }

        // Update performed bookkeeping.
        if (e.mem_issued && !e.performed && e.performed_at <= now)
            e.performed = true;

        // Update ordering prefix for younger operations.  Speculative
        // loads do not count as performed until they commit.
        if (op == OpClass::MemBarrier) {
            // An MB orders younger operations until it retires (and it
            // retires only once the write buffer drains).
            fence_before = true;
        }
        if (op == OpClass::Load) {
            loads_done &= !e.speculative && e.mem_issued &&
                          e.performed_at <= now;
        } else if (op == OpClass::LockAcquire) {
            const bool done = e.mem_issued && e.performed_at <= now;
            loads_done &= done;
            stores_done &= done;
        } else if (op == OpClass::Store || op == OpClass::LockRelease) {
            if (policy_.storeBlocksRetire()) {
                stores_done &= e.mem_issued && e.performed_at <= now;
            } else {
                // Write-buffered store: it has not yet performed while in
                // the window.
                stores_done = false;
            }
        }
    }
}

void
Core::writeBufferStage(Cycles now)
{
    for (auto &w : wb_) {
        if (w.issued && !w.performed && w.performed_at <= now)
            w.performed = true;
    }
    while (!wb_.empty() && wb_.front().performed) {
        wb_.pop_front();
        progress_ = true;
    }

    // Issue eligible stores.  Entries are FIFO with nondecreasing WMB
    // epochs.  PC additionally serializes stores one at a time.
    bool earlier_unperformed = false;
    std::uint32_t earlier_unperformed_epoch = 0;
    for (auto &w : wb_) {
        if (w.issued) {
            if (!w.performed) {
                if (!earlier_unperformed) {
                    earlier_unperformed = true;
                    earlier_unperformed_epoch = w.epoch;
                }
            }
            continue;
        }
        if (w.is_flush) {
            // A flush pushes one line's final value home, so it only
            // needs the earlier stores *to that line* performed; it
            // neither blocks nor is blocked by unrelated stores.
            bool line_pending = false;
            for (const auto &prior : wb_) {
                if (&prior == &w)
                    break;
                if (!prior.is_flush && !prior.performed &&
                    blockAlign(prior.vaddr, 64) ==
                        blockAlign(w.vaddr, 64)) {
                    line_pending = true;
                    break;
                }
            }
            if (line_pending)
                continue;
            mem_->flushHint(w.vaddr, now);
            w.issued = true;
            w.performed = true;
            w.performed_at = now;
            progress_ = true;
            continue;
        }
        if (policy_.model() == ConsistencyModel::PC && earlier_unperformed)
            break; // one outstanding store at a time
        if (earlier_unperformed && earlier_unperformed_epoch < w.epoch &&
            !(params_.mutator &&
              params_.mutator->armed(verify::ProtocolBug::ReorderedRelease)))
            break; // WMB ordering: earlier epoch still in flight
        Cycles retry = now + 1;
        auto r = mem_->dataAccess(w.vaddr, w.pc, /*is_write=*/true, now,
                                  /*prefetch=*/false, &retry);
        if (!r) {
            mem_retry_at_ = std::min(mem_retry_at_, retry);
            break;
        }
        w.issued = true;
        progress_ = true;
        w.performed_at = r->ready;
        if (!earlier_unperformed) {
            earlier_unperformed = true;
            earlier_unperformed_epoch = w.epoch;
        }
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

void
Core::issueStage(Cycles now)
{
    if (!proc_ || now < run_resume_at_ || now < issue_block_until_)
        return;

    const std::uint32_t mem_in_flight = memOpsInFlight();
    std::uint32_t mem_budget =
        params_.mem_queue_size > mem_in_flight
            ? params_.mem_queue_size - mem_in_flight : 0;

    std::uint32_t issued = 0;
    for (auto &e : window_) {
        if (issued >= params_.issue_width)
            break;
        if (e.issued) {
            // Already-issued instructions (including in-flight loads)
            // are skipped: both pipelines overlap execution behind them
            // until a dependent instruction reaches issue.
            continue;
        }
        const bool is_mem = trace::isMemory(e.rec.op);
        bool ready = producersReady(e);
        if (ready && is_mem && mem_budget == 0)
            ready = false;
        if (!ready) {
            if (!params_.out_of_order)
                break; // stall at the first non-ready instruction
            continue;
        }
        if (!fu_.tryIssue(e.rec.op, now)) {
            if (!params_.out_of_order)
                break;
            continue;
        }
        e.issued = true;
        progress_ = true;
        const Cycles lat = fu_.latency(e.rec.op);
        if (is_mem) {
            e.addr_ready_at = now + lat; // address generation
            e.complete_at = trace::isStore(e.rec.op) &&
                                    e.rec.op != OpClass::LockAcquire &&
                                    !policy_.storeBlocksRetire()
                                ? now + lat
                                : kNever; // set when the access returns
            if (trace::isHint(e.rec.op))
                e.complete_at = kNever; // set when the hint fires
            if (e.rec.op == OpClass::Flush)
                e.complete_at = now + lat; // fires later, from the wb
            --mem_budget;
        } else {
            e.complete_at = now + lat;
        }
        ++issued;
    }
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::dispatch(const trace::TraceRecord &rec, Cycles now)
{
    WindowEntry e;
    e.rec = rec;
    e.seq = next_seq_++;

    if (trace::isBranch(rec.op)) {
        ++unresolved_branches_;
        const bool correct = bpred_.predict(rec);
        e.predicted = true;
        e.mispredicted = !correct;
        if (!correct)
            unresolved_branch_seq_ = e.seq;
    }
    window_.push_back(e);
}

void
Core::fetchStage(Cycles now)
{
    if (!proc_ || now < run_resume_at_ || syscall_fetch_block_)
        return;
    if (unresolved_branch_seq_ != kNoSeq || now < fetch_resume_at_)
        return;

    std::uint32_t fetched = 0;
    Addr first_line = kNoAddr;
    while (fetched < params_.issue_width) {
        if (window_.size() >= params_.window_size)
            break;
        if (unresolved_branches_ >= params_.max_spec_branches)
            break;
        if (!pending_) {
            trace::TraceRecord r;
            if (!proc_->fetchNext(r)) {
                if (window_.empty() && !done_notified_) {
                    done_notified_ = true;
                    env_->onProcessDone(proc_->id());
                }
                break;
            }
            pending_ = r;
        }

        const Addr line = blockAlign(pending_->pc, params_.fetch_line_bytes);
        if (line != fetch_line_) {
            if (fetch_pending_line_ == line) {
                if (now < fetch_ready_at_)
                    break; // line still in flight
                fetch_line_ = line;
            } else {
                const FetchResult fr = mem_->instrFetch(pending_->pc, now);
                fetch_pending_line_ = line;
                fetch_ready_at_ = fr.ready;
                fetch_itlb_miss_ = fr.itlb_miss;
                if (fr.ready > now)
                    break;
                fetch_line_ = line;
            }
        }
        if (first_line == kNoAddr)
            first_line = line;
        else if (line != first_line)
            break; // one fetch block per cycle

        const trace::TraceRecord rec = *pending_;
        pending_.reset();
        dispatch(rec, now);
        progress_ = true;
        ++fetched;

        if (rec.op == OpClass::SyscallBlock) {
            syscall_fetch_block_ = true;
            break;
        }
        if (unresolved_branch_seq_ != kNoSeq)
            break; // mispredicted branch: stall until resolution
    }
}

// ---------------------------------------------------------------------
// Tick / skip
// ---------------------------------------------------------------------

void
Core::tick(Cycles now)
{
    mem_retry_at_ = kNever;
    progress_ = false;
    ++stats_.run_cycles;
    completeStage(now);
    retireStage(now);
    memoryStage(now);
    writeBufferStage(now);
    issueStage(now);
    fetchStage(now);
}

void
Core::accountStall(Cycles from, Cycles to)
{
    if (to <= from)
        return;
    const double dt = static_cast<double>(to - from);
    StallCat cat;
    if (proc_ && from < run_resume_at_)
        cat = StallCat::Idle;
    else
        cat = classifyHead();
    breakdown_.add(cat, dt);
    stats_.run_cycles += to - from;
}

std::string
Core::debugString() const
{
    char buf[256];
    const char *head_op = "-";
    char head_state[64] = "-";
    if (!window_.empty()) {
        const auto &e = window_.front();
        head_op = trace::opClassName(e.rec.op);
        std::snprintf(head_state, sizeof(head_state),
                      "iss=%d cmp=%d mi=%d perf@%lld spec=%d",
                      e.issued, e.completed, e.mem_issued,
                      e.performed_at == kNever
                          ? -1LL
                          : static_cast<long long>(e.performed_at),
                      e.speculative);
    }
    std::snprintf(buf, sizeof(buf),
                  "win=%zu wb=%zu head=%s[%s] ubr=%u ubseq=%lld fline=%llx "
                  "fpend=%llx fready=%llu sysblk=%d pend=%d",
                  window_.size(), wb_.size(), head_op, head_state,
                  unresolved_branches_,
                  unresolved_branch_seq_ == kNoSeq
                      ? -1LL
                      : static_cast<long long>(unresolved_branch_seq_),
                  static_cast<unsigned long long>(fetch_line_),
                  static_cast<unsigned long long>(fetch_pending_line_),
                  static_cast<unsigned long long>(fetch_ready_at_),
                  syscall_fetch_block_, pending_.has_value());
    return buf;
}

Cycles
Core::nextEvent(Cycles now) const
{
    Cycles next = kNever;
    auto consider = [&next, now](Cycles t) {
        if (t > now && t < next)
            next = t;
    };

    // If this tick dispatched, issued, retired, or performed anything,
    // the next cycle may enable more work.
    if (progress_)
        consider(now + 1);
    consider(mem_retry_at_);

    for (const auto &e : window_) {
        if (!e.issued) {
            // Ready-to-issue work exists: the next tick can issue it.
            if (producersReady(e))
                consider(now + 1);
            continue;
        }
        if (e.issued && !e.completed)
            consider(e.complete_at);
        if (e.issued && trace::isMemory(e.rec.op)) {
            if (!e.mem_issued) {
                consider(e.addr_ready_at);
                if (e.rec.op == OpClass::LockAcquire &&
                    e.addr_ready_at <= now) {
                    consider(e.spin_retry_at);
                }
            } else if (!e.performed) {
                consider(e.performed_at);
            }
        }
    }
    for (const auto &w : wb_) {
        if (w.issued && !w.performed)
            consider(w.performed_at);
        else if (!w.issued)
            consider(now + 1);
    }
    if (proc_) {
        consider(run_resume_at_);
        consider(fetch_resume_at_);
        consider(issue_block_until_);
        if (fetch_pending_line_ != kNoAddr &&
            fetch_line_ != fetch_pending_line_) {
            consider(fetch_ready_at_);
        }
    }
    return next;
}

namespace {

/// Serialized "core is idle" process id (ProcId is never this large).
constexpr ProcId kNoProcId = ~ProcId{0};

} // namespace

void
Core::saveState(snap::Writer &w) const
{
    w.u32(proc_ ? proc_->id() : kNoProcId);
    w.boolean(pending_.has_value());
    if (pending_)
        saveRecord(w, *pending_);
    w.u64(fetch_line_);
    w.u64(fetch_pending_line_);
    w.u64(fetch_ready_at_);
    w.boolean(fetch_itlb_miss_);
    w.u64(unresolved_branch_seq_);
    w.u64(fetch_resume_at_);
    w.boolean(syscall_fetch_block_);
    w.u64(run_resume_at_);
    w.boolean(done_notified_);

    w.u64(window_.size());
    for (const WindowEntry &e : window_) {
        saveRecord(w, e.rec);
        w.u64(e.seq);
        w.boolean(e.issued);
        w.boolean(e.completed);
        w.u64(e.complete_at);
        w.u64(e.addr_ready_at);
        w.boolean(e.mem_issued);
        w.boolean(e.performed);
        w.u64(e.performed_at);
        w.u8(static_cast<std::uint8_t>(e.cls));
        w.boolean(e.dtlb_miss);
        w.u64(e.pblock);
        w.boolean(e.speculative);
        w.boolean(e.violated);
        w.boolean(e.prefetched);
        w.boolean(e.predicted);
        w.boolean(e.mispredicted);
        w.u64(e.spin_retry_at);
        w.u64(e.spin_start);
    }
    w.u64(head_seq_);
    w.u64(next_seq_);
    w.u32(unresolved_branches_);
    w.u64(issue_block_until_);
    w.u64(mem_retry_at_);
    w.boolean(progress_);

    w.u64(wb_.size());
    for (const WbEntry &e : wb_) {
        w.u64(e.vaddr);
        w.u64(e.pc);
        w.u32(e.epoch);
        w.boolean(e.is_release);
        w.boolean(e.is_flush);
        w.boolean(e.issued);
        w.boolean(e.performed);
        w.u64(e.performed_at);
    }
    w.u32(wmb_epoch_);

    breakdown_.saveState(w);
    w.u64(stats_.instructions);
    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.spec_load_violations);
    w.u64(stats_.lock_yields);
    w.u64(stats_.lock_spin_retries);
    w.u64(stats_.context_switches);
    w.u64(stats_.run_cycles);
    bpred_.saveState(w);
    fu_.saveState(w);
}

void
Core::restoreState(snap::Reader &r,
                   const std::function<ProcessContext *(ProcId)> &resolve)
{
    const ProcId pid = r.u32();
    proc_ = pid == kNoProcId ? nullptr : resolve(pid);
    if (pid != kNoProcId && proc_ == nullptr)
        throw snap::SnapshotError("snapshot: unresolvable running process");
    pending_.reset();
    if (r.boolean())
        pending_ = trace::loadRecord(r);
    fetch_line_ = r.u64();
    fetch_pending_line_ = r.u64();
    fetch_ready_at_ = r.u64();
    fetch_itlb_miss_ = r.boolean();
    unresolved_branch_seq_ = r.u64();
    fetch_resume_at_ = r.u64();
    syscall_fetch_block_ = r.boolean();
    run_resume_at_ = r.u64();
    done_notified_ = r.boolean();

    window_.clear();
    const std::size_t nw = r.length(28);
    for (std::size_t i = 0; i < nw; ++i) {
        WindowEntry e;
        e.rec = trace::loadRecord(r);
        e.seq = r.u64();
        e.issued = r.boolean();
        e.completed = r.boolean();
        e.complete_at = r.u64();
        e.addr_ready_at = r.u64();
        e.mem_issued = r.boolean();
        e.performed = r.boolean();
        e.performed_at = r.u64();
        e.cls = static_cast<coher::AccessClass>(r.u8());
        e.dtlb_miss = r.boolean();
        e.pblock = r.u64();
        e.speculative = r.boolean();
        e.violated = r.boolean();
        e.prefetched = r.boolean();
        e.predicted = r.boolean();
        e.mispredicted = r.boolean();
        e.spin_retry_at = r.u64();
        e.spin_start = r.u64();
        window_.push_back(e);
    }
    head_seq_ = r.u64();
    next_seq_ = r.u64();
    unresolved_branches_ = r.u32();
    issue_block_until_ = r.u64();
    mem_retry_at_ = r.u64();
    progress_ = r.boolean();

    wb_.clear();
    const std::size_t nwb = r.length(29);
    for (std::size_t i = 0; i < nwb; ++i) {
        WbEntry e{};
        e.vaddr = r.u64();
        e.pc = r.u64();
        e.epoch = r.u32();
        e.is_release = r.boolean();
        e.is_flush = r.boolean();
        e.issued = r.boolean();
        e.performed = r.boolean();
        e.performed_at = r.u64();
        wb_.push_back(e);
    }
    wmb_epoch_ = r.u32();

    breakdown_.restoreState(r);
    stats_.instructions = r.u64();
    stats_.loads = r.u64();
    stats_.stores = r.u64();
    stats_.spec_load_violations = r.u64();
    stats_.lock_yields = r.u64();
    stats_.lock_spin_retries = r.u64();
    stats_.context_switches = r.u64();
    stats_.run_cycles = r.u64();
    bpred_.restoreState(r);
    fu_.restoreState(r);
}

} // namespace dbsim::cpu
