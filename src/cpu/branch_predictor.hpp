/**
 * @file
 * Branch prediction for the processor models (paper Figure 1):
 *
 *  - conditional branches: hybrid PA(4K,12,1)/g(12,12) predictor
 *    (Yeh-Patt two-level per-address component + global-history
 *    component, with a per-address chooser);
 *  - jump / indirect branches: 512-entry 4-way branch target buffer;
 *  - call/returns: 32-element return address stack.
 *
 * The simulator is trace-driven, so the predictor is consulted with the
 * actual outcome in hand: a mismatch is a misprediction, which stalls
 * fetch until the branch resolves (no wrong-path instructions are
 * executed, as in the paper).
 */

#ifndef DBSIM_CPU_BRANCH_PREDICTOR_HPP
#define DBSIM_CPU_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace dbsim::cpu {

/** Branch predictor statistics, per branch class and cumulative. */
struct BranchPredStats
{
    std::uint64_t cond_lookups = 0;
    std::uint64_t cond_mispredicts = 0;
    std::uint64_t jmp_lookups = 0;
    std::uint64_t jmp_mispredicts = 0;
    std::uint64_t ret_lookups = 0;
    std::uint64_t ret_mispredicts = 0;

    std::uint64_t
    lookups() const
    {
        return cond_lookups + jmp_lookups + ret_lookups;
    }

    std::uint64_t
    mispredicts() const
    {
        return cond_mispredicts + jmp_mispredicts + ret_mispredicts;
    }

    /** Cumulative misprediction rate over all branch classes. */
    double
    rate() const
    {
        const auto l = lookups();
        return l ? static_cast<double>(mispredicts()) / static_cast<double>(l) : 0.0;
    }
};

/** Predictor sizing parameters. */
struct BranchPredParams
{
    std::uint32_t pa_entries = 4096;   ///< per-address history table entries
    std::uint32_t pa_hist_bits = 12;   ///< local history length
    std::uint32_t g_hist_bits = 12;    ///< global history length
    std::uint32_t g_pht_bits = 12;     ///< global pattern table index bits
    std::uint32_t chooser_entries = 4096;
    std::uint32_t btb_entries = 512;
    std::uint32_t btb_assoc = 4;
    std::uint32_t ras_entries = 32;
    bool perfect = false;              ///< idealized predictor (Figure 4)
};

/**
 * The hybrid branch predictor.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredParams &params = {});

    /**
     * Predict-and-update for one dynamic branch.
     *
     * @param rec  the branch record (op, pc, taken, target in extra)
     * @return true iff the prediction was correct.
     */
    bool predict(const trace::TraceRecord &rec);

    const BranchPredStats &stats() const { return stats_; }

    /** Zero the counters; predictor tables are preserved. */
    void resetStats() { stats_ = BranchPredStats{}; }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(local_hist_.size());
        for (std::uint16_t h : local_hist_)
            w.u16(h);
        w.u64(local_pht_.size());
        for (std::uint8_t c : local_pht_)
            w.u8(c);
        w.u64(global_pht_.size());
        for (std::uint8_t c : global_pht_)
            w.u8(c);
        w.u64(chooser_.size());
        for (std::uint8_t c : chooser_)
            w.u8(c);
        w.u32(ghr_);
        w.u64(btb_.size());
        for (const BtbWay &way : btb_) {
            w.u64(way.tag);
            w.u64(way.target);
            w.u64(way.lru);
            w.boolean(way.valid);
        }
        w.u64(btb_stamp_);
        w.u64(ras_.size());
        for (Addr a : ras_)
            w.u64(a);
        w.u32(ras_top_);
        w.u32(ras_count_);
        w.u64(stats_.cond_lookups);
        w.u64(stats_.cond_mispredicts);
        w.u64(stats_.jmp_lookups);
        w.u64(stats_.jmp_mispredicts);
        w.u64(stats_.ret_lookups);
        w.u64(stats_.ret_mispredicts);
    }

    void
    restoreState(snap::Reader &r)
    {
        auto fixedLen = [&r](std::size_t expect, std::size_t elem) {
            if (r.length(elem) != expect)
                throw snap::SnapshotError("snapshot: branch-predictor "
                                          "geometry mismatch");
        };
        fixedLen(local_hist_.size(), 2);
        for (std::uint16_t &h : local_hist_)
            h = r.u16();
        fixedLen(local_pht_.size(), 1);
        for (std::uint8_t &c : local_pht_)
            c = r.u8();
        fixedLen(global_pht_.size(), 1);
        for (std::uint8_t &c : global_pht_)
            c = r.u8();
        fixedLen(chooser_.size(), 1);
        for (std::uint8_t &c : chooser_)
            c = r.u8();
        ghr_ = r.u32();
        fixedLen(btb_.size(), 25);
        for (BtbWay &way : btb_) {
            way.tag = r.u64();
            way.target = r.u64();
            way.lru = r.u64();
            way.valid = r.boolean();
        }
        btb_stamp_ = r.u64();
        fixedLen(ras_.size(), 8);
        for (Addr &a : ras_)
            a = r.u64();
        ras_top_ = r.u32();
        ras_count_ = r.u32();
        stats_.cond_lookups = r.u64();
        stats_.cond_mispredicts = r.u64();
        stats_.jmp_lookups = r.u64();
        stats_.jmp_mispredicts = r.u64();
        stats_.ret_lookups = r.u64();
        stats_.ret_mispredicts = r.u64();
    }

  private:
    bool predictConditional(Addr pc, bool taken);
    bool predictIndirect(Addr pc, Addr target, bool is_call);
    bool predictReturn(Addr target);

    void btbUpdate(Addr pc, Addr target);
    bool btbLookup(Addr pc, Addr target);

    static void
    updateCounter(std::uint8_t &ctr, bool inc)
    {
        if (inc && ctr < 3)
            ++ctr;
        else if (!inc && ctr > 0)
            --ctr;
    }

    BranchPredParams p_;
    std::vector<std::uint16_t> local_hist_;  ///< per-address histories
    std::vector<std::uint8_t> local_pht_;    ///< 2-bit counters
    std::vector<std::uint8_t> global_pht_;   ///< 2-bit counters
    std::vector<std::uint8_t> chooser_;      ///< 2-bit: >=2 selects global
    std::uint32_t ghr_ = 0;

    struct BtbWay
    {
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };
    std::vector<BtbWay> btb_;
    std::uint64_t btb_stamp_ = 0;

    std::vector<Addr> ras_;
    std::uint32_t ras_top_ = 0;   ///< index of next push slot
    std::uint32_t ras_count_ = 0; ///< valid entries

    BranchPredStats stats_;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_BRANCH_PREDICTOR_HPP
