#include "cpu/inorder_core.hpp"

#include <algorithm>

namespace dbsim::cpu {

CoreParams
makeInOrderParams(CoreParams base)
{
    base.out_of_order = false;
    base.window_size = std::max<std::uint32_t>(8, 2 * base.issue_width);
    return base;
}

} // namespace dbsim::cpu
