#include "cpu/func_units.hpp"

namespace dbsim::cpu {

void
FuncUnitPool::rollCycle(Cycles now)
{
    if (cycle_ != now) {
        cycle_ = now;
        int_used_ = fp_used_ = addr_used_ = 0;
    }
}

bool
FuncUnitPool::tryIssue(trace::OpClass op, Cycles now)
{
    using trace::OpClass;
    rollCycle(now);
    if (p_.infinite)
        return true;

    switch (op) {
      case OpClass::FpAlu:
        if (fp_used_ < p_.fp_units) {
            ++fp_used_;
            return true;
        }
        break;
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::LockAcquire:
      case OpClass::LockRelease:
      case OpClass::Prefetch:
      case OpClass::PrefetchExcl:
      case OpClass::Flush:
        if (addr_used_ < p_.addr_units) {
            ++addr_used_;
            return true;
        }
        break;
      default:
        // Integer ops, branches, and fences use the integer ALUs.
        if (int_used_ < p_.int_alus) {
            ++int_used_;
            return true;
        }
        break;
    }
    ++structural_stalls_;
    return false;
}

std::uint32_t
FuncUnitPool::latency(trace::OpClass op) const
{
    using trace::OpClass;
    switch (op) {
      case OpClass::FpAlu:
        return p_.fp_latency;
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::LockAcquire:
      case OpClass::LockRelease:
      case OpClass::Prefetch:
      case OpClass::PrefetchExcl:
      case OpClass::Flush:
        return p_.agen_latency;
      case OpClass::BranchCond:
      case OpClass::BranchJmp:
      case OpClass::BranchCall:
      case OpClass::BranchRet:
        return p_.branch_latency;
      default:
        return p_.int_latency;
    }
}

} // namespace dbsim::cpu
