/**
 * @file
 * Per-process execution context for the trace-driven cores.
 *
 * A ProcessContext couples a trace source with an "undo" queue that lets
 * the core push already-fetched records back when a process yields the
 * CPU (e.g. a lock-spin that converts to a block): the records are
 * re-delivered, in order, when the process runs again.
 */

#ifndef DBSIM_CPU_PROCESS_HPP
#define DBSIM_CPU_PROCESS_HPP

#include <deque>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace dbsim::cpu {

/** Run state of a workload process. */
enum class ProcState : std::uint8_t { Ready, Running, Blocked, Done };

/**
 * The execution context of one workload process.
 */
class ProcessContext
{
  public:
    ProcessContext(ProcId id, trace::TraceSource *src)
        : id_(id), src_(src) {}

    ProcId id() const { return id_; }

    /** True once the trace is exhausted and the undo queue is empty. */
    bool
    exhausted() const
    {
        return src_exhausted_ && undo_.empty();
    }

    /**
     * Fetch the next record for this process.
     * @return false when exhausted.
     */
    bool
    fetchNext(trace::TraceRecord &out)
    {
        if (!undo_.empty()) {
            out = undo_.front();
            undo_.pop_front();
            ++fetched_;
            return true;
        }
        if (src_exhausted_ || !src_->next(out)) {
            src_exhausted_ = true;
            return false;
        }
        ++fetched_;
        return true;
    }

    /**
     * Push a record back so it is re-delivered next.  Call in reverse
     * fetch order when returning multiple records.
     */
    void
    unfetch(const trace::TraceRecord &rec)
    {
        undo_.push_front(rec);
        --fetched_;
    }

    std::uint64_t fetched() const { return fetched_; }

    /** Context state only; the trace source serializes separately. */
    void
    saveState(snap::Writer &w) const
    {
        w.u8(static_cast<std::uint8_t>(state));
        w.u64(wake_at);
        w.u64(retired);
        w.u64(undo_.size());
        for (const trace::TraceRecord &rec : undo_)
            saveRecord(w, rec);
        w.boolean(src_exhausted_);
        w.u64(fetched_);
    }

    void
    restoreState(snap::Reader &r)
    {
        state = static_cast<ProcState>(r.u8());
        wake_at = r.u64();
        retired = r.u64();
        undo_.clear();
        const std::size_t n = r.length(28);
        for (std::size_t i = 0; i < n; ++i)
            undo_.push_back(trace::loadRecord(r));
        src_exhausted_ = r.boolean();
        fetched_ = r.u64();
    }

    ProcState state = ProcState::Ready;
    Cycles wake_at = 0;          ///< for Blocked processes
    std::uint64_t retired = 0;   ///< instructions retired

  private:
    ProcId id_;
    trace::TraceSource *src_;
    std::deque<trace::TraceRecord> undo_;
    bool src_exhausted_ = false;
    std::uint64_t fetched_ = 0;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_PROCESS_HPP
