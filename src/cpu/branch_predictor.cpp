#include "cpu/branch_predictor.hpp"

#include "common/log.hpp"

namespace dbsim::cpu {

BranchPredictor::BranchPredictor(const BranchPredParams &params) : p_(params)
{
    if (!isPow2(p_.pa_entries) || !isPow2(p_.chooser_entries) ||
        !isPow2(p_.btb_entries)) {
        DBSIM_FATAL("branch predictor table sizes must be powers of two");
    }
    local_hist_.assign(p_.pa_entries, 0);
    local_pht_.assign(std::size_t{1} << p_.pa_hist_bits, 2);
    global_pht_.assign(std::size_t{1} << p_.g_pht_bits, 2);
    chooser_.assign(p_.chooser_entries, 2);
    btb_.assign(p_.btb_entries, BtbWay{});
    ras_.assign(p_.ras_entries, 0);
}

bool
BranchPredictor::predictConditional(Addr pc, bool taken)
{
    // Per-address (PA) component.
    const std::uint32_t lh_idx =
        static_cast<std::uint32_t>((pc >> 2) & (p_.pa_entries - 1));
    const std::uint16_t lhist =
        local_hist_[lh_idx] & ((1u << p_.pa_hist_bits) - 1);
    const bool local_pred = local_pht_[lhist] >= 2;

    // Global (g) component: gshare-style index.
    const std::uint32_t g_idx = static_cast<std::uint32_t>(
        (ghr_ ^ (pc >> 2)) & ((1u << p_.g_pht_bits) - 1));
    const bool global_pred = global_pht_[g_idx] >= 2;

    // Chooser.
    const std::uint32_t c_idx =
        static_cast<std::uint32_t>((pc >> 2) & (p_.chooser_entries - 1));
    const bool use_global = chooser_[c_idx] >= 2;
    const bool pred = use_global ? global_pred : local_pred;

    // Updates: components train on the outcome; the chooser trains
    // toward whichever component was right (when they disagree).
    if (local_pred != global_pred)
        updateCounter(chooser_[c_idx], global_pred == taken);
    updateCounter(local_pht_[lhist], taken);
    updateCounter(global_pht_[g_idx], taken);
    local_hist_[lh_idx] = static_cast<std::uint16_t>(
        ((lhist << 1) | (taken ? 1 : 0)) & ((1u << p_.pa_hist_bits) - 1));
    ghr_ = ((ghr_ << 1) | (taken ? 1u : 0u)) & ((1u << p_.g_hist_bits) - 1);

    return pred == taken;
}

bool
BranchPredictor::btbLookup(Addr pc, Addr target)
{
    const std::uint32_t sets = p_.btb_entries / p_.btb_assoc;
    const std::uint32_t set =
        static_cast<std::uint32_t>((pc >> 2) & (sets - 1));
    BtbWay *ways = &btb_[static_cast<std::size_t>(set) * p_.btb_assoc];
    for (std::uint32_t w = 0; w < p_.btb_assoc; ++w) {
        if (ways[w].valid && ways[w].tag == pc) {
            ways[w].lru = ++btb_stamp_;
            return ways[w].target == target;
        }
    }
    return false;
}

void
BranchPredictor::btbUpdate(Addr pc, Addr target)
{
    const std::uint32_t sets = p_.btb_entries / p_.btb_assoc;
    const std::uint32_t set =
        static_cast<std::uint32_t>((pc >> 2) & (sets - 1));
    BtbWay *ways = &btb_[static_cast<std::size_t>(set) * p_.btb_assoc];
    BtbWay *victim = &ways[0];
    for (std::uint32_t w = 0; w < p_.btb_assoc; ++w) {
        if (ways[w].valid && ways[w].tag == pc) {
            victim = &ways[w];
            break;
        }
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lru < victim->lru)
            victim = &ways[w];
    }
    victim->tag = pc;
    victim->target = target;
    victim->valid = true;
    victim->lru = ++btb_stamp_;
}

bool
BranchPredictor::predictIndirect(Addr pc, Addr target, bool is_call)
{
    const bool hit = btbLookup(pc, target);
    btbUpdate(pc, target);
    if (is_call) {
        // Push the (synthetic) return address.
        ras_[ras_top_] = pc + 4;
        ras_top_ = (ras_top_ + 1) % p_.ras_entries;
        if (ras_count_ < p_.ras_entries)
            ++ras_count_;
    }
    return hit;
}

bool
BranchPredictor::predictReturn(Addr target)
{
    if (ras_count_ == 0)
        return false;
    ras_top_ = (ras_top_ + p_.ras_entries - 1) % p_.ras_entries;
    --ras_count_;
    return ras_[ras_top_] == target;
}

bool
BranchPredictor::predict(const trace::TraceRecord &rec)
{
    using trace::OpClass;
    if (p_.perfect) {
        switch (rec.op) {
          case OpClass::BranchCond: ++stats_.cond_lookups; break;
          case OpClass::BranchJmp:
          case OpClass::BranchCall: ++stats_.jmp_lookups; break;
          case OpClass::BranchRet:  ++stats_.ret_lookups; break;
          default: DBSIM_PANIC("predict() on non-branch");
        }
        return true;
    }

    bool correct = false;
    switch (rec.op) {
      case OpClass::BranchCond:
        ++stats_.cond_lookups;
        correct = predictConditional(rec.pc, rec.taken);
        if (!correct)
            ++stats_.cond_mispredicts;
        break;
      case OpClass::BranchJmp:
        ++stats_.jmp_lookups;
        correct = predictIndirect(rec.pc, rec.extra, false);
        if (!correct)
            ++stats_.jmp_mispredicts;
        break;
      case OpClass::BranchCall:
        ++stats_.jmp_lookups;
        correct = predictIndirect(rec.pc, rec.extra, true);
        if (!correct)
            ++stats_.jmp_mispredicts;
        break;
      case OpClass::BranchRet:
        ++stats_.ret_lookups;
        correct = predictReturn(rec.extra);
        if (!correct)
            ++stats_.ret_mispredicts;
        break;
      default:
        DBSIM_PANIC("predict() on non-branch record");
    }
    return correct;
}

} // namespace dbsim::cpu
