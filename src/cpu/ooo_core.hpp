/**
 * @file
 * The trace-driven processor core.
 *
 * One Core class models both processor flavors studied in the paper:
 *
 *  - the aggressive out-of-order core (default): multiple issue,
 *    register-dependence-driven out-of-order issue from an instruction
 *    window, non-blocking loads, speculative execution past predicted
 *    branches, and a memory queue implementing SC / PC / RC with the
 *    ILP-enabled prefetch and speculative-load optimizations;
 *
 *  - the in-order core (out_of_order = false): instructions issue
 *    strictly in program order and the pipeline stalls at the first
 *    instruction whose operands are not ready, as in the paper's
 *    in-order model (non-blocking caches still permit hit-under-miss
 *    overlap of independent following instructions).
 *
 * Execution-time accounting follows the paper's retire-slot convention
 * (see sim/breakdown.hpp).
 */

#ifndef DBSIM_CPU_OOO_CORE_HPP
#define DBSIM_CPU_OOO_CORE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/consistency.hpp"
#include "cpu/func_units.hpp"
#include "cpu/interfaces.hpp"
#include "cpu/process.hpp"
#include "common/breakdown.hpp"
#include "trace/record.hpp"
#include "common/mutator.hpp"

namespace dbsim::cpu {

/** Core configuration (paper Figure 1 defaults). */
struct CoreParams
{
    bool out_of_order = true;
    std::uint32_t issue_width = 4;
    std::uint32_t window_size = 64;
    std::uint32_t mem_queue_size = 32;   ///< in-flight memory ops (window side)
    std::uint32_t write_buffer_size = 16;
    std::uint32_t max_spec_branches = 8;
    std::uint32_t mispredict_restart = 4; ///< pipeline refill after resolve
    std::uint32_t rollback_penalty = 8;   ///< spec-load violation recovery
    std::uint32_t fetch_line_bytes = 64;  ///< L1I line (fetch-block) size
    std::uint32_t spin_retry_interval = 40;
    Cycles spin_yield_threshold = 10000;
    Cycles context_switch_cost = 500;
    FuncUnitParams fu;
    BranchPredParams bp;
    ConsistencyModel model = ConsistencyModel::RC;
    ConsistencyImpl cons;

    /**
     * Protocol fault injection (verification layer / tests only).  The
     * seeded consistency bugs -- SkippedSpecSquash, ReorderedRelease --
     * fire at their decision points in this core.  Not owned.
     */
    const verify::ProtocolMutator *mutator = nullptr;
};

/** Aggregate core statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t spec_load_violations = 0;
    std::uint64_t lock_yields = 0;
    std::uint64_t lock_spin_retries = 0;
    std::uint64_t context_switches = 0;
    Cycles run_cycles = 0; ///< cycles accounted (incl. idle)
};

/**
 * The processor core.  The owner (sim::Node / sim::System) supplies a
 * memory interface, an environment interface, and process contexts, and
 * drives the core via tick() / skipTo().
 */
class Core
{
  public:
    Core(CpuId id, const CoreParams &params, CoreMemIf *mem,
         CoreEnvIf *env);

    CpuId id() const { return id_; }
    const CoreParams &params() const { return params_; }

    /**
     * Begin running @p proc at @p now.  Any previously running process
     * must already have been detached (window empty).  A context-switch
     * cost is applied unless this is the first dispatch on an idle core
     * with @p charge_switch false.
     */
    void switchTo(ProcessContext *proc, Cycles now, bool charge_switch);

    /** The currently running process (nullptr if idle). */
    ProcessContext *current() const { return proc_; }

    /**
     * Push all fetched-but-unretired records back to the current process
     * and detach it (used for lock yields and preemption).  The window
     * is left empty.
     */
    void detachCurrent();

    /** Advance the core by one cycle. */
    void tick(Cycles now);

    /**
     * Account for the core being in its current (stalled or idle) state
     * from @p from to @p to without re-simulating each cycle.  Only
     * valid when nextEvent(from) >= to.
     */
    void accountStall(Cycles from, Cycles to);

    /**
     * Earliest future cycle at which this core's state can change.
     * Returns kNever when the core is idle with no pending events.
     */
    Cycles nextEvent(Cycles now) const;

    /** Notification: physical line @p pblock was invalidated/evicted. */
    void onLineInvalidated(Addr pblock);

    /** Current head-of-window stall classification (for diagnostics). */
    StallCat headCat() const { return classifyHead(); }

    /** One-line pipeline state dump (for diagnostics). */
    std::string debugString() const;

    /** True when the window and write buffer have fully drained. */
    bool drained() const { return window_.empty() && wb_.empty(); }

    const Breakdown &breakdown() const { return breakdown_; }
    const CoreStats &stats() const { return stats_; }
    const BranchPredStats &branchStats() const { return bpred_.stats(); }
    const FuncUnitPool &funcUnits() const { return fu_; }

    /** Zero statistical state (architectural state is preserved). */
    void resetStats();

    /** Serialize the full micro-architectural state (checkpointing). */
    void saveState(snap::Writer &w) const;

    /**
     * Restore state saved by saveState().  @p resolve maps a serialized
     * ProcId back to the live ProcessContext (nullptr for "idle").
     */
    void restoreState(snap::Reader &r,
                      const std::function<ProcessContext *(ProcId)> &resolve);

  private:
    static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

    struct WindowEntry
    {
        trace::TraceRecord rec;
        std::uint64_t seq = 0;
        bool issued = false;
        bool completed = false;
        Cycles complete_at = kNever;
        // memory-op state
        Cycles addr_ready_at = kNever;
        bool mem_issued = false;
        bool performed = false;
        Cycles performed_at = kNever;
        coher::AccessClass cls = coher::AccessClass::L1Hit;
        bool dtlb_miss = false;
        Addr pblock = kNoAddr;
        bool speculative = false;
        bool violated = false;
        bool prefetched = false;
        // branch state
        bool predicted = false;
        bool mispredicted = false;
        // lock-acquire state
        Cycles spin_retry_at = 0;
        Cycles spin_start = kNever;
    };

    struct WbEntry
    {
        Addr vaddr;
        Addr pc;
        std::uint32_t epoch;
        bool is_release;
        bool is_flush = false; ///< flush hint riding the write buffer
        bool issued = false;
        bool performed = false;
        Cycles performed_at = kNever;
    };

    // pipeline stages
    void retireStage(Cycles now);
    void completeStage(Cycles now);
    void memoryStage(Cycles now);
    void writeBufferStage(Cycles now);
    void issueStage(Cycles now);
    void fetchStage(Cycles now);

    bool canRetire(const WindowEntry &e, Cycles now) const;
    void doRetireActions(WindowEntry &e, Cycles now);
    bool producersReady(const WindowEntry &e) const;
    void dispatch(const trace::TraceRecord &rec, Cycles now);
    void attemptMemIssue(WindowEntry &e, Cycles now, bool loads_done,
                         bool stores_done, bool fence_before);
    void attemptLockAcquire(WindowEntry &e, Cycles now);
    void rollbackFrom(std::size_t idx, Cycles now);
    StallCat classifyHead() const;
    StallCat readCat(const WindowEntry &e) const;
    bool wbAllPerformed() const;
    std::uint32_t minUnperformedEpoch() const;
    const WindowEntry *entryFor(std::uint64_t seq) const;
    std::uint32_t memOpsInFlight() const;

    CpuId id_;
    CoreParams params_;
    CoreMemIf *mem_;
    CoreEnvIf *env_;
    ConsistencyPolicy policy_;
    BranchPredictor bpred_;
    FuncUnitPool fu_;

    // process / fetch state
    ProcessContext *proc_ = nullptr;
    std::optional<trace::TraceRecord> pending_;
    Addr fetch_line_ = kNoAddr;         ///< line currently deliverable
    Addr fetch_pending_line_ = kNoAddr; ///< line being fetched
    Cycles fetch_ready_at_ = 0;
    bool fetch_itlb_miss_ = false;
    std::uint64_t unresolved_branch_seq_ = kNoSeq;
    Cycles fetch_resume_at_ = 0;
    bool syscall_fetch_block_ = false;
    Cycles run_resume_at_ = 0; ///< context-switch cost horizon
    bool done_notified_ = false;

    // window / memory queue
    std::deque<WindowEntry> window_;
    std::uint64_t head_seq_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint32_t unresolved_branches_ = 0;
    Cycles issue_block_until_ = 0;
    Cycles mem_retry_at_ = kNever; ///< earliest refused-access retry
    bool progress_ = false; ///< this tick changed pipeline state

    // write buffer
    std::deque<WbEntry> wb_;
    std::uint32_t wmb_epoch_ = 0;

    Breakdown breakdown_;
    CoreStats stats_;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_OOO_CORE_HPP
