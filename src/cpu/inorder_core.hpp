/**
 * @file
 * Configuration helpers for the in-order processor model.
 *
 * The in-order and out-of-order models share one pipeline implementation
 * (cpu::Core); the in-order flavor restricts issue to strict program
 * order, stalling at the first instruction whose operands are not ready
 * (paper section 3.1), and uses a small fetch buffer in place of the
 * instruction window.
 */

#ifndef DBSIM_CPU_INORDER_CORE_HPP
#define DBSIM_CPU_INORDER_CORE_HPP

#include "cpu/ooo_core.hpp"

namespace dbsim::cpu {

/**
 * Derive in-order core parameters from a base configuration: disables
 * out-of-order issue and sizes the fetch buffer to twice the issue
 * width (minimum 8), keeping all other parameters (caches, predictor,
 * consistency model) unchanged.
 */
CoreParams makeInOrderParams(CoreParams base);

} // namespace dbsim::cpu

#endif // DBSIM_CPU_INORDER_CORE_HPP
