/**
 * @file
 * Functional-unit pools.
 *
 * The base machine has 2 integer ALUs, 2 floating-point units, and 2
 * address-generation units (paper Figure 1); all are fully pipelined, so
 * each unit accepts one operation per cycle.  The pool therefore enforces
 * a per-cycle, per-class issue limit.  Figure 4 / section 3.2.2 study
 * idealized ("infinite") functional units, which the pool supports.
 */

#ifndef DBSIM_CPU_FUNC_UNITS_HPP
#define DBSIM_CPU_FUNC_UNITS_HPP

#include <cstdint>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace dbsim::cpu {

/** Functional-unit configuration. */
struct FuncUnitParams
{
    std::uint32_t int_alus = 2;
    std::uint32_t fp_units = 2;
    std::uint32_t addr_units = 2;
    bool infinite = false;      ///< idealized: no structural limits

    std::uint32_t int_latency = 1;
    std::uint32_t fp_latency = 4;
    std::uint32_t agen_latency = 1; ///< address-generation stage
    std::uint32_t branch_latency = 1;
};

/** Per-cycle functional-unit availability tracker. */
class FuncUnitPool
{
  public:
    explicit FuncUnitPool(const FuncUnitParams &params = {}) : p_(params) {}

    /**
     * Try to claim a unit for @p op in cycle @p now.
     * @return true if a unit was available (and is now claimed).
     */
    bool tryIssue(trace::OpClass op, Cycles now);

    /** Execution latency of @p op (cycles from issue to completion). */
    std::uint32_t latency(trace::OpClass op) const;

    const FuncUnitParams &params() const { return p_; }

    std::uint64_t structuralStalls() const { return structural_stalls_; }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(cycle_);
        w.u32(int_used_);
        w.u32(fp_used_);
        w.u32(addr_used_);
        w.u64(structural_stalls_);
    }

    void
    restoreState(snap::Reader &r)
    {
        cycle_ = r.u64();
        int_used_ = r.u32();
        fp_used_ = r.u32();
        addr_used_ = r.u32();
        structural_stalls_ = r.u64();
    }

  private:
    void rollCycle(Cycles now);

    FuncUnitParams p_;
    Cycles cycle_ = kNever;
    std::uint32_t int_used_ = 0;
    std::uint32_t fp_used_ = 0;
    std::uint32_t addr_used_ = 0;
    std::uint64_t structural_stalls_ = 0;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_FUNC_UNITS_HPP
