/**
 * @file
 * Interfaces through which a processor core talks to the rest of the
 * node (memory hierarchy) and to the machine-wide services (locks,
 * scheduler notifications).  sim::Node and sim::System implement these.
 */

#ifndef DBSIM_CPU_INTERFACES_HPP
#define DBSIM_CPU_INTERFACES_HPP

#include <optional>

#include "coherence/directory.hpp"
#include "common/types.hpp"

namespace dbsim::cpu {

/** Outcome of a data access presented to the memory hierarchy. */
struct MemAccessResult
{
    Cycles ready;             ///< cycle the data (or ownership) is available
    coher::AccessClass cls;   ///< service classification
    Addr pblock;              ///< physical block address (for violation checks)
    bool dtlb_miss = false;   ///< the access took a data-TLB miss
};

/** Outcome of an instruction-line fetch. */
struct FetchResult
{
    Cycles ready;             ///< cycle the fetch block is available
    bool itlb_miss = false;
    bool l1_hit = true;
};

/**
 * Memory-hierarchy interface used by a core.  All calls are issued at
 * the core's current cycle; results carry absolute completion times.
 */
class CoreMemIf
{
  public:
    virtual ~CoreMemIf() = default;

    /**
     * Attempt a data access.
     *
     * @param vaddr     virtual address
     * @param pc        PC of the accessing instruction
     * @param is_write  store / read-exclusive when true
     * @param now       current cycle
     * @param prefetch  non-binding prefetch (never retried; dropped
     *                  silently when resources are busy)
     * @param retry_at  when the access is refused, set (if non-null) to
     *                  the earliest cycle a retry could succeed (used
     *                  for event-driven cycle skipping)
     * @return completion info, or std::nullopt when the access cannot be
     *         accepted this cycle (port or MSHR busy) and must retry.
     */
    virtual std::optional<MemAccessResult>
    dataAccess(Addr vaddr, Addr pc, bool is_write, Cycles now,
               bool prefetch, Cycles *retry_at = nullptr) = 0;

    /** Fetch the instruction line containing @p pc. */
    virtual FetchResult instrFetch(Addr pc, Cycles now) = 0;

    /** Flush / WriteThrough hint for the line containing @p vaddr. */
    virtual void flushHint(Addr vaddr, Cycles now) = 0;
};

/**
 * Machine-wide services: the lock table maintained in the simulated
 * environment (paper section 2.2) and scheduling notifications.
 */
class CoreEnvIf
{
  public:
    virtual ~CoreEnvIf() = default;

    /** Is the lock at @p addr currently free (acquirable by @p proc)? */
    virtual bool lockIsFree(Addr addr, ProcId proc) const = 0;

    /** Try to acquire the lock at @p addr for process @p proc. */
    virtual bool lockTryAcquire(Addr addr, ProcId proc) = 0;

    /** Release the lock at @p addr (held by @p proc). */
    virtual void lockRelease(Addr addr, ProcId proc) = 0;

    /**
     * The running process executed a blocking system call taking
     * @p latency cycles of I/O; the scheduler should block it and switch.
     */
    virtual void onSyscallBlock(ProcId proc, Cycles latency) = 0;

    /** The running process spun too long on a lock and yields the CPU. */
    virtual void onLockYield(ProcId proc) = 0;

    /** The running process's trace is exhausted. */
    virtual void onProcessDone(ProcId proc) = 0;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_INTERFACES_HPP
