/**
 * @file
 * Memory consistency models and their ILP-enabled optimized
 * implementations (paper section 3.4).
 *
 * Three models are supported:
 *  - SC  (sequential consistency): memory operations perform one at a
 *    time in program order;
 *  - PC  (processor consistency): loads perform in order among loads,
 *    stores in order among stores and behind prior loads, but loads may
 *    bypass pending stores;
 *  - RC  (release consistency / the Alpha model): ordering only at MB /
 *    WMB fences.
 *
 * Two optimizations (Gharachorloo et al. [7]) can be layered on SC / PC:
 *  - hardware prefetch from the instruction window: non-binding
 *    prefetches for operations whose address is known but which are
 *    blocked by consistency constraints;
 *  - speculative load execution: loads consume values early regardless
 *    of constraints, with rollback if the accessed line is invalidated
 *    or evicted before the load commits.
 */

#ifndef DBSIM_CPU_CONSISTENCY_HPP
#define DBSIM_CPU_CONSISTENCY_HPP

#include <cstdint>

namespace dbsim::cpu {

/** Hardware memory consistency model. */
enum class ConsistencyModel : std::uint8_t { SC, PC, RC };

/** Implementation style for the model. */
struct ConsistencyImpl
{
    bool hw_prefetch = false; ///< prefetch from the instruction window
    bool spec_loads = false;  ///< speculative load execution
};

const char *consistencyModelName(ConsistencyModel m);

/**
 * Pure predicate helper bundling the model and implementation flags.
 * The core's memory queue consults it when deciding whether an access
 * may be issued to the memory system, and whether blocked accesses may
 * be prefetched or speculatively performed instead.
 */
class ConsistencyPolicy
{
  public:
    ConsistencyPolicy(ConsistencyModel model = ConsistencyModel::RC,
                      ConsistencyImpl impl = {})
        : model_(model), impl_(impl) {}

    ConsistencyModel model() const { return model_; }
    const ConsistencyImpl &impl() const { return impl_; }

    /**
     * May a load issue (non-speculatively) to the memory system?
     *
     * @param prior_loads_done   all older loads have performed
     * @param prior_stores_done  all older stores have performed
     */
    bool
    loadMayIssue(bool prior_loads_done, bool prior_stores_done) const
    {
        switch (model_) {
          case ConsistencyModel::SC:
            return prior_loads_done && prior_stores_done;
          case ConsistencyModel::PC:
            return prior_loads_done; // loads may bypass pending stores
          case ConsistencyModel::RC:
            return true; // fences are handled separately
        }
        return true;
    }

    /**
     * May a store issue to the memory system (having retired into the
     * write buffer where the model allows that)?
     */
    bool
    storeMayIssue(bool prior_loads_done, bool prior_stores_done) const
    {
        switch (model_) {
          case ConsistencyModel::SC:
            return prior_loads_done && prior_stores_done;
          case ConsistencyModel::PC:
            return prior_loads_done && prior_stores_done;
          case ConsistencyModel::RC:
            return true; // WMB epochs are handled separately
        }
        return true;
    }

    /**
     * Must a load have performed before it can retire?  True for the
     * strict models' straightforward implementations; with speculative
     * loads the value may be consumed early and the load retires once
     * its ordering point is reached without violation.
     */
    bool
    loadBlocksRetire() const
    {
        return model_ != ConsistencyModel::RC;
    }

    /** Must a store have performed before it can retire? */
    bool
    storeBlocksRetire() const
    {
        // SC and PC retire a store only once it is globally performed
        // (PC's write buffer is modeled as part of the memory queue, and
        // its FIFO constraint is enforced by storeMayIssue).  RC retires
        // stores into the write buffer immediately.
        return model_ == ConsistencyModel::SC;
    }

    /** Non-binding prefetch allowed for consistency-blocked accesses? */
    bool prefetchBlocked() const { return impl_.hw_prefetch; }

    /** Speculative early execution of blocked loads allowed? */
    bool speculativeLoads() const { return impl_.spec_loads; }

  private:
    ConsistencyModel model_;
    ConsistencyImpl impl_;
};

} // namespace dbsim::cpu

#endif // DBSIM_CPU_CONSISTENCY_HPP
