/**
 * @file
 * Address-space layout of the synthetic database engine ("MiniDB").
 *
 * Mirrors the structure of Oracle's memory use described in the paper
 * (section 2.1): a shared System Global Area consisting of a block
 * buffer area (cache of database disk blocks) and a metadata area
 * (buffer directory, latches, and inter-process communication /
 * synchronization state), plus the code segment, a shared redo-log
 * buffer, and per-process private memory.  All addresses are virtual;
 * the simulator's bin-hopping page map assigns physical pages and
 * CC-NUMA homes on first touch.
 */

#ifndef DBSIM_WORKLOAD_SGA_LAYOUT_HPP
#define DBSIM_WORKLOAD_SGA_LAYOUT_HPP

#include <cstdint>

#include "common/types.hpp"

namespace dbsim::workload {

/** Sizing of the simulated database memory (scaled; see DESIGN.md). */
struct SgaParams
{
    std::uint64_t code_bytes = 80 * 1024;      ///< instruction footprint
    std::uint32_t block_bytes = 2048;          ///< database block size
    std::uint32_t buffer_blocks = 8192;        ///< block buffer entries (16 MB)
    std::uint64_t metadata_bytes = 2 * 1024 * 1024;
    std::uint64_t log_buffer_bytes = 512 * 1024;
    std::uint64_t private_bytes = 64 * 1024;   ///< per-process private area
};

/**
 * Region map.  Regions are placed at fixed virtual bases far apart; the
 * page map materializes only touched pages.
 */
class SgaLayout
{
  public:
    explicit SgaLayout(const SgaParams &params = {});

    static constexpr Addr kCodeBase = 0x0001'0000'0000ull;
    static constexpr Addr kMetadataBase = 0x0002'0000'0000ull;
    static constexpr Addr kBufferBase = 0x0003'0000'0000ull;
    static constexpr Addr kLogBase = 0x0004'0000'0000ull;
    static constexpr Addr kPrivateBase = 0x0005'0000'0000ull;
    static constexpr Addr kPrivateStride = 0x0000'0100'0000ull; // 16 MB

    const SgaParams &params() const { return p_; }

    /** Byte address inside the metadata area. */
    Addr metadata(std::uint64_t offset) const;

    /** Byte address inside block @p block of the buffer area. */
    Addr bufferBlock(std::uint32_t block, std::uint32_t offset) const;

    /** Byte address inside the redo-log buffer (wraps). */
    Addr log(std::uint64_t offset) const;

    /** Byte address inside process @p proc's private area (wraps). */
    Addr privateMem(ProcId proc, std::uint64_t offset) const;

  private:
    SgaParams p_;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_SGA_LAYOUT_HPP
