/**
 * @file
 * Software prefetch / flush hint insertion (paper section 4.2).
 *
 * The paper inserted prefetch and flush ("WriteThrough") primitives
 * around the instructions identified as generating migratory accesses.
 * HintInserter performs the same transformation on a trace stream: it
 * buffers each critical section whose lock is in the configured hot set,
 * inserts exclusive prefetches for the section's written lines before
 * the lock acquire (overlapping the migratory fetch with the acquire),
 * and inserts flush hints for those lines after the release (pushing the
 * data home so the next reader is serviced by memory instead of a
 * cache-to-cache transfer).
 */

#ifndef DBSIM_WORKLOAD_HINTS_HPP
#define DBSIM_WORKLOAD_HINTS_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace dbsim::workload {

/** Hint-insertion options. */
struct HintOptions
{
    bool prefetch = true;  ///< exclusive prefetch before the acquire
    bool flush = true;     ///< flush / WriteThrough after the release
    std::uint32_t line_bytes = 64;
    /** Only sections on these lock addresses are transformed; empty
     *  means every critical section. */
    std::unordered_set<Addr> hot_locks;
    /** Safety cap on buffered section length. */
    std::uint32_t max_section = 512;
};

/**
 * A trace filter inserting prefetch/flush hints around critical
 * sections.
 */
class HintInserter : public trace::TraceSource
{
  public:
    HintInserter(std::unique_ptr<trace::TraceSource> inner,
                 HintOptions opts);

    bool next(trace::TraceRecord &out) override;

    std::uint64_t prefetchesInserted() const { return prefetches_; }
    std::uint64_t flushesInserted() const { return flushes_; }

    void
    saveState(snap::Writer &w) const override
    {
        w.u64(out_.size());
        for (const trace::TraceRecord &rec : out_)
            saveRecord(w, rec);
        w.boolean(inner_done_);
        w.u64(prefetches_);
        w.u64(flushes_);
        inner_->saveState(w);
    }

    void
    restoreState(snap::Reader &r) override
    {
        out_.clear();
        const std::size_t n = r.length(28);
        for (std::size_t i = 0; i < n; ++i)
            out_.push_back(trace::loadRecord(r));
        inner_done_ = r.boolean();
        prefetches_ = r.u64();
        flushes_ = r.u64();
        inner_->restoreState(r);
    }

  private:
    bool hotLock(Addr addr) const;
    void transformSection(std::vector<trace::TraceRecord> &section);
    bool pump(); ///< pull from inner into out_; false when exhausted

    std::unique_ptr<trace::TraceSource> inner_;
    HintOptions opts_;
    std::deque<trace::TraceRecord> out_;
    bool inner_done_ = false;
    std::uint64_t prefetches_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_HINTS_HPP
