/**
 * @file
 * Lock/latch directory of the synthetic database engine.
 *
 * Assigns metadata-area addresses to the engine's latches and lock-
 * protected records.  Each latch occupies its own cache line with the
 * protected record words on the following lines of the same slot, so
 * lock passing migrates the latch line (synchronization) and the
 * record's data lines follow as dirty read misses and migratory write
 * misses inside the critical section -- the fine-grain migratory
 * sharing pattern the paper characterizes in section 4.2.
 */

#ifndef DBSIM_WORKLOAD_LOCK_MANAGER_HPP
#define DBSIM_WORKLOAD_LOCK_MANAGER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "workload/sga_layout.hpp"

namespace dbsim::workload {

/**
 * Metadata-area address assignment for latches and their protected
 * records.  Each entity gets a kSlotBytes-aligned slot: the latch word
 * at offset 0, protected record words following it.
 */
class LockDirectory
{
  public:
    /** Bytes reserved per lock-protected entity (4 cache lines). */
    static constexpr std::uint32_t kSlotBytes = 256;

    LockDirectory(const SgaLayout *layout, std::uint32_t branches,
                  std::uint32_t tellers_per_branch,
                  std::uint32_t hash_buckets);

    std::uint32_t branches() const { return branches_; }
    std::uint32_t tellers() const { return branches_ * tellers_per_branch_; }
    std::uint32_t hashBuckets() const { return hash_buckets_; }

    /** Latch protecting branch @p b's balance record. */
    Addr branchLock(std::uint32_t b) const;

    /** Word @p w of branch @p b's record (next line of the slot). */
    Addr branchData(std::uint32_t b, std::uint32_t w) const;

    /** Latch protecting teller @p t. */
    Addr tellerLock(std::uint32_t t) const;
    Addr tellerData(std::uint32_t t, std::uint32_t w) const;

    /** Buffer-directory hash-bucket latch and chain words. */
    Addr bucketLock(std::uint32_t bucket) const;
    Addr bucketChain(std::uint32_t bucket, std::uint32_t depth) const;

    /** The (single, hot) redo-log allocation latch. */
    Addr logLatch() const;
    Addr logState(std::uint32_t w) const;

    /** All latch addresses that protect hot migratory metadata
     *  (branches, tellers, log latch) -- used by the hint-insertion
     *  pass. */
    std::vector<Addr> hotLatches() const;

  private:
    Addr slot(std::uint64_t index, std::uint32_t offset) const;

    const SgaLayout *layout_;
    std::uint32_t branches_;
    std::uint32_t tellers_per_branch_;
    std::uint32_t hash_buckets_;
    // slot index bases within the metadata area
    std::uint64_t branch_base_;
    std::uint64_t teller_base_;
    std::uint64_t bucket_base_;
    std::uint64_t log_base_;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_LOCK_MANAGER_HPP
