/**
 * @file
 * The synthetic DSS workload engine (TPC-D Query 6 style, paper
 * section 2.1.2).
 *
 * Models a parallelized sequential scan of the largest table: each
 * server process scans its own partition, evaluating a selective
 * predicate per row and accumulating a revenue aggregate for the rows
 * that qualify.  The workload is compute-intensive with a small
 * instruction footprint (the scan loop), spatial locality on table
 * reads, per-process work-area traffic whose footprint sits between the
 * L1 and L2 sizes, and negligible locking -- matching the paper's DSS
 * characterization.
 */

#ifndef DBSIM_WORKLOAD_DSS_ENGINE_HPP
#define DBSIM_WORKLOAD_DSS_ENGINE_HPP

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/source.hpp"
#include "workload/code_layout.hpp"
#include "workload/sga_layout.hpp"

namespace dbsim::workload {

/** DSS workload configuration (scaled defaults; see DESIGN.md). */
struct DssParams
{
    std::uint32_t num_procs = 16;   ///< 4 per CPU on 4 CPUs
    std::uint64_t table_bytes = 48ull << 20; ///< scanned relation
    std::uint32_t row_bytes = 16; ///< bytes of each row actually touched
    double selectivity = 0.02;
    SgaParams sga{
        /*code_bytes=*/12 * 1024,
        /*block_bytes=*/2048,
        /*buffer_blocks=*/32768, // must cover table_bytes
        /*metadata_bytes=*/1 << 20,
        /*log_buffer_bytes=*/64 * 1024,
        /*private_bytes=*/256 * 1024,
    };
    BuilderParams builder{
        /*branch_every=*/8.0,
        /*hard_branch_frac=*/0.05,
        /*fp_frac=*/0.12,
        /*max_dep=*/4,
        /*dep_chance=*/0.45,
    };
    // Per-row access-mix knobs (see DESIGN.md calibration notes).
    std::uint32_t table_refs_per_row = 8;   ///< field loads (with re-reads)
    std::uint32_t private_refs_per_row = 5; ///< stack traffic (L1-resident)
    double workarea_chance = 0.15;          ///< per-row work-area access prob
    std::uint64_t workarea_bytes = 48 * 1024;
    std::uint32_t compute_per_row = 42;
    std::uint32_t block_epilogue_compute = 200;
    std::uint64_t seed = 2;
};

/**
 * Factory for per-process DSS trace sources sharing one table layout.
 */
class DssWorkload
{
  public:
    explicit DssWorkload(const DssParams &params);

    const DssParams &params() const { return p_; }
    const SgaLayout &layout() const { return layout_; }
    const CodeLayout &code() const { return code_; }

    /** Rows per database block. */
    std::uint32_t rowsPerBlock() const;

    /** Total blocks in the scanned table. */
    std::uint32_t tableBlocks() const;

    /**
     * Create the trace source for scan process @p proc.  The stream
     * ends when the process's partition is fully scanned.
     */
    std::unique_ptr<trace::TraceSource> makeProcess(ProcId proc) const;

  private:
    DssParams p_;
    SgaLayout layout_;
    CodeLayout code_;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_DSS_ENGINE_HPP
