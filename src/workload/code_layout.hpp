/**
 * @file
 * Synthetic code layout and the trace builder.
 *
 * CodeLayout models the database engine's instruction footprint as a set
 * of routines laid out contiguously in the code segment.  TraceBuilder
 * walks routines emitting instruction records with realistic structure:
 * sequential PC runs broken by conditional branches (biased per static
 * site so the hybrid predictor sees learnable patterns with a residual
 * hard fraction), calls/returns that exercise the BTB and return-address
 * stack, register-dependence chains, and the memory operations the
 * workload engines interleave.
 *
 * The streaming-run lengths between taken branches are kept short (a few
 * cache lines), reproducing the instruction-reference pattern that makes
 * a small stream buffer effective for OLTP (paper section 4.1).
 */

#ifndef DBSIM_WORKLOAD_CODE_LAYOUT_HPP
#define DBSIM_WORKLOAD_CODE_LAYOUT_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace dbsim::workload {

/**
 * The engine's code segment: routines with deterministic pseudo-random
 * sizes derived from a seed.
 */
class CodeLayout
{
  public:
    /**
     * @param base        code segment base address
     * @param code_bytes  total instruction footprint
     * @param seed        layout seed (sizes are deterministic in it)
     */
    CodeLayout(Addr base, std::uint64_t code_bytes, std::uint64_t seed);

    std::uint32_t numRoutines() const
    {
        return static_cast<std::uint32_t>(starts_.size());
    }

    Addr routineStart(std::uint32_t r) const { return starts_.at(r); }
    std::uint32_t routineInstrs(std::uint32_t r) const { return sizes_.at(r); }

    Addr base() const { return base_; }
    std::uint64_t footprintBytes() const { return footprint_; }

  private:
    Addr base_;
    std::uint64_t footprint_;
    std::vector<Addr> starts_;
    std::vector<std::uint32_t> sizes_;
};

/** Instruction-mix knobs for the builder. */
struct BuilderParams
{
    double branch_every = 6.0;    ///< mean filler instrs between branches
    double hard_branch_frac = 0.10; ///< static sites with ~50/50 outcomes
    double fp_frac = 0.0;         ///< fraction of filler ops that are FP
    std::uint8_t max_dep = 5;     ///< max filler dependence distance
    double dep_chance = 0.7;      ///< chance a filler op has a dependence
};

/**
 * Emits TraceRecords through a sink while walking the code layout.
 */
class TraceBuilder
{
  public:
    using Sink = std::function<void(const trace::TraceRecord &)>;

    TraceBuilder(const CodeLayout *code, Rng *rng, Sink sink,
                 BuilderParams params = {});

    /**
     * Call a routine (exercises BTB + RAS).  The target is a
     * deterministic function of the call-site PC, as in real code where
     * each call site has a fixed target; which sites execute varies
     * with the control-flow path, so repeated calls still walk the full
     * code footprint.
     */
    void call();

    /**
     * Call a specific routine (fixed target regardless of site).  Used
     * for the engine's fixed code paths (e.g. the balance-update and
     * redo-allocation routines), so that the instructions generating
     * migratory references are a small stable set of PCs, as the paper
     * observes (section 4.2).
     */
    void callTo(std::uint32_t routine);

    /** Return from the current routine. */
    void ret();

    /** Emit @p n filler instructions (ALU / FP / conditional branches). */
    void compute(std::uint32_t n);

    /**
     * Emit a memory operation at the current PC.
     * @param op          Load / Store / hints
     * @param addr        data virtual address
     * @param dep_on_last when nonzero, make the op depend on the record
     *                    emitted @p dep_on_last records ago (1 = chain on
     *                    the immediately preceding record)
     */
    void memOp(trace::OpClass op, Addr addr, std::uint32_t dep_on_last = 0);

    /** Lock acquire on @p addr followed by an acquire fence (MB). */
    void lockAcquire(Addr addr);

    /** Release fence (WMB) followed by the lock release store. */
    void lockRelease(Addr addr);

    /** Blocking system call with the given I/O latency. */
    void syscall(Cycles latency);

    /** Total records emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

    /** Current call depth (for tests). */
    std::size_t depth() const { return stack_.size(); }

    /**
     * Walk position only; the code layout, RNG, and sink are rebound at
     * construction (the owning engine serializes its RNG itself).
     */
    void
    saveState(snap::Writer &w) const
    {
        w.u32(cur_routine_);
        w.u64(pc_);
        w.u64(stack_.size());
        for (const Frame &f : stack_) {
            w.u32(f.routine);
            w.u64(f.return_pc);
        }
        w.u64(emitted_);
        w.f64(branch_credit_);
    }

    void
    restoreState(snap::Reader &r)
    {
        cur_routine_ = r.u32();
        pc_ = r.u64();
        stack_.clear();
        const std::size_t n = r.length(12);
        for (std::size_t i = 0; i < n; ++i) {
            Frame f;
            f.routine = r.u32();
            f.return_pc = r.u64();
            stack_.push_back(f);
        }
        emitted_ = r.u64();
        branch_credit_ = r.f64();
    }

  private:
    void emit(trace::TraceRecord rec);
    void fillerOp();
    void advancePc();
    void maybeBranch();
    double siteBias(Addr pc) const;

    const CodeLayout *code_;
    Rng *rng_;
    Sink sink_;
    BuilderParams p_;

    struct Frame
    {
        std::uint32_t routine;
        Addr return_pc;
    };

    std::uint32_t cur_routine_ = 0;
    Addr pc_;
    std::vector<Frame> stack_;
    std::uint64_t emitted_ = 0;
    double branch_credit_ = 0.0;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_CODE_LAYOUT_HPP
