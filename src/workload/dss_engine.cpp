#include "workload/dss_engine.hpp"

#include "common/log.hpp"

namespace dbsim::workload {

using trace::OpClass;

namespace {

class DssProcessSource : public trace::GeneratingSource
{
  public:
    DssProcessSource(const DssWorkload *wl, ProcId proc, Rng rng,
                     std::uint32_t first_block, std::uint32_t end_block)
        : wl_(wl), p_(wl->params()), proc_(proc), rng_(rng),
          builder_(&wl->code(), &rng_,
                   [this](const trace::TraceRecord &r) { emit(r); },
                   p_.builder),
          next_block_(first_block), end_block_(end_block)
    {
    }

  public:
    void
    saveState(snap::Writer &w) const override
    {
        GeneratingSource::saveState(w);
        rng_.saveState(w);
        builder_.saveState(w);
        w.u32(next_block_);
        w.u32(end_block_);
    }

    void
    restoreState(snap::Reader &r) override
    {
        GeneratingSource::restoreState(r);
        rng_.restoreState(r);
        builder_.restoreState(r);
        next_block_ = r.u32();
        end_block_ = r.u32();
    }

  protected:
    void
    refill() override
    {
        if (next_block_ >= end_block_) {
            finish();
            return;
        }
        scanBlock(next_block_++);
    }

  private:
    void
    scanBlock(std::uint32_t blk)
    {
        auto &b = builder_;
        const auto &lay = wl_->layout();
        const std::uint32_t rows = wl_->rowsPerBlock();

        // Small rotating set of scan routines: the loop code fits L1I.
        b.call();

        // Block header checks.
        b.memOp(OpClass::Load, lay.bufferBlock(blk, 0));
        b.compute(6);

        for (std::uint32_t r = 0; r < rows; ++r) {
            const std::uint32_t row_off = 64 + r * p_.row_bytes;

            // Field loads (independent: addresses come from the row
            // directory computed long before) with intra-row re-reads.
            for (std::uint32_t f = 0; f < p_.table_refs_per_row; ++f) {
                b.memOp(OpClass::Load,
                        lay.bufferBlock(blk,
                                        row_off + (f % 4) * 8));
            }

            // Predicate evaluation (compute + the builder's branches).
            b.compute(p_.compute_per_row);

            // Per-process stack traffic (cache-resident).
            for (std::uint32_t pr = 0; pr < p_.private_refs_per_row; ++pr) {
                b.memOp(pr == 0 ? OpClass::Store : OpClass::Load,
                        lay.privateMem(proc_, rng_.below(512) * 8));
            }

            // Work-area traffic: footprint between L1 and L2 sizes, so
            // these misses hit in the L2 (the paper's 23% L2 miss rate
            // implies most DSS L2 accesses are L2 hits).
            if (rng_.chance(p_.workarea_chance)) {
                const std::uint64_t off =
                    8192 + rng_.below(p_.workarea_bytes / 8) * 8;
                b.memOp(rng_.chance(0.5) ? OpClass::Store : OpClass::Load,
                        lay.privateMem(proc_, off));
            }

            if (rng_.chance(p_.selectivity)) {
                // Qualifying row: revenue += price * discount.
                const std::uint64_t ld = b.emitted();
                b.memOp(OpClass::Load,
                        lay.bufferBlock(blk, row_off + 8));
                b.compute(3);
                b.memOp(OpClass::Store, lay.privateMem(proc_, 64),
                        static_cast<std::uint32_t>(b.emitted() - ld));
            }
        }

        // Block epilogue: row-source bookkeeping and partial-aggregate
        // maintenance (cache-resident compute).
        b.compute(p_.block_epilogue_compute);
        for (std::uint32_t pr = 0; pr < 8; ++pr) {
            b.memOp(pr % 3 == 0 ? OpClass::Store : OpClass::Load,
                    lay.privateMem(proc_, rng_.below(512) * 8));
        }

        b.ret();
    }

    const DssWorkload *wl_;
    DssParams p_;
    ProcId proc_;
    Rng rng_;
    TraceBuilder builder_;
    std::uint32_t next_block_;
    std::uint32_t end_block_;
};

} // namespace

DssWorkload::DssWorkload(const DssParams &params)
    : p_(params), layout_(params.sga),
      code_(SgaLayout::kCodeBase, params.sga.code_bytes, params.seed)
{
    if (p_.num_procs == 0)
        DBSIM_FATAL("DSS workload needs at least one process");
    if (tableBlocks() > p_.sga.buffer_blocks)
        DBSIM_FATAL("DSS table larger than the block buffer area");
}

std::uint32_t
DssWorkload::rowsPerBlock() const
{
    const std::uint32_t usable = p_.sga.block_bytes - 64;
    return usable / p_.row_bytes;
}

std::uint32_t
DssWorkload::tableBlocks() const
{
    return static_cast<std::uint32_t>(
        p_.table_bytes / p_.sga.block_bytes);
}

std::unique_ptr<trace::TraceSource>
DssWorkload::makeProcess(ProcId proc) const
{
    DBSIM_ASSERT(proc < p_.num_procs, "process index out of range");
    const std::uint32_t blocks = tableBlocks();
    const std::uint32_t per = blocks / p_.num_procs;
    const std::uint32_t first = proc * per;
    const std::uint32_t end =
        (proc + 1 == p_.num_procs) ? blocks : first + per;
    Rng rng(p_.seed * 0x100000001b3ull + proc * 0x9e3779b97f4a7c15ull + 7);
    return std::make_unique<DssProcessSource>(this, proc, rng, first, end);
}

} // namespace dbsim::workload
