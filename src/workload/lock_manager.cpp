#include "workload/lock_manager.hpp"

#include "common/log.hpp"

namespace dbsim::workload {

LockDirectory::LockDirectory(const SgaLayout *layout, std::uint32_t branches,
                             std::uint32_t tellers_per_branch,
                             std::uint32_t hash_buckets)
    : layout_(layout), branches_(branches),
      tellers_per_branch_(tellers_per_branch), hash_buckets_(hash_buckets)
{
    if (branches == 0 || tellers_per_branch == 0 || hash_buckets == 0)
        DBSIM_FATAL("lock directory needs nonzero entity counts");
    branch_base_ = 0;
    teller_base_ = branch_base_ + branches_;
    bucket_base_ = teller_base_ + tellers();
    log_base_ = bucket_base_ + hash_buckets_;

    const std::uint64_t need = (log_base_ + 1) * kSlotBytes;
    if (need > layout_->params().metadata_bytes) {
        DBSIM_FATAL("metadata area too small for lock directory: need ",
                    need, " bytes");
    }
}

Addr
LockDirectory::slot(std::uint64_t index, std::uint32_t offset) const
{
    DBSIM_ASSERT(offset < kSlotBytes, "slot offset out of range");
    return layout_->metadata(index * kSlotBytes + offset);
}

Addr
LockDirectory::branchLock(std::uint32_t b) const
{
    DBSIM_ASSERT(b < branches_, "branch out of range");
    return slot(branch_base_ + b, 0);
}

Addr
LockDirectory::branchData(std::uint32_t b, std::uint32_t w) const
{
    DBSIM_ASSERT(b < branches_, "branch out of range");
    return slot(branch_base_ + b, 64 + (w % 3) * 64 + 8 * (w % 8));
}

Addr
LockDirectory::tellerLock(std::uint32_t t) const
{
    DBSIM_ASSERT(t < tellers(), "teller out of range");
    return slot(teller_base_ + t, 0);
}

Addr
LockDirectory::tellerData(std::uint32_t t, std::uint32_t w) const
{
    DBSIM_ASSERT(t < tellers(), "teller out of range");
    return slot(teller_base_ + t, 64 + (w % 3) * 64 + 8 * (w % 8));
}

Addr
LockDirectory::bucketLock(std::uint32_t bucket) const
{
    DBSIM_ASSERT(bucket < hash_buckets_, "bucket out of range");
    return slot(bucket_base_ + bucket, 0);
}

Addr
LockDirectory::bucketChain(std::uint32_t bucket, std::uint32_t depth) const
{
    DBSIM_ASSERT(bucket < hash_buckets_, "bucket out of range");
    return slot(bucket_base_ + bucket, 64 + (depth % 3) * 64 + 8 * (depth % 8));
}

Addr
LockDirectory::logLatch() const
{
    return slot(log_base_, 0);
}

Addr
LockDirectory::logState(std::uint32_t w) const
{
    return slot(log_base_, 64 + (w % 3) * 64 + 8 * (w % 8));
}

std::vector<Addr>
LockDirectory::hotLatches() const
{
    std::vector<Addr> v;
    v.reserve(branches_ + tellers() + 1);
    for (std::uint32_t b = 0; b < branches_; ++b)
        v.push_back(branchLock(b));
    for (std::uint32_t t = 0; t < tellers(); ++t)
        v.push_back(tellerLock(t));
    v.push_back(logLatch());
    return v;
}

} // namespace dbsim::workload
