#include "workload/code_layout.hpp"

#include "common/log.hpp"

namespace dbsim::workload {

using trace::OpClass;
using trace::TraceRecord;

CodeLayout::CodeLayout(Addr base, std::uint64_t code_bytes,
                       std::uint64_t seed)
    : base_(base), footprint_(code_bytes)
{
    if (code_bytes < 4096)
        DBSIM_FATAL("code footprint too small");
    Rng rng(seed ^ 0xc0de1a1dull);
    Addr cur = base;
    const Addr end = base + code_bytes;
    while (cur + 64 * 4 <= end) {
        // Routine sizes between 48 and 320 instructions, mean ~150.
        const std::uint32_t instrs =
            48 + static_cast<std::uint32_t>(rng.below(273));
        starts_.push_back(cur);
        sizes_.push_back(instrs);
        cur += static_cast<Addr>(instrs) * 4;
        if (cur + 48 * 4 > end) {
            // Extend the last routine to the end of the footprint.
            sizes_.back() +=
                static_cast<std::uint32_t>((end - cur) / 4);
            break;
        }
    }
    DBSIM_ASSERT(!starts_.empty(), "no routines laid out");
}

// ---------------------------------------------------------------------

TraceBuilder::TraceBuilder(const CodeLayout *code, Rng *rng, Sink sink,
                           BuilderParams params)
    : code_(code), rng_(rng), sink_(std::move(sink)), p_(params)
{
    cur_routine_ = 0;
    pc_ = code_->routineStart(0);
}

void
TraceBuilder::emit(TraceRecord rec)
{
    rec.pc = pc_;
    sink_(rec);
    ++emitted_;
}

double
TraceBuilder::siteBias(Addr pc) const
{
    // Deterministic per-site bias: most sites are strongly biased (the
    // predictor learns them); a residual fraction is data-dependent.
    const std::uint64_t h = (pc >> 2) * 0x9e3779b97f4a7c15ull;
    const double u = static_cast<double>(h >> 40) / double(1 << 24);
    if (u < p_.hard_branch_frac)
        return 0.5;
    return (h & 1) ? 0.95 : 0.05;
}

void
TraceBuilder::advancePc()
{
    pc_ += 4;
    const Addr end = code_->routineStart(cur_routine_) +
                     static_cast<Addr>(code_->routineInstrs(cur_routine_)) * 4;
    if (pc_ >= end) {
        // Fell off the end of the routine body: loop back into it with
        // an unconditional jump (keeps the walk inside the routine until
        // the engine calls ret()).
        const Addr target = code_->routineStart(cur_routine_);
        TraceRecord r;
        r.op = OpClass::BranchJmp;
        r.extra = target;
        pc_ = end - 4;
        emit(r);
        pc_ = target;
    }
}

void
TraceBuilder::maybeBranch()
{
    branch_credit_ += 1.0 / p_.branch_every;
    if (branch_credit_ < 1.0)
        return;
    branch_credit_ -= 1.0;

    const double bias = siteBias(pc_);
    const bool taken = rng_->chance(bias);
    const Addr start = code_->routineStart(cur_routine_);
    const std::uint32_t instrs = code_->routineInstrs(cur_routine_);

    TraceRecord r;
    r.op = OpClass::BranchCond;
    r.taken = taken;
    if (taken) {
        // Short forward skip (2..24 instructions, fixed per site so the
        // same control-flow paths repeat and the predictor's history
        // tables see learnable patterns) with wraparound to the routine
        // start: keeps streaming runs to a few cache lines.
        const std::uint64_t h = (pc_ >> 2) * 0xc2b2ae3d27d4eb4full;
        const std::uint32_t skip =
            2 + static_cast<std::uint32_t>((h >> 33) % 23);
        Addr target = pc_ + 4 * (1 + skip);
        const Addr end = start + static_cast<Addr>(instrs) * 4;
        if (target >= end)
            target = start + (target - end) % (static_cast<Addr>(instrs) * 4);
        r.extra = target;
        emit(r);
        pc_ = target;
    } else {
        r.extra = pc_ + 4;
        emit(r);
        advancePc();
    }
}

void
TraceBuilder::fillerOp()
{
    TraceRecord r;
    r.op = (p_.fp_frac > 0.0 && rng_->chance(p_.fp_frac)) ? OpClass::FpAlu
                                                          : OpClass::IntAlu;
    if (rng_->chance(p_.dep_chance))
        r.dep1 = static_cast<std::uint8_t>(1 + rng_->below(p_.max_dep));
    if (rng_->chance(0.3))
        r.dep2 = static_cast<std::uint8_t>(1 + rng_->below(p_.max_dep));
    emit(r);
    advancePc();
    maybeBranch();
}

void
TraceBuilder::compute(std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i)
        fillerOp();
}

void
TraceBuilder::call()
{
    // Per-site fixed target: hash the call-site PC.
    const std::uint64_t h = (pc_ >> 2) * 0xff51afd7ed558ccdull;
    callTo(static_cast<std::uint32_t>((h >> 24) % code_->numRoutines()));
}

void
TraceBuilder::callTo(std::uint32_t routine)
{
    routine %= code_->numRoutines();
    TraceRecord r;
    r.op = OpClass::BranchCall;
    r.extra = code_->routineStart(routine);
    emit(r);
    stack_.push_back(Frame{cur_routine_, pc_ + 4});
    cur_routine_ = routine;
    pc_ = code_->routineStart(routine);
}

void
TraceBuilder::ret()
{
    DBSIM_ASSERT(!stack_.empty(), "ret() with empty call stack");
    const Frame f = stack_.back();
    stack_.pop_back();
    TraceRecord r;
    r.op = OpClass::BranchRet;
    r.extra = f.return_pc;
    emit(r);
    cur_routine_ = f.routine;
    pc_ = f.return_pc;
}

void
TraceBuilder::memOp(OpClass op, Addr addr, std::uint32_t dep_on_last)
{
    TraceRecord r;
    r.op = op;
    r.vaddr = addr;
    if (dep_on_last > 0 && dep_on_last <= 255)
        r.dep1 = static_cast<std::uint8_t>(dep_on_last);
    emit(r);
    advancePc();
    maybeBranch();
}

void
TraceBuilder::lockAcquire(Addr addr)
{
    TraceRecord r;
    r.op = OpClass::LockAcquire;
    r.vaddr = addr;
    emit(r);
    advancePc();
    TraceRecord mb;
    mb.op = OpClass::MemBarrier;
    emit(mb);
    advancePc();
}

void
TraceBuilder::lockRelease(Addr addr)
{
    TraceRecord wmb;
    wmb.op = OpClass::WriteBarrier;
    emit(wmb);
    advancePc();
    TraceRecord r;
    r.op = OpClass::LockRelease;
    r.vaddr = addr;
    emit(r);
    advancePc();
}

void
TraceBuilder::syscall(Cycles latency)
{
    TraceRecord r;
    r.op = OpClass::SyscallBlock;
    r.extra = latency;
    emit(r);
    advancePc();
}

} // namespace dbsim::workload
