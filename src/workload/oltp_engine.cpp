#include "workload/oltp_engine.hpp"

#include "common/log.hpp"

namespace dbsim::workload {

using trace::OpClass;

namespace {

/** Per-server-process transaction generator. */
class OltpProcessSource : public trace::GeneratingSource
{
  public:
    OltpProcessSource(const OltpWorkload *wl, ProcId proc, Rng rng)
        : wl_(wl), p_(wl->params()), proc_(proc), rng_(rng),
          builder_(&wl->code(), &rng_,
                   [this](const trace::TraceRecord &r) { emit(r); },
                   p_.builder)
    {
    }

  public:
    void
    saveState(snap::Writer &w) const override
    {
        GeneratingSource::saveState(w);
        rng_.saveState(w);
        builder_.saveState(w);
        w.u64(txns_);
        w.u64(hist_seq_);
        w.u64(log_off_);
    }

    void
    restoreState(snap::Reader &r) override
    {
        GeneratingSource::restoreState(r);
        rng_.restoreState(r);
        builder_.restoreState(r);
        txns_ = r.u64();
        hist_seq_ = r.u64();
        log_off_ = r.u64();
    }

  protected:
    void refill() override { transaction(); }

  private:
    /** Load/compute mixture standing in for interpreter/parse work. */
    void
    routineWork()
    {
        auto &b = builder_;
        const std::uint32_t per_ref =
            p_.compute_per_routine /
            std::max<std::uint32_t>(1, p_.private_refs_per_routine);
        for (std::uint32_t i = 0; i < p_.private_refs_per_routine; ++i) {
            b.compute(per_ref);
            // Private stack/heap traffic: mostly cache-resident.
            b.memOp(rng_.chance(0.3) ? OpClass::Store : OpClass::Load,
                    wl_->layout().privateMem(proc_, rng_.below(768) * 8));
        }
    }

    /**
     * Buffer-directory probe: a dependent chain walk down the hash
     * bucket (the dependent-load pattern that limits OLTP's memory-level
     * parallelism).  Reads are latch-free; the protected update paths
     * (teller/branch/redo) carry the latching.
     */
    std::uint32_t
    bufferLookup(std::uint64_t key)
    {
        auto &b = builder_;
        const auto &locks = wl_->locks();
        const std::uint32_t bucket =
            static_cast<std::uint32_t>(key % locks.hashBuckets());
        const std::uint32_t depth =
            1 + static_cast<std::uint32_t>(rng_.below(3));
        std::uint64_t prev = 0;
        for (std::uint32_t d = 0; d < depth; ++d) {
            const std::uint64_t idx = b.emitted();
            b.memOp(OpClass::Load, locks.bucketChain(bucket, d),
                    d == 0 ? 0
                           : static_cast<std::uint32_t>(idx - prev));
            prev = idx;
            b.compute(2);
        }
        return bucket;
    }

    /**
     * Latch-protected read-modify-write of a metadata record.  The
     * memory operations sit at the top of a fixed routine, so the
     * instructions generating migratory references are a small stable
     * set of PCs (paper section 4.2).
     */
    void
    updateRecord(std::uint32_t routine, Addr lock, Addr data0, Addr data1)
    {
        auto &b = builder_;
        b.callTo(routine);
        b.lockAcquire(lock);
        const std::uint64_t ld = b.emitted();
        b.memOp(OpClass::Load, data0);
        b.memOp(OpClass::Store, data0,
                static_cast<std::uint32_t>(b.emitted() - ld));
        b.memOp(OpClass::Load, data1);
        b.memOp(OpClass::Store, data1, 1);
        b.lockRelease(lock);
        b.compute(6);
        b.ret();
    }

    void
    transaction()
    {
        auto &b = builder_;
        const auto &lay = wl_->layout();
        const auto &locks = wl_->locks();

        // --- begin / parse / plan: walk the instruction footprint.
        for (std::uint32_t i = 0; i < p_.parse_routine_calls; ++i) {
            b.call();
            routineWork();
            b.ret();
        }

        // --- pick teller, branch, account (TPC-B profile).
        const std::uint32_t teller =
            static_cast<std::uint32_t>(rng_.below(locks.tellers()));
        const std::uint32_t branch = teller / p_.tellers_per_branch;
        std::uint32_t acct_branch = branch;
        if (!rng_.chance(p_.local_branch_prob)) {
            acct_branch = static_cast<std::uint32_t>(
                rng_.below(p_.branches));
        }
        const std::uint64_t account =
            static_cast<std::uint64_t>(acct_branch) *
                p_.accounts_per_branch +
            rng_.below(p_.accounts_per_branch);

        // --- account update: directory probe + row access in the block
        // buffer (large footprint: mostly capacity misses to memory).
        b.call();
        routineWork();
        bufferLookup(account * 0x9e3779b9ull);
        // Hot-block concentration: the buffer working set is Zipf-like,
        // with a hot head that fits the L2 and a long cold tail.
        const std::uint32_t blk = static_cast<std::uint32_t>(
            (rng_.zipf(p_.sga.buffer_blocks, p_.buffer_zipf_skew) *
             2654435761ull) %
            p_.sga.buffer_blocks);
        const std::uint32_t row_off = static_cast<std::uint32_t>(
            (account % 16) * 128);
        const std::uint64_t rowld = b.emitted();
        b.memOp(OpClass::Load, lay.bufferBlock(blk, row_off));
        b.compute(4);
        b.memOp(OpClass::Load, lay.bufferBlock(blk, row_off + 16),
                static_cast<std::uint32_t>(b.emitted() - rowld));
        b.compute(3);
        b.memOp(OpClass::Store, lay.bufferBlock(blk, row_off), 1);
        b.ret();

        // --- teller and branch balance updates: the hot migratory
        // metadata (latch word shares the line with the balances).
        updateRecord(kTellerRoutine, locks.tellerLock(teller),
                     locks.tellerData(teller, 0),
                     locks.tellerData(teller, 1));
        updateRecord(kBranchRoutine, locks.branchLock(branch),
                     locks.branchData(branch, 0),
                     locks.branchData(branch, 1));

        // --- history append (per-process insert point, low contention).
        b.call();
        b.compute(5);
        const std::uint32_t hist_blk = static_cast<std::uint32_t>(
            (proc_ * 64 + (hist_seq_ / 16) % 64) % p_.sga.buffer_blocks);
        b.memOp(OpClass::Store,
                lay.bufferBlock(hist_blk, (hist_seq_ % 16) * 64));
        ++hist_seq_;
        b.ret();

        // --- redo log: allocation under one of a small set of copy
        // latches (as in Oracle's redo copy latches), then the record
        // copy into the log buffer.
        b.callTo(kRedoRoutine);
        const std::uint32_t latch = static_cast<std::uint32_t>(
            rng_.below(p_.redo_copy_latches));
        b.lockAcquire(locks.bucketLock(latch));
        const std::uint64_t ld = b.emitted();
        b.memOp(OpClass::Load, locks.bucketChain(latch, 0));
        b.memOp(OpClass::Store, locks.bucketChain(latch, 0),
                static_cast<std::uint32_t>(b.emitted() - ld));
        b.lockRelease(locks.bucketLock(latch));
        for (std::uint32_t w = 0; w < 3; ++w) {
            b.memOp(OpClass::Store,
                    lay.log(log_off_ + proc_ * 4096 + w * 16));
        }
        log_off_ = (log_off_ + 64) % 4096;
        b.compute(4);
        b.ret();

        // --- commit: group commit blocks every Nth transaction on the
        // log writer's I/O.
        b.compute(10);
        ++txns_;
        if (txns_ % p_.commits_per_group == 0) {
            const Cycles jitter = rng_.below(p_.log_io_latency / 4 + 1);
            b.syscall(p_.log_io_latency + jitter);
        }
    }

    static constexpr std::uint32_t kTellerRoutine = 1;
    static constexpr std::uint32_t kBranchRoutine = 2;
    static constexpr std::uint32_t kRedoRoutine = 3;

    const OltpWorkload *wl_;
    OltpParams p_;
    ProcId proc_;
    Rng rng_;
    TraceBuilder builder_;
    std::uint64_t txns_ = 0;
    std::uint64_t hist_seq_ = 0;
    std::uint64_t log_off_ = 0;
};

} // namespace

OltpWorkload::OltpWorkload(const OltpParams &params)
    : p_(params), layout_(params.sga),
      locks_(&layout_, params.branches, params.tellers_per_branch,
             params.hash_buckets),
      code_(SgaLayout::kCodeBase, params.sga.code_bytes, params.seed)
{
    if (p_.num_procs == 0)
        DBSIM_FATAL("OLTP workload needs at least one process");
}

std::vector<Addr>
OltpWorkload::hotLatches() const
{
    std::vector<Addr> v;
    for (std::uint32_t b = 0; b < p_.branches; ++b)
        v.push_back(locks_.branchLock(b));
    for (std::uint32_t t = 0; t < locks_.tellers(); ++t)
        v.push_back(locks_.tellerLock(t));
    for (std::uint32_t l = 0; l < p_.redo_copy_latches; ++l)
        v.push_back(locks_.bucketLock(l));
    return v;
}

std::unique_ptr<trace::TraceSource>
OltpWorkload::makeProcess(ProcId proc) const
{
    DBSIM_ASSERT(proc < p_.num_procs, "process index out of range");
    Rng rng(p_.seed * 0x100000001b3ull + proc * 0x9e3779b97f4a7c15ull + 1);
    return std::make_unique<OltpProcessSource>(this, proc, rng);
}

} // namespace dbsim::workload
