#include "workload/sga_layout.hpp"

#include "common/log.hpp"

namespace dbsim::workload {

SgaLayout::SgaLayout(const SgaParams &params) : p_(params)
{
    if (p_.block_bytes == 0 || p_.buffer_blocks == 0)
        DBSIM_FATAL("SGA block buffer must be non-empty");
}

Addr
SgaLayout::metadata(std::uint64_t offset) const
{
    return kMetadataBase + (offset % p_.metadata_bytes);
}

Addr
SgaLayout::bufferBlock(std::uint32_t block, std::uint32_t offset) const
{
    DBSIM_ASSERT(block < p_.buffer_blocks, "buffer block out of range");
    return kBufferBase +
           static_cast<Addr>(block) * p_.block_bytes +
           (offset % p_.block_bytes);
}

Addr
SgaLayout::log(std::uint64_t offset) const
{
    return kLogBase + (offset % p_.log_buffer_bytes);
}

Addr
SgaLayout::privateMem(ProcId proc, std::uint64_t offset) const
{
    return kPrivateBase + proc * kPrivateStride +
           (offset % p_.private_bytes);
}

} // namespace dbsim::workload
