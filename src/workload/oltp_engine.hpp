/**
 * @file
 * The synthetic OLTP workload engine (TPC-B-style, paper section 2.1.1).
 *
 * Models a bank database: each transaction updates a random account, the
 * account's branch balance, the submitting teller's balance, and appends
 * to the history table, then writes a redo-log record and commits (a
 * blocking log-write system call, amortized by group commit).  Each
 * server process is independent; processes interact only through the
 * SGA: latch-protected branch/teller/log metadata (which produces the
 * migratory sharing of section 4.2), the buffer directory, and the block
 * buffer.  Transaction code walks a large instruction footprint with
 * short streaming runs, reproducing OLTP's instruction-stall behavior.
 */

#ifndef DBSIM_WORKLOAD_OLTP_ENGINE_HPP
#define DBSIM_WORKLOAD_OLTP_ENGINE_HPP

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/source.hpp"
#include "workload/code_layout.hpp"
#include "workload/lock_manager.hpp"
#include "workload/sga_layout.hpp"

namespace dbsim::workload {

/** OLTP workload configuration (scaled defaults; see DESIGN.md). */
struct OltpParams
{
    std::uint32_t num_procs = 32;        ///< 8 per CPU on 4 CPUs
    std::uint32_t branches = 40;
    std::uint32_t tellers_per_branch = 10;
    std::uint32_t accounts_per_branch = 2500;
    std::uint32_t hash_buckets = 512;
    double local_branch_prob = 0.85;     ///< TPC-B account locality
    SgaParams sga{};
    BuilderParams builder{};
    Cycles log_io_latency = 12000;
    std::uint32_t commits_per_group = 8; ///< txns per blocking log write
    // Instruction-scale knobs.
    std::uint32_t parse_routine_calls = 26;
    std::uint32_t compute_per_routine = 34;
    std::uint32_t private_refs_per_routine = 6;
    double buffer_zipf_skew = 0.5;        ///< hot-block concentration
    std::uint32_t redo_copy_latches = 4;  ///< parallel log latches
    std::uint64_t seed = 1;
};

/**
 * Factory for per-process OLTP trace sources sharing one database
 * layout.
 */
class OltpWorkload
{
  public:
    explicit OltpWorkload(const OltpParams &params);

    const OltpParams &params() const { return p_; }
    const SgaLayout &layout() const { return layout_; }
    const LockDirectory &locks() const { return locks_; }
    const CodeLayout &code() const { return code_; }

    /**
     * Create the trace source for server process @p proc
     * (0 <= proc < num_procs).  The stream is unbounded; wrap it in a
     * trace::LimitSource to cap instruction counts.
     */
    std::unique_ptr<trace::TraceSource> makeProcess(ProcId proc) const;

    /**
     * Latches protecting the hot migratory metadata this engine
     * actually bounces between processors: branch balances, teller
     * balances, and the redo copy latches.  This is the lock set the
     * hint-insertion pass (paper section 4.2) targets.
     */
    std::vector<Addr> hotLatches() const;

  private:
    OltpParams p_;
    SgaLayout layout_;
    LockDirectory locks_;
    CodeLayout code_;
};

} // namespace dbsim::workload

#endif // DBSIM_WORKLOAD_OLTP_ENGINE_HPP
