#include "workload/hints.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::workload {

using trace::OpClass;
using trace::TraceRecord;

HintInserter::HintInserter(std::unique_ptr<trace::TraceSource> inner,
                           HintOptions opts)
    : inner_(std::move(inner)), opts_(std::move(opts))
{
    if (!isPow2(opts_.line_bytes))
        DBSIM_FATAL("hint line size must be a power of two");
}

bool
HintInserter::hotLock(Addr addr) const
{
    return opts_.hot_locks.empty() || opts_.hot_locks.count(addr) != 0;
}

void
HintInserter::transformSection(std::vector<TraceRecord> &section)
{
    // Collect the distinct data lines written inside the section.  The
    // latch word's line is prefetched (it speeds the acquire) but NOT
    // flushed: the latch is re-written on every acquisition, so pushing
    // it home would only force the next acquirer -- possibly on the
    // same node -- through the directory again.
    const Addr lock_blk = blockAlign(section.front().vaddr,
                                     opts_.line_bytes);
    std::vector<Addr> data_lines;
    auto add_line = [&](Addr a) {
        const Addr blk = blockAlign(a, opts_.line_bytes);
        if (blk != lock_blk &&
            std::find(data_lines.begin(), data_lines.end(), blk) ==
                data_lines.end()) {
            data_lines.push_back(blk);
        }
    };
    for (const auto &r : section) {
        if (r.op == OpClass::Store)
            add_line(r.vaddr);
    }

    const Addr pc_front = section.front().pc;
    const Addr pc_back = section.back().pc;

    if (opts_.prefetch) {
        // Exclusive prefetches ahead of the acquire: the migratory fetch
        // overlaps the preceding work instead of stalling the update.
        std::vector<TraceRecord> pf;
        for (const Addr blk : data_lines) {
            TraceRecord r;
            r.op = OpClass::PrefetchExcl;
            r.pc = pc_front;
            r.vaddr = blk;
            pf.push_back(r);
            ++prefetches_;
        }
        {
            TraceRecord r;
            r.op = OpClass::PrefetchExcl;
            r.pc = pc_front;
            r.vaddr = lock_blk;
            pf.push_back(r);
            ++prefetches_;
        }
        section.insert(section.begin(), pf.begin(), pf.end());
    }

    if (opts_.flush) {
        // Flush (sharing writeback, clean copy kept) after the release.
        for (const Addr blk : data_lines) {
            TraceRecord r;
            r.op = OpClass::Flush;
            r.pc = pc_back;
            r.vaddr = blk;
            section.push_back(r);
            ++flushes_;
        }
    }
}

bool
HintInserter::pump()
{
    TraceRecord rec;
    if (!inner_->next(rec))
        return false;

    if (rec.op != OpClass::LockAcquire || !hotLock(rec.vaddr)) {
        out_.push_back(rec);
        return true;
    }

    // Buffer the critical section up to the matching release.
    const Addr lock = rec.vaddr;
    std::vector<TraceRecord> section;
    section.push_back(rec);
    while (section.size() < opts_.max_section) {
        TraceRecord r;
        if (!inner_->next(r)) {
            inner_done_ = true;
            break;
        }
        section.push_back(r);
        if (r.op == OpClass::LockRelease && r.vaddr == lock)
            break;
    }

    if (section.back().op == OpClass::LockRelease &&
        section.back().vaddr == lock) {
        transformSection(section);
    }
    for (const auto &r : section)
        out_.push_back(r);
    return true;
}

bool
HintInserter::next(TraceRecord &out)
{
    while (out_.empty()) {
        if (inner_done_ || !pump()) {
            if (out_.empty())
                return false;
            break;
        }
    }
    out = out_.front();
    out_.pop_front();
    return true;
}

} // namespace dbsim::workload
