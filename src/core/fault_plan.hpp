/**
 * @file
 * Deterministic fault-injection plan for the sweep runner.
 *
 * A FaultPlan names exactly which (item index, attempt number) pairs of
 * a sweep misbehave and how: throw a plain exception, trip DBSIM_PANIC
 * (exercising the crash-dump registry and PanicThrowGuard capture), or
 * sleep long enough for the host-side item deadline to expire.  The plan
 * is consulted by SweepRunner::runOne through a test-only hook, so every
 * isolation, retry, journaling and resume path can be driven from tests
 * and from tools/dbsim-faultsim with fully reproducible failures --
 * nothing here is randomized.
 */

#ifndef DBSIM_CORE_FAULT_PLAN_HPP
#define DBSIM_CORE_FAULT_PLAN_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbsim::core {

/** One scheduled fault: what goes wrong, where, and on which attempt. */
struct FaultSpec
{
    enum class Kind : std::uint8_t {
        Throw, ///< throw std::runtime_error(message) before the run
        Panic, ///< DBSIM_PANIC(message): crash-dump registry + guard path
        Delay, ///< sleep delay_seconds, then run normally (trips timeouts)
    };

    std::size_t index = 0;  ///< sweep item index the fault applies to
    unsigned attempt = 1;   ///< 1-based attempt number it fires on
    Kind kind = Kind::Throw;
    double delay_seconds = 0.0; ///< Delay only
    std::string message = "injected fault";
};

/** An ordered collection of FaultSpecs consulted per (index, attempt). */
class FaultPlan
{
  public:
    void add(FaultSpec spec) { specs_.push_back(std::move(spec)); }

    /** Fail item @p index on every attempt up to @p attempts (inclusive). */
    void
    failAttempts(std::size_t index, unsigned attempts, FaultSpec::Kind kind,
                 std::string message = "injected fault")
    {
        for (unsigned a = 1; a <= attempts; ++a) {
            FaultSpec s;
            s.index = index;
            s.attempt = a;
            s.kind = kind;
            s.message = message;
            add(std::move(s));
        }
    }

    /** The first spec scheduled for (index, attempt), or nullptr. */
    const FaultSpec *
    match(std::size_t index, unsigned attempt) const
    {
        for (const FaultSpec &s : specs_) {
            if (s.index == index && s.attempt == attempt)
                return &s;
        }
        return nullptr;
    }

    bool empty() const { return specs_.empty(); }
    std::size_t size() const { return specs_.size(); }

  private:
    std::vector<FaultSpec> specs_;
};

} // namespace dbsim::core

#endif // DBSIM_CORE_FAULT_PLAN_HPP
