/**
 * @file
 * Parallel configuration-sweep runner and its machine-readable report.
 *
 * Every figure bench replays the same workload through a list of
 * independent configurations.  SweepRunner executes such a list on a
 * bounded pool of host threads -- one fully independent Simulation per
 * configuration -- and returns results in input order.
 *
 * Determinism contract (see DESIGN.md): the simulated results of a
 * sweep (cycle counts, instruction counts, breakdowns, miss rates,
 * occupancy distributions) are a pure function of the configuration
 * list.  Running the same list with 1 job or 8 jobs produces bitwise
 * identical simulated statistics; only wall-clock fields differ.  This
 * holds because each Simulation owns all of its state, every stochastic
 * decision draws from Rngs seeded by the configuration, and the few
 * process-global facilities (logging, the crash-dump registry) are
 * thread-safe and feedback-free.
 */

#ifndef DBSIM_CORE_SWEEP_HPP
#define DBSIM_CORE_SWEEP_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "coherence/directory.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "sim/node.hpp"

namespace dbsim::core {

/** One configuration of a sweep. */
struct SweepItem
{
    std::string label;
    SimConfig cfg;
};

/** Migratory-sharing characterization snapshot (collected per run). */
struct MigratorySummary
{
    std::uint64_t shared_writes = 0;
    std::uint64_t migratory_writes = 0;
    std::uint64_t dirty_reads = 0;
    std::uint64_t migratory_dirty_reads = 0;
    std::uint64_t migratory_lines = 0;
    std::uint64_t migratory_pcs = 0;
    double write_fraction = 0.0;
    double dirty_read_fraction = 0.0;
    double line_concentration_70 = 0.0; ///< lines covering 70% of writes
    double pc_concentration_75 = 0.0;   ///< PCs covering 75% of references
};

/**
 * Everything the reporting layer needs from one configuration run.
 * Simulated statistics are deterministic in the configuration; only
 * wall_seconds / sim_ips depend on the host.
 */
struct SweepResult
{
    std::string label;
    std::string config;    ///< describe(cfg)
    SimConfig cfg;
    sim::RunResult run;
    Characterization ch;
    sim::NodeStats node0;  ///< node-0 cache/stream-buffer counters
    coher::FabricStats fabric;
    stats::OccupancyTracker l1d_occ{64};
    stats::OccupancyTracker l1d_read_occ{64};
    stats::OccupancyTracker l2_occ{64};
    stats::OccupancyTracker l2_read_occ{64};
    MigratorySummary migratory;
    double wall_seconds = 0.0; ///< host time spent simulating this config
    double sim_ips = 0.0;      ///< simulated instructions per host second

    /** The figure row for the text reports. */
    BreakdownRow
    row() const
    {
        return BreakdownRow{label, run.breakdown, run.instructions};
    }
};

/**
 * Runs a list of configurations across a bounded pool of host threads.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs concurrent simulations; 0 resolves via resolveJobs(0)
     *             (DBSIM_JOBS, then the host's hardware concurrency).
     */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Derive per-item workload seeds as splitmix64(base ^ index) instead
     * of using the seeds in each SimConfig.  The default (0) leaves the
     * configs' own seeds untouched, which is what the figure benches
     * want: every configuration replays the *same* workload.
     */
    void setBaseSeed(std::uint64_t base) { base_seed_ = base; }

    /**
     * Run every item; results come back in input order regardless of
     * completion order.  If any configuration throws (e.g. ConfigError
     * from validation), all remaining items still run, then the
     * lowest-index exception is rethrown -- so error behavior is also
     * independent of the job count.
     */
    std::vector<SweepResult> run(const std::vector<SweepItem> &items) const;

    /**
     * Resolve a job count: a nonzero @p cli_jobs wins; otherwise a valid
     * positive DBSIM_JOBS environment value; otherwise the host's
     * hardware concurrency (at least 1).  Invalid DBSIM_JOBS values
     * warn and are ignored.
     */
    static unsigned resolveJobs(unsigned cli_jobs);

  private:
    SweepResult runOne(const SweepItem &item, std::size_t index) const;

    unsigned jobs_;
    std::uint64_t base_seed_ = 0;
};

/**
 * Accumulates sweep results across a bench's sections for the --json
 * report.  The emitted document is schema "dbsim-bench-v1".
 */
struct SweepReport
{
    std::string bench;  ///< e.g. "fig2_oltp_ilp"
    unsigned jobs = 1;

    struct Entry
    {
        std::string section;
        SweepResult result;
    };
    std::vector<Entry> entries;

    void add(const std::string &section,
             const std::vector<SweepResult> &results);
};

/** Emit the full report as JSON (schema dbsim-bench-v1). */
void writeSweepJson(std::ostream &os, const SweepReport &report);

/**
 * Write the report to @p path (overwrites).
 * @return false (with a warning) if the file cannot be written.
 */
bool writeSweepJsonFile(const std::string &path, const SweepReport &report);

} // namespace dbsim::core

#endif // DBSIM_CORE_SWEEP_HPP
