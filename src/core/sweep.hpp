/**
 * @file
 * Parallel configuration-sweep runner, its fault-tolerance layer, and
 * the machine-readable report.
 *
 * Every figure bench replays the same workload through a list of
 * independent configurations.  SweepRunner executes such a list on a
 * bounded pool of host threads -- one fully independent Simulation per
 * configuration -- and returns results in input order.
 *
 * Determinism contract (see DESIGN.md): the simulated results of a
 * sweep (cycle counts, instruction counts, breakdowns, miss rates,
 * occupancy distributions) are a pure function of the configuration
 * list.  Running the same list with 1 job or 8 jobs produces bitwise
 * identical simulated statistics; only wall-clock fields differ.  This
 * holds because each Simulation owns all of its state, every stochastic
 * decision draws from Rngs seeded by the configuration, and the few
 * process-global facilities (logging, the crash-dump registry) are
 * thread-safe and feedback-free.
 *
 * Fault tolerance (DESIGN.md §5e): runChecked() isolates each item --
 * a panic (captured via PanicThrowGuard), exception, or host-deadline
 * expiry in item k becomes a structured SweepFailure instead of killing
 * the pool.  FailurePolicy selects abort / collect / bounded retry;
 * retries re-run the identical (item, index) pair, so a retried success
 * is bitwise-equal to an undisturbed run.  SweepJournal appends each
 * finished item as one JSON line, and planResume() turns a journal back
 * into "skip these, re-run those", which is how an interrupted sweep
 * resumes without repeating completed work.
 */

#ifndef DBSIM_CORE_SWEEP_HPP
#define DBSIM_CORE_SWEEP_HPP

#include <cstdint>
#include <exception>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "coherence/directory.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/fault_plan.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "sim/node.hpp"

namespace dbsim::core {

/** One configuration of a sweep. */
struct SweepItem
{
    std::string label;
    SimConfig cfg;
};

/** Migratory-sharing characterization snapshot (collected per run). */
struct MigratorySummary
{
    std::uint64_t shared_writes = 0;
    std::uint64_t migratory_writes = 0;
    std::uint64_t dirty_reads = 0;
    std::uint64_t migratory_dirty_reads = 0;
    std::uint64_t migratory_lines = 0;
    std::uint64_t migratory_pcs = 0;
    double write_fraction = 0.0;
    double dirty_read_fraction = 0.0;
    double line_concentration_70 = 0.0; ///< lines covering 70% of writes
    double pc_concentration_75 = 0.0;   ///< PCs covering 75% of references
};

/**
 * Everything the reporting layer needs from one configuration run.
 * Simulated statistics are deterministic in the configuration; only
 * wall_seconds / sim_ips depend on the host.
 */
struct SweepResult
{
    std::string label;
    std::string config;    ///< describe(cfg)
    SimConfig cfg;
    sim::RunResult run;
    Characterization ch;
    sim::NodeStats node0;  ///< node-0 cache/stream-buffer counters
    coher::FabricStats fabric;
    std::uint64_t context_switches = 0; ///< summed over all cores
    stats::OccupancyTracker l1d_occ{64};
    stats::OccupancyTracker l1d_read_occ{64};
    stats::OccupancyTracker l2_occ{64};
    stats::OccupancyTracker l2_read_occ{64};
    MigratorySummary migratory;
    double wall_seconds = 0.0; ///< host time spent simulating this config
    double sim_ips = 0.0;      ///< simulated instructions per host second

    /** The figure row for the text reports. */
    BreakdownRow
    row() const
    {
        return BreakdownRow{label, run.breakdown, run.instructions};
    }
};

// ---------------------------------------------------------------------
// Failure taxonomy
// ---------------------------------------------------------------------

/** Classification of a captured per-item failure. */
enum class FailureKind : std::uint8_t {
    Config,    ///< ConfigError: the configuration was rejected (not retried)
    Invariant, ///< SimInvariantError: DBSIM_PANIC / watchdog / checker
    Timeout,   ///< SimTimeoutError: host-side item deadline expired
    Exception, ///< any other exception
    Interrupted, ///< SimInterruptedError: SIGINT/SIGTERM (never retried)
};

const char *failureKindName(FailureKind kind);

/** A structured, per-item failure captured by the isolation layer. */
struct SweepFailure
{
    std::string label;  ///< effective label of the failed item
    std::size_t index = 0; ///< index within the original item list
    FailureKind kind = FailureKind::Exception;
    std::string what;   ///< first line of the error message
    std::string crash_dump_excerpt; ///< bounded diagnostic dump (may be empty)
    unsigned attempts = 1; ///< attempts consumed, including the last
    /** Path of the item's checkpoint file, when one exists on disk --
     *  how a resumed sweep continues a long item mid-flight instead of
     *  starting it over. */
    std::string checkpoint_path;
};

/** What the runner does when an item fails. */
struct FailurePolicy
{
    enum class Mode : std::uint8_t {
        Abort,   ///< record, finish remaining items, caller rethrows
        Collect, ///< record as SweepFailure, keep going
        Retry,   ///< re-run up to max_attempts, then collect
    };

    Mode mode = Mode::Abort;
    unsigned max_attempts = 1; ///< total attempts per item (Retry only)

    static FailurePolicy abort() { return {}; }
    static FailurePolicy collect() { return {Mode::Collect, 1}; }
    static FailurePolicy
    retry(unsigned max_attempts)
    {
        return {Mode::Retry, max_attempts < 1 ? 1u : max_attempts};
    }

    /** True when failures are captured instead of propagated. */
    bool isolating() const { return mode != Mode::Abort; }

    /** "abort" / "collect" / "retry:N" (for reports and logs). */
    std::string describe() const;
};

/** The outcome of one item under runChecked(). */
struct SweepItemOutcome
{
    enum class Status : std::uint8_t { Ok, Failed };

    Status status = Status::Ok;
    std::size_t index = 0;  ///< index within the original item list
    unsigned attempts = 1;  ///< attempts consumed
    SweepResult result;     ///< valid when ok()
    SweepFailure failure;   ///< valid when !ok()
    std::exception_ptr error; ///< last exception (abort-mode rethrow)

    bool ok() const { return status == Status::Ok; }
};

/** All per-item outcomes of a runChecked() sweep, in input order. */
struct SweepOutcome
{
    std::vector<SweepItemOutcome> items;

    std::size_t failures() const;
    bool allOk() const { return failures() == 0; }
};

/**
 * Exit code benches use for "the sweep finished, but some items failed
 * under a collect/retry policy" -- distinct from config rejection (2),
 * invariant abort (3) and generic/IO failure (1).
 */
inline constexpr int kSweepPartialFailureExit = 4;

/**
 * Runs a list of configurations across a bounded pool of host threads.
 */
class SweepRunner
{
  public:
    /** Hard ceiling on the resolved job count (see resolveJobs). */
    static constexpr unsigned kMaxJobs = 4096;

    /**
     * @param jobs concurrent simulations; 0 resolves via resolveJobs(0)
     *             (DBSIM_JOBS, then the host's hardware concurrency).
     */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Derive per-item workload seeds as splitmix64(base ^ index) instead
     * of using the seeds in each SimConfig.  The default (0) leaves the
     * configs' own seeds untouched, which is what the figure benches
     * want: every configuration replays the *same* workload.
     */
    void setBaseSeed(std::uint64_t base) { base_seed_ = base; }

    /** Failure handling for runChecked() (default: abort). */
    void setFailurePolicy(FailurePolicy policy) { policy_ = policy; }
    const FailurePolicy &failurePolicy() const { return policy_; }

    /**
     * Host-side wall-clock budget per item in seconds (0 disables).  An
     * item still running past the deadline is abandoned mid-loop and
     * recorded as a FailureKind::Timeout carrying the machine-state
     * dump.  Retries re-arm a fresh deadline.
     */
    void setItemTimeout(double seconds)
    {
        item_timeout_sec_ = seconds > 0.0 ? seconds : 0.0;
    }
    double itemTimeout() const { return item_timeout_sec_; }

    /**
     * Test-only hook: consult @p plan (not owned; may be nullptr) before
     * each (item, attempt) and fire any scheduled fault.  Used by the
     * fault-injection tests and tools/dbsim-faultsim.
     */
    void setFaultPlan(const FaultPlan *plan) { fault_plan_ = plan; }

    /**
     * Directory for per-item checkpoints (empty disables, the default).
     * When set, every item runs with a checkpoint path of
     * checkpointPathFor(original index): the run loop checkpoints
     * periodically and on timeout/signal unwind, retries of
     * timeout-kind failures restore from the item's checkpoint instead
     * of starting over, and failures record the checkpoint path in the
     * journal so a resumed sweep continues long items mid-flight.
     */
    void setCheckpointDir(std::string dir);
    const std::string &checkpointDir() const { return checkpoint_dir_; }

    /** Simulated-cycle cadence of periodic checkpoints (0 = a default
     *  of 500k cycles when a checkpoint dir is configured). */
    void setCheckpointInterval(Cycles interval)
    {
        checkpoint_interval_ = interval;
    }

    /** Epoch state-hash cadence forwarded to every item's config
     *  (0 disables; see SystemParams::state_hash_interval). */
    void setStateHashInterval(Cycles interval)
    {
        state_hash_interval_ = interval;
    }

    /** When true, first attempts also restore from an existing item
     *  checkpoint (the --restore resume path).  Retries always do. */
    void setRestore(bool restore) { restore_ = restore; }

    /** Checkpoint file path for original item @p index (empty when no
     *  checkpoint dir is configured). */
    std::string checkpointPathFor(std::size_t index) const;

    /**
     * Invoked once per item as it reaches its final status (from worker
     * threads, serialized by the runner) -- the journaling hook.  The
     * outcome's index refers to the original item list.
     */
    void
    setCompletionCallback(std::function<void(const SweepItemOutcome &)> cb)
    {
        on_complete_ = std::move(cb);
    }

    /**
     * Run every item; results come back in input order regardless of
     * completion order.  If any configuration throws (e.g. ConfigError
     * from validation), all remaining items still run, then the
     * lowest-index exception is rethrown -- so error behavior is also
     * independent of the job count.  (Equivalent to runChecked() under
     * FailurePolicy::abort() plus the rethrow.)
     */
    std::vector<SweepResult> run(const std::vector<SweepItem> &items) const;

    /**
     * Fault-isolated run under the configured FailurePolicy: per-item
     * outcomes in input order, failures captured as SweepFailure (with
     * panics converted to exceptions via PanicThrowGuard while an
     * isolating policy is active).  Under FailurePolicy::abort() nothing
     * is rethrown here either -- the caller owns propagation (see
     * run()).
     */
    SweepOutcome runChecked(const std::vector<SweepItem> &items) const;

    /**
     * Like runChecked(items), but item i is treated as index
     * @p original_indices[i] of a larger sweep -- labels, derived seeds,
     * fault matching and reported indices all use the original index.
     * This is the resume path: re-running the failed/missing subset of a
     * journaled sweep must reproduce the exact per-item seeds of the
     * clean run.  @p original_indices must have items.size() entries.
     */
    SweepOutcome
    runChecked(const std::vector<SweepItem> &items,
               const std::vector<std::size_t> &original_indices) const;

    /**
     * Resolve a job count: a nonzero @p cli_jobs wins; otherwise a valid
     * positive DBSIM_JOBS environment value; otherwise the host's
     * hardware concurrency (at least 1).  Invalid DBSIM_JOBS values
     * warn and are ignored; values above kMaxJobs (from either source)
     * warn and clamp -- a fat-fingered DBSIM_JOBS must not spawn
     * thousands of threads.
     */
    static unsigned resolveJobs(unsigned cli_jobs);

    /**
     * Resolve the per-item timeout: a positive @p cli_seconds wins;
     * otherwise a valid nonnegative integer DBSIM_ITEM_TIMEOUT (seconds)
     * from the environment; otherwise 0 (disabled).  Invalid environment
     * values warn and are ignored, in the cyclesFromEnv() style.
     */
    static double resolveItemTimeout(double cli_seconds);

  private:
    SweepResult runOne(const SweepItem &item, std::size_t index,
                       unsigned attempt) const;
    SweepItemOutcome runIsolated(const SweepItem &item,
                                 std::size_t index) const;

    unsigned jobs_;
    std::uint64_t base_seed_ = 0;
    FailurePolicy policy_;
    double item_timeout_sec_ = 0.0;
    const FaultPlan *fault_plan_ = nullptr;
    std::function<void(const SweepItemOutcome &)> on_complete_;
    std::string checkpoint_dir_;
    Cycles checkpoint_interval_ = 0;
    Cycles state_hash_interval_ = 0;
    bool restore_ = false;
};

// ---------------------------------------------------------------------
// Report (schema dbsim-bench-v2)
// ---------------------------------------------------------------------

/**
 * Accumulates sweep results across a bench's sections for the --json
 * report.  The emitted document is schema "dbsim-bench-v2": every
 * result is one compact entry object (section/label/index/status/
 * attempts, then the metrics, or an error object for failures), so a
 * journal line and a report entry are the same bytes -- the property
 * the resume path's field-exactness rests on.
 */
struct SweepReport
{
    std::string bench;  ///< e.g. "fig2_oltp_ilp"
    unsigned jobs = 1;
    std::string failure_policy = "abort";
    double item_timeout_sec = 0.0;

    struct Entry
    {
        std::string section;
        bool replayed = false;  ///< true: raw journal line spliced verbatim
        std::string raw;        ///< the journal line (replayed only)
        SweepItemOutcome outcome; ///< fresh result/failure (!replayed)
    };
    std::vector<Entry> entries;

    /** Append fresh successful results (status ok, 1 attempt each). */
    void add(const std::string &section,
             const std::vector<SweepResult> &results);

    /** Append every outcome of a fault-isolated sweep. */
    void add(const std::string &section, const SweepOutcome &outcome);

    /** Append one journaled entry verbatim (resume path). */
    void addReplayed(const std::string &section, std::string raw_line);

    /** Number of failed entries accumulated so far. */
    std::size_t failures() const;
};

/**
 * Render one report entry as a compact, single-line JSON object --
 * exactly the text that goes into both the journal and the v2 report's
 * results array.  Deterministic: identical outcomes render to identical
 * bytes (modulo the wall-clock fields' values).
 */
std::string renderSweepEntryJson(const std::string &section,
                                 const SweepItemOutcome &outcome);

/** Emit the full report as JSON (schema dbsim-bench-v2). */
void writeSweepJson(std::ostream &os, const SweepReport &report);

/**
 * Write the report to @p path (overwrites).
 * @return false (with a warning) if the file cannot be written.
 */
bool writeSweepJsonFile(const std::string &path, const SweepReport &report);

// ---------------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------------

/** Minimal parsed view of one journal line (plus the verbatim line). */
struct SweepJournalEntry
{
    std::string section;
    std::string label;
    std::string status; ///< "ok" or "failed"
    std::string raw;    ///< the full line, one JSON object

    bool ok() const { return status == "ok"; }
};

/**
 * Append-only, line-flushed journal of finished sweep items.  Each line
 * is one renderSweepEntryJson() object, written and flushed as the item
 * completes, so a killed process leaves a parseable prefix.  Thread-safe
 * (the runner's completion callback fires from worker threads).
 */
class SweepJournal
{
  public:
    SweepJournal() = default;

    /**
     * Open @p path for journaling; truncates unless @p append.
     * @return false (with a warning) when the file cannot be opened --
     * the sweep still runs, just without a journal.
     */
    bool open(const std::string &path, bool append);

    bool isOpen() const { return os_.is_open(); }
    const std::string &path() const { return path_; }

    /** Append one finished item (rendered) and flush. */
    void append(const std::string &section, const SweepItemOutcome &outcome);

    /** Append one pre-rendered line verbatim and flush. */
    void appendRaw(const std::string &raw_line);

    void close();

    /**
     * Parse @p path into entries, tolerating a torn final line (a
     * mid-write kill): lines that are not complete JSON objects with
     * the expected fields are skipped with a warning.  A missing or
     * unreadable file warns and yields no entries.
     */
    static std::vector<SweepJournalEntry> load(const std::string &path);

  private:
    std::ofstream os_;
    std::string path_;
    std::mutex mu_;
};

/** Which items of a section a resumed sweep replays vs. re-runs. */
struct ResumePlan
{
    /** Per input item: the journal line to splice, or empty = re-run. */
    std::vector<std::string> replayed;
    /** Indices (into the input items) that must actually run. */
    std::vector<std::size_t> to_run;

    std::size_t
    replayedCount() const
    {
        return replayed.size() - to_run.size();
    }
};

/**
 * Match @p items of @p section against journal @p entries: an item whose
 * (section, label) has a status-"ok" journal line is replayed verbatim;
 * failed, torn or missing items are re-run.  Duplicate labels consume
 * journal lines in order.  Items with empty labels match on
 * describe(cfg), mirroring runOne()'s effective-label rule.
 */
ResumePlan planResume(const std::string &section,
                      const std::vector<SweepItem> &items,
                      const std::vector<SweepJournalEntry> &entries);

} // namespace dbsim::core

#endif // DBSIM_CORE_SWEEP_HPP
