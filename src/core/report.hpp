/**
 * @file
 * Text reporting of benchmark results in the paper's format:
 * execution-time bars broken down into busy / stall components,
 * normalized to a baseline configuration, plus magnified read-stall
 * breakdowns and MSHR occupancy series.
 */

#ifndef DBSIM_CORE_REPORT_HPP
#define DBSIM_CORE_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/breakdown.hpp"

namespace dbsim::core {

/** One bar of a figure. */
struct BreakdownRow
{
    std::string label;
    Breakdown breakdown;       ///< component cycles of the window
    std::uint64_t instructions = 0; ///< retired in the window
};

/**
 * Print a table like the paper's execution-time figures: one row per
 * configuration, components as percentages of the first row's
 * cycles-per-instruction (the baseline bar = 100).
 *
 * Columns: total | CPU (busy+FU) | read | write | sync | instr.
 */
void printExecutionBars(std::ostream &os,
                        const std::vector<BreakdownRow> &rows);

/**
 * Print each row's components as percentages of that row's own total
 * (used by Figure 5's uniprocessor-vs-multiprocessor composition
 * comparison, where absolute times are not comparable).
 */
void printCompositionBars(std::ostream &os,
                          const std::vector<BreakdownRow> &rows);

/**
 * Print the magnified read-stall breakdown (paper figures 2(b)-(c)
 * right-hand graphs): L1+misc / L2 / local / remote / dirty / dTLB
 * components normalized to the first row's total execution time = 100.
 */
void printReadStallBars(std::ostream &os,
                        const std::vector<BreakdownRow> &rows);

/**
 * Print an MSHR occupancy distribution (paper figures 2(d)-(g)): the
 * fraction of non-idle time with at least n MSHRs in use.
 */
void printOccupancy(std::ostream &os, const std::string &label,
                    const stats::OccupancyTracker &occ,
                    std::uint32_t max_n);

/** Section header helper. */
void printHeader(std::ostream &os, const std::string &title);

} // namespace dbsim::core

#endif // DBSIM_CORE_REPORT_HPP
