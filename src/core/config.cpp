#include "core/config.hpp"

#include <sstream>
#include <string>

#include "common/errors.hpp"
#include "cpu/consistency.hpp"

namespace dbsim::core {

namespace {

void
validateSga(const std::string &prefix, const workload::SgaParams &sga)
{
    if (sga.block_bytes == 0) {
        throw ConfigError(prefix + ".block_bytes",
                          "a database block must hold at least one byte");
    }
    if (sga.buffer_blocks == 0) {
        throw ConfigError(prefix + ".buffer_blocks",
                          "the block buffer needs at least one block");
    }
    if (sga.code_bytes == 0) {
        throw ConfigError(prefix + ".code_bytes",
                          "the engine needs a nonzero instruction footprint");
    }
}

} // namespace

void
SimConfig::validate() const
{
    system.validate();

    if (total_instructions == 0) {
        throw ConfigError("total_instructions",
                          "the run budget must cover at least one "
                          "instruction");
    }
    if (warmup_instructions >= total_instructions) {
        throw ConfigError(
            "warmup_instructions",
            "warmup (" + std::to_string(warmup_instructions) +
                ") must be smaller than the total budget (" +
                std::to_string(total_instructions) +
                "), or the measured window is empty");
    }

    const std::uint32_t procs =
        workload == WorkloadKind::Oltp ? oltp.num_procs : dss.num_procs;
    const std::string procs_field = workload == WorkloadKind::Oltp
                                        ? "oltp.num_procs"
                                        : "dss.num_procs";
    if (procs == 0) {
        throw ConfigError(procs_field,
                          "the workload needs at least one process");
    }
    if (procs % system.num_nodes != 0) {
        throw ConfigError(procs_field,
                          std::to_string(procs) + " processes cannot be "
                          "spread evenly over " +
                              std::to_string(system.num_nodes) +
                              " nodes; use a multiple of the node count");
    }

    if (workload == WorkloadKind::Oltp) {
        validateSga("oltp.sga", oltp.sga);
        if (oltp.branches == 0) {
            throw ConfigError("oltp.branches",
                              "TPC-B needs at least one branch");
        }
        if (oltp.hash_buckets == 0) {
            throw ConfigError("oltp.hash_buckets",
                              "the buffer hash table needs at least one "
                              "bucket");
        }
        if (oltp.local_branch_prob < 0.0 || oltp.local_branch_prob > 1.0) {
            throw ConfigError("oltp.local_branch_prob",
                              "must be a probability in [0, 1], got " +
                                  std::to_string(oltp.local_branch_prob));
        }
        if (oltp.commits_per_group == 0) {
            throw ConfigError("oltp.commits_per_group",
                              "group commit needs at least one transaction "
                              "per log write");
        }
    } else {
        validateSga("dss.sga", dss.sga);
        if (dss.row_bytes == 0) {
            throw ConfigError("dss.row_bytes",
                              "a scanned row must touch at least one byte");
        }
        if (dss.table_bytes < dss.sga.block_bytes) {
            throw ConfigError("dss.table_bytes",
                              "the scanned relation (" +
                                  std::to_string(dss.table_bytes) +
                                  " bytes) must span at least one database "
                                  "block (" +
                                  std::to_string(dss.sga.block_bytes) +
                                  " bytes)");
        }
        if (dss.selectivity < 0.0 || dss.selectivity > 1.0) {
            throw ConfigError("dss.selectivity",
                              "must be a fraction in [0, 1], got " +
                                  std::to_string(dss.selectivity));
        }
    }
}

const char *
workloadName(WorkloadKind k)
{
    return k == WorkloadKind::Oltp ? "OLTP" : "DSS";
}

std::uint32_t
SimConfig::procsPerCpu() const
{
    const std::uint32_t procs = workload == WorkloadKind::Oltp
                                    ? oltp.num_procs
                                    : dss.num_procs;
    return procs / system.num_nodes;
}

SimConfig
makeScaledConfig(WorkloadKind kind, std::uint32_t num_nodes)
{
    SimConfig cfg;
    cfg.workload = kind;
    cfg.system.num_nodes = num_nodes;

    // Scaled memory hierarchy: 1/8 of the paper's sizes, same ratios.
    cfg.system.node.l1i = {16 * 1024, 2, 64, 1, 8, 1};
    cfg.system.node.l1d = {16 * 1024, 2, 64, 1, 8, 2};
    cfg.system.node.l2 = {512 * 1024, 4, 64, 20, 8, 1};
    cfg.system.node.page_bytes = 8192;
    cfg.system.node.itlb_entries = 128;
    cfg.system.node.dtlb_entries = 128;
    cfg.system.page_bins = 16; // L2 page colors: 512K / (4 * 8K)

    cfg.system.core = cpu::CoreParams{};
    cfg.system.core.context_switch_cost = 300;

    if (kind == WorkloadKind::Oltp) {
        cfg.oltp.num_procs = 8 * num_nodes;
        // Instruction footprint 70 KB (560 KB / 8): overwhelms the
        // 16 KB L1I, fits the 512 KB L2 -- as in the paper.
        cfg.oltp.sga.code_bytes = 70 * 1024;
        cfg.oltp.sga.block_bytes = 2048;
        cfg.oltp.sga.buffer_blocks = 8192; // 16 MB block buffer >> L2
        cfg.oltp.sga.metadata_bytes = 2 << 20;
        cfg.total_instructions = 2'000'000;
        cfg.warmup_instructions = 400'000;
    } else {
        cfg.dss.num_procs = 4 * num_nodes;
        cfg.dss.sga.code_bytes = 12 * 1024; // fits L1I
        cfg.dss.table_bytes = 48ull << 20;
        cfg.total_instructions = 2'000'000;
        cfg.warmup_instructions = 400'000;
    }
    return cfg;
}

SimConfig
makePaperScaleConfig(WorkloadKind kind, std::uint32_t num_nodes)
{
    SimConfig cfg = makeScaledConfig(kind, num_nodes);
    cfg.system.node.l1i = {128 * 1024, 2, 64, 1, 8, 1};
    cfg.system.node.l1d = {128 * 1024, 2, 64, 1, 8, 2};
    cfg.system.node.l2 = {8 * 1024 * 1024, 4, 64, 20, 8, 1};
    cfg.system.page_bins = 256;
    if (kind == WorkloadKind::Oltp) {
        cfg.oltp.sga.code_bytes = 560 * 1024;
        cfg.oltp.sga.buffer_blocks = 65536; // 128 MB block buffer
        cfg.oltp.sga.metadata_bytes = 16 << 20;
    } else {
        cfg.dss.table_bytes = 500ull << 20;
        cfg.dss.sga.buffer_blocks = 262144;
        cfg.dss.workarea_bytes = 768 * 1024;
    }
    cfg.total_instructions = 200'000'000;
    cfg.warmup_instructions = 20'000'000;
    return cfg;
}

std::string
describe(const SimConfig &cfg)
{
    std::ostringstream os;
    os << workloadName(cfg.workload) << " nodes=" << cfg.system.num_nodes
       << " procs/cpu=" << cfg.procsPerCpu()
       << (cfg.system.core.out_of_order ? " ooo" : " inorder")
       << " width=" << cfg.system.core.issue_width
       << " window=" << cfg.system.core.window_size
       << " mshrs=" << cfg.system.node.l1d.mshrs
       << " model=" << cpu::consistencyModelName(cfg.system.core.model);
    if (cfg.system.core.cons.hw_prefetch)
        os << "+pf";
    if (cfg.system.core.cons.spec_loads)
        os << "+spec";
    if (cfg.system.node.stream_buffer_entries)
        os << " sbuf=" << cfg.system.node.stream_buffer_entries;
    if (cfg.hint_prefetch || cfg.hint_flush) {
        os << " hints=";
        if (cfg.hint_prefetch)
            os << "P";
        if (cfg.hint_flush)
            os << "F";
    }
    return os.str();
}

} // namespace dbsim::core
