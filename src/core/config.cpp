#include "core/config.hpp"

#include <sstream>

#include "cpu/consistency.hpp"

namespace dbsim::core {

const char *
workloadName(WorkloadKind k)
{
    return k == WorkloadKind::Oltp ? "OLTP" : "DSS";
}

std::uint32_t
SimConfig::procsPerCpu() const
{
    const std::uint32_t procs = workload == WorkloadKind::Oltp
                                    ? oltp.num_procs
                                    : dss.num_procs;
    return procs / system.num_nodes;
}

SimConfig
makeScaledConfig(WorkloadKind kind, std::uint32_t num_nodes)
{
    SimConfig cfg;
    cfg.workload = kind;
    cfg.system.num_nodes = num_nodes;

    // Scaled memory hierarchy: 1/8 of the paper's sizes, same ratios.
    cfg.system.node.l1i = {16 * 1024, 2, 64, 1, 8, 1};
    cfg.system.node.l1d = {16 * 1024, 2, 64, 1, 8, 2};
    cfg.system.node.l2 = {512 * 1024, 4, 64, 20, 8, 1};
    cfg.system.node.page_bytes = 8192;
    cfg.system.node.itlb_entries = 128;
    cfg.system.node.dtlb_entries = 128;
    cfg.system.page_bins = 16; // L2 page colors: 512K / (4 * 8K)

    cfg.system.core = cpu::CoreParams{};
    cfg.system.core.context_switch_cost = 300;

    if (kind == WorkloadKind::Oltp) {
        cfg.oltp.num_procs = 8 * num_nodes;
        // Instruction footprint 70 KB (560 KB / 8): overwhelms the
        // 16 KB L1I, fits the 512 KB L2 -- as in the paper.
        cfg.oltp.sga.code_bytes = 70 * 1024;
        cfg.oltp.sga.block_bytes = 2048;
        cfg.oltp.sga.buffer_blocks = 8192; // 16 MB block buffer >> L2
        cfg.oltp.sga.metadata_bytes = 2 << 20;
        cfg.total_instructions = 2'000'000;
        cfg.warmup_instructions = 400'000;
    } else {
        cfg.dss.num_procs = 4 * num_nodes;
        cfg.dss.sga.code_bytes = 12 * 1024; // fits L1I
        cfg.dss.table_bytes = 48ull << 20;
        cfg.total_instructions = 2'000'000;
        cfg.warmup_instructions = 400'000;
    }
    return cfg;
}

SimConfig
makePaperScaleConfig(WorkloadKind kind, std::uint32_t num_nodes)
{
    SimConfig cfg = makeScaledConfig(kind, num_nodes);
    cfg.system.node.l1i = {128 * 1024, 2, 64, 1, 8, 1};
    cfg.system.node.l1d = {128 * 1024, 2, 64, 1, 8, 2};
    cfg.system.node.l2 = {8 * 1024 * 1024, 4, 64, 20, 8, 1};
    cfg.system.page_bins = 256;
    if (kind == WorkloadKind::Oltp) {
        cfg.oltp.sga.code_bytes = 560 * 1024;
        cfg.oltp.sga.buffer_blocks = 65536; // 128 MB block buffer
        cfg.oltp.sga.metadata_bytes = 16 << 20;
    } else {
        cfg.dss.table_bytes = 500ull << 20;
        cfg.dss.sga.buffer_blocks = 262144;
        cfg.dss.workarea_bytes = 768 * 1024;
    }
    cfg.total_instructions = 200'000'000;
    cfg.warmup_instructions = 20'000'000;
    return cfg;
}

std::string
describe(const SimConfig &cfg)
{
    std::ostringstream os;
    os << workloadName(cfg.workload) << " nodes=" << cfg.system.num_nodes
       << " procs/cpu=" << cfg.procsPerCpu()
       << (cfg.system.core.out_of_order ? " ooo" : " inorder")
       << " width=" << cfg.system.core.issue_width
       << " window=" << cfg.system.core.window_size
       << " mshrs=" << cfg.system.node.l1d.mshrs
       << " model=" << cpu::consistencyModelName(cfg.system.core.model);
    if (cfg.system.core.cons.hw_prefetch)
        os << "+pf";
    if (cfg.system.core.cons.spec_loads)
        os << "+spec";
    if (cfg.system.node.stream_buffer_entries)
        os << " sbuf=" << cfg.system.node.stream_buffer_entries;
    if (cfg.hint_prefetch || cfg.hint_flush) {
        os << " hints=";
        if (cfg.hint_prefetch)
            os << "P";
        if (cfg.hint_flush)
            os << "F";
    }
    return os.str();
}

} // namespace dbsim::core
