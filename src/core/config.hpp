/**
 * @file
 * Top-level experiment configuration and presets.
 *
 * Two presets are provided:
 *
 *  - makeScaledConfig(): the repository default.  Cache sizes and
 *    workload footprints are scaled down together (constant ratios)
 *    so that the miss-class structure of the paper's configuration is
 *    preserved while runs complete in seconds.  All benchmarks use it.
 *
 *  - makePaperScaleConfig(): the literal Figure-1 parameters (128 KB
 *    L1s, 8 MB L2, 200M-instruction budgets).  Provided for
 *    completeness; runs take correspondingly longer.
 */

#ifndef DBSIM_CORE_CONFIG_HPP
#define DBSIM_CORE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "sim/system.hpp"
#include "workload/dss_engine.hpp"
#include "workload/oltp_engine.hpp"

namespace dbsim::core {

/** Which database workload to run. */
enum class WorkloadKind { Oltp, Dss };

const char *workloadName(WorkloadKind k);

/** Everything needed to run one experiment. */
struct SimConfig
{
    sim::SystemParams system;
    WorkloadKind workload = WorkloadKind::Oltp;
    workload::OltpParams oltp;
    workload::DssParams dss;

    /** Software-hint insertion (paper section 4.2). */
    bool hint_prefetch = false;
    bool hint_flush = false;
    bool hints_hot_locks_only = true;

    std::uint64_t total_instructions = 2'000'000;
    std::uint64_t warmup_instructions = 400'000;

    /** Processes per CPU (8 for OLTP, 4 for DSS in the paper). */
    std::uint32_t procsPerCpu() const;

    /**
     * Structured validation; throws ConfigError (common/errors.hpp)
     * naming the offending field.  Covers the machine parameters
     * (delegates to SystemParams::validate()), the instruction budget
     * versus warmup, and the workload's process-count and footprint
     * constraints.  Called by the Simulation constructor before any
     * simulation state is built.
     */
    void validate() const;
};

/** Scaled default configuration (see DESIGN.md scaling table). */
SimConfig makeScaledConfig(WorkloadKind kind, std::uint32_t num_nodes = 4);

/** The paper's Figure-1 parameters, unscaled. */
SimConfig makePaperScaleConfig(WorkloadKind kind,
                               std::uint32_t num_nodes = 4);

/** One-line summary of the key parameters (for bench headers). */
std::string describe(const SimConfig &cfg);

} // namespace dbsim::core

#endif // DBSIM_CORE_CONFIG_HPP
