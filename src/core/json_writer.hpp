/**
 * @file
 * Minimal streaming JSON writer for machine-readable bench reports.
 *
 * There is no external JSON dependency in the container, and the
 * reporting layer only ever needs to *emit* JSON, so this is a small
 * single-pass writer: objects, arrays, strings (fully escaped), and
 * numbers, with deterministic formatting -- identical inputs produce
 * byte-identical documents, which the sweep determinism contract
 * (DESIGN.md) relies on.
 */

#ifndef DBSIM_CORE_JSON_WRITER_HPP
#define DBSIM_CORE_JSON_WRITER_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dbsim::core {

/**
 * Escape @p s for inclusion inside a JSON string literal (quotes not
 * included): backslash, double quote, and control characters below
 * 0x20 (the common ones as two-character escapes, the rest as \\u00XX).
 * Non-ASCII bytes pass through untouched (the document is UTF-8).
 */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON writer with an explicit nesting stack.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject().key("name").value("fig2").key("rows").beginArray();
 *   ... w.endArray().endObject();
 *
 * Structural misuse (a key outside an object, a bare value where a key
 * is required, unbalanced end calls) throws std::logic_error -- bench
 * code paths are simple enough that this is a programming error, not a
 * runtime condition.
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level (0 = compact one-line). */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object, before a value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint32_t v) { return value(std::uint64_t{v}); }
    JsonWriter &value(std::int32_t v) { return value(std::int64_t{v}); }
    JsonWriter &valueNull();

    /**
     * Emit @p json verbatim in value position (comma/indent bookkeeping
     * still applies).  The caller vouches that @p json is one complete,
     * well-formed JSON value; the writer only rejects an empty string.
     * This is how the sweep reporter splices journaled result lines --
     * rendered by this same writer in an earlier process -- into a
     * resumed report without a JSON parser.
     */
    JsonWriter &rawValue(std::string_view json);

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** True once the root value is complete and the stack is empty. */
    bool done() const { return root_done_ && stack_.empty(); }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void beforeValue();   ///< comma / newline / indent bookkeeping
    void beforeNested();  ///< beforeValue() for container openers
    void newlineIndent();

    std::ostream &os_;
    int indent_;
    struct Level
    {
        Frame frame;
        std::size_t count = 0;   ///< members/elements emitted so far
        bool key_pending = false; ///< object: key emitted, value due
    };
    std::vector<Level> stack_;
    bool root_done_ = false;
};

} // namespace dbsim::core

#endif // DBSIM_CORE_JSON_WRITER_HPP
