#include "core/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dbsim::core {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (root_done_)
            throw std::logic_error("JsonWriter: multiple root values");
        return;
    }
    Level &top = stack_.back();
    if (top.frame == Frame::Object) {
        if (!top.key_pending)
            throw std::logic_error("JsonWriter: object value without key");
        top.key_pending = false;
    } else {
        if (top.count > 0)
            os_ << ',';
        newlineIndent();
        ++top.count;
    }
}

void
JsonWriter::beforeNested()
{
    beforeValue();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back().frame != Frame::Object)
        throw std::logic_error("JsonWriter: key outside an object");
    Level &top = stack_.back();
    if (top.key_pending)
        throw std::logic_error("JsonWriter: key after key");
    if (top.count > 0)
        os_ << ',';
    newlineIndent();
    ++top.count;
    top.key_pending = true;
    os_ << '"' << jsonEscape(k) << "\":";
    if (indent_ > 0)
        os_ << ' ';
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeNested();
    os_ << '{';
    stack_.push_back({Frame::Object});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().frame != Frame::Object ||
        stack_.back().key_pending) {
        throw std::logic_error("JsonWriter: mismatched endObject");
    }
    const bool had_members = stack_.back().count > 0;
    stack_.pop_back();
    if (had_members)
        newlineIndent();
    os_ << '}';
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeNested();
    os_ << '[';
    stack_.push_back({Frame::Array});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back().frame != Frame::Array)
        throw std::logic_error("JsonWriter: mismatched endArray");
    const bool had_elements = stack_.back().count > 0;
    stack_.pop_back();
    if (had_elements)
        newlineIndent();
    os_ << ']';
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"' << jsonEscape(v) << '"';
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf literals; null is the conventional stand-in.
        os_ << "null";
    } else {
        // %.17g round-trips every double and formats deterministically.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    }
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    beforeValue();
    os_ << "null";
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    if (json.empty())
        throw std::logic_error("JsonWriter: empty rawValue");
    beforeValue();
    os_ << json;
    if (stack_.empty())
        root_done_ = true;
    return *this;
}

} // namespace dbsim::core
