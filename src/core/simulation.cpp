#include "core/simulation.hpp"

#include <fstream>

#include "common/log.hpp"
#include "workload/hints.hpp"

namespace dbsim::core {

Simulation::Simulation(const SimConfig &cfg) : cfg_(cfg)
{
    // Reject bad configurations before any simulation state exists --
    // build() and run() may then assume a coherent parameter set.
    cfg_.validate();
}

Simulation::~Simulation() = default;

void
Simulation::build()
{
    system_ = std::make_unique<sim::System>(cfg_.system);

    const std::uint32_t nodes = cfg_.system.num_nodes;
    if (cfg_.workload == WorkloadKind::Oltp) {
        if (cfg_.oltp.num_procs % nodes != 0)
            DBSIM_FATAL("OLTP process count must divide across nodes");
        oltp_ = std::make_unique<workload::OltpWorkload>(cfg_.oltp);
        for (ProcId p = 0; p < cfg_.oltp.num_procs; ++p) {
            std::unique_ptr<trace::TraceSource> src =
                oltp_->makeProcess(p);
            if (cfg_.hint_prefetch || cfg_.hint_flush) {
                workload::HintOptions opts;
                opts.prefetch = cfg_.hint_prefetch;
                opts.flush = cfg_.hint_flush;
                opts.line_bytes = cfg_.system.node.l2.line_bytes;
                if (cfg_.hints_hot_locks_only) {
                    for (const Addr a : oltp_->hotLatches())
                        opts.hot_locks.insert(a);
                }
                src = std::make_unique<workload::HintInserter>(
                    std::move(src), std::move(opts));
            }
            system_->addProcess(std::move(src), p % nodes);
        }
    } else {
        if (cfg_.dss.num_procs % nodes != 0)
            DBSIM_FATAL("DSS process count must divide across nodes");
        dss_ = std::make_unique<workload::DssWorkload>(cfg_.dss);
        for (ProcId p = 0; p < cfg_.dss.num_procs; ++p)
            system_->addProcess(dss_->makeProcess(p), p % nodes);
    }
}

sim::RunResult
Simulation::run()
{
    if (!system_)
        build();
    return system_->run(cfg_.total_instructions,
                        cfg_.warmup_instructions);
}

void
Simulation::prepare()
{
    if (!system_)
        build();
}

bool
Simulation::restoreFromCheckpoint(const std::string &path)
{
    prepare();
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe)
            return false; // no checkpoint yet: start fresh, silently
    }
    try {
        system_->restoreCheckpoint(path);
        return true;
    } catch (const snap::SnapshotError &e) {
        DBSIM_WARN("ignoring unusable checkpoint ", path, ": ", e.what());
        return false;
    }
}

Characterization
Simulation::characterize() const
{
    Characterization c;
    if (!system_)
        return c;

    std::uint64_t fetches = 0, i_misses = 0;
    std::uint64_t d_acc = 0, d_miss = 0;
    std::uint64_t l2_acc = 0, l2_miss = 0;
    std::uint64_t itlb_acc = 0, itlb_miss = 0;
    std::uint64_t dtlb_acc = 0, dtlb_miss = 0;
    std::uint64_t br_lookups = 0, br_miss = 0;
    std::uint64_t instructions = 0;

    auto &sys = const_cast<sim::System &>(*system_);
    for (std::uint32_t i = 0; i < sys.numNodes(); ++i) {
        const auto &ns = sys.node(i).stats();
        fetches += ns.l1i_fetches;
        i_misses += ns.l1i_misses;
        d_acc += ns.l1d_accesses;
        d_miss += ns.l1d_misses;
        l2_acc += ns.l2_accesses;
        l2_miss += ns.l2_misses;
        itlb_acc += sys.node(i).itlbStats().accesses;
        itlb_miss += sys.node(i).itlbStats().misses;
        dtlb_acc += sys.node(i).dtlbStats().accesses;
        dtlb_miss += sys.node(i).dtlbStats().misses;
        const auto &bs = sys.core(i).branchStats();
        br_lookups += bs.lookups();
        br_miss += bs.mispredicts();
        instructions += sys.core(i).stats().instructions;
        c.spec_load_violations += sys.core(i).stats().spec_load_violations;
    }

    auto rate = [](std::uint64_t n, std::uint64_t d) {
        return d ? static_cast<double>(n) / static_cast<double>(d) : 0.0;
    };
    c.l1i_miss_per_fetch = rate(i_misses, fetches);
    c.l1i_mpki = instructions
                     ? 1000.0 * static_cast<double>(i_misses) /
                           static_cast<double>(instructions)
                     : 0.0;
    c.l1d_miss_rate = rate(d_miss, d_acc);
    c.l2_miss_rate = rate(l2_miss, l2_acc);
    c.branch_mispredict_rate = rate(br_miss, br_lookups);
    c.itlb_miss_rate = rate(itlb_miss, itlb_acc);
    c.dtlb_miss_rate = rate(dtlb_miss, dtlb_acc);
    c.dirty_misses = sys.fabric().stats().dirtyMisses();
    c.total_l2_misses = sys.fabric().stats().totalMisses();
    return c;
}

std::vector<Addr>
Simulation::hotLocks() const
{
    if (oltp_)
        return oltp_->hotLatches();
    return {};
}

} // namespace dbsim::core
