/**
 * @file
 * Entry-point guard for the bench and example executables.
 *
 * Every CLI wraps its body in guardedMain(), so a rejected configuration
 * (ConfigError from the validate() layer) prints one actionable line and
 * exits with status 2 instead of an unhandled-exception abort, and an
 * integrity failure (SimInvariantError) exits with status 3 after its
 * diagnostic dump.
 */

#ifndef DBSIM_CORE_CLI_GUARD_HPP
#define DBSIM_CORE_CLI_GUARD_HPP

#include <exception>
#include <iostream>

#include "common/errors.hpp"

namespace dbsim::core {

template <typename Fn>
int
guardedMain(Fn &&body)
{
    try {
        return body();
    } catch (const ConfigError &e) {
        std::cerr << "dbsim: " << e.what() << "\n";
        return 2;
    } catch (const SimInvariantError &e) {
        std::cerr << "dbsim: " << e.what() << "\n";
        return 3;
    } catch (const std::exception &e) {
        std::cerr << "dbsim: fatal: " << e.what() << "\n";
        return 1;
    }
}

} // namespace dbsim::core

#endif // DBSIM_CORE_CLI_GUARD_HPP
