#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace dbsim::core {


namespace {

double
cpi(const BreakdownRow &r, double component)
{
    return r.instructions
               ? component / static_cast<double>(r.instructions)
               : 0.0;
}

} // namespace

void
printHeader(std::ostream &os, const std::string &title)
{
    os << '\n' << title << '\n'
       << std::string(std::max<std::size_t>(title.size(), 8), '-') << '\n';
}

void
printExecutionBars(std::ostream &os, const std::vector<BreakdownRow> &rows)
{
    if (rows.empty())
        return;
    const double base = cpi(rows.front(), rows.front().breakdown.total());
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-34s %7s | %6s %6s %6s %6s %6s\n",
                  "config", "total", "cpu", "read", "write", "sync",
                  "instr");
    os << buf;
    for (const auto &r : rows) {
        const auto &b = r.breakdown;
        auto n = [&](double c) {
            return base > 0.0 ? 100.0 * cpi(r, c) / base : 0.0;
        };
        std::snprintf(buf, sizeof(buf),
                      "%-34s %7.1f | %6.1f %6.1f %6.1f %6.1f %6.1f\n",
                      r.label.c_str(), n(b.total()), n(b.cpu()), n(b.read()),
                      n(b[StallCat::Write]), n(b[StallCat::Sync]),
                      n(b.instr()));
        os << buf;
    }
}

void
printCompositionBars(std::ostream &os,
                     const std::vector<BreakdownRow> &rows)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-34s %7s | %6s %6s %6s %6s %6s\n",
                  "config", "total", "cpu", "read", "write", "sync",
                  "instr");
    os << buf;
    for (const auto &r : rows) {
        const auto &b = r.breakdown;
        const double t = b.total();
        auto n = [&](double c) { return t > 0.0 ? 100.0 * c / t : 0.0; };
        std::snprintf(buf, sizeof(buf),
                      "%-34s %7.1f | %6.1f %6.1f %6.1f %6.1f %6.1f\n",
                      r.label.c_str(), 100.0, n(b.cpu()), n(b.read()),
                      n(b[StallCat::Write]), n(b[StallCat::Sync]),
                      n(b.instr()));
        os << buf;
    }
}

void
printReadStallBars(std::ostream &os, const std::vector<BreakdownRow> &rows)
{
    if (rows.empty())
        return;
    const double base = cpi(rows.front(), rows.front().breakdown.total());
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-34s %7s | %6s %6s %6s %6s %6s %6s\n", "config",
                  "read", "L1+msc", "L2", "local", "remote", "dirty",
                  "dTLB");
    os << buf;
    for (const auto &r : rows) {
        const auto &b = r.breakdown;
        auto n = [&](double c) {
            return base > 0.0 ? 100.0 * cpi(r, c) / base : 0.0;
        };
        std::snprintf(buf, sizeof(buf),
                      "%-34s %7.1f | %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
                      r.label.c_str(), n(b.read()), n(b[StallCat::ReadL1]),
                      n(b[StallCat::ReadL2]), n(b[StallCat::ReadLocal]),
                      n(b[StallCat::ReadRemote]), n(b[StallCat::ReadDirty]),
                      n(b[StallCat::ReadDtlb]));
        os << buf;
    }
}

void
printOccupancy(std::ostream &os, const std::string &label,
               const stats::OccupancyTracker &occ, std::uint32_t max_n)
{
    os << label << ": fraction of non-idle time with >= n in use\n   n:";
    char buf[64];
    for (std::uint32_t n = 1; n <= max_n; ++n) {
        std::snprintf(buf, sizeof(buf), " %6u", n);
        os << buf;
    }
    os << "\n    ";
    for (std::uint32_t n = 1; n <= max_n; ++n) {
        std::snprintf(buf, sizeof(buf), " %6.3f", occ.fracAtLeast(n));
        os << buf;
    }
    os << '\n';
}

} // namespace dbsim::core
