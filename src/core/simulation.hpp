/**
 * @file
 * Simulation facade: builds the machine and the workload from a
 * SimConfig, runs it, and exposes aggregated results -- the single entry
 * point examples and benchmarks use.
 */

#ifndef DBSIM_CORE_SIMULATION_HPP
#define DBSIM_CORE_SIMULATION_HPP

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "sim/system.hpp"
#include "workload/dss_engine.hpp"
#include "workload/oltp_engine.hpp"

namespace dbsim::core {

/** Aggregated cache / predictor characterization of a run. */
struct Characterization
{
    double l1i_miss_per_fetch = 0.0; ///< L1I misses / fetch-line lookups
    double l1i_mpki = 0.0;           ///< L1I misses per 1k instructions
    double l1d_miss_rate = 0.0;      ///< per data reference
    double l2_miss_rate = 0.0;       ///< per L2 access
    double branch_mispredict_rate = 0.0;
    double itlb_miss_rate = 0.0;
    double dtlb_miss_rate = 0.0;
    std::uint64_t dirty_misses = 0;
    std::uint64_t total_l2_misses = 0; ///< fabric transactions
    std::uint64_t spec_load_violations = 0;
};

/**
 * One experiment run.
 */
class Simulation
{
  public:
    explicit Simulation(const SimConfig &cfg);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Build the machine and the workload, run to the budget. */
    sim::RunResult run();

    /**
     * Build the machine and workload without running (idempotent).
     * Needed before restoreFromCheckpoint() or system() access.
     */
    void prepare();

    /**
     * Restore the machine from a checkpoint file.  Returns true on
     * success; a missing file returns false (caller starts fresh), and
     * an unusable file (corrupt, version or config mismatch) logs a
     * warning and also returns false -- a stale checkpoint must never
     * turn a runnable item into a failure.  Builds the machine first if
     * needed.
     */
    bool restoreFromCheckpoint(const std::string &path);

    /** The simulated machine (valid after run() or prepare()). */
    sim::System &system() { return *system_; }

    /** Aggregate miss-rate / predictor characterization. */
    Characterization characterize() const;

    /** Per-node hot-lock addresses (OLTP only; for hint studies). */
    std::vector<Addr> hotLocks() const;

    const SimConfig &config() const { return cfg_; }

  private:
    void build();

    SimConfig cfg_;
    std::unique_ptr<workload::OltpWorkload> oltp_;
    std::unique_ptr<workload::DssWorkload> dss_;
    std::unique_ptr<sim::System> system_;
};

} // namespace dbsim::core

#endif // DBSIM_CORE_SIMULATION_HPP
