#include "core/sweep.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <thread>

#include "common/log.hpp"
#include "core/json_writer.hpp"
#include "sim/breakdown.hpp"

namespace dbsim::core {

namespace {

/** splitmix64 step: full-avalanche 64-bit mix for derived seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

unsigned
SweepRunner::resolveJobs(unsigned cli_jobs)
{
    if (cli_jobs > 0)
        return cli_jobs;
    if (const char *env = std::getenv("DBSIM_JOBS"); env && *env) {
        errno = 0;
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && errno != ERANGE && v > 0 &&
            std::strchr(env, '-') == nullptr) {
            return static_cast<unsigned>(v);
        }
        DBSIM_WARN("DBSIM_JOBS=\"", env,
                   "\" is not a positive integer; ignoring it");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

SweepResult
SweepRunner::runOne(const SweepItem &item, std::size_t index) const
{
    SweepResult out;
    out.label = item.label;
    out.cfg = item.cfg;
    if (base_seed_ != 0) {
        const std::uint64_t seed = mix64(base_seed_ ^ index);
        out.cfg.oltp.seed = seed;
        out.cfg.dss.seed = seed;
    }
    out.config = describe(out.cfg);
    if (out.label.empty())
        out.label = out.config;

    const auto t0 = std::chrono::steady_clock::now();
    Simulation simulation(out.cfg);
    out.run = simulation.run();
    const auto t1 = std::chrono::steady_clock::now();

    out.ch = simulation.characterize();
    auto &n0 = simulation.system().node(0);
    out.node0 = n0.stats();
    out.l1d_occ = n0.l1dMshrStats().occupancy;
    out.l1d_read_occ = n0.l1dMshrStats().read_occupancy;
    out.l2_occ = n0.l2MshrStats().occupancy;
    out.l2_read_occ = n0.l2MshrStats().read_occupancy;
    out.fabric = simulation.system().fabric().stats();

    const auto &mig = simulation.system().fabric().migratory();
    const auto &ms = mig.stats();
    out.migratory.shared_writes = ms.shared_writes;
    out.migratory.migratory_writes = ms.migratory_writes;
    out.migratory.dirty_reads = ms.dirty_reads;
    out.migratory.migratory_dirty_reads = ms.migratory_dirty_reads;
    out.migratory.migratory_lines = mig.migratoryLines();
    out.migratory.migratory_pcs = mig.migratoryPcs();
    out.migratory.write_fraction = ms.writeFraction();
    out.migratory.dirty_read_fraction = ms.dirtyReadFraction();
    out.migratory.line_concentration_70 = mig.lineConcentration(0.70);
    out.migratory.pc_concentration_75 = mig.pcConcentration(0.75);

    out.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.sim_ips = out.wall_seconds > 0.0
                      ? static_cast<double>(out.run.instructions) /
                            out.wall_seconds
                      : 0.0;
    return out;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepItem> &items) const
{
    std::vector<SweepResult> results(items.size());
    std::vector<std::exception_ptr> errors(items.size());

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, items.size()));

    auto work = [&](std::size_t i) {
        try {
            results[i] = runOne(items[i], i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            work(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < items.size(); i = next.fetch_add(1)) {
                    work(i);
                }
            });
        }
        for (auto &t : pool)
            t.join();
    }

    // Deterministic error propagation: the lowest-index failure wins,
    // whatever order the workers happened to hit it in.
    for (const auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

void
SweepReport::add(const std::string &section,
                 const std::vector<SweepResult> &results)
{
    for (const auto &r : results)
        entries.push_back({section, r});
}

namespace {

void
writeOccupancySeries(JsonWriter &w, const stats::OccupancyTracker &occ,
                     std::uint32_t max_n)
{
    w.beginArray();
    for (std::uint32_t n = 1; n <= max_n; ++n)
        w.value(occ.fracAtLeast(n));
    w.endArray();
}

void
writeResult(JsonWriter &w, const SweepReport::Entry &e)
{
    const SweepResult &r = e.result;
    w.beginObject();
    w.kv("section", e.section);
    w.kv("label", r.label);
    w.kv("config", r.config);
    w.kv("workload", workloadName(r.cfg.workload));
    w.kv("nodes", r.cfg.system.num_nodes);
    w.kv("cycles", static_cast<std::uint64_t>(r.run.cycles));
    w.kv("instructions", r.run.instructions);
    w.kv("ipc", r.run.ipc);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("sim_instructions_per_host_second", r.sim_ips);

    w.key("breakdown").beginObject();
    for (std::size_t i = 0; i < sim::kNumStallCats; ++i) {
        const auto cat = static_cast<sim::StallCat>(i);
        w.kv(sim::stallCatName(cat), r.run.breakdown[cat]);
    }
    w.endObject();

    w.key("miss_rates").beginObject();
    w.kv("l1i_per_fetch", r.ch.l1i_miss_per_fetch);
    w.kv("l1i_mpki", r.ch.l1i_mpki);
    w.kv("l1d", r.ch.l1d_miss_rate);
    w.kv("l2", r.ch.l2_miss_rate);
    w.kv("branch_mispredict", r.ch.branch_mispredict_rate);
    w.kv("itlb", r.ch.itlb_miss_rate);
    w.kv("dtlb", r.ch.dtlb_miss_rate);
    w.endObject();

    w.key("coherence").beginObject();
    w.kv("l2_misses_total", r.ch.total_l2_misses);
    w.kv("dirty_misses", r.ch.dirty_misses);
    w.kv("invalidations", r.fabric.invalidations_sent);
    w.kv("writebacks", r.fabric.writebacks);
    w.kv("migratory_write_fraction", r.migratory.write_fraction);
    w.kv("migratory_dirty_read_fraction",
         r.migratory.dirty_read_fraction);
    w.endObject();

    w.key("mshr_occupancy").beginObject();
    w.key("l1d_all");
    writeOccupancySeries(w, r.l1d_occ, 8);
    w.key("l1d_read");
    writeOccupancySeries(w, r.l1d_read_occ, 8);
    w.key("l2_all");
    writeOccupancySeries(w, r.l2_occ, 8);
    w.key("l2_read");
    writeOccupancySeries(w, r.l2_read_occ, 8);
    w.endObject();

    w.endObject();
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "dbsim-bench-v1");
    w.kv("bench", report.bench);
    w.kv("jobs", static_cast<std::uint64_t>(report.jobs));
    w.key("results").beginArray();
    for (const auto &e : report.entries)
        writeResult(w, e);
    w.endArray();
    w.endObject();
    os << '\n';
}

bool
writeSweepJsonFile(const std::string &path, const SweepReport &report)
{
    std::ofstream os(path);
    if (!os) {
        DBSIM_WARN("cannot open ", path, " for writing; no JSON report");
        return false;
    }
    writeSweepJson(os, report);
    os.flush();
    if (!os) {
        DBSIM_WARN("short write to ", path, "; JSON report may be invalid");
        return false;
    }
    return true;
}

} // namespace dbsim::core
