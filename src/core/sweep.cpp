#include "core/sweep.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/errors.hpp"
#include "common/log.hpp"
#include "core/json_writer.hpp"
#include "common/breakdown.hpp"
#include "sim/diagnostics.hpp"

namespace dbsim::core {

namespace {

/** splitmix64 step: full-avalanche 64-bit mix for derived seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Ceiling on the diagnostic dump text carried by a SweepFailure. */
constexpr std::size_t kMaxDumpExcerpt = 4000;

/** Periodic checkpoint cadence used when a checkpoint directory is
 *  configured without an explicit --checkpoint-interval. */
constexpr Cycles kDefaultCheckpointInterval = 500'000;

bool
fileExists(const std::string &path)
{
    return std::ifstream(path, std::ios::binary).good();
}

std::string
truncated(std::string s)
{
    if (s.size() > kMaxDumpExcerpt) {
        s.resize(kMaxDumpExcerpt);
        s += "\n... [truncated]";
    }
    return s;
}

/** Split an error message into (first line, remainder). */
std::pair<std::string, std::string>
splitFirstLine(const std::string &msg)
{
    const std::size_t nl = msg.find('\n');
    if (nl == std::string::npos)
        return {msg, {}};
    return {msg.substr(0, nl), msg.substr(nl + 1)};
}

} // namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Config:
        return "config";
      case FailureKind::Invariant:
        return "invariant";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::Exception:
        return "exception";
      case FailureKind::Interrupted:
        return "interrupted";
    }
    return "unknown";
}

std::string
FailurePolicy::describe() const
{
    switch (mode) {
      case Mode::Abort:
        return "abort";
      case Mode::Collect:
        return "collect";
      case Mode::Retry:
        return "retry:" + std::to_string(max_attempts);
    }
    return "unknown";
}

std::size_t
SweepOutcome::failures() const
{
    std::size_t n = 0;
    for (const auto &o : items)
        n += o.ok() ? 0 : 1;
    return n;
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

unsigned
SweepRunner::resolveJobs(unsigned cli_jobs)
{
    unsigned resolved = 0;
    const char *source = "--jobs";
    if (cli_jobs > 0) {
        resolved = cli_jobs;
    } else if (const char *env = std::getenv("DBSIM_JOBS"); env && *env) {
        errno = 0;
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && errno != ERANGE && v > 0 &&
            std::strchr(env, '-') == nullptr) {
            // Clamp before the unsigned narrowing: a huge DBSIM_JOBS
            // must not wrap into a small (or zero) thread count.
            resolved = v > kMaxJobs ? kMaxJobs + 1
                                    : static_cast<unsigned>(v);
            source = "DBSIM_JOBS";
        } else {
            DBSIM_WARN("DBSIM_JOBS=\"", env,
                       "\" is not a positive integer; ignoring it");
        }
    }
    if (resolved == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? std::min(hw, kMaxJobs) : 1;
    }
    if (resolved > kMaxJobs) {
        DBSIM_WARN(source, " asks for ", resolved,
                   " concurrent simulations; clamping to ", kMaxJobs,
                   " (each job is a full Simulation on its own thread)");
        return kMaxJobs;
    }
    return resolved;
}

double
SweepRunner::resolveItemTimeout(double cli_seconds)
{
    if (cli_seconds > 0.0)
        return cli_seconds;
    const char *env = std::getenv("DBSIM_ITEM_TIMEOUT");
    if (!env || !*env)
        return 0.0;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') != nullptr) {
        DBSIM_WARN("DBSIM_ITEM_TIMEOUT=\"", env,
                   "\" is not a valid timeout (expected a nonnegative "
                   "number of seconds); ignoring it");
        return 0.0;
    }
    return static_cast<double>(v);
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

void
SweepRunner::setCheckpointDir(std::string dir)
{
    checkpoint_dir_ = std::move(dir);
    if (!checkpoint_dir_.empty()) {
        // Create the directory eagerly so the first mid-run periodic
        // checkpoint never turns a healthy item into a failure.
        std::error_code ec;
        std::filesystem::create_directories(checkpoint_dir_, ec);
        if (ec) {
            DBSIM_WARN("cannot create checkpoint dir ", checkpoint_dir_,
                       ": ", ec.message());
        }
    }
}

std::string
SweepRunner::checkpointPathFor(std::size_t index) const
{
    if (checkpoint_dir_.empty())
        return {};
    return checkpoint_dir_ + "/item-" + std::to_string(index) + ".ckpt";
}

SweepResult
SweepRunner::runOne(const SweepItem &item, std::size_t index,
                    unsigned attempt) const
{
    // The deadline covers everything below, including injected delays,
    // so a Delay fault plus a short timeout exercises the real
    // mid-simulation abandonment path.
    sim::HostDeadlineScope deadline(item_timeout_sec_);

    if (fault_plan_) {
        if (const FaultSpec *f = fault_plan_->match(index, attempt)) {
            switch (f->kind) {
              case FaultSpec::Kind::Throw:
                throw std::runtime_error(f->message);
              case FaultSpec::Kind::Panic:
                DBSIM_PANIC("injected fault: ", f->message);
                break;
              case FaultSpec::Kind::Delay:
                // dbsim-analyze: allow(determinism-wallclock) -- a
                // test-only injected host delay (exercises timeouts).
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(f->delay_seconds));
                break;
            }
        }
    }

    SweepResult out;
    out.label = item.label;
    out.cfg = item.cfg;
    if (base_seed_ != 0) {
        const std::uint64_t seed = mix64(base_seed_ ^ index);
        out.cfg.oltp.seed = seed;
        out.cfg.dss.seed = seed;
    }
    out.config = describe(out.cfg);
    if (out.label.empty())
        out.label = out.config;

    if (state_hash_interval_)
        out.cfg.system.state_hash_interval = state_hash_interval_;
    const std::string ckpt_path = checkpointPathFor(index);
    if (!ckpt_path.empty()) {
        out.cfg.system.checkpoint_path = ckpt_path;
        out.cfg.system.checkpoint_interval =
            checkpoint_interval_ ? checkpoint_interval_
                                 : kDefaultCheckpointInterval;
    }

    // Annotated host-timing code: wall_seconds / sim_ips report *host*
    // throughput and are excluded from determinism comparisons
    // (tools/compare_reports.py ignores exactly these fields).
    // dbsim-analyze: allow(determinism-wallclock)
    const auto t0 = std::chrono::steady_clock::now();
    Simulation simulation(out.cfg);
    // Continue from the item's checkpoint when resuming (--restore) or
    // retrying after a mid-flight failure; a fresh deadline plus the
    // already-simulated prefix is what makes timeout retries able to
    // finish instead of deterministically timing out again.
    if ((restore_ || attempt > 1) && !ckpt_path.empty() &&
        fileExists(ckpt_path)) {
        if (simulation.restoreFromCheckpoint(ckpt_path)) {
            DBSIM_WARN("sweep item ", index, " (\"", out.label,
                       "\") restored from checkpoint ", ckpt_path,
                       " at cycle ", simulation.system().now());
        }
    }
    out.run = simulation.run();
    // dbsim-analyze: allow(determinism-wallclock)
    const auto t1 = std::chrono::steady_clock::now();

    out.ch = simulation.characterize();
    auto &n0 = simulation.system().node(0);
    out.node0 = n0.stats();
    out.l1d_occ = n0.l1dMshrStats().occupancy;
    out.l1d_read_occ = n0.l1dMshrStats().read_occupancy;
    out.l2_occ = n0.l2MshrStats().occupancy;
    out.l2_read_occ = n0.l2MshrStats().read_occupancy;
    out.fabric = simulation.system().fabric().stats();
    for (std::uint32_t i = 0; i < simulation.system().numNodes(); ++i)
        out.context_switches +=
            simulation.system().core(i).stats().context_switches;

    const auto &mig = simulation.system().fabric().migratory();
    const auto &ms = mig.stats();
    out.migratory.shared_writes = ms.shared_writes;
    out.migratory.migratory_writes = ms.migratory_writes;
    out.migratory.dirty_reads = ms.dirty_reads;
    out.migratory.migratory_dirty_reads = ms.migratory_dirty_reads;
    out.migratory.migratory_lines = mig.migratoryLines();
    out.migratory.migratory_pcs = mig.migratoryPcs();
    out.migratory.write_fraction = ms.writeFraction();
    out.migratory.dirty_read_fraction = ms.dirtyReadFraction();
    out.migratory.line_concentration_70 = mig.lineConcentration(0.70);
    out.migratory.pc_concentration_75 = mig.pcConcentration(0.75);

    out.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.sim_ips = out.wall_seconds > 0.0
                      ? static_cast<double>(out.run.instructions) /
                            out.wall_seconds
                      : 0.0;
    return out;
}

SweepItemOutcome
SweepRunner::runIsolated(const SweepItem &item, std::size_t index) const
{
    const unsigned max_attempts =
        policy_.mode == FailurePolicy::Mode::Retry
            ? std::max(1u, policy_.max_attempts)
            : 1u;

    SweepItemOutcome out;
    out.index = index;

    for (unsigned attempt = 1;; ++attempt) {
        FailureKind kind = FailureKind::Exception;
        std::string what;
        std::string excerpt;
        try {
            out.result = runOne(item, index, attempt);
            out.status = SweepItemOutcome::Status::Ok;
            out.attempts = attempt;
            return out;
        } catch (const ConfigError &e) {
            kind = FailureKind::Config;
            what = e.what();
            out.error = std::current_exception();
        } catch (const SimTimeoutError &e) {
            kind = FailureKind::Timeout;
            what = e.what();
            excerpt = truncated(e.dump());
            out.error = std::current_exception();
        } catch (const SimInterruptedError &e) {
            // The operator asked the process to stop; retrying would
            // fight the shutdown.  The checkpoint (written before the
            // unwind) is recorded below for --resume --restore.
            kind = FailureKind::Interrupted;
            what = e.what();
            excerpt = truncated(e.dump());
            out.error = std::current_exception();
        } catch (const SimInvariantError &e) {
            // The panic path appends the crash-dump registry's text
            // after the first line of the message; split it back apart.
            kind = FailureKind::Invariant;
            auto [head, rest] = splitFirstLine(e.what());
            what = std::move(head);
            excerpt = truncated(std::move(rest));
            out.error = std::current_exception();
        } catch (const std::exception &e) {
            kind = FailureKind::Exception;
            what = e.what();
            out.error = std::current_exception();
        } catch (...) {
            kind = FailureKind::Exception;
            what = "unknown exception";
            out.error = std::current_exception();
        }

        // Configuration rejections are deterministic in the item, so
        // retrying them can only reproduce the same refusal; an
        // interrupt is the operator telling us to stop.  A timeout is
        // only worth retrying when the item has a checkpoint to restore
        // from -- an identical from-scratch re-run of a deterministic
        // simulation would hit the same wall and burn max_attempts
        // deadlines' worth of host time lying about its chances, so
        // without checkpoints the timeout is recorded honestly with the
        // attempts it actually consumed.
        bool retryable = kind != FailureKind::Config &&
                         kind != FailureKind::Interrupted;
        if (kind == FailureKind::Timeout && checkpoint_dir_.empty()) {
            retryable = false;
            if (max_attempts > 1 && attempt < max_attempts) {
                DBSIM_WARN("sweep item ", index, " (\"", item.label,
                           "\") timed out and no --checkpoint-dir is "
                           "configured; not retrying (a from-scratch "
                           "re-run would time out identically)");
            }
        }
        if (retryable && attempt < max_attempts) {
            DBSIM_WARN("sweep item ", index, " (\"", item.label,
                       "\") failed attempt ", attempt, "/", max_attempts,
                       " [", failureKindName(kind), "]: ", what,
                       "; retrying with identical seeds");
            continue;
        }

        out.status = SweepItemOutcome::Status::Failed;
        out.attempts = attempt;
        out.failure.label =
            item.label.empty() ? describe(item.cfg) : item.label;
        out.failure.index = index;
        out.failure.kind = kind;
        out.failure.what = std::move(what);
        out.failure.crash_dump_excerpt = std::move(excerpt);
        out.failure.attempts = attempt;
        if (const std::string p = checkpointPathFor(index);
            !p.empty() && fileExists(p)) {
            out.failure.checkpoint_path = p;
        }
        return out;
    }
}

SweepOutcome
SweepRunner::runChecked(const std::vector<SweepItem> &items) const
{
    std::vector<std::size_t> identity(items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        identity[i] = i;
    return runChecked(items, identity);
}

SweepOutcome
SweepRunner::runChecked(
    const std::vector<SweepItem> &items,
    const std::vector<std::size_t> &original_indices) const
{
    DBSIM_ASSERT(original_indices.size() == items.size(),
                 "runChecked: ", items.size(), " items but ",
                 original_indices.size(), " original indices");

    // Under an isolating policy a DBSIM_PANIC anywhere in an item must
    // surface as a catchable SimInvariantError, not a process abort.
    // The guard is process-global; workers inherit it for the duration
    // of the sweep.  Abort mode keeps today's semantics (a panic takes
    // the process down unless a test installed its own guard).
    std::optional<PanicThrowGuard> guard;
    if (policy_.isolating())
        guard.emplace();

    SweepOutcome out;
    out.items.resize(items.size());

    std::mutex cb_mu;
    auto work = [&](std::size_t i) {
        out.items[i] = runIsolated(items[i], original_indices[i]);
        if (on_complete_) {
            std::lock_guard<std::mutex> lock(cb_mu);
            on_complete_(out.items[i]);
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, items.size()));

    if (workers <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            work(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < items.size(); i = next.fetch_add(1)) {
                    work(i);
                }
            });
        }
        for (auto &t : pool)
            t.join();
    }
    return out;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepItem> &items) const
{
    // Legacy entry point: always abort semantics, whatever policy the
    // runner carries -- callers that want isolation use runChecked().
    SweepRunner aborting(*this);
    aborting.policy_ = FailurePolicy::abort();
    const SweepOutcome out = aborting.runChecked(items);

    // Deterministic error propagation: the lowest-index failure wins,
    // whatever order the workers happened to hit it in.
    for (const auto &o : out.items) {
        if (!o.ok() && o.error)
            std::rethrow_exception(o.error);
    }

    std::vector<SweepResult> results;
    results.reserve(out.items.size());
    for (auto &o : out.items)
        results.push_back(std::move(o.result));
    return results;
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

void
SweepReport::add(const std::string &section,
                 const std::vector<SweepResult> &results)
{
    for (const auto &r : results) {
        Entry e;
        e.section = section;
        e.outcome.status = SweepItemOutcome::Status::Ok;
        e.outcome.index = entries.size();
        e.outcome.attempts = 1;
        e.outcome.result = r;
        entries.push_back(std::move(e));
    }
}

void
SweepReport::add(const std::string &section, const SweepOutcome &outcome)
{
    for (const auto &o : outcome.items) {
        Entry e;
        e.section = section;
        e.outcome = o;
        entries.push_back(std::move(e));
    }
}

void
SweepReport::addReplayed(const std::string &section, std::string raw_line)
{
    Entry e;
    e.section = section;
    e.replayed = true;
    e.raw = std::move(raw_line);
    entries.push_back(std::move(e));
}

std::size_t
SweepReport::failures() const
{
    std::size_t n = 0;
    for (const auto &e : entries)
        n += (!e.replayed && !e.outcome.ok()) ? 1 : 0;
    return n;
}

namespace {

void
writeOccupancySeries(JsonWriter &w, const stats::OccupancyTracker &occ,
                     std::uint32_t max_n)
{
    w.beginArray();
    for (std::uint32_t n = 1; n <= max_n; ++n)
        w.value(occ.fracAtLeast(n));
    w.endArray();
}

void
writeResultBody(JsonWriter &w, const SweepResult &r)
{
    w.kv("config", r.config);
    w.kv("workload", workloadName(r.cfg.workload));
    w.kv("nodes", r.cfg.system.num_nodes);
    w.kv("cycles", static_cast<std::uint64_t>(r.run.cycles));
    w.kv("instructions", r.run.instructions);
    w.kv("ipc", r.run.ipc);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("sim_instructions_per_host_second", r.sim_ips);
    w.kv("context_switches", r.context_switches);

    w.key("breakdown").beginObject();
    for (std::size_t i = 0; i < kNumStallCats; ++i) {
        const auto cat = static_cast<StallCat>(i);
        w.kv(stallCatName(cat), r.run.breakdown[cat]);
    }
    w.endObject();

    w.key("miss_rates").beginObject();
    w.kv("l1i_per_fetch", r.ch.l1i_miss_per_fetch);
    w.kv("l1i_mpki", r.ch.l1i_mpki);
    w.kv("l1d", r.ch.l1d_miss_rate);
    w.kv("l2", r.ch.l2_miss_rate);
    w.kv("branch_mispredict", r.ch.branch_mispredict_rate);
    w.kv("itlb", r.ch.itlb_miss_rate);
    w.kv("dtlb", r.ch.dtlb_miss_rate);
    w.endObject();

    w.key("coherence").beginObject();
    w.kv("l2_misses_total", r.ch.total_l2_misses);
    w.kv("dirty_misses", r.ch.dirty_misses);
    w.kv("invalidations", r.fabric.invalidations_sent);
    w.kv("writebacks", r.fabric.writebacks);
    w.kv("migratory_handoffs", r.fabric.migratory_handoffs);
    w.kv("migratory_write_fraction", r.migratory.write_fraction);
    w.kv("migratory_dirty_read_fraction",
         r.migratory.dirty_read_fraction);
    w.endObject();

    w.key("memory_system").beginObject();
    w.kv("l2_delayed_hits", r.node0.l2_delayed_hits);
    w.kv("prefetches_dropped", r.node0.prefetches_dropped);
    w.endObject();

    w.key("mshr_occupancy").beginObject();
    w.key("l1d_all");
    writeOccupancySeries(w, r.l1d_occ, 8);
    w.key("l1d_read");
    writeOccupancySeries(w, r.l1d_read_occ, 8);
    w.key("l2_all");
    writeOccupancySeries(w, r.l2_occ, 8);
    w.key("l2_read");
    writeOccupancySeries(w, r.l2_read_occ, 8);
    w.endObject();

    // Epoch state-hash series: [cycle, hash] pairs.  Hashes are 64-bit
    // and JSON numbers are not, so they render as hex strings.  Always
    // present (empty when state hashing is disabled), so the report
    // schema is stable and compare_reports.py sees the field on both
    // sides.
    w.key("epoch_hashes").beginArray();
    for (const sim::EpochHash &eh : r.run.epoch_hashes) {
        std::ostringstream hex;
        hex << "0x" << std::hex << eh.hash;
        w.beginArray();
        w.value(static_cast<std::uint64_t>(eh.epoch));
        w.value(hex.str());
        w.endArray();
    }
    w.endArray();
}

} // namespace

std::string
renderSweepEntryJson(const std::string &section,
                     const SweepItemOutcome &outcome)
{
    std::ostringstream os;
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.kv("section", section);
    w.kv("label", outcome.ok() ? outcome.result.label
                               : outcome.failure.label);
    w.kv("index", static_cast<std::uint64_t>(outcome.index));
    w.kv("status", outcome.ok() ? "ok" : "failed");
    w.kv("attempts", static_cast<std::uint64_t>(outcome.attempts));
    if (outcome.ok()) {
        writeResultBody(w, outcome.result);
    } else {
        w.key("error").beginObject();
        w.kv("kind", failureKindName(outcome.failure.kind));
        w.kv("what", outcome.failure.what);
        w.kv("crash_dump_excerpt", outcome.failure.crash_dump_excerpt);
        w.kv("checkpoint", outcome.failure.checkpoint_path);
        w.endObject();
    }
    w.endObject();
    return os.str();
}

void
writeSweepJson(std::ostream &os, const SweepReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "dbsim-bench-v2");
    w.kv("bench", report.bench);
    w.kv("jobs", static_cast<std::uint64_t>(report.jobs));
    w.kv("failure_policy", report.failure_policy);
    w.kv("item_timeout_sec", report.item_timeout_sec);
    w.kv("items", static_cast<std::uint64_t>(report.entries.size()));
    w.kv("failures", static_cast<std::uint64_t>(report.failures()));
    w.key("results").beginArray();
    for (const auto &e : report.entries) {
        w.rawValue(e.replayed
                       ? e.raw
                       : renderSweepEntryJson(e.section, e.outcome));
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

bool
writeSweepJsonFile(const std::string &path, const SweepReport &report)
{
    std::ofstream os(path);
    if (!os) {
        DBSIM_WARN("cannot open ", path, " for writing; no JSON report");
        return false;
    }
    writeSweepJson(os, report);
    os.flush();
    if (!os) {
        DBSIM_WARN("short write to ", path, "; JSON report may be invalid");
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------------

namespace {

/**
 * Extract the string value of top-level @p key from a compact JSON
 * object line produced by renderSweepEntryJson().  Escape-aware reverse
 * of jsonEscape for the common sequences; returns false when the key is
 * absent or the value is malformed (e.g. a torn line).
 */
bool
extractJsonString(const std::string &line, const std::string &key,
                  std::string &out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t start = line.find(needle);
    if (start == std::string::npos)
        return false;
    out.clear();
    std::size_t i = start + needle.size();
    while (i < line.size()) {
        const char c = line[i];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            ++i;
            continue;
        }
        if (i + 1 >= line.size())
            return false;
        const char e = line[i + 1];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (i + 5 >= line.size())
                return false;
            unsigned v = 0;
            for (int k = 2; k <= 5; ++k) {
                const char h = line[i + k];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            // jsonEscape only emits \u00XX for control bytes.
            out += static_cast<char>(v & 0xff);
            i += 4;
            break;
          }
          default:
            return false;
        }
        i += 2;
    }
    return false; // unterminated string: torn line
}

/** Structural balance outside strings: cheap complete-object check. */
bool
balancedObjectLine(const std::string &line)
{
    if (line.empty() || line.front() != '{' || line.back() != '}')
        return false;
    int depth = 0;
    bool in_string = false, escaped = false;
    for (const char c : line) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

} // namespace

bool
SweepJournal::open(const std::string &path, bool append)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (os_.is_open())
        os_.close();
    // A killed writer can leave a torn final line with no newline;
    // appending straight after it would corrupt the first new entry, so
    // terminate the torn line first.
    bool needs_newline = false;
    if (append) {
        std::ifstream existing(path, std::ios::binary | std::ios::ate);
        if (existing && existing.tellg() > 0) {
            existing.seekg(-1, std::ios::end);
            needs_newline = existing.get() != '\n';
        }
    }
    os_.open(path, append ? std::ios::app : std::ios::trunc);
    if (!os_) {
        DBSIM_WARN("cannot open sweep journal ", path,
                   " for writing; the sweep will not be resumable");
        path_.clear();
        return false;
    }
    if (needs_newline)
        os_ << '\n';
    path_ = path;
    return true;
}

void
SweepJournal::append(const std::string &section,
                     const SweepItemOutcome &outcome)
{
    appendRaw(renderSweepEntryJson(section, outcome));
}

void
SweepJournal::appendRaw(const std::string &raw_line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!os_.is_open())
        return;
    os_ << raw_line << '\n';
    // One flush per finished item: a killed process keeps every line
    // already written, which is the whole point of the journal.
    os_.flush();
    if (!os_) {
        DBSIM_WARN("short write to sweep journal ", path_,
                   "; resume data may be incomplete");
    }
}

void
SweepJournal::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (os_.is_open())
        os_.close();
}

std::vector<SweepJournalEntry>
SweepJournal::load(const std::string &path)
{
    std::vector<SweepJournalEntry> entries;
    std::ifstream is(path);
    if (!is) {
        DBSIM_WARN("cannot read sweep journal ", path,
                   "; nothing to resume from");
        return entries;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        SweepJournalEntry e;
        e.raw = line;
        if (!balancedObjectLine(line) ||
            !extractJsonString(line, "section", e.section) ||
            !extractJsonString(line, "label", e.label) ||
            !extractJsonString(line, "status", e.status)) {
            // Most likely a torn final line from a mid-write kill; the
            // item it described simply re-runs.
            DBSIM_WARN("sweep journal ", path, " line ", lineno,
                       " is incomplete or malformed; skipping it");
            continue;
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

ResumePlan
planResume(const std::string &section,
           const std::vector<SweepItem> &items,
           const std::vector<SweepJournalEntry> &entries)
{
    ResumePlan plan;
    plan.replayed.resize(items.size());
    std::vector<bool> consumed(entries.size(), false);
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string label =
            items[i].label.empty() ? describe(items[i].cfg)
                                   : items[i].label;
        bool found = false;
        for (std::size_t j = 0; j < entries.size(); ++j) {
            if (consumed[j] || !entries[j].ok() ||
                entries[j].section != section ||
                entries[j].label != label) {
                continue;
            }
            consumed[j] = true;
            plan.replayed[i] = entries[j].raw;
            found = true;
            break;
        }
        if (!found)
            plan.to_run.push_back(i);
    }
    return plan;
}

} // namespace dbsim::core
