/**
 * @file
 * Set-associative cache tag array with MESI-compatible line states.
 *
 * The tag array tracks state only (no data payloads are simulated).  It is
 * used for the L1 instruction cache, the dual-ported L1 data cache, and
 * the unified L2 cache of each node.  Timing and miss handling live in the
 * hierarchy / MSHR layers; this class is purely the state container, which
 * keeps it independently testable.
 */

#ifndef DBSIM_MEMORY_CACHE_HPP
#define DBSIM_MEMORY_CACHE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::mem {

/** Coherence state of a cached line (MESI). */
enum class CoherState : std::uint8_t { Invalid, Shared, Exclusive, Modified };

const char *coherStateName(CoherState s);

/** Result of inserting a line: describes the victim, if any. */
struct Eviction
{
    Addr block;        ///< block address of the evicted line
    CoherState state;  ///< state the victim held (Modified => writeback)
};

/**
 * A set-associative, LRU, write-back tag array.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes   total capacity (power of two)
     * @param assoc        associativity
     * @param line_bytes   line size (power of two)
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t assoc,
               std::uint32_t line_bytes);

    /** Block-align an address to this cache's line size. */
    Addr blockOf(Addr addr) const { return blockAlign(addr, line_bytes_); }

    /** State of @p addr's line, Invalid if not present. */
    CoherState state(Addr addr) const;

    /** True iff line present in a valid state. */
    bool contains(Addr addr) const { return state(addr) != CoherState::Invalid; }

    /**
     * Look up @p addr; on hit, update LRU and return state.
     * @return std::nullopt on miss.
     */
    std::optional<CoherState> access(Addr addr);

    /**
     * Insert @p addr in @p st, evicting the LRU victim if the set is full.
     * @return the eviction performed, if any.
     */
    std::optional<Eviction> insert(Addr addr, CoherState st);

    /** Change the state of a present line; no-op if absent. */
    void setState(Addr addr, CoherState st);

    /** Invalidate @p addr if present. @return prior state. */
    CoherState invalidate(Addr addr);

    std::uint32_t lineBytes() const { return line_bytes_; }
    std::uint64_t sizeBytes() const { return size_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t numSets() const { return sets_; }

    /** Number of valid lines (for tests / occupancy checks). */
    std::uint64_t validLines() const;

    void
    saveState(snap::Writer &w) const
    {
        w.u64(ways_.size());
        for (const Way &way : ways_) {
            w.u64(way.tag);
            w.u8(static_cast<std::uint8_t>(way.state));
            w.u64(way.lru);
        }
        w.u64(stamp_);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(17);
        if (n != ways_.size())
            throw snap::SnapshotError("snapshot: cache geometry mismatch");
        for (Way &way : ways_) {
            way.tag = r.u64();
            way.state = static_cast<CoherState>(r.u8());
            way.lru = r.u64();
        }
        stamp_ = r.u64();
    }

  private:
    struct Way
    {
        Addr tag = 0;
        CoherState state = CoherState::Invalid;
        std::uint64_t lru = 0; ///< last-touch stamp
    };

    std::uint32_t setIndex(Addr addr) const;
    Way *find(Addr addr);
    const Way *find(Addr addr) const;

    std::uint64_t size_;
    std::uint32_t assoc_;
    std::uint32_t line_bytes_;
    std::uint32_t sets_;
    std::uint64_t stamp_ = 0;
    std::vector<Way> ways_; ///< sets_ * assoc_, set-major
};

} // namespace dbsim::mem

#endif // DBSIM_MEMORY_CACHE_HPP
