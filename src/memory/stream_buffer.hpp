/**
 * @file
 * Instruction stream buffer (Jouppi-style) between the L1 instruction
 * cache and the L2 cache.
 *
 * On an L1I miss the buffer is probed; a hit supplies the line (it is
 * moved into the L1I) and the buffer advances, prefetching the next
 * sequential line from L2.  A miss flushes all entries and re-arms the
 * buffer at the new stream (paper section 4.1).  Prefetches consume L2
 * bandwidth, which the hierarchy charges separately, so oversized buffers
 * can hurt via useless prefetches exactly as the paper observes.
 */

#ifndef DBSIM_MEMORY_STREAM_BUFFER_HPP
#define DBSIM_MEMORY_STREAM_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::mem {

/** Statistics exported by a StreamBuffer. */
struct StreamBufferStats
{
    std::uint64_t probes = 0;         ///< L1I misses probing the buffer
    std::uint64_t hits = 0;           ///< probes satisfied by the buffer
    std::uint64_t flushes = 0;        ///< streams abandoned
    std::uint64_t prefetches = 0;     ///< lines requested from L2
    std::uint64_t useless = 0;        ///< prefetched lines flushed unused

    double
    hitRate() const
    {
        return probes ? static_cast<double>(hits) / static_cast<double>(probes) : 0.0;
    }
};

/**
 * A single sequential instruction stream buffer.
 *
 * Entries hold (block address, ready-time) pairs; readiness models the L2
 * access latency of the prefetch.  Size 0 disables the buffer.
 */
class StreamBuffer
{
  public:
    /**
     * @param entries     buffer depth (0 = disabled)
     * @param line_bytes  cache line size
     */
    StreamBuffer(std::uint32_t entries, std::uint32_t line_bytes);

    bool enabled() const { return entries_ > 0; }
    std::uint32_t capacity() const { return entries_; }

    /**
     * Probe for @p block following an L1I miss at time @p now.
     *
     * @param block        missing block address
     * @param now          current cycle
     * @param ready_out    if hit: cycle the line is available
     * @param refill_out   if hit or (re)allocation: blocks to prefetch
     *                     from L2 are appended here (caller supplies their
     *                     ready times via fill()).
     * @return true on hit.
     */
    bool probe(Addr block, Cycles now, Cycles &ready_out,
               std::vector<Addr> &refill_out);

    /** Record that a previously requested prefetch of @p block will be
     *  ready at @p ready. */
    void fill(Addr block, Cycles ready);

    /** Valid entries whose ready time is kNever (a prefetch that can
     *  never arrive).  Always zero in a healthy machine; checked by the
     *  integrity layer's end-of-run quiescence audit. */
    std::uint32_t
    unboundedEntries() const
    {
        std::uint32_t n = 0;
        for (const auto &e : fifo_)
            if (e.valid && e.ready == kNever)
                ++n;
        return n;
    }

    const StreamBufferStats &stats() const { return stats_; }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(fifo_.size());
        for (const Entry &e : fifo_) {
            w.u64(e.block);
            w.u64(e.ready);
            w.boolean(e.valid);
        }
        w.u64(next_block_);
        w.u64(stats_.probes);
        w.u64(stats_.hits);
        w.u64(stats_.flushes);
        w.u64(stats_.prefetches);
        w.u64(stats_.useless);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(17);
        if (n != fifo_.size())
            throw snap::SnapshotError("snapshot: stream-buffer depth "
                                      "mismatch");
        for (Entry &e : fifo_) {
            e.block = r.u64();
            e.ready = r.u64();
            e.valid = r.boolean();
        }
        next_block_ = r.u64();
        stats_.probes = r.u64();
        stats_.hits = r.u64();
        stats_.flushes = r.u64();
        stats_.prefetches = r.u64();
        stats_.useless = r.u64();
    }

  private:
    struct Entry
    {
        Addr block = kNoAddr;
        Cycles ready = kNever;
        bool valid = false;
    };

    void flushAll();

    std::uint32_t entries_;
    std::uint32_t line_bytes_;
    std::vector<Entry> fifo_;  ///< index 0 = head (next expected line)
    Addr next_block_ = kNoAddr; ///< next sequential block to prefetch
    StreamBufferStats stats_;
};

} // namespace dbsim::mem

#endif // DBSIM_MEMORY_STREAM_BUFFER_HPP
