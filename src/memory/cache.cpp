#include "memory/cache.hpp"

#include "common/log.hpp"

namespace dbsim::mem {

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::Invalid:   return "I";
      case CoherState::Shared:    return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Modified:  return "M";
    }
    return "?";
}

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_bytes)
    : size_(size_bytes), assoc_(assoc), line_bytes_(line_bytes)
{
    if (!isPow2(size_bytes) || !isPow2(line_bytes))
        DBSIM_FATAL("cache size/line must be powers of two");
    if (assoc == 0 || size_bytes % (static_cast<std::uint64_t>(assoc) * line_bytes) != 0)
        DBSIM_FATAL("cache size not divisible by assoc*line");
    sets_ = static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes));
    if (!isPow2(sets_))
        DBSIM_FATAL("cache set count must be a power of two");
    ways_.resize(static_cast<std::size_t>(sets_) * assoc_);
}

std::uint32_t
CacheArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / line_bytes_) & (sets_ - 1));
}

CacheArray::Way *
CacheArray::find(Addr addr)
{
    const Addr blk = blockOf(addr);
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].state != CoherState::Invalid && set[w].tag == blk)
            return &set[w];
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

CoherState
CacheArray::state(Addr addr) const
{
    const Way *w = find(addr);
    return w ? w->state : CoherState::Invalid;
}

std::optional<CoherState>
CacheArray::access(Addr addr)
{
    Way *w = find(addr);
    if (!w)
        return std::nullopt;
    w->lru = ++stamp_;
    return w->state;
}

std::optional<Eviction>
CacheArray::insert(Addr addr, CoherState st)
{
    DBSIM_ASSERT(st != CoherState::Invalid, "inserting invalid line");
    if (Way *w = find(addr)) {
        // Already present: refresh state and LRU.
        w->state = st;
        w->lru = ++stamp_;
        return std::nullopt;
    }
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    Way *victim = nullptr;
    for (std::uint32_t i = 0; i < assoc_; ++i) {
        if (set[i].state == CoherState::Invalid) {
            victim = &set[i];
            break;
        }
        if (!victim || set[i].lru < victim->lru)
            victim = &set[i];
    }
    std::optional<Eviction> ev;
    if (victim->state != CoherState::Invalid)
        ev = Eviction{victim->tag, victim->state};
    victim->tag = blockOf(addr);
    victim->state = st;
    victim->lru = ++stamp_;
    return ev;
}

void
CacheArray::setState(Addr addr, CoherState st)
{
    if (Way *w = find(addr)) {
        if (st == CoherState::Invalid)
            w->state = CoherState::Invalid;
        else
            w->state = st;
    }
}

CoherState
CacheArray::invalidate(Addr addr)
{
    if (Way *w = find(addr)) {
        const CoherState prior = w->state;
        w->state = CoherState::Invalid;
        return prior;
    }
    return CoherState::Invalid;
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &w : ways_)
        if (w.state != CoherState::Invalid)
            ++n;
    return n;
}

} // namespace dbsim::mem
