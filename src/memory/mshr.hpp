/**
 * @file
 * Miss status holding registers (Kroft-style lockup-free cache support).
 *
 * An MshrFile tracks the set of cache-line misses currently outstanding at
 * one cache level, coalesces secondary requests to the same line, and
 * records the occupancy distribution that the paper reports in
 * Figures 2(d)-(g) / 3(d)-(g): the fraction of non-idle time during which
 * at least n registers are in use, kept both for all misses and for read
 * misses only.
 */

#ifndef DBSIM_MEMORY_MSHR_HPP
#define DBSIM_MEMORY_MSHR_HPP

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dbsim::mem {

/** Statistics exported by an MshrFile. */
struct MshrStats
{
    std::uint64_t allocations = 0;   ///< primary misses
    std::uint64_t coalesced = 0;     ///< secondary misses merged
    std::uint64_t full_stalls = 0;   ///< stalled requests refused (full);
                                     ///< one per request, not per retry
    stats::OccupancyTracker occupancy{64};      ///< all misses
    stats::OccupancyTracker read_occupancy{64}; ///< read misses only

    void
    saveState(snap::Writer &w) const
    {
        w.u64(allocations);
        w.u64(coalesced);
        w.u64(full_stalls);
        occupancy.saveState(w);
        read_occupancy.saveState(w);
    }

    void
    restoreState(snap::Reader &r)
    {
        allocations = r.u64();
        coalesced = r.u64();
        full_stalls = r.u64();
        occupancy.restoreState(r);
        read_occupancy.restoreState(r);
    }
};

/**
 * A file of miss status holding registers for one cache.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t entries);

    /** Max simultaneous outstanding line misses. */
    std::uint32_t capacity() const { return capacity_; }

    /** Entries currently valid. */
    std::uint32_t inUse() const { return static_cast<std::uint32_t>(entries_.size()); }

    bool full() const { return inUse() >= capacity_; }

    /** True iff a miss to @p block is already outstanding. */
    bool outstanding(Addr block) const { return findIdx(block) >= 0; }

    /** True iff an outstanding miss to @p block is a read. */
    bool outstandingRead(Addr block) const;

    /**
     * Allocate a register for a primary miss to @p block.
     * @param now     current cycle (for occupancy accounting)
     * @param is_read true for read misses (load / ifetch)
     * @param done    cycle at which the miss will be filled
     * @return false if the file is full (caller must retry).
     */
    bool allocate(Addr block, bool is_read, Cycles now, Cycles done);

    /**
     * Merge a secondary miss into an existing register.
     * @pre outstanding(block)
     * @return the fill time of the existing miss.
     */
    Cycles coalesce(Addr block, bool is_read, Cycles now);

    /**
     * Retire all registers whose fill time is <= @p now.
     * Call once per cycle (or before allocation attempts).
     */
    void drain(Cycles now);

    /** Upgrade the recorded fill time (e.g. a write joining a read miss). */
    void extend(Addr block, Cycles done);

    /** Earliest fill time among outstanding entries (kNever if empty). */
    Cycles earliestDone() const;

    /**
     * Outstanding entries whose fill time is kNever, i.e. misses that
     * can never drain.  Always zero in a healthy machine; the integrity
     * layer's end-of-run quiescence check panics otherwise.
     */
    std::uint32_t unboundedEntries() const;

    /** Fill time of the outstanding miss to @p block (kNever if none). */
    Cycles doneTimeOf(Addr block) const;

    const MshrStats &stats() const { return stats_; }
    MshrStats &stats() { return stats_; }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(entries_.size());
        for (const Entry &e : entries_) {
            w.u64(e.block);
            w.u64(e.done);
            w.boolean(e.is_read);
            w.boolean(e.has_write);
        }
        w.u64(stalled_blocks_.size());
        for (Addr b : stalled_blocks_)
            w.u64(b);
        stats_.saveState(w);
    }

    void
    restoreState(snap::Reader &r)
    {
        const std::size_t n = r.length(18);
        if (n > capacity_)
            throw snap::SnapshotError("snapshot: MSHR capacity mismatch");
        entries_.clear();
        for (std::size_t i = 0; i < n; ++i) {
            Entry e;
            e.block = r.u64();
            e.done = r.u64();
            e.is_read = r.boolean();
            e.has_write = r.boolean();
            entries_.push_back(e);
        }
        const std::size_t s = r.length(8);
        stalled_blocks_.clear();
        for (std::size_t i = 0; i < s; ++i)
            stalled_blocks_.push_back(r.u64());
        stats_.restoreState(r);
    }

  private:
    struct Entry
    {
        Addr block;
        Cycles done;
        bool is_read;     ///< true if any merged request was a read
        bool has_write;   ///< true if any merged request was a write
    };

    int findIdx(Addr block) const;
    void touchOccupancy(Cycles now);
    std::uint32_t readsInUse() const;
    void recordFullStall(Addr block);

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
    MshrStats stats_;

    /**
     * Blocks refused while the file was full, so a request retrying its
     * allocation every cycle counts one full-stall episode instead of
     * one per attempt.  A block leaves the set when it finally
     * allocates (or coalesces); the set empties with the file.
     */
    std::vector<Addr> stalled_blocks_;
};

} // namespace dbsim::mem

#endif // DBSIM_MEMORY_MSHR_HPP
