/**
 * @file
 * Fully associative translation lookaside buffer.
 *
 * The simulated machine uses separate 128-entry fully associative
 * instruction and data TLBs with 8 KB pages (paper Figure 1).  Misses
 * incur a fixed software/hardware-walk penalty and are charged to the
 * iTLB / dTLB components of the execution-time breakdown.
 */

#ifndef DBSIM_MEMORY_TLB_HPP
#define DBSIM_MEMORY_TLB_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::mem {

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
    }
};

/**
 * A fully associative, true-LRU TLB over virtual page numbers.
 * Translation itself (virtual to physical) is done by the PageMap; the
 * TLB only determines hit/miss timing.
 */
class Tlb
{
  public:
    /**
     * @param entries     number of TLB entries (0 = perfect TLB)
     * @param page_bytes  page size (power of two)
     */
    Tlb(std::uint32_t entries, std::uint32_t page_bytes);

    /**
     * Access the TLB for @p vaddr.
     * @return true on hit (or if the TLB is perfect).
     */
    bool access(Addr vaddr);

    /** Page number of @p vaddr. */
    Addr pageOf(Addr vaddr) const { return vaddr >> page_shift_; }

    bool perfect() const { return entries_ == 0; }

    const TlbStats &stats() const { return stats_; }

    void reset();

    void
    saveState(snap::Writer &w) const
    {
        w.u64(stamp_);
        w.u64(map_.size());
        for (Addr vpage : snap::sortedKeys(map_)) {
            w.u64(vpage);
            w.u64(map_.at(vpage));
        }
        w.u64(stats_.accesses);
        w.u64(stats_.misses);
    }

    void
    restoreState(snap::Reader &r)
    {
        stamp_ = r.u64();
        map_.clear();
        const std::size_t n = r.length(16);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr vpage = r.u64();
            map_[vpage] = r.u64();
        }
        stats_.accesses = r.u64();
        stats_.misses = r.u64();
    }

  private:
    std::uint32_t entries_;
    std::uint32_t page_shift_;
    std::uint64_t stamp_ = 0;
    /** vpage -> last-use stamp; size bounded by entries_. */
    std::unordered_map<Addr, std::uint64_t> map_;
    TlbStats stats_;
};

} // namespace dbsim::mem

#endif // DBSIM_MEMORY_TLB_HPP
