#include "memory/stream_buffer.hpp"

#include "common/log.hpp"

namespace dbsim::mem {

StreamBuffer::StreamBuffer(std::uint32_t entries, std::uint32_t line_bytes)
    : entries_(entries), line_bytes_(line_bytes)
{
    if (!isPow2(line_bytes))
        DBSIM_FATAL("stream buffer line size must be a power of two");
    fifo_.resize(entries_);
}

void
StreamBuffer::flushAll()
{
    bool any = false;
    for (auto &e : fifo_) {
        if (e.valid) {
            ++stats_.useless;
            any = true;
        }
        e = Entry{};
    }
    if (any)
        ++stats_.flushes;
}

bool
StreamBuffer::probe(Addr block, Cycles now, Cycles &ready_out,
                    std::vector<Addr> &refill_out)
{
    if (!enabled())
        return false;

    ++stats_.probes;

    // Check all entries (the head is the common case for sequential
    // streams, but misses that skip a line can hit deeper entries).
    for (std::uint32_t i = 0; i < entries_; ++i) {
        if (fifo_[i].valid && fifo_[i].block == block) {
            ++stats_.hits;
            ready_out = fifo_[i].ready > now ? fifo_[i].ready : now;
            // Entries before and including the hit are consumed/discarded
            // (skipped ones count as useless prefetches).
            for (std::uint32_t j = 0; j < i; ++j)
                if (fifo_[j].valid)
                    ++stats_.useless;
            const std::uint32_t consumed = i + 1;
            for (std::uint32_t j = 0; j + consumed < entries_; ++j)
                fifo_[j] = fifo_[j + consumed];
            for (std::uint32_t j = entries_ - consumed; j < entries_; ++j)
                fifo_[j] = Entry{};
            // Top up the freed slots with further sequential prefetches.
            for (std::uint32_t j = 0; j < consumed; ++j) {
                refill_out.push_back(next_block_);
                ++stats_.prefetches;
                next_block_ += line_bytes_;
            }
            return true;
        }
    }

    // Miss: flush and re-arm at the new stream, prefetching the lines
    // after the missing one.
    flushAll();
    next_block_ = block + line_bytes_;
    for (std::uint32_t j = 0; j < entries_; ++j) {
        refill_out.push_back(next_block_);
        ++stats_.prefetches;
        next_block_ += line_bytes_;
    }
    return false;
}

void
StreamBuffer::fill(Addr block, Cycles ready)
{
    if (!enabled())
        return;
    for (auto &e : fifo_) {
        if (!e.valid) {
            e.block = block;
            e.ready = ready;
            e.valid = true;
            return;
        }
    }
    // No free slot (stale request from before a flush); drop it.
}

} // namespace dbsim::mem
