/**
 * @file
 * Bin-hopping virtual-to-physical page mapping.
 *
 * The paper's virtual memory system uses a bin-hopping page-mapping
 * policy with 8 KB pages.  Bin hopping assigns successive newly touched
 * virtual pages of a process to successive cache bins (page colors),
 * which spreads the working set across cache sets and determines, in our
 * CC-NUMA model, the home node of each page (round-robin over nodes by
 * allocation order, approximating first-touch striping).
 */

#ifndef DBSIM_MEMORY_PAGE_MAP_HPP
#define DBSIM_MEMORY_PAGE_MAP_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace dbsim::mem {

/**
 * Lazily materialized bin-hopping page table shared by all processes
 * (the database's shared memory means most pages are shared anyway).
 */
class PageMap
{
  public:
    /**
     * @param page_bytes  page size (power of two)
     * @param num_bins    number of cache bins to hop across (power of two)
     * @param num_nodes   nodes for home assignment
     */
    PageMap(std::uint32_t page_bytes, std::uint32_t num_bins,
            std::uint32_t num_nodes);

    /**
     * Translate a virtual address; allocates the page on first touch.
     * @param node  the toucher: on first touch the page's home becomes
     *              this node (first-touch NUMA placement).
     */
    Addr translate(Addr vaddr, std::uint32_t node = 0);

    /** Home node of the physical address @p paddr. */
    std::uint32_t homeOf(Addr paddr) const;

    std::uint32_t pageBytes() const { return page_bytes_; }

    /** Number of distinct pages touched so far. */
    std::uint64_t pagesTouched() const { return map_.size(); }

    void
    saveState(snap::Writer &w) const
    {
        w.u64(next_seq_);
        w.u64(map_.size());
        for (Addr vpage : snap::sortedKeys(map_)) {
            const Phys &ph = map_.at(vpage);
            w.u64(vpage);
            w.u64(ph.ppage);
            w.u32(ph.home);
        }
        w.u64(home_by_ppage_.size());
        for (std::uint32_t h : home_by_ppage_)
            w.u32(h);
    }

    void
    restoreState(snap::Reader &r)
    {
        next_seq_ = r.u64();
        map_.clear();
        const std::size_t n = r.length(20);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr vpage = r.u64();
            Phys ph;
            ph.ppage = r.u64();
            ph.home = r.u32();
            map_[vpage] = ph;
        }
        const std::size_t m = r.length(4);
        home_by_ppage_.assign(m, 0);
        for (std::size_t i = 0; i < m; ++i)
            home_by_ppage_[i] = r.u32();
    }

  private:
    struct Phys
    {
        Addr ppage;
        std::uint32_t home;
    };

    std::uint32_t page_bytes_;
    std::uint32_t page_shift_;
    std::uint32_t num_bins_;
    std::uint32_t num_nodes_;
    std::uint64_t next_seq_ = 0;
    std::unordered_map<Addr, Phys> map_; ///< vpage -> physical page info
    std::vector<std::uint32_t> home_by_ppage_; ///< indexed by ppage seq
};

} // namespace dbsim::mem

#endif // DBSIM_MEMORY_PAGE_MAP_HPP
