#include "memory/page_map.hpp"

#include "common/log.hpp"

namespace dbsim::mem {

PageMap::PageMap(std::uint32_t page_bytes, std::uint32_t num_bins,
                 std::uint32_t num_nodes)
    : page_bytes_(page_bytes), num_bins_(num_bins), num_nodes_(num_nodes)
{
    if (!isPow2(page_bytes) || !isPow2(num_bins))
        DBSIM_FATAL("page size and bin count must be powers of two");
    if (num_nodes == 0)
        DBSIM_FATAL("need at least one node");
    page_shift_ = log2i(page_bytes);
}

Addr
PageMap::translate(Addr vaddr, std::uint32_t node)
{
    const Addr vpage = vaddr >> page_shift_;
    auto it = map_.find(vpage);
    if (it == map_.end()) {
        // Bin hopping: the k-th allocated page goes to cache bin
        // (k mod bins); the physical page number encodes the bin in its
        // low bits so translations never collide.  The home node is the
        // first toucher (first-touch NUMA placement).
        const std::uint64_t seq = next_seq_++;
        const Addr ppage = seq;
        const std::uint32_t home = node % num_nodes_;
        it = map_.emplace(vpage, Phys{ppage, home}).first;
        home_by_ppage_.push_back(home);
    }
    return (it->second.ppage << page_shift_) |
           (vaddr & (page_bytes_ - 1));
}

std::uint32_t
PageMap::homeOf(Addr paddr) const
{
    const Addr ppage = paddr >> page_shift_;
    if (ppage < home_by_ppage_.size())
        return home_by_ppage_[static_cast<std::size_t>(ppage)];
    return 0;
}

} // namespace dbsim::mem
