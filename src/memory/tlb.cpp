#include "memory/tlb.hpp"

#include <limits>

#include "common/log.hpp"

namespace dbsim::mem {

Tlb::Tlb(std::uint32_t entries, std::uint32_t page_bytes)
    : entries_(entries)
{
    if (!isPow2(page_bytes))
        DBSIM_FATAL("TLB page size must be a power of two");
    page_shift_ = log2i(page_bytes);
}

bool
Tlb::access(Addr vaddr)
{
    ++stats_.accesses;
    if (perfect())
        return true;

    const Addr vpage = pageOf(vaddr);
    ++stamp_;
    auto it = map_.find(vpage);
    if (it != map_.end()) {
        it->second = stamp_;
        return true;
    }

    ++stats_.misses;
    if (map_.size() >= entries_) {
        // Evict true-LRU entry.  Use stamps are unique, so the minimum
        // (the victim) is the same whatever order the scan visits.
        // dbsim-analyze: allow(determinism-unordered-iteration)
        auto victim = map_.begin();
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        // dbsim-analyze: allow(determinism-unordered-iteration)
        for (auto jt = map_.begin(); jt != map_.end(); ++jt) {
            if (jt->second < oldest) {
                oldest = jt->second;
                victim = jt;
            }
        }
        map_.erase(victim);
    }
    map_.emplace(vpage, stamp_);
    return false;
}

void
Tlb::reset()
{
    map_.clear();
    stamp_ = 0;
    stats_ = TlbStats{};
}

} // namespace dbsim::mem
