#include "memory/mshr.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::mem {

MshrFile::MshrFile(std::uint32_t entries) : capacity_(entries)
{
    if (entries == 0)
        DBSIM_FATAL("MSHR file needs at least one entry");
    entries_.reserve(entries);
}

int
MshrFile::findIdx(Addr block) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].block == block)
            return static_cast<int>(i);
    return -1;
}

bool
MshrFile::outstandingRead(Addr block) const
{
    const int i = findIdx(block);
    return i >= 0 && entries_[static_cast<std::size_t>(i)].is_read;
}

std::uint32_t
MshrFile::readsInUse() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.is_read)
            ++n;
    return n;
}

void
MshrFile::touchOccupancy(Cycles now)
{
    stats_.occupancy.advance(now, inUse());
    stats_.read_occupancy.advance(now, readsInUse());
}

void
MshrFile::recordFullStall(Addr block)
{
    // Count each stalled request once: the caller retries the same
    // block every cycle until a register frees up, and only the first
    // refusal of an episode is a new stall.
    if (std::find(stalled_blocks_.begin(), stalled_blocks_.end(), block) ==
        stalled_blocks_.end()) {
        stalled_blocks_.push_back(block);
        ++stats_.full_stalls;
    }
}

bool
MshrFile::allocate(Addr block, bool is_read, Cycles now, Cycles done)
{
    drain(now);
    if (full()) {
        recordFullStall(block);
        return false;
    }
    DBSIM_ASSERT(findIdx(block) < 0, "primary miss already outstanding");
    entries_.push_back(Entry{block, done, is_read, !is_read});
    touchOccupancy(now); // record the new occupancy level
    ++stats_.allocations;
    // The stalled request (if it was one) got its register; a later
    // refusal of the same block is a new episode.
    if (auto it = std::find(stalled_blocks_.begin(), stalled_blocks_.end(),
                            block);
        it != stalled_blocks_.end()) {
        stalled_blocks_.erase(it);
    }
    return true;
}

Cycles
MshrFile::coalesce(Addr block, bool is_read, Cycles now)
{
    const int i = findIdx(block);
    DBSIM_ASSERT(i >= 0, "coalesce with no outstanding miss");
    auto &e = entries_[static_cast<std::size_t>(i)];
    if (is_read && !e.is_read) {
        // A read joining a write miss makes the register count as a read
        // for the read-occupancy distribution from now on.
        e.is_read = true;
    }
    if (!is_read)
        e.has_write = true;
    touchOccupancy(now); // read-occupancy may have changed
    ++stats_.coalesced;
    return e.done;
}

void
MshrFile::drain(Cycles now)
{
    // Charge the elapsed interval at the pre-drain level once.
    touchOccupancy(now);
    const std::size_t before = entries_.size();
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [now](const Entry &e) {
                                      return e.done <= now;
                                  }),
                   entries_.end());
    // A second (zero-width) sample is only needed when the level
    // actually changed; retry loops that re-drain the same cycle leave
    // the tracker untouched.
    if (entries_.size() != before)
        touchOccupancy(now);
    if (entries_.empty())
        stalled_blocks_.clear();
}

Cycles
MshrFile::earliestDone() const
{
    Cycles t = kNever;
    for (const auto &e : entries_)
        t = std::min(t, e.done);
    return t;
}

std::uint32_t
MshrFile::unboundedEntries() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.done == kNever)
            ++n;
    return n;
}

Cycles
MshrFile::doneTimeOf(Addr block) const
{
    const int i = findIdx(block);
    return i < 0 ? kNever
                 : entries_[static_cast<std::size_t>(i)].done;
}

void
MshrFile::extend(Addr block, Cycles done)
{
    const int i = findIdx(block);
    if (i >= 0) {
        auto &e = entries_[static_cast<std::size_t>(i)];
        e.done = std::max(e.done, done);
    }
}

} // namespace dbsim::mem
