#include "memory/mshr.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dbsim::mem {

MshrFile::MshrFile(std::uint32_t entries) : capacity_(entries)
{
    if (entries == 0)
        DBSIM_FATAL("MSHR file needs at least one entry");
    entries_.reserve(entries);
}

int
MshrFile::findIdx(Addr block) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].block == block)
            return static_cast<int>(i);
    return -1;
}

bool
MshrFile::outstandingRead(Addr block) const
{
    const int i = findIdx(block);
    return i >= 0 && entries_[static_cast<std::size_t>(i)].is_read;
}

std::uint32_t
MshrFile::readsInUse() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.is_read)
            ++n;
    return n;
}

void
MshrFile::touchOccupancy(Cycles now)
{
    stats_.occupancy.advance(now, inUse());
    stats_.read_occupancy.advance(now, readsInUse());
}

bool
MshrFile::allocate(Addr block, bool is_read, Cycles now, Cycles done)
{
    drain(now);
    if (full()) {
        ++stats_.full_stalls;
        return false;
    }
    DBSIM_ASSERT(findIdx(block) < 0, "primary miss already outstanding");
    entries_.push_back(Entry{block, done, is_read, !is_read});
    touchOccupancy(now); // record the new occupancy level
    ++stats_.allocations;
    return true;
}

Cycles
MshrFile::coalesce(Addr block, bool is_read, Cycles now)
{
    const int i = findIdx(block);
    DBSIM_ASSERT(i >= 0, "coalesce with no outstanding miss");
    auto &e = entries_[static_cast<std::size_t>(i)];
    if (is_read && !e.is_read) {
        // A read joining a write miss makes the register count as a read
        // for the read-occupancy distribution from now on.
        e.is_read = true;
    }
    if (!is_read)
        e.has_write = true;
    touchOccupancy(now); // read-occupancy may have changed
    ++stats_.coalesced;
    return e.done;
}

void
MshrFile::drain(Cycles now)
{
    touchOccupancy(now);
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [now](const Entry &e) {
                                      return e.done <= now;
                                  }),
                   entries_.end());
    touchOccupancy(now);
}

Cycles
MshrFile::earliestDone() const
{
    Cycles t = kNever;
    for (const auto &e : entries_)
        t = std::min(t, e.done);
    return t;
}

std::uint32_t
MshrFile::unboundedEntries() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.done == kNever)
            ++n;
    return n;
}

Cycles
MshrFile::doneTimeOf(Addr block) const
{
    const int i = findIdx(block);
    return i < 0 ? kNever
                 : entries_[static_cast<std::size_t>(i)].done;
}

void
MshrFile::extend(Addr block, Cycles done)
{
    const int i = findIdx(block);
    if (i >= 0) {
        auto &e = entries_[static_cast<std::size_t>(i)];
        e.done = std::max(e.done, done);
    }
}

} // namespace dbsim::mem
