/**
 * @file
 * Ablation (paper section 4.2): the flush / WriteThrough primitive must
 * keep a clean copy in the flushing cache.  The paper notes that an
 * invalidating flush neutralizes the gains because the flushing
 * processor's subsequent reads then miss.  This benchmark compares:
 * no hints, flush-keeping-clean-copy, and flush-invalidating.
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run()
{
    using namespace dbsim;
    std::vector<core::BreakdownRow> rows;

    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    base.system.node.stream_buffer_entries = 4;
    rows.push_back(bench::runConfig(base, "no hints").row);

    core::SimConfig keep = base;
    keep.hint_flush = true;
    rows.push_back(
        bench::runConfig(keep, "flush (keep clean copy)").row);

    core::SimConfig inval = base;
    inval.hint_flush = true;
    inval.system.fabric.flush_invalidates = true;
    rows.push_back(
        bench::runConfig(inval, "flush (invalidate copy)").row);

    // Adaptive migratory protocol (paper footnote 2): under the relaxed
    // base model the write latency is already hidden, so the handoff
    // should gain little.
    core::SimConfig adapt = base;
    adapt.system.fabric.adaptive_migratory = true;
    rows.push_back(
        bench::runConfig(adapt, "adaptive migratory (RC)").row);

    core::SimConfig adapt_sc = base;
    adapt_sc.system.core.model = cpu::ConsistencyModel::SC;
    rows.push_back(bench::runConfig(adapt_sc, "SC plain").row);
    adapt_sc.system.fabric.adaptive_migratory = true;
    rows.push_back(
        bench::runConfig(adapt_sc, "SC + adaptive migratory").row);

    core::printHeader(std::cout,
                      "Ablation: flush keeping vs invalidating the copy "
                      "(OLTP, sbuf-4)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
    return 0;
}

int
main()
{
    return dbsim::core::guardedMain([] { return run(); });
}
