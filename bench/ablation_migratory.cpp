/**
 * @file
 * Ablation (paper section 4.2): the flush / WriteThrough primitive must
 * keep a clean copy in the flushing cache.  The paper notes that an
 * invalidating flush neutralizes the gains because the flushing
 * processor's subsequent reads then miss.  This benchmark compares:
 * no hints, flush-keeping-clean-copy, and flush-invalidating, plus the
 * adaptive migratory protocol (paper footnote 2) under RC and SC.
 *
 * Usage: ablation_migratory [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;

    core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    base.system.node.stream_buffer_entries = 4;

    core::SimConfig keep = base;
    keep.hint_flush = true;

    core::SimConfig inval = base;
    inval.hint_flush = true;
    inval.system.fabric.flush_invalidates = true;

    // Adaptive migratory protocol (paper footnote 2): under the relaxed
    // base model the write latency is already hidden, so the handoff
    // should gain little.  Under SC the write latency is exposed and the
    // handoff shows through.
    core::SimConfig adapt = base;
    adapt.system.fabric.adaptive_migratory = true;

    core::SimConfig sc_plain = base;
    sc_plain.system.core.model = cpu::ConsistencyModel::SC;

    core::SimConfig sc_adapt = sc_plain;
    sc_adapt.system.fabric.adaptive_migratory = true;

    bench::BenchContext ctx("ablation_migratory", opts);
    const auto results = ctx.sweep(
        "flush-semantics", {{"no hints", base},
                            {"flush (keep clean copy)", keep},
                            {"flush (invalidate copy)", inval},
                            {"adaptive migratory (RC)", adapt},
                            {"SC plain", sc_plain},
                            {"SC + adaptive migratory", sc_adapt}});

    const auto rows = bench::rowsOf(results);
    core::printHeader(std::cout,
                      "Ablation: flush keeping vs invalidating the copy "
                      "(OLTP, sbuf-4)");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
