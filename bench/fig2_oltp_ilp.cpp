/**
 * @file
 * Figure 2: impact of ILP features on OLTP performance.
 *
 * Paper shape targets:
 *  (a) out-of-order 4/8-way ~1.5x faster than in-order 1-way; in-order
 *      gains level off at 2-way, out-of-order at 4-way;
 *  (b) window-size gains level off beyond 64, mostly from the L2-hit
 *      read component;
 *  (c) two outstanding misses capture most of the benefit (frequent
 *      load-to-load dependences);
 *  (d)-(g) little read-miss overlap; occupancy driven by writes.
 *
 * Usage: fig2_oltp_ilp [--occupancy] [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include "ilp_figure.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    dbsim::bench::BenchContext ctx("fig2_oltp_ilp", opts);
    dbsim::bench::runIlpFigure(ctx, dbsim::core::WorkloadKind::Oltp,
                               opts.has("--occupancy"));
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
