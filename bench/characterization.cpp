/**
 * @file
 * Workload characterization (paper section 3.1 text + section 4.2):
 * cache local miss rates, IPC, branch misprediction, execution-time
 * breakdown, dirty-miss fraction, and -- with --sharing -- the migratory
 * characterization (fractions of shared writes / dirty reads that are
 * migratory, and their concentration over lines and instructions).
 *
 * Paper reference points (base 4-way OOO, 4 nodes):
 *   OLTP: L1I 7.6% / L1D 14.1% / L2 7.4% local miss rates, IPC ~0.5,
 *         cumulative branch misprediction ~11%, dirty misses ~50% of L2
 *         misses; 88% of shared writes and 79% of dirty reads migratory.
 *   DSS : L1I ~0% / L1D 0.9% / L2 23.1%, IPC ~2.2.
 */

#include <cstring>
#include <iostream>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

void
characterizeOne(core::WorkloadKind kind, bool sharing)
{
    core::SimConfig cfg = core::makeScaledConfig(kind);
    core::printHeader(std::cout, std::string("Characterization: ") +
                                     core::workloadName(kind));
    std::cout << core::describe(cfg) << "\n\n";

    core::Simulation simulation(cfg);
    const sim::RunResult r = simulation.run();
    const core::Characterization c = simulation.characterize();

    std::cout << "instructions          " << r.instructions << "\n"
              << "cycles                " << r.cycles << "\n"
              << "IPC                   " << r.ipc << "\n"
              << "L1I miss / fetch-line " << c.l1i_miss_per_fetch << "\n"
              << "L1I MPKI              " << c.l1i_mpki << "\n"
              << "L1D local miss rate   " << c.l1d_miss_rate << "\n"
              << "L2  local miss rate   " << c.l2_miss_rate << "\n"
              << "branch mispredicts    " << c.branch_mispredict_rate
              << "\n"
              << "iTLB miss rate        " << c.itlb_miss_rate << "\n"
              << "dTLB miss rate        " << c.dtlb_miss_rate << "\n"
              << "dirty / L2 misses     "
              << (c.total_l2_misses ? double(c.dirty_misses) /
                                          double(c.total_l2_misses)
                                    : 0.0)
              << "\n";

    std::vector<core::BreakdownRow> rows;
    rows.push_back({core::describe(cfg), r.breakdown, r.instructions});
    std::cout << "\n";
    core::printExecutionBars(std::cout, rows);
    std::cout << "\n";
    core::printReadStallBars(std::cout, rows);

    if (sharing && kind == core::WorkloadKind::Oltp) {
        const auto &mig = simulation.system().fabric().migratory();
        const auto &ms = mig.stats();
        core::printHeader(std::cout, "Migratory sharing (section 4.2)");
        std::cout << "shared writes               " << ms.shared_writes
                  << "\n"
                  << "  migratory fraction        " << ms.writeFraction()
                  << "  (paper: 0.88)\n"
                  << "dirty reads                 " << ms.dirty_reads
                  << "\n"
                  << "  migratory fraction        "
                  << ms.dirtyReadFraction() << "  (paper: 0.79)\n"
                  << "migratory lines             " << mig.migratoryLines()
                  << "\n"
                  << "line concentration (70%)    "
                  << mig.lineConcentration(0.70)
                  << "  (paper: 0.03 of lines cover 70% of write misses)\n"
                  << "PCs generating migratory    " << mig.migratoryPcs()
                  << "\n"
                  << "PC concentration (75%)      "
                  << mig.pcConcentration(0.75)
                  << "  (paper: <0.10 of instructions cover 75%)\n";
    }
}

} // namespace

static int
run(int argc, char **argv)
{
    bool sharing = false;
    bool oltp_only = false, dss_only = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--sharing"))
            sharing = true;
        else if (!std::strcmp(argv[i], "--oltp"))
            oltp_only = true;
        else if (!std::strcmp(argv[i], "--dss"))
            dss_only = true;
    }

    if (!dss_only)
        characterizeOne(core::WorkloadKind::Oltp, sharing || !oltp_only);
    if (!oltp_only)
        characterizeOne(core::WorkloadKind::Dss, false);
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
