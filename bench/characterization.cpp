/**
 * @file
 * Workload characterization (paper section 3.1 text + section 4.2):
 * cache local miss rates, IPC, branch misprediction, execution-time
 * breakdown, dirty-miss fraction, and -- with --sharing -- the migratory
 * characterization (fractions of shared writes / dirty reads that are
 * migratory, and their concentration over lines and instructions).
 *
 * Paper reference points (base 4-way OOO, 4 nodes):
 *   OLTP: L1I 7.6% / L1D 14.1% / L2 7.4% local miss rates, IPC ~0.5,
 *         cumulative branch misprediction ~11%, dirty misses ~50% of L2
 *         misses; 88% of shared writes and 79% of dirty reads migratory.
 *   DSS : L1I ~0% / L1D 0.9% / L2 23.1%, IPC ~2.2.
 *
 * Usage: characterization [--sharing] [--oltp] [--dss]
 *                         [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

using namespace dbsim;

namespace {

void
characterizeOne(bench::BenchContext &ctx, core::WorkloadKind kind,
                bool sharing)
{
    const char *wname = core::workloadName(kind);
    const auto results =
        ctx.sweep(wname, {{wname, core::makeScaledConfig(kind)}});
    if (results.empty()) {
        // Replayed from a resume journal (or failed under collect):
        // the JSON report still carries the numbers.
        std::cout << "(" << wname
                  << ": no freshly-run results to print)\n";
        return;
    }
    const core::SweepResult &res = results.front();
    const sim::RunResult &r = res.run;
    const core::Characterization &c = res.ch;

    core::printHeader(std::cout,
                      std::string("Characterization: ") + wname);
    std::cout << res.config << "\n\n";

    std::cout << "instructions          " << r.instructions << "\n"
              << "cycles                " << r.cycles << "\n"
              << "IPC                   " << r.ipc << "\n"
              << "L1I miss / fetch-line " << c.l1i_miss_per_fetch << "\n"
              << "L1I MPKI              " << c.l1i_mpki << "\n"
              << "L1D local miss rate   " << c.l1d_miss_rate << "\n"
              << "L2  local miss rate   " << c.l2_miss_rate << "\n"
              << "branch mispredicts    " << c.branch_mispredict_rate
              << "\n"
              << "iTLB miss rate        " << c.itlb_miss_rate << "\n"
              << "dTLB miss rate        " << c.dtlb_miss_rate << "\n"
              << "dirty / L2 misses     "
              << (c.total_l2_misses ? double(c.dirty_misses) /
                                          double(c.total_l2_misses)
                                    : 0.0)
              << "\n"
              << "sim Minstr / host-sec " << res.sim_ips / 1e6 << "\n";

    const auto rows = bench::rowsOf(results);
    std::cout << "\n";
    core::printExecutionBars(std::cout, rows);
    std::cout << "\n";
    core::printReadStallBars(std::cout, rows);

    if (sharing && kind == core::WorkloadKind::Oltp) {
        const core::MigratorySummary &ms = res.migratory;
        core::printHeader(std::cout, "Migratory sharing (section 4.2)");
        std::cout << "shared writes               " << ms.shared_writes
                  << "\n"
                  << "  migratory fraction        " << ms.write_fraction
                  << "  (paper: 0.88)\n"
                  << "dirty reads                 " << ms.dirty_reads
                  << "\n"
                  << "  migratory fraction        "
                  << ms.dirty_read_fraction << "  (paper: 0.79)\n"
                  << "migratory lines             " << ms.migratory_lines
                  << "\n"
                  << "line concentration (70%)    "
                  << ms.line_concentration_70
                  << "  (paper: 0.03 of lines cover 70% of write misses)\n"
                  << "PCs generating migratory    " << ms.migratory_pcs
                  << "\n"
                  << "PC concentration (75%)      "
                  << ms.pc_concentration_75
                  << "  (paper: <0.10 of instructions cover 75%)\n";
    }
}

} // namespace

static int
run(const bench::BenchOptions &opts)
{
    const bool sharing = opts.has("--sharing");
    const bool oltp_only = opts.has("--oltp");
    const bool dss_only = opts.has("--dss");

    bench::BenchContext ctx("characterization", opts);
    if (!dss_only)
        characterizeOne(ctx, core::WorkloadKind::Oltp,
                        sharing || !oltp_only);
    if (!oltp_only)
        characterizeOne(ctx, core::WorkloadKind::Dss, false);
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
