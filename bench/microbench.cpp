/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * cache array lookups, MSHR file operations, branch prediction, trace
 * generation, and end-to-end simulated instructions per wall second.
 * These guard the simulator's performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "cpu/branch_predictor.hpp"
#include "memory/cache.hpp"
#include "memory/mshr.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "workload/oltp_engine.hpp"

using namespace dbsim;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheArray cache(512 * 1024, 4, 64);
    Rng rng(7);
    // Pre-fill.
    for (int i = 0; i < 16384; ++i)
        cache.insert(rng.below(1 << 24) * 64, mem::CoherState::Shared);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 24) * 64));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_MshrAllocDrain(benchmark::State &state)
{
    mem::MshrFile mshr(8);
    Cycles now = 0;
    for (auto _ : state) {
        ++now;
        mshr.drain(now);
        mshr.allocate(now * 64, true, now, now + 100);
    }
}
BENCHMARK(BM_MshrAllocDrain);

void
BM_BranchPredict(benchmark::State &state)
{
    cpu::BranchPredictor bp;
    Rng rng(3);
    trace::TraceRecord rec;
    rec.op = trace::OpClass::BranchCond;
    for (auto _ : state) {
        rec.pc = 0x1000 + rng.below(4096) * 4;
        rec.taken = rng.chance(0.7);
        benchmark::DoNotOptimize(bp.predict(rec));
    }
}
BENCHMARK(BM_BranchPredict);

/**
 * The run loop's per-iteration event-skip query with N blocked
 * processes.  Was a linear scan of the blocked list; now the heap root.
 */
void
BM_SchedulerNextWake(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Scheduler sched(1);
    std::vector<std::unique_ptr<cpu::ProcessContext>> procs;
    for (std::size_t i = 0; i < n; ++i) {
        procs.push_back(std::make_unique<cpu::ProcessContext>(
            static_cast<ProcId>(i), nullptr));
        sched.addProcess(procs.back().get(), 0);
        (void)sched.pickNext(0, 0);
        sched.block(procs.back().get(), 1'000'000 + i);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.nextWake(0));
}
BENCHMARK(BM_SchedulerNextWake)->Arg(8)->Arg(64)->Arg(512);

/**
 * Steady-state block/wake churn with N resident blocked processes:
 * every iteration wakes the earliest process and re-blocks it at the
 * back of the time window.
 */
void
BM_SchedulerBlockWake(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Scheduler sched(1);
    std::vector<std::unique_ptr<cpu::ProcessContext>> procs;
    for (std::size_t i = 0; i < n; ++i) {
        procs.push_back(std::make_unique<cpu::ProcessContext>(
            static_cast<ProcId>(i), nullptr));
        sched.addProcess(procs.back().get(), 0);
        (void)sched.pickNext(0, 0);
        sched.block(procs.back().get(), static_cast<Cycles>(i) + 1);
    }
    Cycles now = 0;
    for (auto _ : state) {
        ++now;
        cpu::ProcessContext *p = sched.pickNext(0, now);
        if (p)
            sched.block(p, now + static_cast<Cycles>(n));
    }
}
BENCHMARK(BM_SchedulerBlockWake)->Arg(8)->Arg(64)->Arg(512);

void
BM_OltpTraceGen(benchmark::State &state)
{
    workload::OltpParams p;
    p.num_procs = 1;
    workload::OltpWorkload wl(p);
    auto src = wl.makeProcess(0);
    trace::TraceRecord rec;
    for (auto _ : state) {
        if (!src->next(rec))
            state.SkipWithError("source exhausted");
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_OltpTraceGen);

void
BM_EndToEndOltp(benchmark::State &state)
{
    for (auto _ : state) {
        sim::SystemParams sp;
        sp.num_nodes = 1;
        sim::System sys(sp);
        workload::OltpParams p;
        p.num_procs = 2;
        workload::OltpWorkload wl(p);
        for (ProcId i = 0; i < 2; ++i)
            sys.addProcess(wl.makeProcess(i), 0);
        const auto res = sys.run(20000, 0);
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(res.instructions));
    }
}
BENCHMARK(BM_EndToEndOltp)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
