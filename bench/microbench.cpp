/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * cache array lookups, MSHR file operations, branch prediction, trace
 * generation, and end-to-end simulated instructions per wall second.
 * These guard the simulator's performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "cpu/branch_predictor.hpp"
#include "memory/cache.hpp"
#include "memory/mshr.hpp"
#include "sim/system.hpp"
#include "workload/oltp_engine.hpp"

using namespace dbsim;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheArray cache(512 * 1024, 4, 64);
    Rng rng(7);
    // Pre-fill.
    for (int i = 0; i < 16384; ++i)
        cache.insert(rng.below(1 << 24) * 64, mem::CoherState::Shared);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 24) * 64));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_MshrAllocDrain(benchmark::State &state)
{
    mem::MshrFile mshr(8);
    Cycles now = 0;
    for (auto _ : state) {
        ++now;
        mshr.drain(now);
        mshr.allocate(now * 64, true, now, now + 100);
    }
}
BENCHMARK(BM_MshrAllocDrain);

void
BM_BranchPredict(benchmark::State &state)
{
    cpu::BranchPredictor bp;
    Rng rng(3);
    trace::TraceRecord rec;
    rec.op = trace::OpClass::BranchCond;
    for (auto _ : state) {
        rec.pc = 0x1000 + rng.below(4096) * 4;
        rec.taken = rng.chance(0.7);
        benchmark::DoNotOptimize(bp.predict(rec));
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_OltpTraceGen(benchmark::State &state)
{
    workload::OltpParams p;
    p.num_procs = 1;
    workload::OltpWorkload wl(p);
    auto src = wl.makeProcess(0);
    trace::TraceRecord rec;
    for (auto _ : state) {
        if (!src->next(rec))
            state.SkipWithError("source exhausted");
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_OltpTraceGen);

void
BM_EndToEndOltp(benchmark::State &state)
{
    for (auto _ : state) {
        sim::SystemParams sp;
        sp.num_nodes = 1;
        sim::System sys(sp);
        workload::OltpParams p;
        p.num_procs = 2;
        workload::OltpWorkload wl(p);
        for (ProcId i = 0; i < 2; ++i)
            sys.addProcess(wl.makeProcess(i), 0);
        const auto res = sys.run(20000, 0);
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(res.instructions));
    }
}
BENCHMARK(BM_EndToEndOltp)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
