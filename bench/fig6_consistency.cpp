/**
 * @file
 * Figure 6: performance benefits from ILP-enabled consistency
 * optimizations -- SC, PC and RC, each with a straightforward
 * implementation, with hardware prefetching from the instruction
 * window, and with speculative load execution added.
 *
 * Paper shape targets: the optimizations barely change RC; prefetching
 * helps SC/PC some, speculative loads much more; fully optimized SC is
 * ~26% (OLTP) / ~37% (DSS) faster than plain SC and within 10-15% of
 * RC.  Bars normalized to the straightforward SC implementation; data
 * stall split into read and write components.
 *
 * Usage: fig6_consistency [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;
    using cpu::ConsistencyModel;

    bench::BenchContext ctx("fig6_consistency", opts);
    for (const auto kind :
         {core::WorkloadKind::Oltp, core::WorkloadKind::Dss}) {
        std::vector<core::SweepItem> items;
        for (const auto model : {ConsistencyModel::SC,
                                 ConsistencyModel::PC,
                                 ConsistencyModel::RC}) {
            for (int impl = 0; impl < 3; ++impl) {
                core::SimConfig cfg = core::makeScaledConfig(kind);
                cfg.system.core.model = model;
                cfg.system.core.cons.hw_prefetch = impl >= 1;
                cfg.system.core.cons.spec_loads = impl >= 2;
                char label[64];
                std::snprintf(label, sizeof(label), "%s%s",
                              cpu::consistencyModelName(model),
                              impl == 0 ? " plain"
                              : impl == 1 ? " +prefetch"
                                          : " +prefetch+spec");
                items.push_back({label, cfg});
            }
        }
        const auto results = ctx.sweep(core::workloadName(kind), items);
        core::printHeader(std::cout,
                          std::string("Figure 6: consistency models, ") +
                              core::workloadName(kind) +
                              " (normalized to plain SC)");
        core::printExecutionBars(std::cout, bench::rowsOf(results));
    }
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
