/**
 * @file
 * Figure 3: impact of ILP features on DSS performance, plus the
 * functional-unit idealization of section 3.2.2.
 *
 * Paper shape targets:
 *  (a) out-of-order + multiple issue ~2.6x over in-order single issue;
 *      1->8-way: -32% in-order, -56% out-of-order;
 *  (b) window gains level off beyond 32;
 *  (c) benefits up to 4 outstanding misses, driven by write overlap;
 *  (--funits) 16 ALUs + 16 AGUs give ~12% further improvement.
 *
 * Usage: fig3_dss_ilp [--occupancy] [--funits] [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <iostream>

#include "ilp_figure.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;
    bench::BenchContext ctx("fig3_dss_ilp", opts);

    if (opts.has("--funits")) {
        core::SimConfig base =
            core::makeScaledConfig(core::WorkloadKind::Dss);
        core::SimConfig wide = base;
        wide.system.core.fu.int_alus = 16;
        wide.system.core.fu.addr_units = 16;
        const auto results = ctx.sweep(
            "funits", {{"base (2 ALU/2 AGU)", base},
                       {"16 ALU / 16 AGU", wide}});
        core::printHeader(std::cout,
                          "section 3.2.2: DSS functional-unit scaling");
        core::printExecutionBars(std::cout, bench::rowsOf(results));
        return ctx.finish();
    }

    bench::runIlpFigure(ctx, core::WorkloadKind::Dss,
                        opts.has("--occupancy"));
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
