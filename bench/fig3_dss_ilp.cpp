/**
 * @file
 * Figure 3: impact of ILP features on DSS performance, plus the
 * functional-unit idealization of section 3.2.2.
 *
 * Paper shape targets:
 *  (a) out-of-order + multiple issue ~2.6x over in-order single issue;
 *      1->8-way: -32% in-order, -56% out-of-order;
 *  (b) window gains level off beyond 32;
 *  (c) benefits up to 4 outstanding misses, driven by write overlap;
 *  (--funits) 16 ALUs + 16 AGUs give ~12% further improvement.
 *
 * Usage: fig3_dss_ilp [--occupancy] [--funits]
 */

#include <cstring>
#include <iostream>

#include "ilp_figure.hpp"

#include "core/cli_guard.hpp"

static int
run(int argc, char **argv)
{
    bool occ = false, funits = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--occupancy"))
            occ = true;
        if (!std::strcmp(argv[i], "--funits"))
            funits = true;
    }

    using namespace dbsim;
    if (funits) {
        std::vector<core::BreakdownRow> rows;
        core::SimConfig base = core::makeScaledConfig(core::WorkloadKind::Dss);
        rows.push_back(bench::runConfig(base, "base (2 ALU/2 AGU)").row);
        core::SimConfig wide = base;
        wide.system.core.fu.int_alus = 16;
        wide.system.core.fu.addr_units = 16;
        rows.push_back(bench::runConfig(wide, "16 ALU / 16 AGU").row);
        core::printHeader(std::cout,
                          "section 3.2.2: DSS functional-unit scaling");
        core::printExecutionBars(std::cout, rows);
        return 0;
    }

    bench::runIlpFigure(core::WorkloadKind::Dss, occ);
    return 0;
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain([&] { return run(argc, argv); });
}
