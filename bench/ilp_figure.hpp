/**
 * @file
 * Shared implementation of Figures 2 and 3: the impact of ILP features
 * (multiple issue, out-of-order execution, instruction window size,
 * multiple outstanding misses) on OLTP / DSS performance, plus the MSHR
 * occupancy distributions of parts (d)-(g).
 *
 * Each part is a declarative configuration list handed to the parallel
 * sweep runner; the text output is identical to the old serial loops.
 */

#ifndef DBSIM_BENCH_ILP_FIGURE_HPP
#define DBSIM_BENCH_ILP_FIGURE_HPP

#include <cstdio>

#include "bench_util.hpp"
#include "cpu/inorder_core.hpp"

namespace dbsim::bench {

inline void
runIlpFigure(BenchContext &ctx, core::WorkloadKind kind,
             bool occupancy_only)
{
    using core::SimConfig;
    using core::SweepItem;
    const char *wname = core::workloadName(kind);

    // --- Part (a): in-order vs out-of-order across issue widths.
    if (!occupancy_only) {
        std::vector<SweepItem> items;
        for (const bool ooo : {false, true}) {
            for (const std::uint32_t width : {1u, 2u, 4u, 8u}) {
                SimConfig cfg = core::makeScaledConfig(kind);
                cfg.system.core.issue_width = width;
                if (!ooo) {
                    cfg.system.core =
                        cpu::makeInOrderParams(cfg.system.core);
                }
                char label[64];
                std::snprintf(label, sizeof(label), "%s-%u-way",
                              ooo ? "ooo" : "inorder", width);
                items.push_back({label, cfg});
            }
        }
        const auto results = ctx.sweep("a-issue-width", items);
        core::printHeader(std::cout,
                          std::string("(a) issue width / ooo, ") + wname +
                              " (normalized to in-order 1-way)");
        core::printExecutionBars(std::cout, rowsOf(results));
    }

    // --- Part (b): instruction window size (out-of-order).
    if (!occupancy_only) {
        std::vector<SweepItem> items;
        for (const std::uint32_t win : {16u, 32u, 64u, 128u}) {
            SimConfig cfg = core::makeScaledConfig(kind);
            cfg.system.core.window_size = win;
            char label[64];
            std::snprintf(label, sizeof(label), "window-%u", win);
            items.push_back({label, cfg});
        }
        const auto results = ctx.sweep("b-window", items);
        const auto rows = rowsOf(results);
        core::printHeader(std::cout,
                          std::string("(b) instruction window, ") + wname);
        core::printExecutionBars(std::cout, rows);
        std::cout << "\nread-stall magnification:\n";
        core::printReadStallBars(std::cout, rows);
    }

    // --- Part (c): number of MSHRs (outstanding misses).
    if (!occupancy_only) {
        std::vector<SweepItem> items;
        for (const std::uint32_t mshrs : {1u, 2u, 4u, 8u}) {
            SimConfig cfg = core::makeScaledConfig(kind);
            cfg.system.node.l1d.mshrs = mshrs;
            cfg.system.node.l2.mshrs = mshrs;
            char label[64];
            std::snprintf(label, sizeof(label), "mshr-%u", mshrs);
            items.push_back({label, cfg});
        }
        const auto results = ctx.sweep("c-mshrs", items);
        const auto rows = rowsOf(results);
        core::printHeader(std::cout,
                          std::string("(c) outstanding misses, ") + wname);
        core::printExecutionBars(std::cout, rows);
        std::cout << "\nread-stall magnification:\n";
        core::printReadStallBars(std::cout, rows);
    }

    // --- Parts (d)-(g): MSHR occupancy distributions on the base
    // system (fraction of non-idle time with >= n MSHRs in use).
    {
        const auto results = ctx.sweep(
            "occupancy", {{"base", core::makeScaledConfig(kind)}});
        if (results.empty()) {
            // Replayed from a resume journal (or failed under collect).
            std::cout << "(occupancy: no freshly-run results to print)\n";
            return;
        }
        const core::SweepResult &out = results.front();
        core::printHeader(std::cout,
                          std::string("(d)-(g) MSHR occupancy, ") + wname);
        core::printOccupancy(std::cout, "(d) L1D all misses ",
                             out.l1d_occ, 8);
        core::printOccupancy(std::cout, "(e) L2  all misses ",
                             out.l2_occ, 8);
        core::printOccupancy(std::cout, "(f) L1D read misses",
                             out.l1d_read_occ, 8);
        core::printOccupancy(std::cout, "(g) L2  read misses",
                             out.l2_read_occ, 8);
    }
}

} // namespace dbsim::bench

#endif // DBSIM_BENCH_ILP_FIGURE_HPP
