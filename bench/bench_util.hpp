/**
 * @file
 * Shared harness for the figure-reproduction benchmarks.
 *
 * Every bench builds declarative SweepItem lists (one per figure
 * section), runs them through core::SweepRunner -- in parallel across
 * host threads, deterministically -- and prints the same text reports
 * as before from the returned results.  The harness also owns the
 * flags every bench shares:
 *
 *   --jobs N              bound the number of concurrent simulations
 *                         (default: DBSIM_JOBS, then hardware concurrency)
 *   --json PATH           write every section's results as machine-readable
 *                         JSON (schema dbsim-bench-v2)
 *   --journal PATH        incremental journal of finished items (default:
 *                         <bench>.journal.jsonl; "none" disables)
 *   --resume PATH         replay completed items from PATH, re-run only
 *                         failed/missing ones
 *   --on-failure MODE     abort (default) or collect: keep going past a
 *                         failed item and record it in the report
 *   --max-retries N       re-run a failed item up to N more times with
 *                         identical seeds (implies collect on final failure)
 *   --item-timeout-sec N  host wall-clock budget per item (default:
 *                         DBSIM_ITEM_TIMEOUT, then disabled)
 *   --checkpoint-dir D    write per-item checkpoints under D; timed-out /
 *                         interrupted items leave a resumable checkpoint
 *   --checkpoint-interval N  periodic checkpoint every N cycles (default
 *                         500000 once a checkpoint dir is set)
 *   --state-hash-interval N  record an FNV state hash every N cycles
 *                         (emitted per item in the JSON report)
 *   --restore             before running an item, restore it from its
 *                         checkpoint under --checkpoint-dir if one exists
 *
 * Exit codes: 0 clean; 1 JSON/journal write failure; 2 config rejection;
 * 3 invariant failure; core::kSweepPartialFailureExit (4) when a
 * collect/retry sweep finished with failed items in the report.
 */

#ifndef DBSIM_BENCH_BENCH_UTIL_HPP
#define DBSIM_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "sim/diagnostics.hpp"

namespace dbsim::bench {

/** Harness flags plus whatever bench-specific flags remain. */
struct BenchOptions
{
    unsigned jobs = 0;       ///< 0 = resolve via DBSIM_JOBS / hardware
    std::string json_path;   ///< empty = no JSON report
    std::string journal_path; ///< empty = default; "none" = disabled
    std::string resume_path;  ///< empty = no resume
    bool collect_failures = false;   ///< --on-failure collect
    unsigned max_retries = 0;        ///< extra attempts per failed item
    unsigned item_timeout_sec = 0;   ///< 0 = DBSIM_ITEM_TIMEOUT / disabled
    std::string checkpoint_dir;      ///< empty = checkpointing disabled
    std::uint64_t checkpoint_interval = 0; ///< cycles; 0 = default
    std::uint64_t state_hash_interval = 0; ///< cycles; 0 = disabled
    bool restore = false;            ///< --restore: reuse item checkpoints
    std::vector<std::string> rest; ///< unconsumed (bench-specific) args

    bool
    has(const char *flag) const
    {
        for (const auto &a : rest)
            if (a == flag)
                return true;
        return false;
    }
};

/**
 * Parse the shared harness flags (each accepts both `--flag V` and
 * `--flag=V`); everything else is passed through in `rest`.  Bad values
 * throw ConfigError (guardedMain turns that into exit code 2).
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    auto parseUnsigned = [](const std::string &field, const std::string &v,
                            bool allow_zero) -> unsigned {
        std::size_t pos = 0;
        unsigned long n = 0;
        try {
            n = std::stoul(v, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != v.size() || (!allow_zero && n == 0) ||
            v.find('-') != std::string::npos) {
            throw ConfigError(field, "--" + field.substr(4) + " wants a " +
                                         (allow_zero ? "nonnegative"
                                                     : "positive") +
                                         " integer, got \"" + v + "\"");
        }
        return static_cast<unsigned>(n);
    };
    auto parseCycles = [](const std::string &field,
                          const std::string &v) -> std::uint64_t {
        std::size_t pos = 0;
        unsigned long long n = 0;
        try {
            n = std::stoull(v, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != v.size() || v.find('-') != std::string::npos) {
            throw ConfigError(field, "--" + field.substr(4) +
                                         " wants a nonnegative cycle "
                                         "count, got \"" +
                                         v + "\"");
        }
        return static_cast<std::uint64_t>(n);
    };
    auto apply = [&](const std::string &flag, const std::string &v) {
        if (flag == "--jobs") {
            opts.jobs = parseUnsigned("cli.jobs", v, /*allow_zero=*/false);
        } else if (flag == "--json") {
            opts.json_path = v;
        } else if (flag == "--journal") {
            opts.journal_path = v;
        } else if (flag == "--resume") {
            opts.resume_path = v;
        } else if (flag == "--max-retries") {
            opts.max_retries =
                parseUnsigned("cli.max-retries", v, /*allow_zero=*/true);
        } else if (flag == "--item-timeout-sec") {
            opts.item_timeout_sec = parseUnsigned("cli.item-timeout-sec", v,
                                                  /*allow_zero=*/true);
        } else if (flag == "--checkpoint-dir") {
            opts.checkpoint_dir = v;
        } else if (flag == "--checkpoint-interval") {
            opts.checkpoint_interval =
                parseCycles("cli.checkpoint-interval", v);
        } else if (flag == "--state-hash-interval") {
            opts.state_hash_interval =
                parseCycles("cli.state-hash-interval", v);
        } else if (flag == "--on-failure") {
            if (v == "collect") {
                opts.collect_failures = true;
            } else if (v == "abort") {
                opts.collect_failures = false;
            } else {
                throw ConfigError("cli.on-failure",
                                  "--on-failure wants abort or collect, "
                                  "got \"" +
                                      v + "\"");
            }
        }
    };
    const char *valued[] = {"--jobs",        "--json",
                            "--journal",     "--resume",
                            "--max-retries", "--item-timeout-sec",
                            "--on-failure",  "--checkpoint-dir",
                            "--checkpoint-interval",
                            "--state-hash-interval"};
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        bool consumed = false;
        if (a == "--restore") { // valueless flag
            opts.restore = true;
            continue;
        }
        for (const char *flag : valued) {
            if (a == flag) {
                if (i + 1 >= argc) {
                    throw ConfigError("cli." + std::string(flag + 2),
                                      a + " needs a value");
                }
                apply(flag, argv[++i]);
                consumed = true;
                break;
            }
            const std::string eq = std::string(flag) + "=";
            if (a.rfind(eq, 0) == 0) {
                apply(flag, a.substr(eq.size()));
                consumed = true;
                break;
            }
        }
        if (!consumed)
            opts.rest.push_back(a);
    }
    return opts;
}

/**
 * One bench run: a SweepRunner plus the accumulated JSON report, the
 * incremental journal, and (optionally) the resume plan.  Sections call
 * sweep(); main ends with `return ctx.finish();`.
 */
class BenchContext
{
  public:
    BenchContext(std::string bench_name, const BenchOptions &opts)
        : opts_(opts), runner_(opts.jobs)
    {
        report_.bench = std::move(bench_name);
        report_.jobs = runner_.jobs();

        core::FailurePolicy policy = core::FailurePolicy::abort();
        if (opts.max_retries > 0)
            policy = core::FailurePolicy::retry(1 + opts.max_retries);
        else if (opts.collect_failures)
            policy = core::FailurePolicy::collect();
        runner_.setFailurePolicy(policy);
        runner_.setItemTimeout(core::SweepRunner::resolveItemTimeout(
            static_cast<double>(opts.item_timeout_sec)));
        runner_.setStateHashInterval(opts.state_hash_interval);
        if (!opts.checkpoint_dir.empty()) {
            runner_.setCheckpointDir(opts.checkpoint_dir);
            runner_.setCheckpointInterval(opts.checkpoint_interval);
            runner_.setRestore(opts.restore);
            // SIGINT/SIGTERM now flush a checkpoint before unwinding, so
            // an interrupted sweep can be resumed mid-item.
            sim::installCheckpointSignalHandler();
        }
        report_.failure_policy = policy.describe();
        report_.item_timeout_sec = runner_.itemTimeout();

        if (!opts.resume_path.empty())
            journal_entries_ = core::SweepJournal::load(opts.resume_path);

        std::string journal_path = opts.journal_path;
        if (journal_path.empty())
            journal_path = report_.bench + ".journal.jsonl";
        if (journal_path != "none") {
            // Resuming from the journal we are about to write: append,
            // so completed lines survive and a second resume still sees
            // them.  Otherwise start a fresh journal; replayed entries
            // are copied into it as sections are assembled, keeping the
            // new journal complete on its own.
            const bool append = journal_path == opts.resume_path;
            if (journal_.open(journal_path, append)) {
                copy_replayed_to_journal_ = !append;
                runner_.setCompletionCallback(
                    [this](const core::SweepItemOutcome &o) {
                        journal_.append(current_section_, o);
                    });
            }
        }
    }

    const BenchOptions &opts() const { return opts_; }
    const core::SweepRunner &runner() const { return runner_; }

    /**
     * Run @p items (in parallel) and log them under @p section.  On
     * resume, journaled-ok items are replayed into the report without
     * re-running; the returned vector holds only the freshly-run
     * successful results (bench text output degrades gracefully).
     * Under the abort policy a failure is rethrown -- lowest index
     * first -- after the section's other items finished and were
     * journaled.
     */
    std::vector<core::SweepResult>
    sweep(const std::string &section,
          const std::vector<core::SweepItem> &items)
    {
        core::ResumePlan plan;
        if (!opts_.resume_path.empty()) {
            plan = core::planResume(section, items, journal_entries_);
        } else {
            plan.replayed.resize(items.size());
            for (std::size_t i = 0; i < items.size(); ++i)
                plan.to_run.push_back(i);
        }

        core::SweepOutcome outcome;
        if (!plan.to_run.empty()) {
            std::vector<core::SweepItem> subset;
            subset.reserve(plan.to_run.size());
            for (const std::size_t i : plan.to_run)
                subset.push_back(items[i]);
            current_section_ = section;
            outcome = runner_.runChecked(subset, plan.to_run);
        }
        if (plan.replayedCount() > 0) {
            std::cout << "[resume] " << section << ": replayed "
                      << plan.replayedCount() << "/" << items.size()
                      << " completed items from " << opts_.resume_path
                      << "\n";
        }

        // Assemble the section in input order: replayed lines verbatim,
        // fresh outcomes as produced.
        std::vector<core::SweepResult> fresh_ok;
        std::size_t next_fresh = 0;
        std::exception_ptr abort_error;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!plan.replayed[i].empty()) {
                if (copy_replayed_to_journal_)
                    journal_.appendRaw(plan.replayed[i]);
                report_.addReplayed(section, plan.replayed[i]);
                continue;
            }
            const core::SweepItemOutcome &o = outcome.items[next_fresh++];
            if (o.ok())
                fresh_ok.push_back(o.result);
            else if (!abort_error && o.error)
                abort_error = o.error;
            report_.entries.push_back({section, false, {}, o});
        }
        if (abort_error &&
            runner_.failurePolicy().mode ==
                core::FailurePolicy::Mode::Abort) {
            std::rethrow_exception(abort_error);
        }
        return fresh_ok;
    }

    /**
     * Write the JSON report if requested and close the journal.
     * Returns the exit code: 1 when the report could not be written
     * (CI must fail loudly, never upload a stale file),
     * core::kSweepPartialFailureExit when items failed under a
     * collect/retry policy, 0 otherwise.
     */
    int
    finish()
    {
        journal_.close();
        int code = 0;
        if (report_.failures() > 0) {
            std::cerr << "dbsim: sweep finished with "
                      << report_.failures() << " failed item(s) of "
                      << report_.entries.size() << " (policy "
                      << report_.failure_policy << ")\n";
            code = core::kSweepPartialFailureExit;
        }
        if (!opts_.json_path.empty() &&
            !core::writeSweepJsonFile(opts_.json_path, report_)) {
            code = 1;
        }
        return code;
    }

    const core::SweepReport &report() const { return report_; }

  private:
    BenchOptions opts_;
    core::SweepRunner runner_;
    core::SweepReport report_;
    core::SweepJournal journal_;
    std::vector<core::SweepJournalEntry> journal_entries_;
    std::string current_section_;
    bool copy_replayed_to_journal_ = false;
};

/** The figure rows of a result list, in sweep order. */
inline std::vector<core::BreakdownRow>
rowsOf(const std::vector<core::SweepResult> &results)
{
    std::vector<core::BreakdownRow> rows;
    rows.reserve(results.size());
    for (const auto &r : results)
        rows.push_back(r.row());
    return rows;
}

} // namespace dbsim::bench

#endif // DBSIM_BENCH_BENCH_UTIL_HPP
