/**
 * @file
 * Shared harness for the figure-reproduction benchmarks.
 *
 * Every bench builds declarative SweepItem lists (one per figure
 * section), runs them through core::SweepRunner -- in parallel across
 * host threads, deterministically -- and prints the same text reports
 * as before from the returned results.  The harness also owns the two
 * flags every bench shares:
 *
 *   --jobs N       bound the number of concurrent simulations
 *                  (default: DBSIM_JOBS, then hardware concurrency)
 *   --json PATH    write every section's results as machine-readable
 *                  JSON (schema dbsim-bench-v1)
 */

#ifndef DBSIM_BENCH_BENCH_UTIL_HPP
#define DBSIM_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/errors.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"

namespace dbsim::bench {

/** Harness flags plus whatever bench-specific flags remain. */
struct BenchOptions
{
    unsigned jobs = 0;       ///< 0 = resolve via DBSIM_JOBS / hardware
    std::string json_path;   ///< empty = no JSON report
    std::vector<std::string> rest; ///< unconsumed (bench-specific) args

    bool
    has(const char *flag) const
    {
        for (const auto &a : rest)
            if (a == flag)
                return true;
        return false;
    }
};

/**
 * Parse `--jobs N` / `--jobs=N` and `--json PATH` / `--json=PATH`;
 * everything else is passed through in `rest`.  Bad values throw
 * ConfigError (guardedMain turns that into exit code 2).
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    auto parseJobs = [&opts](const std::string &v) {
        std::size_t pos = 0;
        unsigned long n = 0;
        try {
            n = std::stoul(v, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != v.size() || n == 0) {
            throw ConfigError("cli.jobs",
                              "--jobs wants a positive integer, got \"" +
                                  v + "\"");
        }
        opts.jobs = static_cast<unsigned>(n);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--jobs" || a == "--json") {
            if (i + 1 >= argc) {
                throw ConfigError("cli" + a.substr(1),
                                  a + " needs a value");
            }
            const std::string v = argv[++i];
            if (a == "--jobs")
                parseJobs(v);
            else
                opts.json_path = v;
        } else if (a.rfind("--jobs=", 0) == 0) {
            parseJobs(a.substr(7));
        } else if (a.rfind("--json=", 0) == 0) {
            opts.json_path = a.substr(7);
        } else {
            opts.rest.push_back(a);
        }
    }
    return opts;
}

/**
 * One bench run: a SweepRunner plus the accumulated JSON report.
 * Sections call sweep(); main ends with `return ctx.finish();`.
 */
class BenchContext
{
  public:
    BenchContext(std::string bench_name, const BenchOptions &opts)
        : opts_(opts), runner_(opts.jobs)
    {
        report_.bench = std::move(bench_name);
        report_.jobs = runner_.jobs();
    }

    const BenchOptions &opts() const { return opts_; }
    const core::SweepRunner &runner() const { return runner_; }

    /** Run @p items (in parallel) and log them under @p section. */
    std::vector<core::SweepResult>
    sweep(const std::string &section,
          const std::vector<core::SweepItem> &items)
    {
        auto results = runner_.run(items);
        report_.add(section, results);
        return results;
    }

    /** Write the JSON report if requested.  Returns the exit code. */
    int
    finish()
    {
        if (opts_.json_path.empty())
            return 0;
        return core::writeSweepJsonFile(opts_.json_path, report_) ? 0 : 1;
    }

  private:
    BenchOptions opts_;
    core::SweepRunner runner_;
    core::SweepReport report_;
};

/** The figure rows of a result list, in sweep order. */
inline std::vector<core::BreakdownRow>
rowsOf(const std::vector<core::SweepResult> &results)
{
    std::vector<core::BreakdownRow> rows;
    rows.reserve(results.size());
    for (const auto &r : results)
        rows.push_back(r.row());
    return rows;
}

} // namespace dbsim::bench

#endif // DBSIM_BENCH_BENCH_UTIL_HPP
