/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks: run a
 * configuration, collect its breakdown row and characterization, and
 * snapshot MSHR occupancy distributions.
 */

#ifndef DBSIM_BENCH_BENCH_UTIL_HPP
#define DBSIM_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"

namespace dbsim::bench {

/** Everything a figure needs from one configuration run. */
struct RunOut
{
    core::BreakdownRow row;
    sim::RunResult result;
    core::Characterization ch;
    stats::OccupancyTracker l1d_occ{64};
    stats::OccupancyTracker l1d_read_occ{64};
    stats::OccupancyTracker l2_occ{64};
    stats::OccupancyTracker l2_read_occ{64};
    sim::NodeStats node0;
    coher::FabricStats fabric;
};

/** Run @p cfg and collect results (label defaults to describe(cfg)). */
inline RunOut
runConfig(const core::SimConfig &cfg, std::string label = {})
{
    core::Simulation simulation(cfg);
    RunOut out;
    out.result = simulation.run();
    out.ch = simulation.characterize();
    out.row = core::BreakdownRow{
        label.empty() ? core::describe(cfg) : std::move(label),
        out.result.breakdown, out.result.instructions};
    auto &n0 = simulation.system().node(0);
    out.l1d_occ = n0.l1dMshrStats().occupancy;
    out.l1d_read_occ = n0.l1dMshrStats().read_occupancy;
    out.l2_occ = n0.l2MshrStats().occupancy;
    out.l2_read_occ = n0.l2MshrStats().read_occupancy;
    out.node0 = n0.stats();
    out.fabric = simulation.system().fabric().stats();
    return out;
}

/** Short bar label helper. */
inline std::string
barLabel(const std::string &s)
{
    return s;
}

} // namespace dbsim::bench

#endif // DBSIM_BENCH_BENCH_UTIL_HPP
