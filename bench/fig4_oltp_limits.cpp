/**
 * @file
 * Figure 4: factors limiting OLTP performance on the base out-of-order
 * system -- idealization study.
 *
 * Paper shape targets: infinite functional units give ~nothing; perfect
 * branch prediction ~6%; a perfect instruction cache gives the largest
 * single gain; combining all idealizations with a doubled (128-entry)
 * window leaves dirty-miss latency as the dominant component.
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run()
{
    using namespace dbsim;
    using core::SimConfig;

    std::vector<core::BreakdownRow> rows;

    SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);
    rows.push_back(bench::runConfig(base, "base ooo").row);

    SimConfig fu = base;
    fu.system.core.fu.infinite = true;
    rows.push_back(bench::runConfig(fu, "infinite FUs").row);

    SimConfig bp = base;
    bp.system.core.bp.perfect = true;
    rows.push_back(bench::runConfig(bp, "perfect bpred").row);

    SimConfig ic = base;
    ic.system.node.perfect_icache = true;
    rows.push_back(bench::runConfig(ic, "perfect icache").row);

    SimConfig all = base;
    all.system.core.fu.infinite = true;
    all.system.core.bp.perfect = true;
    all.system.node.perfect_icache = true;
    all.system.node.perfect_itlb = true;
    all.system.node.perfect_dtlb = true;
    all.system.core.window_size = 128;
    rows.push_back(
        bench::runConfig(all, "all perfect + 128-window").row);

    core::printHeader(std::cout, "Figure 4: OLTP limit study");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
    return 0;
}

int
main()
{
    return dbsim::core::guardedMain([] { return run(); });
}
