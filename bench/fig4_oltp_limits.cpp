/**
 * @file
 * Figure 4: factors limiting OLTP performance on the base out-of-order
 * system -- idealization study.
 *
 * Paper shape targets: infinite functional units give ~nothing; perfect
 * branch prediction ~6%; a perfect instruction cache gives the largest
 * single gain; combining all idealizations with a doubled (128-entry)
 * window leaves dirty-miss latency as the dominant component.
 *
 * Usage: fig4_oltp_limits [--jobs N] [--json PATH]
 *        plus the shared fault-tolerance flags (bench_util.hpp):
 *        [--journal PATH|none] [--resume JOURNAL] [--on-failure abort|collect]
 *        [--max-retries N] [--item-timeout-sec S]
 */

#include <iostream>

#include "bench_util.hpp"

#include "core/cli_guard.hpp"

static int
run(const dbsim::bench::BenchOptions &opts)
{
    using namespace dbsim;
    using core::SimConfig;

    SimConfig base = core::makeScaledConfig(core::WorkloadKind::Oltp);

    SimConfig fu = base;
    fu.system.core.fu.infinite = true;

    SimConfig bp = base;
    bp.system.core.bp.perfect = true;

    SimConfig ic = base;
    ic.system.node.perfect_icache = true;

    SimConfig all = base;
    all.system.core.fu.infinite = true;
    all.system.core.bp.perfect = true;
    all.system.node.perfect_icache = true;
    all.system.node.perfect_itlb = true;
    all.system.node.perfect_dtlb = true;
    all.system.core.window_size = 128;

    bench::BenchContext ctx("fig4_oltp_limits", opts);
    const auto results = ctx.sweep(
        "limits", {{"base ooo", base},
                   {"infinite FUs", fu},
                   {"perfect bpred", bp},
                   {"perfect icache", ic},
                   {"all perfect + 128-window", all}});

    const auto rows = bench::rowsOf(results);
    core::printHeader(std::cout, "Figure 4: OLTP limit study");
    core::printExecutionBars(std::cout, rows);
    std::cout << "\nread-stall magnification:\n";
    core::printReadStallBars(std::cout, rows);
    return ctx.finish();
}

int
main(int argc, char **argv)
{
    return dbsim::core::guardedMain(
        [&] { return run(dbsim::bench::parseBenchArgs(argc, argv)); });
}
